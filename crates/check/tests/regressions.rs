//! Replays the checked-in regression corpus under
//! `crates/check/regressions/`: every file is a minimized once-failing
//! (DAG, choice sequence) pair pinned by the shrinker. The runtime must
//! pass the differential oracle on each, forever.
//!
//! To add a case: take the seed + choice string from a failing
//! exploration, shrink it with `xk_check::shrink_case`, and
//! `xk_check::write_regression` it into the corpus directory.

use std::path::PathBuf;

use xk_check::{load_regressions, replay};

fn corpus_dir() -> PathBuf {
    option_env!("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("crates/check"))
        .join("regressions")
}

#[test]
fn corpus_replays_clean() {
    let cases = load_regressions(&corpus_dir());
    assert!(
        !cases.is_empty(),
        "no regression corpus found under {} — the checked-in cases are gone",
        corpus_dir().display(),
    );
    for case in &cases {
        let (graph, topo, cfg) = case.scenario();
        let (out, verdict) = replay(&graph, &topo, &cfg, &case.choices, None);
        assert_eq!(
            verdict,
            Ok(()),
            "regression {:?} fails again (was: {})",
            case.name,
            case.error,
        );
        assert_eq!(out.tasks_run, graph.len(), "regression {:?} did not drain", case.name);
    }
}

#[test]
fn corpus_files_are_canonical() {
    // Guards hand-edited files: parse -> serialize must be the identity,
    // so every case stays machine-rewritable by the shrinker.
    for case in load_regressions(&corpus_dir()) {
        let text = xk_check::shrink::to_text(&case);
        let reparsed = xk_check::shrink::from_text(&text).unwrap();
        assert_eq!(reparsed, case, "case {:?} does not round-trip", case.name);
    }
}
