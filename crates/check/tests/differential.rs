//! The tentpole differential matrix: every explored schedule of a
//! generated DAG must produce the same final tile values as the serial
//! single-stream reference — heuristics on and off, data starting on the
//! host and on the devices, 1 to 8 GPUs of the DGX-1.
//!
//! Each configuration runs a fixed 1100-seed random exploration; the
//! acceptance bar is at least 1000 *distinct* schedules per (DAG, config)
//! with zero oracle failures. A failure prints its seed and choice string,
//! which `xk_check::replay` reproduces exactly.
//!
//! Seeds fan out over the batch replica driver (one worker per core,
//! shared graph/topology/prep) — reports are identical to the serial
//! loops, which `serial_and_batched_reports_agree` pins on a full matrix
//! cell.

use xk_bench::graphgen::{build_random_dag, RandomDagSpec};
use xk_check::topo_util::subtopo;
use xk_check::{
    explore_random, explore_random_batch, explore_pct_batch, replay, shrink_case,
    write_regression, Failure, ReplayCase, BOUND_RTOL,
};
use xk_runtime::{makespan_lower_bound, Heuristics, RuntimeConfig};

/// Seeds per configuration — a little headroom above the 1000-distinct
/// bar. The nightly CI job raises it via `XK_CHECK_SEEDS` for a much
/// deeper (non-blocking) exploration of the same matrix.
fn seeds() -> std::ops::Range<u64> {
    let n = std::env::var("XK_CHECK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1100);
    0..n
}

const DISTINCT_FLOOR: usize = 1000;

fn spec(on_device: Option<usize>) -> RandomDagSpec {
    RandomDagSpec {
        flush: true,
        on_device,
        ..RandomDagSpec::default()
    }
}

fn first_failures(failures: &[Failure]) -> &[Failure] {
    &failures[..failures.len().min(3)]
}

/// Runs the 1100-seed exploration for one heuristics preset across
/// placements (host / on-device) and 1, 2, 4, 8 GPUs of the DGX-1.
fn sweep(dag_seed: u64, h: Heuristics) {
    let full = xk_topo::dgx1();
    let cfg = RuntimeConfig::default().with_heuristics(h);
    for n_gpus in [1usize, 2, 4, 8] {
        let topo = subtopo(&full, n_gpus);
        for on_device in [None, Some(n_gpus)] {
            let g = build_random_dag(dag_seed, &spec(on_device));
            let r = explore_random_batch(&g, &topo, &cfg, seeds(), None, 0);
            let place = on_device.map_or("host", |_| "device");
            assert!(
                r.failures.is_empty(),
                "{n_gpus} GPUs, {place} placement, {h:?}: {} oracle failures, first: {:#?}",
                r.failures.len(),
                first_failures(&r.failures),
            );
            assert!(
                r.distinct >= DISTINCT_FLOOR,
                "{n_gpus} GPUs, {place} placement, {h:?}: only {} distinct schedules in {} runs",
                r.distinct,
                r.runs,
            );
        }
    }
}

#[test]
fn full_heuristics_matrix() {
    sweep(1, Heuristics::full());
}

#[test]
fn no_optimistic_matrix() {
    sweep(1, Heuristics::no_optimistic());
}

#[test]
fn no_heuristics_matrix() {
    sweep(1, Heuristics::none());
}

#[test]
fn host_staged_only_matrix() {
    // No device-to-device communication at all: the protocol must still
    // deliver reference results under every explored schedule.
    sweep(1, Heuristics::host_only());
}

#[test]
fn second_dag_spot_check() {
    // A structurally different DAG on the most contended configuration.
    sweep(2, Heuristics::full());
}

#[test]
fn pct_style_exploration_passes_the_oracle() {
    // PCT-style controllers bias hard toward hashed priorities, reaching
    // systematically-skewed corners uniform sampling underweights.
    let topo = xk_topo::dgx1();
    let cfg = RuntimeConfig::default();
    let g = build_random_dag(1, &spec(Some(8)));
    for change_every in [1u64, 7, 64] {
        let r = explore_pct_batch(&g, &topo, &cfg, 0..200, change_every, 0);
        assert!(
            r.failures.is_empty(),
            "PCT change_every={change_every}: {:#?}",
            first_failures(&r.failures),
        );
        assert!(r.distinct > 100, "PCT degenerate: {} distinct", r.distinct);
    }
}

/// Seeds per cell for the bound-oracle legs: these stack a second oracle
/// on the same exploration machinery, so a shallower sweep per cell keeps
/// the wall-clock sane across the whole gallery × preset matrix. The
/// nightly job raises it via `XK_BOUND_SEEDS`.
fn bound_seeds() -> std::ops::Range<u64> {
    let n = std::env::var("XK_BOUND_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    0..n
}

#[test]
fn bound_oracle_across_the_fabric_gallery() {
    // Every fabric of the gallery × three heuristic presets: the LP
    // makespan lower bound must be positive, and no explored schedule may
    // beat it (the exploration itself enforces that per run; the report's
    // min_makespan re-asserts it end to end).
    let presets = [
        ("full", Heuristics::full()),
        ("none", Heuristics::none()),
        ("host_only", Heuristics::host_only()),
    ];
    for topo in xk_topo::fabrics::gallery() {
        for (hname, h) in presets {
            let cfg = RuntimeConfig::default().with_heuristics(h);
            let g = build_random_dag(3, &spec(None));
            let bound = makespan_lower_bound(&g, &topo, &cfg);
            assert!(
                bound.total > 0.0 && bound.total.is_finite(),
                "{} {hname}: degenerate bound {bound:?}",
                topo.name(),
            );
            let r = explore_random_batch(&g, &topo, &cfg, bound_seeds(), None, 0);
            assert!(
                r.failures.is_empty(),
                "{} {hname}: {} bound/oracle failures, first: {:#?}",
                topo.name(),
                r.failures.len(),
                first_failures(&r.failures),
            );
            let min = r.min_makespan.expect("non-empty exploration");
            assert!(
                min >= bound.total * (1.0 - BOUND_RTOL),
                "{} {hname}: best makespan {min} beats bound {}",
                topo.name(),
                bound.total,
            );
        }
    }
}

#[test]
fn bound_oracle_on_dgx1_slices_shrinks_violations() {
    // The dgx1 sub-machine cells are replayable as ReplayCase files, so a
    // bound violation here is shrunk and pinned into the corpus before the
    // test fails — the next session starts from a minimized reproducer.
    let full = xk_topo::dgx1();
    let cfg = RuntimeConfig::default().with_heuristics(Heuristics::full());
    let fails = |c: &ReplayCase| {
        let (g, t, cfg) = c.scenario();
        replay(&g, &t, &cfg, &c.choices, None).1.is_err()
    };
    for n_gpus in [1usize, 2, 4, 8] {
        let topo = subtopo(&full, n_gpus);
        for on_device in [None, Some(n_gpus)] {
            let g = build_random_dag(4, &spec(on_device));
            let r = explore_random_batch(&g, &topo, &cfg, bound_seeds(), None, 0);
            if let Some(f) = r.failures.first() {
                let case = ReplayCase {
                    name: "bound-violation".into(),
                    seed: 4,
                    spec: spec(on_device),
                    n_gpus,
                    heuristics: "full".into(),
                    choices: f.choices.clone(),
                    error: f.error.clone(),
                };
                if fails(&case) {
                    let shrunk = shrink_case(case, fails);
                    let dir = std::path::Path::new(
                        option_env!("CARGO_MANIFEST_DIR").unwrap_or("crates/check"),
                    )
                    .join("regressions");
                    if let Ok(path) = write_regression(&dir, &shrunk) {
                        eprintln!("pinned shrunk bound violation at {}", path.display());
                    }
                }
                panic!(
                    "{n_gpus} GPUs, on_device={on_device:?}: bound violation, seed {} — {}",
                    f.seed, f.error,
                );
            }
        }
    }
}

#[test]
fn serial_and_batched_reports_agree() {
    // One matrix cell, both drivers: the batched fan-out must reproduce
    // the serial report exactly (runs, distinct fingerprints, failures).
    let topo = subtopo(&xk_topo::dgx1(), 4);
    let cfg = RuntimeConfig::default().with_heuristics(Heuristics::full());
    let g = build_random_dag(1, &spec(Some(4)));
    let serial = explore_random(&g, &topo, &cfg, 0..64, None);
    let batched = explore_random_batch(&g, &topo, &cfg, 0..64, None, 0);
    assert_eq!(serial.runs, batched.runs);
    assert_eq!(serial.distinct, batched.distinct);
    assert!(serial.failures.is_empty() && batched.failures.is_empty());
}
