//! The differential and metamorphic suites replayed on the non-DGX-1
//! members of the fabric gallery: an NVSwitch machine (all-to-all through
//! a switch tier), a PCIe-only commodity box, and a two-node NIC/IB
//! fabric. The DGX-1 versions of these properties live in
//! `differential.rs` / `metamorphic.rs`; this suite proves the redesigned
//! fabric layer did not bake DGX-1 assumptions into the runtime.

use xk_bench::graphgen::{build_random_dag, build_random_dag_placed, RandomDagSpec};
use xk_check::topo_util::automorphisms;
use xk_check::{explore_random_batch, replay, Failure};
use xk_runtime::{Heuristics, RuntimeConfig, SchedulerKind};
use xk_topo::{fabrics, FabricSpec};

/// Seeds per (fabric, preset) cell — smaller than the DGX-1 matrix since
/// this suite multiplies over fabrics; `XK_CHECK_SEEDS` deepens it.
fn seeds() -> std::ops::Range<u64> {
    let n = std::env::var("XK_CHECK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    0..n
}

fn gallery_non_dgx1() -> Vec<FabricSpec> {
    vec![fabrics::dgx2(8), fabrics::pcie_box(4), fabrics::dual_node_ib(4)]
}

fn spec(on_device: Option<usize>) -> RandomDagSpec {
    RandomDagSpec {
        flush: true,
        on_device,
        ..RandomDagSpec::default()
    }
}

fn first_failures(failures: &[Failure]) -> &[Failure] {
    &failures[..failures.len().min(3)]
}

/// The differential oracle on every new fabric: explored schedules must
/// reproduce the serial reference values, data starting on the host and
/// on the devices, heuristics on and off.
#[test]
fn differential_oracle_per_fabric() {
    for topo in gallery_non_dgx1() {
        let n = topo.n_gpus();
        for h in [Heuristics::full(), Heuristics::none()] {
            let cfg = RuntimeConfig::default().with_heuristics(h);
            for on_device in [None, Some(n)] {
                let g = build_random_dag(1, &spec(on_device));
                let r = explore_random_batch(&g, &topo, &cfg, seeds(), None, 0);
                let place = on_device.map_or("host", |_| "device");
                assert!(
                    r.failures.is_empty(),
                    "{} ({place}, {h:?}): {} oracle failures, first: {:#?}",
                    topo.name(),
                    r.failures.len(),
                    first_failures(&r.failures),
                );
                assert!(
                    r.distinct >= r.runs / 2,
                    "{} ({place}, {h:?}): only {} distinct schedules in {} runs",
                    topo.name(),
                    r.distinct,
                    r.runs,
                );
            }
        }
    }
}

/// Satellite 3: the relabeling metamorphic suite on the NVSwitch fabric,
/// driven by *generated* automorphisms instead of the hand-derived DGX-1
/// list. The machine is vertex-transitive, so the generator has plenty to
/// offer; under placement-driven scheduling each relabeling must preserve
/// the makespan bit-for-bit.
#[test]
fn nvswitch_relabeling_preserves_makespan_under_static_owner() {
    let topo = fabrics::dgx2(8);
    let perms = automorphisms(&topo, 6);
    assert!(!perms.is_empty(), "NVSwitch fabric has no automorphisms?");
    let cfg = RuntimeConfig::default().with_scheduler(SchedulerKind::StaticOwner);
    for seed in 1u64..=6 {
        let spec = spec(Some(8));
        let base = build_random_dag(seed, &spec);
        let (base_out, base_verdict) = replay(&base, &topo, &cfg, &[], None);
        assert_eq!(base_verdict, Ok(()), "seed {seed} base run failed the oracle");
        for (pi, perm) in perms.iter().enumerate() {
            let permuted = build_random_dag_placed(seed, &spec, |g| perm[g]);
            let (out, verdict) = replay(&permuted, &topo, &cfg, &[], None);
            assert_eq!(verdict, Ok(()), "seed {seed} perm#{pi} failed the oracle");
            assert_eq!(
                out.makespan.to_bits(),
                base_out.makespan.to_bits(),
                "seed {seed} perm#{pi} {perm:?}: makespan {} != base {}",
                out.makespan,
                base_out.makespan,
            );
            assert_eq!(out.tasks_run, base_out.tasks_run);
        }
    }
}

/// The same relabeling property on the two-node fabric: its automorphisms
/// are node-preserving by construction (the generator keeps co-location
/// patterns), so a relabeled placement is the same machine there too.
#[test]
fn dual_node_relabeling_preserves_makespan_under_static_owner() {
    let topo = fabrics::dual_node_ib(4);
    let perms = automorphisms(&topo, 4);
    assert!(!perms.is_empty(), "dual-node fabric has no automorphisms?");
    let cfg = RuntimeConfig::default().with_scheduler(SchedulerKind::StaticOwner);
    for seed in 1u64..=4 {
        let spec = spec(Some(8));
        let base = build_random_dag(seed, &spec);
        let (base_out, base_verdict) = replay(&base, &topo, &cfg, &[], None);
        assert_eq!(base_verdict, Ok(()), "seed {seed} base run failed the oracle");
        for (pi, perm) in perms.iter().enumerate() {
            let permuted = build_random_dag_placed(seed, &spec, |g| perm[g]);
            let (out, verdict) = replay(&permuted, &topo, &cfg, &[], None);
            assert_eq!(verdict, Ok(()), "seed {seed} perm#{pi} failed the oracle");
            assert_eq!(
                out.makespan.to_bits(),
                base_out.makespan.to_bits(),
                "seed {seed} perm#{pi} {perm:?}",
            );
        }
    }
}

/// Disabling the optimistic D2D heuristic must preserve results and
/// liveness on every new fabric — including the two-node machine, where a
/// forward may now cross both NICs.
#[test]
fn disabling_optimistic_d2d_stays_correct_per_fabric() {
    for topo in gallery_non_dgx1() {
        let n = topo.n_gpus();
        let g = build_random_dag(3, &spec(Some(n)));
        for h in [Heuristics::full(), Heuristics::no_optimistic()] {
            let cfg = RuntimeConfig::default().with_heuristics(h);
            let r = explore_random_batch(&g, &topo, &cfg, 0..100, None, 0);
            assert_eq!(r.runs, 100);
            assert!(
                r.failures.is_empty(),
                "{} {h:?}: {:#?}",
                topo.name(),
                first_failures(&r.failures),
            );
        }
    }
}
