//! Metamorphic properties of the simulated runtime.
//!
//! Each property transforms the scenario in a way whose effect on the
//! outcome is known in advance, then checks the runtime honours it:
//!
//! 1. Relabeling GPUs along a DGX-1 automorphism (the machine's tables are
//!    bit-identical, only the data placement moves) preserves the makespan
//!    exactly — for placement-driven scheduling (`StaticOwner`). Index
//!    tie-breaks make work-stealing schedulers placement-sensitive, so for
//!    those the property is weakened to "still correct": every permuted
//!    run passes the differential oracle.
//! 2. Uniformly scaling every link bandwidth by `k` (with latencies at
//!    zero) scales every transfer span by exactly `1/k` whenever the
//!    canonical schedule keeps its structure.
//! 3. Disabling optimistic device-to-device forwarding never changes the
//!    computed values and never deadlocks a waiter on an in-flight
//!    transfer: every explored schedule drains and passes the oracle.

use xk_bench::graphgen::{build_random_dag, build_random_dag_placed, RandomDagSpec};
use xk_check::topo_util::{scaled_bandwidth, DGX1_AUTOMORPHISMS};
use xk_check::{explore_random, replay};
use xk_runtime::{link_attribution, makespan_lower_bound, Heuristics, RuntimeConfig, SchedulerKind};
use xk_topo::{bw, dgx1, FabricBuilder, FabricSpec, LinkClass};

fn device_spec() -> RandomDagSpec {
    RandomDagSpec {
        on_device: Some(8),
        flush: true,
        ..RandomDagSpec::default()
    }
}

#[test]
fn gpu_relabeling_preserves_makespan_under_static_owner() {
    let topo = dgx1();
    let cfg = RuntimeConfig::default().with_scheduler(SchedulerKind::StaticOwner);
    for seed in 1u64..=12 {
        let spec = device_spec();
        let base = build_random_dag(seed, &spec);
        let (base_out, base_verdict) = replay(&base, &topo, &cfg, &[], None);
        assert_eq!(base_verdict, Ok(()), "seed {seed} base run failed the oracle");
        for (pi, perm) in DGX1_AUTOMORPHISMS.iter().enumerate() {
            let permuted = build_random_dag_placed(seed, &spec, |g| perm[g]);
            let (out, verdict) = replay(&permuted, &topo, &cfg, &[], None);
            assert_eq!(verdict, Ok(()), "seed {seed} perm#{pi} failed the oracle");
            assert_eq!(
                out.makespan.to_bits(),
                base_out.makespan.to_bits(),
                "seed {seed} perm#{pi}: makespan {} != base {}",
                out.makespan,
                base_out.makespan,
            );
            assert_eq!(out.tasks_run, base_out.tasks_run);
        }
    }
}

#[test]
fn gpu_relabeling_stays_correct_under_work_stealing() {
    // LocalityWorkStealing breaks ties on GPU index, so the permuted
    // makespan legitimately drifts — but correctness must not: every
    // explored schedule of every permuted placement passes the oracle.
    let topo = dgx1();
    let cfg = RuntimeConfig::default();
    for seed in 1u64..=4 {
        for perm in DGX1_AUTOMORPHISMS.iter() {
            let g = build_random_dag_placed(seed, &device_spec(), |g| perm[g]);
            let r = explore_random(&g, &topo, &cfg, 0..60, None);
            assert!(
                r.failures.is_empty(),
                "seed {seed} perm {perm:?}: {:#?}",
                &r.failures[..r.failures.len().min(3)],
            );
        }
    }
}

#[test]
fn bandwidth_scaling_scales_transfer_spans_by_inverse_k() {
    // Zero-latency machines make each transfer exactly bytes/(k*bw). The
    // property needs the canonical schedule to keep its structure under
    // the rescale; these DAG seeds are structure-stable for every k below
    // (checked empirically and guarded by the structure assertions).
    let base_topo = scaled_bandwidth(&dgx1(), 1.0, true);
    let cfg = RuntimeConfig::default();
    let spec = RandomDagSpec {
        flush: true,
        ..RandomDagSpec::default()
    };
    for seed in [1u64, 7, 12] {
        let g = build_random_dag(seed, &spec);
        let (base, base_verdict) = replay(&g, &base_topo, &cfg, &[], None);
        assert_eq!(base_verdict, Ok(()));
        let base_transfers: Vec<_> = base
            .trace
            .spans()
            .iter()
            .filter(|s| s.kind.is_transfer())
            .map(|s| (s.kind, s.bytes, s.duration()))
            .collect();
        assert!(!base_transfers.is_empty(), "seed {seed} moved no data");
        for k in [2.0f64, 4.0, 0.5] {
            let scaled = scaled_bandwidth(&dgx1(), k, true);
            let (out, verdict) = replay(&g, &scaled, &cfg, &[], None);
            assert_eq!(verdict, Ok(()), "seed {seed} k={k} failed the oracle");
            let transfers: Vec<_> = out
                .trace
                .spans()
                .iter()
                .filter(|s| s.kind.is_transfer())
                .map(|s| (s.kind, s.bytes, s.duration()))
                .collect();
            assert_eq!(
                transfers.len(),
                base_transfers.len(),
                "seed {seed} k={k}: schedule structure changed",
            );
            for (i, (a, b)) in base_transfers.iter().zip(&transfers).enumerate() {
                assert_eq!((a.0, a.1), (b.0, b.1), "seed {seed} k={k} transfer {i}");
                let ratio = a.2 / (b.2 * k);
                assert!(
                    (ratio - 1.0).abs() < 1e-9,
                    "seed {seed} k={k} transfer {i}: span {} !~ base {} / {k}",
                    b.2,
                    a.2,
                );
            }
        }
    }
}

#[test]
fn topology_rescale_is_exact_on_the_bandwidth_matrix() {
    // The topo-level half of the scaling property: every matrix entry is
    // exactly k times the original (bit-level, not approximate).
    let t = dgx1();
    for k in [2.0f64, 4.0, 0.5] {
        let s = scaled_bandwidth(&t, k, false);
        let m0 = t.bandwidth_matrix_gbs();
        let m1 = s.bandwidth_matrix_gbs();
        for (r0, r1) in m0.iter().zip(&m1) {
            for (a, b) in r0.iter().zip(r1) {
                assert_eq!(b.to_bits(), (a * k).to_bits());
            }
        }
    }
}

#[test]
fn uniform_bandwidth_scaling_scales_the_lp_bound_inversely() {
    // The link-LP component of the makespan lower bound is a pure function
    // of bytes/bandwidth coefficients, so scaling every link by k must
    // scale it by exactly 1/k (the compute component, kernel-only, must
    // not move at all). This pins the LP against the same transformation
    // the transfer-span property above pins the DES against.
    let cfg = RuntimeConfig::default();
    let spec = RandomDagSpec {
        flush: true,
        ..RandomDagSpec::default()
    };
    for seed in [1u64, 7, 12] {
        let g = build_random_dag(seed, &spec);
        let base = makespan_lower_bound(&g, &scaled_bandwidth(&dgx1(), 1.0, true), &cfg);
        assert!(base.link_lp > 0.0, "seed {seed}: host-placed DAG moved no mandatory bytes");
        for k in [2.0f64, 4.0, 0.5] {
            let b = makespan_lower_bound(&g, &scaled_bandwidth(&dgx1(), k, true), &cfg);
            let ratio = b.link_lp * k / base.link_lp;
            assert!(
                (ratio - 1.0).abs() < 1e-9,
                "seed {seed} k={k}: link_lp {} !~ base {} / {k}",
                b.link_lp,
                base.link_lp,
            );
            assert_eq!(
                b.compute.to_bits(),
                base.compute.to_bits(),
                "seed {seed} k={k}: compute bound moved with bandwidth",
            );
        }
    }
}

/// A 4-GPU NVLink fabric with a known symmetry group: (0,1)/(2,3) carry
/// 2× NVLink, (0,2)/(1,3) 1× — small enough for exhaustive Shapley.
fn quad() -> FabricSpec {
    FabricBuilder::named("quad")
        .gpus(4)
        .links(&[(0, 1), (2, 3)], LinkClass::NvLink2, bw::NVLINK2)
        .links(&[(0, 2), (1, 3)], LinkClass::NvLink1, bw::NVLINK1)
        .build()
}

/// Non-identity automorphisms of [`quad`]: each preserves the link tables
/// AND the switch grouping {0,1}/{2,3}, so the fabric is bit-identical
/// after relabeling.
const QUAD_AUTOMORPHISMS: [[usize; 4]; 3] = [
    [1, 0, 3, 2], // swap within NVLink2 pairs
    [2, 3, 0, 1], // swap the pairs wholesale
    [3, 2, 1, 0], // both
];

#[test]
fn gpu_relabeling_permutes_link_attributions_without_changing_the_multiset() {
    // Relabeling GPUs along a fabric automorphism maps each NVLink edge to
    // its image; under placement-driven scheduling every coalition's
    // throughput is preserved, so the Shapley value of edge (a, b) in the
    // base scenario must reappear at (π(a), π(b)) in the permuted one —
    // and the multiset of values must be unchanged.
    let topo = quad();
    let cfg = RuntimeConfig::default().with_scheduler(SchedulerKind::StaticOwner);
    let spec = RandomDagSpec {
        on_device: Some(4),
        flush: true,
        ..RandomDagSpec::default()
    };
    for seed in [1u64, 5] {
        let base_g = build_random_dag(seed, &spec);
        let base = link_attribution(&base_g, &topo, &cfg, 0, 0);
        assert!(base.exact, "quad mesh should be exhaustively attributable");
        assert_eq!(base.links.len(), 4);
        let value_at = |attr: &xk_runtime::Attribution, a: usize, b: usize| {
            attr.links
                .iter()
                .find(|l| (l.a, l.b) == (a.min(b), a.max(b)))
                .unwrap_or_else(|| panic!("edge ({a},{b}) missing"))
                .value
        };
        for perm in QUAD_AUTOMORPHISMS.iter() {
            let perm_g = build_random_dag_placed(seed, &spec, |g| perm[g]);
            let attr = link_attribution(&perm_g, &topo, &cfg, 0, 0);
            // Edge-wise: the value follows the relabeling.
            for l in &base.links {
                let (pa, pb) = (perm[l.a], perm[l.b]);
                let moved = value_at(&attr, pa, pb);
                assert!(
                    (moved - l.value).abs() <= 1e-9 * l.value.abs().max(1.0),
                    "seed {seed} perm {perm:?}: edge ({},{}) value {} != image ({pa},{pb}) {moved}",
                    l.a,
                    l.b,
                    l.value,
                );
            }
            // Multiset: sorted value lists agree, as do the endpoints.
            let mut vb: Vec<f64> = base.links.iter().map(|l| l.value).collect();
            let mut vp: Vec<f64> = attr.links.iter().map(|l| l.value).collect();
            vb.sort_by(|x, y| x.partial_cmp(y).unwrap());
            vp.sort_by(|x, y| x.partial_cmp(y).unwrap());
            for (x, y) in vb.iter().zip(&vp) {
                assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0));
            }
            assert!(
                (base.full_value - attr.full_value).abs()
                    <= 1e-9 * base.full_value.abs().max(1.0),
                "seed {seed} perm {perm:?}: achieved throughput moved under relabeling",
            );
        }
    }
}

#[test]
fn disabling_optimistic_d2d_preserves_results_and_liveness() {
    // The §III-C heuristic is a pure latency optimisation: turning it off
    // must not change any computed value (both variants must match the
    // serial reference) and must never strand a waiter — every explored
    // schedule drains completely, which explore_random's structural check
    // asserts (tasks_run == graph.len()).
    let topo = dgx1();
    for on_device in [None, Some(8)] {
        let g = build_random_dag(
            3,
            &RandomDagSpec {
                on_device,
                flush: true,
                ..RandomDagSpec::default()
            },
        );
        for h in [Heuristics::full(), Heuristics::no_optimistic()] {
            let cfg = RuntimeConfig::default().with_heuristics(h);
            let r = explore_random(&g, &topo, &cfg, 0..150, None);
            assert_eq!(r.runs, 150);
            assert!(
                r.failures.is_empty(),
                "{h:?} on_device={on_device:?}: {:#?}",
                &r.failures[..r.failures.len().min(3)],
            );
        }
    }
}
