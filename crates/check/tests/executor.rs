//! Schedule-space exploration of the *parallel* executor: `run_controlled`
//! interprets the work-stealing discipline deterministically under a
//! [`xk_runtime::ScheduleController`], with real task bodies. These tests
//! drive it through random and exhaustive (DFS) interleavings and check
//! the dependency protocol holds in every one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use xk_check::{ChoiceLog, DfsController, RandomController};
use xk_kernels::perfmodel::TileOp;
use xk_runtime::{run_controlled, Access, TaskAccess, TaskGraph};

fn op() -> TileOp {
    TileOp::Gemm { m: 4, n: 4, k: 4 }
}

fn rw(h: xk_runtime::HandleId) -> Vec<TaskAccess> {
    vec![TaskAccess { handle: h, access: Access::ReadWrite }]
}

/// A fan-out/fan-in DAG whose final value is schedule-independent only if
/// the dependency protocol is honoured: `seed -> n parallel doublers on
/// separate tiles -> non-commutative combine`. Returns (graph, state).
/// `state` ends at `(1 * 2^n) * 10 + 7` exactly when every doubler runs
/// after the seed and the combine runs after every doubler.
fn fan_graph(n: usize) -> (TaskGraph, Arc<AtomicU64>) {
    let mut g = TaskGraph::new();
    let state = Arc::new(AtomicU64::new(0));
    let root = g.add_host_tile(64, false, "root");
    let st = state.clone();
    g.add_task_with_body(
        op(),
        rw(root),
        "seed",
        Box::new(move || st.store(1, Ordering::SeqCst)),
    );
    let mut mids = Vec::new();
    for i in 0..n {
        let h = g.add_host_tile(64, false, format!("m{i}"));
        let st = state.clone();
        g.add_task_with_body(
            op(),
            vec![
                TaskAccess { handle: root, access: Access::Read },
                TaskAccess { handle: h, access: Access::Write },
            ],
            format!("double{i}"),
            Box::new(move || {
                let v = st.load(Ordering::SeqCst);
                assert!(v >= 1, "doubler ran before the seed");
                st.store(v * 2, Ordering::SeqCst);
            }),
        );
        mids.push(h);
    }
    let mut accesses: Vec<TaskAccess> = mids
        .iter()
        .map(|&h| TaskAccess { handle: h, access: Access::Read })
        .collect();
    accesses.push(TaskAccess { handle: root, access: Access::ReadWrite });
    let st = state.clone();
    let expect = 1u64 << n;
    g.add_task_with_body(
        op(),
        accesses,
        "combine",
        Box::new(move || {
            let v = st.load(Ordering::SeqCst);
            assert_eq!(v, expect, "combine ran before all doublers");
            st.store(v * 10 + 7, Ordering::SeqCst);
        }),
    );
    (g, state)
}

#[test]
fn random_interleavings_respect_the_dependency_protocol() {
    for seed in 0..300u64 {
        let (mut g, state) = fan_graph(4);
        let n = g.len();
        let mut ctrl = RandomController::new(seed);
        let out = run_controlled(&mut g, 4, &mut ctrl);
        assert_eq!(out.tasks_run, n, "seed {seed} lost tasks");
        assert_eq!(
            state.load(Ordering::SeqCst),
            (1 << 4) * 10 + 7,
            "seed {seed} (choices {:?}) broke the dependency order",
            ctrl.log.choices(),
        );
    }
}

#[test]
fn random_interleavings_are_actually_diverse() {
    let mut fingerprints = std::collections::HashSet::new();
    for seed in 0..120u64 {
        let (mut g, _state) = fan_graph(4);
        let mut ctrl = RandomController::new(seed);
        run_controlled(&mut g, 4, &mut ctrl);
        fingerprints.insert(ctrl.log.fingerprint());
    }
    assert!(
        fingerprints.len() > 20,
        "only {} distinct executor schedules in 120 seeds",
        fingerprints.len(),
    );
}

#[test]
fn chain_order_is_schedule_independent() {
    // A serial RW chain admits interleaving freedom only in *idle* worker
    // steps: the observed body order must be the program order regardless.
    for seed in 0..50u64 {
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..8 {
            let log = log.clone();
            g.add_task_with_body(
                op(),
                rw(h),
                format!("k{i}"),
                Box::new(move || log.lock().unwrap().push(i)),
            );
        }
        let mut ctrl = RandomController::new(seed);
        let out = run_controlled(&mut g, 3, &mut ctrl);
        assert_eq!(out.tasks_run, 8);
        assert_eq!(*log.lock().unwrap(), (0..8).collect::<Vec<_>>(), "seed {seed}");
    }
}

#[test]
fn dfs_exhausts_a_small_executor_tree() {
    // Exhaustive enumeration over a 2-worker diamond: every interleaving
    // the controlled executor can produce is visited exactly once, and the
    // dependency assertions inside the bodies hold in all of them.
    let mut prefix = Some(Vec::new());
    let mut runs = 0usize;
    let mut fingerprints = std::collections::HashSet::new();
    while let Some(p) = prefix {
        assert!(runs < 10_000, "diamond choice tree unexpectedly large");
        let (mut g, state) = fan_graph(2);
        let n = g.len();
        let mut dfs = DfsController::new(p);
        let out = run_controlled(&mut g, 2, &mut dfs);
        assert_eq!(out.tasks_run, n);
        assert_eq!(state.load(Ordering::SeqCst), (1 << 2) * 10 + 7);
        runs += 1;
        fingerprints.insert(dfs.log.fingerprint());
        prefix = DfsController::next_prefix(&dfs.log);
    }
    assert!(runs >= 2, "no schedule freedom found in a 2-worker diamond");
    assert_eq!(fingerprints.len(), runs, "DFS revisited an executor schedule");
}

#[test]
fn controlled_executor_is_deterministic_per_choice_string() {
    // Same controller seed twice => identical choice logs, the property
    // replay depends on.
    let logs: Vec<ChoiceLog> = (0..2)
        .map(|_| {
            let (mut g, _state) = fan_graph(3);
            let mut ctrl = RandomController::new(42);
            run_controlled(&mut g, 4, &mut ctrl);
            ctrl.log
        })
        .collect();
    assert_eq!(logs[0].choices(), logs[1].choices());
    assert_eq!(logs[0].fingerprint(), logs[1].fingerprint());
}
