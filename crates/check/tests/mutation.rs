//! Mutation testing of the checker itself: inject a known coherence bug
//! into the runtime (`mark_written` forgetting to invalidate peer
//! replicas — a classic MSI protocol slip) and prove the differential
//! oracle catches it with a replayable seed, that the shrinker minimizes
//! the failing case, and that the regression file round-trips through the
//! replay machinery.

use xk_bench::graphgen::RandomDagSpec;
use xk_check::shrink::{from_text, to_text};
use xk_check::{
    explore_random, load_regressions, replay, shrink_case, write_regression, ReplayCase,
};
use xk_runtime::cache::CoherenceMutation;

/// A scenario with enough cross-GPU write/read traffic for a missing
/// invalidation to matter: tiles homed across all 8 GPUs, read/write
/// chains between them, and a final flush that reads everything back.
fn buggy_case(seed: u64, choices: Vec<u32>, error: String) -> ReplayCase {
    ReplayCase {
        name: "stale-read-injection".into(),
        seed,
        spec: RandomDagSpec {
            on_device: Some(8),
            flush: true,
            ..RandomDagSpec::default()
        },
        n_gpus: 8,
        heuristics: "full".into(),
        choices,
        error,
    }
}

fn case_fails_with_mutation(case: &ReplayCase) -> bool {
    let (g, topo, cfg) = case.scenario();
    let (_, verdict) = replay(&g, &topo, &cfg, &case.choices, Some(CoherenceMutation::StaleRead));
    verdict.is_err()
}

#[test]
fn injected_stale_read_is_caught_with_a_replayable_seed() {
    let probe = buggy_case(1, Vec::new(), String::new());
    let (g, topo, cfg) = probe.scenario();

    // The same exploration that passes cleanly in differential.rs must
    // report failures once the bug is injected.
    let clean = explore_random(&g, &topo, &cfg, 0..50, None);
    assert!(clean.failures.is_empty(), "clean run failed: {:#?}", clean.failures.first());
    let buggy = explore_random(&g, &topo, &cfg, 0..50, Some(CoherenceMutation::StaleRead));
    assert!(
        !buggy.failures.is_empty(),
        "stale-read mutation survived 50 explored schedules undetected",
    );

    // Every reported failure is replayable: the recorded choices reproduce
    // the verdict with the bug present, and pass without it.
    let f = &buggy.failures[0];
    let (_, with_bug) = replay(&g, &topo, &cfg, &f.choices, Some(CoherenceMutation::StaleRead));
    assert_eq!(with_bug, Err(f.error.clone()), "replay did not reproduce seed {}", f.seed);
    let (_, without_bug) = replay(&g, &topo, &cfg, &f.choices, None);
    assert_eq!(without_bug, Ok(()), "the failure was not the mutation's fault");
}

#[test]
fn failing_case_shrinks_and_round_trips_as_a_regression_file() {
    let probe = buggy_case(1, Vec::new(), String::new());
    let (g, topo, cfg) = probe.scenario();
    let buggy = explore_random(&g, &topo, &cfg, 0..50, Some(CoherenceMutation::StaleRead));
    let f = buggy
        .failures
        .first()
        .expect("stale-read mutation survived 50 explored schedules undetected");

    let case = buggy_case(1, f.choices.clone(), f.error.clone());
    assert!(case_fails_with_mutation(&case));
    let shrunk = shrink_case(case.clone(), case_fails_with_mutation);
    assert!(case_fails_with_mutation(&shrunk), "shrinker returned a passing case");
    assert!(
        shrunk.spec.tasks <= case.spec.tasks && shrunk.choices.len() <= case.choices.len(),
        "shrinker grew the case: {shrunk:?}",
    );

    // Round-trip through the regression file format and a temp corpus dir.
    let reparsed = from_text(&to_text(&shrunk)).expect("shrunken case serializes");
    assert_eq!(reparsed, shrunk);
    let dir = std::env::temp_dir().join(format!("xkcheck-mutation-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_regression(&dir, &shrunk).expect("writable temp corpus");
    let loaded = load_regressions(&dir);
    assert_eq!(loaded, vec![shrunk.clone()]);
    let _ = std::fs::remove_dir_all(&dir);

    // The minimized case still reproduces from the loaded file, and the
    // fixed (unmutated) runtime passes it — exactly what the checked-in
    // corpus under crates/check/regressions/ asserts on every run.
    assert!(case_fails_with_mutation(&loaded[0]));
    let (g2, topo2, cfg2) = loaded[0].scenario();
    let (_, verdict) = replay(&g2, &topo2, &cfg2, &loaded[0].choices, None);
    assert_eq!(verdict, Ok(()));
}
