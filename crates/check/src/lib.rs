//! # xk-check — deterministic schedule-space checking
//!
//! The simulated executor and the parallel executor are deterministic by
//! default: every tie is broken by a fixed canonical rule. That is perfect
//! for reproducing the paper's figures and terrible for finding the
//! schedules a real machine would produce. This crate drives the
//! [`xk_runtime::ScheduleController`] hook to *explore* the schedule space
//! instead:
//!
//! - [`controllers`] — random (seeded), DFS-bounded, PCT-style and replay
//!   controllers. A run under any of them is exactly as deterministic as
//!   the controller, so one failing interleaving is a replayable `u64`
//!   seed plus choice string.
//! - [`witness`] — the differential oracle: a semantic shadow execution
//!   fed by the controller's observer callbacks, checked against a serial
//!   single-stream reference. Catches stale reads, lost forwards and
//!   use-before-arrival in *any* explored schedule.
//! - [`explore`] — the loops tying the two together, with
//!   distinct-schedule counting and the standing *bound oracle*: no
//!   explored schedule may beat the schedule-free LP makespan lower bound
//!   ([`xk_runtime::makespan_lower_bound`]), so every exploration doubles
//!   as a physics audit of the DES.
//! - [`shrink`] — minimizes a failing (DAG, choice sequence) pair and
//!   writes a replay file under `crates/check/regressions/`.
//! - [`topo_util`] — topology surgery for the metamorphic properties
//!   (GPU-id permutation, uniform bandwidth scaling, DGX-1 sub-machines).
//!
//! See `DESIGN.md` §6g for the full picture and the seed-replay workflow.

#![warn(missing_docs)]

pub mod controllers;
pub mod explore;
pub mod shrink;
pub mod topo_util;
pub mod witness;

pub use controllers::{
    ChoiceLog, ChoiceRec, DfsController, PctController, RandomController, ReplayController,
    SplitMix64,
};
pub use explore::{
    explore_dfs, explore_pct, explore_pct_batch, explore_random, explore_random_batch, replay,
    DfsReport, ExploreReport, Failure, BOUND_RTOL,
};
pub use shrink::{load_regressions, shrink_case, write_regression, ReplayCase};
pub use witness::{Witness, WitnessError};
