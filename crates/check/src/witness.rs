//! The differential oracle: a semantic shadow execution.
//!
//! [`Witness`] wraps any inner [`ScheduleController`] and records the
//! executor's observer callbacks — every H2D/P2P/D2H transfer and every
//! kernel, with simulated start/end times. After the run,
//! [`Witness::check`] replays that data flow over *shadow values*: each
//! `(location, handle)` replica carries a `u64` value, transfers copy the
//! source value sampled at transfer start into the destination at transfer
//! end, and kernels fold their sampled input values (plus the task id)
//! into every written replica. The shadow values the schedule actually
//! produces are compared against a serial single-stream reference
//! (topological task order, host-only values) — the executor equivalent of
//! comparing output tiles bit for bit, at a cost independent of tile size.
//!
//! What this catches, for *any* explored schedule:
//! - stale reads (a kernel consuming a replica that missed an
//!   invalidation),
//! - lost or misrouted forwards (optimistic D2D delivering the wrong
//!   version),
//! - use-before-arrival (a kernel starting before its input transfer
//!   committed — the sampled value is the pre-transfer one, or missing),
//! - wrong write-back (a flush racing the kernel that produces the final
//!   version).

use std::collections::HashMap;

use xk_runtime::{ChoicePoint, ScheduleController, TaskGraph, TaskKind};

use crate::controllers::SplitMix64;

/// Value mixer for shadow state: collision-resistant enough that a stale
/// version virtually never aliases the correct one.
fn mix(a: u64, b: u64) -> u64 {
    SplitMix64(a.rotate_left(29) ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next()
}

/// Initial shadow value of handle `h`.
fn initial_value(h: usize) -> u64 {
    mix(0xD1EA_5EED, h as u64)
}

/// One observed semantic event.
#[derive(Clone, Copy, Debug)]
enum Ev {
    H2d { h: usize, dst: usize, start: f64, end: f64 },
    P2p { h: usize, src: usize, dst: usize, start: f64, end: f64 },
    D2h { h: usize, src: usize, start: f64, end: f64 },
    Kernel { t: usize, gpu: usize, start: f64, end: f64 },
}

/// A witness failure: the schedule produced values the serial reference
/// does not.
#[derive(Clone, Debug, PartialEq)]
pub enum WitnessError {
    /// An operation consumed a replica no transfer or kernel ever
    /// established at that location.
    UseBeforeArrival {
        /// Handle read.
        handle: usize,
        /// Location read (`None` = host, `Some(g)` = GPU `g`).
        gpu: Option<usize>,
        /// What read it ("kernel task 3", "p2p", ...).
        reader: String,
        /// Simulated time of the read.
        at: f64,
    },
    /// The last kernel-written value of a handle differs from the serial
    /// reference — some input along the way was stale.
    FinalMismatch {
        /// Handle with the wrong final value.
        handle: usize,
        /// Value the schedule produced.
        got: u64,
        /// Value the serial reference produces.
        want: u64,
    },
    /// A write-back left host memory holding a non-final version.
    HostMismatch {
        /// Handle whose host copy is wrong.
        handle: usize,
        /// Host value after the run.
        got: u64,
        /// Expected final reference value.
        want: u64,
    },
}

impl std::fmt::Display for WitnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WitnessError::UseBeforeArrival { handle, gpu, reader, at } => write!(
                f,
                "handle {handle} read at {} by {reader} at t={at:.9}s before any value arrived",
                gpu.map_or("host".into(), |g| format!("gpu{g}"))
            ),
            WitnessError::FinalMismatch { handle, got, want } => write!(
                f,
                "final value of handle {handle} is {got:#x}, reference says {want:#x} (stale input upstream)"
            ),
            WitnessError::HostMismatch { handle, got, want } => write!(
                f,
                "host copy of handle {handle} is {got:#x} after write-back, reference says {want:#x}"
            ),
        }
    }
}

/// Controller wrapper recording semantic events for the differential
/// oracle. Choice points pass through to the inner controller untouched.
pub struct Witness<'c> {
    inner: &'c mut dyn ScheduleController,
    events: Vec<Ev>,
}

impl<'c> Witness<'c> {
    /// Wraps `inner`.
    pub fn new(inner: &'c mut dyn ScheduleController) -> Self {
        Witness { inner, events: Vec::new() }
    }

    /// Number of semantic events observed.
    pub fn n_events(&self) -> usize {
        self.events.len()
    }

    /// Replays the observed data flow over shadow values and compares the
    /// outcome against the serial single-stream reference for `graph`.
    ///
    /// Checks, per handle: the last kernel-committed value equals the
    /// reference's final value, and — when a write-back to host happened
    /// after that last kernel — the host copy does too. Handles never
    /// written by a kernel are exempt from the final check (their value is
    /// the initial one by construction).
    pub fn check(&self, graph: &TaskGraph) -> Result<(), WitnessError> {
        let reference = serial_reference(graph);

        // Shadow state. Host starts holding every host-resident tile;
        // device-resident tiles (the paper's Fig. 4 protocol) start on
        // their initial GPU instead.
        let mut host: HashMap<usize, u64> = HashMap::new();
        let mut dev: HashMap<(usize, usize), u64> = HashMap::new();
        for h in 0..graph.data().len() {
            let info = graph.data().info(xk_runtime::HandleId(h));
            match info.initial {
                xk_topo::Device::Host => {
                    host.insert(h, initial_value(h));
                }
                xk_topo::Device::Gpu(g) => {
                    dev.insert((g, h), initial_value(h));
                }
            }
        }

        // Interleave sample (at start) and commit (at end) actions of all
        // events in time order; at equal times commits land before samples
        // (a kernel starting exactly when its input transfer ends must see
        // the transferred value), event order breaking the remaining ties.
        #[derive(Clone, Copy, PartialEq, Eq)]
        enum Phase {
            Commit,
            Sample,
        }
        let mut actions: Vec<(f64, Phase, usize)> = Vec::with_capacity(self.events.len() * 2);
        for (i, e) in self.events.iter().enumerate() {
            let (s, t) = match *e {
                Ev::H2d { start, end, .. }
                | Ev::P2p { start, end, .. }
                | Ev::D2h { start, end, .. }
                | Ev::Kernel { start, end, .. } => (start, end),
            };
            actions.push((s, Phase::Sample, i));
            actions.push((t, Phase::Commit, i));
        }
        actions.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then_with(|| match (a.1, b.1) {
                    (Phase::Commit, Phase::Sample) => std::cmp::Ordering::Less,
                    (Phase::Sample, Phase::Commit) => std::cmp::Ordering::Greater,
                    _ => std::cmp::Ordering::Equal,
                })
                .then(a.2.cmp(&b.2))
        });

        // Per-event sampled values, filled at sample time, consumed at
        // commit time.
        let mut sampled: Vec<Option<Vec<u64>>> = vec![None; self.events.len()];
        // Last kernel-committed value per handle, in action order.
        let mut kernel_final: HashMap<usize, u64> = HashMap::new();
        // Handles whose host copy was refreshed after their last kernel.
        let mut host_after_kernel: HashMap<usize, bool> = HashMap::new();

        for (time, phase, i) in actions {
            match (phase, &self.events[i]) {
                (Phase::Sample, &Ev::H2d { h, .. }) => {
                    let v = *host.get(&h).ok_or(WitnessError::UseBeforeArrival {
                        handle: h,
                        gpu: None,
                        reader: "h2d".into(),
                        at: time,
                    })?;
                    sampled[i] = Some(vec![v]);
                }
                (Phase::Commit, &Ev::H2d { h, dst, .. }) => {
                    dev.insert((dst, h), sampled[i].as_ref().expect("sampled")[0]);
                }
                (Phase::Sample, &Ev::P2p { h, src, .. }) => {
                    let v = *dev.get(&(src, h)).ok_or(WitnessError::UseBeforeArrival {
                        handle: h,
                        gpu: Some(src),
                        reader: "p2p".into(),
                        at: time,
                    })?;
                    sampled[i] = Some(vec![v]);
                }
                (Phase::Commit, &Ev::P2p { h, dst, .. }) => {
                    dev.insert((dst, h), sampled[i].as_ref().expect("sampled")[0]);
                }
                (Phase::Sample, &Ev::D2h { h, src, .. }) => {
                    let v = *dev.get(&(src, h)).ok_or(WitnessError::UseBeforeArrival {
                        handle: h,
                        gpu: Some(src),
                        reader: "d2h".into(),
                        at: time,
                    })?;
                    sampled[i] = Some(vec![v]);
                }
                (Phase::Commit, &Ev::D2h { h, .. }) => {
                    host.insert(h, sampled[i].as_ref().expect("sampled")[0]);
                    host_after_kernel.insert(h, true);
                }
                (Phase::Sample, &Ev::Kernel { t, gpu, .. }) => {
                    let task = graph.task(xk_runtime::TaskId(t));
                    let mut vals = Vec::new();
                    for h in task.read_handles() {
                        let v = *dev.get(&(gpu, h.0)).ok_or(WitnessError::UseBeforeArrival {
                            handle: h.0,
                            gpu: Some(gpu),
                            reader: format!("kernel task {t}"),
                            at: time,
                        })?;
                        vals.push(v);
                    }
                    sampled[i] = Some(vals);
                }
                (Phase::Commit, &Ev::Kernel { t, gpu, .. }) => {
                    let task = graph.task(xk_runtime::TaskId(t));
                    let vals = sampled[i].as_ref().expect("sampled");
                    let out = vals.iter().fold(mix(0xC0DE, t as u64), |acc, &v| mix(acc, v));
                    for h in task.written_handles() {
                        dev.insert((gpu, h.0), out);
                        kernel_final.insert(h.0, out);
                        host_after_kernel.insert(h.0, false);
                    }
                }
            }
        }

        // Lowest handle id first, so the reported mismatch is the same on
        // every replay of the same schedule (a HashMap walk is not).
        for h in 0..graph.data().len() {
            let Some(&got) = kernel_final.get(&h) else {
                continue;
            };
            let want = reference[h];
            if got != want {
                return Err(WitnessError::FinalMismatch { handle: h, got, want });
            }
            if host_after_kernel.get(&h) == Some(&true) {
                let hv = *host.get(&h).expect("host copy written");
                if hv != want {
                    return Err(WitnessError::HostMismatch { handle: h, got: hv, want });
                }
            }
        }
        Ok(())
    }
}

impl ScheduleController for Witness<'_> {
    fn choose(&mut self, point: ChoicePoint, n: usize) -> usize {
        self.inner.choose(point, n)
    }

    fn on_h2d(&mut self, h: usize, dst: usize, start: f64, end: f64) {
        self.events.push(Ev::H2d { h, dst, start, end });
    }

    fn on_p2p(&mut self, h: usize, src: usize, dst: usize, start: f64, end: f64) {
        self.events.push(Ev::P2p { h, src, dst, start, end });
    }

    fn on_d2h(&mut self, h: usize, src: usize, start: f64, end: f64) {
        self.events.push(Ev::D2h { h, src, start, end });
    }

    fn on_kernel(&mut self, t: usize, gpu: usize, start: f64, end: f64) {
        self.events.push(Ev::Kernel { t, gpu, start, end });
    }
}

/// The serial single-stream reference: tasks in topological (id) order,
/// one value space (graph task ids are topologically sorted by
/// construction — dependencies always point backwards). Returns the final
/// value of every handle.
pub(crate) fn serial_reference(graph: &TaskGraph) -> Vec<u64> {
    let mut vals: Vec<u64> = (0..graph.data().len()).map(initial_value).collect();
    for t in 0..graph.len() {
        let task = graph.task(xk_runtime::TaskId(t));
        if task.kind != TaskKind::Kernel {
            continue;
        }
        let out = task
            .read_handles()
            .fold(mix(0xC0DE, t as u64), |acc, h| mix(acc, vals[h.0]));
        for h in task.written_handles() {
            vals[h.0] = out;
        }
    }
    vals
}

#[cfg(test)]
mod tests {
    use super::*;
    use xk_runtime::CanonicalController;

    #[test]
    fn mix_separates_versions() {
        assert_ne!(mix(1, 2), mix(2, 1));
        assert_ne!(initial_value(0), initial_value(1));
    }

    #[test]
    fn empty_run_on_empty_graph_passes() {
        let g = TaskGraph::new();
        g.finalize();
        let mut inner = CanonicalController;
        let w = Witness::new(&mut inner);
        assert_eq!(w.check(&g), Ok(()));
    }

    #[test]
    fn hand_built_correct_flow_passes_and_stale_read_fails() {
        // Graph: t0 writes h0 on some GPU; t1 reads h0 and writes h1.
        let mut g = TaskGraph::new();
        let h0 = g.add_host_tile(64, false, "h0");
        let h1 = g.add_host_tile(64, false, "h1");
        use xk_kernels::perfmodel::TileOp;
        use xk_runtime::{Access, TaskAccess};
        g.add_task(
            TileOp::Gemm { m: 8, n: 8, k: 8 },
            [TaskAccess { handle: h0, access: Access::ReadWrite }],
            "t0",
        );
        g.add_task(
            TileOp::Gemm { m: 8, n: 8, k: 8 },
            [
                TaskAccess { handle: h1, access: Access::ReadWrite },
                TaskAccess { handle: h0, access: Access::Read },
            ],
            "t1",
        );
        g.finalize();

        // Correct flow on one GPU: h2d both tiles, run t0 then t1.
        let mut inner = CanonicalController;
        let mut w = Witness::new(&mut inner);
        w.on_h2d(0, 0, 0.0, 1.0);
        w.on_h2d(1, 0, 0.0, 1.0);
        w.on_kernel(0, 0, 1.0, 2.0);
        w.on_kernel(1, 0, 2.0, 3.0);
        assert_eq!(w.check(&g), Ok(()));

        // Stale read: t1 consumes h0 *before* t0's commit (kernel overlap).
        let mut inner2 = CanonicalController;
        let mut w2 = Witness::new(&mut inner2);
        w2.on_h2d(0, 0, 0.0, 1.0);
        w2.on_h2d(1, 0, 0.0, 1.0);
        w2.on_kernel(0, 0, 1.0, 2.5);
        w2.on_kernel(1, 0, 2.0, 3.0); // samples h0 at t=2.0 < 2.5
        match w2.check(&g) {
            Err(WitnessError::FinalMismatch { handle: 1, .. }) => {}
            other => panic!("want FinalMismatch on h1, got {other:?}"),
        }

        // Use before arrival: kernel on a GPU that never received h0.
        let mut inner3 = CanonicalController;
        let mut w3 = Witness::new(&mut inner3);
        w3.on_h2d(1, 1, 0.0, 1.0);
        w3.on_kernel(1, 1, 1.0, 2.0);
        match w3.check(&g) {
            Err(WitnessError::UseBeforeArrival { handle: 0, .. }) => {}
            other => panic!("want UseBeforeArrival on h0, got {other:?}"),
        }
    }

    #[test]
    fn commit_at_sample_time_is_visible() {
        // A kernel starting exactly when its transfer ends sees the value.
        let mut g = TaskGraph::new();
        let h0 = g.add_host_tile(64, false, "h0");
        use xk_kernels::perfmodel::TileOp;
        use xk_runtime::{Access, TaskAccess};
        g.add_task(
            TileOp::Gemm { m: 8, n: 8, k: 8 },
            [TaskAccess { handle: h0, access: Access::ReadWrite }],
            "t0",
        );
        g.finalize();
        let mut inner = CanonicalController;
        let mut w = Witness::new(&mut inner);
        w.on_h2d(0, 0, 0.0, 1.0);
        w.on_kernel(0, 0, 1.0, 2.0);
        assert_eq!(w.check(&g), Ok(()));
    }

    #[test]
    fn wrong_writeback_is_flagged() {
        // d2h of the *pre-kernel* value after the kernel: host ends stale.
        let mut g = TaskGraph::new();
        let h0 = g.add_host_tile(64, false, "h0");
        use xk_kernels::perfmodel::TileOp;
        use xk_runtime::{Access, TaskAccess};
        g.add_task(
            TileOp::Gemm { m: 8, n: 8, k: 8 },
            [TaskAccess { handle: h0, access: Access::ReadWrite }],
            "t0",
        );
        g.finalize();
        let mut inner = CanonicalController;
        let mut w = Witness::new(&mut inner);
        w.on_h2d(0, 0, 0.0, 1.0);
        w.on_kernel(0, 0, 1.0, 2.0);
        // Write-back sampled the replica before the kernel committed but
        // lands after it: host holds the stale version.
        w.on_d2h(0, 0, 0.5, 2.5);
        match w.check(&g) {
            // The d2h sample at t=0.5 happens before the kernel ran, so the
            // replica exists (h2d committed at 1.0)? No: sample at 0.5 is
            // before the h2d commit at 1.0 -> use-before-arrival.
            Err(WitnessError::UseBeforeArrival { .. }) => {}
            other => panic!("want UseBeforeArrival, got {other:?}"),
        }
        // Same shape, but the d2h samples between h2d-commit and
        // kernel-commit: host ends with the pre-kernel value.
        let mut inner2 = CanonicalController;
        let mut w2 = Witness::new(&mut inner2);
        w2.on_h2d(0, 0, 0.0, 1.0);
        w2.on_kernel(0, 0, 1.0, 2.0);
        w2.on_d2h(0, 0, 1.5, 2.5);
        match w2.check(&g) {
            Err(WitnessError::HostMismatch { handle: 0, .. }) => {}
            other => panic!("want HostMismatch, got {other:?}"),
        }
    }
}
