//! Exploration loops: run many controlled schedules of one (graph,
//! topology, config) scenario, feed every one through the differential
//! oracle, and count distinct schedules by choice-log fingerprint.
//!
//! Seeds are independent replicas over shared immutable inputs, so the
//! batched entry points ([`explore_random_batch`], [`explore_pct_batch`])
//! fan them over `xk_sim::run_replicas` with one [`SimPrep`] hoisted out
//! of the per-seed loop. Results come back indexed by seed position and
//! are merged in that order, so a batched report is identical to the
//! serial one — same `runs`, same `distinct` fingerprint count, same
//! failures in the same order. The serial functions are the
//! single-threaded special case of the batched ones.

use std::collections::HashSet;

use xk_runtime::cache::CoherenceMutation;
use xk_runtime::{
    makespan_lower_bound, MakespanBound, RuntimeConfig, SimExecutor, SimOutcome, SimPrep,
    TaskGraph,
};
use xk_sim::run_replicas;
use xk_topo::FabricSpec;

use crate::controllers::{DfsController, RandomController, ReplayController};
use crate::witness::Witness;

/// One failing schedule, fully replayable.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Seed of the random controller that found it (`u64::MAX` for DFS
    /// runs — replay from `choices` instead).
    pub seed: u64,
    /// The exact decision sequence; [`replay`] reproduces the schedule.
    pub choices: Vec<u32>,
    /// Human-readable oracle verdict.
    pub error: String,
}

/// Result of a random exploration.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Schedules run.
    pub runs: usize,
    /// Distinct schedules among them (choice-log fingerprints).
    pub distinct: usize,
    /// Oracle failures, one per failing seed.
    pub failures: Vec<Failure>,
    /// Best (smallest) makespan seen across the explored schedules —
    /// with the scenario's [`MakespanBound`], the empirical optimality
    /// gap of the whole explored schedule space. `None` for empty runs.
    pub min_makespan: Option<f64>,
}

/// Result of a DFS enumeration.
#[derive(Clone, Debug, Default)]
pub struct DfsReport {
    /// Schedules run.
    pub runs: usize,
    /// Distinct schedules among them (always equals `runs` for a correct
    /// enumeration).
    pub distinct: usize,
    /// True when the whole choice tree was visited within the budget.
    pub exhausted: bool,
    /// Oracle failures.
    pub failures: Vec<Failure>,
    /// Best (smallest) makespan across the enumerated schedules.
    pub min_makespan: Option<f64>,
}

fn run_one(
    graph: &TaskGraph,
    topo: &FabricSpec,
    cfg: &RuntimeConfig,
    mutation: Option<CoherenceMutation>,
    ctrl: &mut dyn xk_runtime::ScheduleController,
) -> SimOutcome {
    let mut ex = SimExecutor::new(graph, topo, cfg);
    if let Some(m) = mutation {
        ex = ex.inject_cache_mutation(m);
    }
    ex.control(ctrl).run()
}

/// Checks one outcome against the structural part of the differential
/// oracle (every task ran; the simulated clock advanced for non-empty
/// graphs).
fn structural_check(graph: &TaskGraph, out: &SimOutcome) -> Result<(), String> {
    if out.tasks_run != graph.len() {
        return Err(format!("{} of {} tasks ran", out.tasks_run, graph.len()));
    }
    if !graph.is_empty() && !(out.makespan > 0.0) {
        return Err(format!("makespan {} not positive", out.makespan));
    }
    if !out.failures.is_empty() {
        return Err(format!("unexpected task failures: {:?}", out.failures));
    }
    Ok(())
}

/// Relative tolerance of the bound oracle, matching the LP solver's own
/// feasibility tolerance: a schedule may undercut the lower bound by at
/// most one part in 10⁹ before it counts as a physics violation.
pub const BOUND_RTOL: f64 = 1e-9;

/// The standing bound oracle: every schedule of the scenario must respect
/// the schedule-free [`MakespanBound`]. A violation means either the DES
/// moved data faster than the fabric allows or the bound over-claims —
/// both are bugs worth a shrunk regression.
fn bound_check(bound: &MakespanBound, out: &SimOutcome) -> Result<(), String> {
    if bound.admits(out.makespan, BOUND_RTOL) {
        Ok(())
    } else {
        Err(format!(
            "makespan {:.9e} beats the lower bound {:.9e} (cp {:.3e}, lp {:.3e}, compute {:.3e})",
            out.makespan, bound.total, bound.critical_path, bound.link_lp, bound.compute
        ))
    }
}

/// Per-seed replica result: the SoA element [`run_replicas`] hands back in
/// seed order (fingerprints and verdicts indexed by seed position).
struct SeedResult {
    fingerprint: u64,
    makespan: f64,
    failure: Option<Failure>,
}

/// Folds seed-ordered replica results into an [`ExploreReport`] exactly
/// the way the serial loops do: runs counted, fingerprints deduplicated,
/// failures kept in seed order.
fn merge_seed_results(results: Vec<SeedResult>) -> ExploreReport {
    let mut report = ExploreReport::default();
    let mut fingerprints = HashSet::new();
    for r in results {
        report.runs += 1;
        fingerprints.insert(r.fingerprint);
        report.min_makespan = Some(match report.min_makespan {
            Some(m) => m.min(r.makespan),
            None => r.makespan,
        });
        if let Some(f) = r.failure {
            report.failures.push(f);
        }
    }
    report.distinct = fingerprints.len();
    report
}

/// Explores one random schedule per seed in `seeds`, checking each against
/// the differential oracle. `mutation` injects a deliberate coherence bug
/// (the oracle is then expected to report failures — that expectation is
/// the checker's own mutation test).
pub fn explore_random(
    graph: &TaskGraph,
    topo: &FabricSpec,
    cfg: &RuntimeConfig,
    seeds: impl IntoIterator<Item = u64>,
    mutation: Option<CoherenceMutation>,
) -> ExploreReport {
    explore_random_batch(graph, topo, cfg, seeds, mutation, 1)
}

/// [`explore_random`] fanned over `threads` replica workers (0 = one per
/// available core). Seeds are independent replicas of one prepared
/// scenario; the report is identical to the serial one.
pub fn explore_random_batch(
    graph: &TaskGraph,
    topo: &FabricSpec,
    cfg: &RuntimeConfig,
    seeds: impl IntoIterator<Item = u64>,
    mutation: Option<CoherenceMutation>,
    threads: usize,
) -> ExploreReport {
    let seeds: Vec<u64> = seeds.into_iter().collect();
    let prep = SimPrep::new(graph);
    // One bound serves every schedule of the scenario: it is a function of
    // (graph, topo, model) only, never of controller decisions.
    let bound = makespan_lower_bound(graph, topo, cfg);
    merge_seed_results(run_replicas(seeds.len(), threads, |i| {
        let seed = seeds[i];
        let mut rng = RandomController::new(seed);
        let mut w = Witness::new(&mut rng);
        let mut ex = SimExecutor::with_prep(graph, topo, cfg, &prep);
        if let Some(m) = mutation {
            ex = ex.inject_cache_mutation(m);
        }
        let out = ex.control(&mut w).run();
        let verdict = structural_check(graph, &out)
            .and_then(|()| bound_check(&bound, &out))
            .and_then(|()| w.check(graph).map_err(|e| e.to_string()));
        let log = &rng.log;
        SeedResult {
            fingerprint: log.fingerprint(),
            makespan: out.makespan,
            failure: verdict
                .err()
                .map(|error| Failure { seed, choices: log.choices(), error }),
        }
    }))
}

/// Like [`explore_random`] but with PCT-style controllers (hashed
/// priorities, reshuffled every `change_every` decisions): reaches
/// systematically-skewed orderings a uniform sampler is unlikely to hit.
pub fn explore_pct(
    graph: &TaskGraph,
    topo: &FabricSpec,
    cfg: &RuntimeConfig,
    seeds: impl IntoIterator<Item = u64>,
    change_every: u64,
) -> ExploreReport {
    explore_pct_batch(graph, topo, cfg, seeds, change_every, 1)
}

/// [`explore_pct`] fanned over `threads` replica workers (0 = one per
/// available core), batched like [`explore_random_batch`].
pub fn explore_pct_batch(
    graph: &TaskGraph,
    topo: &FabricSpec,
    cfg: &RuntimeConfig,
    seeds: impl IntoIterator<Item = u64>,
    change_every: u64,
    threads: usize,
) -> ExploreReport {
    let seeds: Vec<u64> = seeds.into_iter().collect();
    let prep = SimPrep::new(graph);
    let bound = makespan_lower_bound(graph, topo, cfg);
    merge_seed_results(run_replicas(seeds.len(), threads, |i| {
        let seed = seeds[i];
        let mut pct = crate::controllers::PctController::new(seed, change_every);
        let mut w = Witness::new(&mut pct);
        let out = SimExecutor::with_prep(graph, topo, cfg, &prep)
            .control(&mut w)
            .run();
        let verdict = structural_check(graph, &out)
            .and_then(|()| bound_check(&bound, &out))
            .and_then(|()| w.check(graph).map_err(|e| e.to_string()));
        SeedResult {
            fingerprint: pct.log.fingerprint(),
            makespan: out.makespan,
            failure: verdict
                .err()
                .map(|error| Failure { seed, choices: pct.log.choices(), error }),
        }
    }))
}

/// Enumerates the choice tree depth-first, up to `max_runs` schedules,
/// checking each against the differential oracle.
pub fn explore_dfs(
    graph: &TaskGraph,
    topo: &FabricSpec,
    cfg: &RuntimeConfig,
    max_runs: usize,
) -> DfsReport {
    let mut report = DfsReport::default();
    let mut fingerprints = HashSet::new();
    let bound = makespan_lower_bound(graph, topo, cfg);
    let mut prefix = Some(Vec::new());
    while let Some(p) = prefix {
        if report.runs >= max_runs {
            return report; // budget exhausted, tree not.
        }
        let mut dfs = DfsController::new(p);
        let mut w = Witness::new(&mut dfs);
        let out = run_one(graph, topo, cfg, None, &mut w);
        let verdict = structural_check(graph, &out)
            .and_then(|()| bound_check(&bound, &out))
            .and_then(|()| w.check(graph).map_err(|e| e.to_string()));
        report.runs += 1;
        report.min_makespan = Some(match report.min_makespan {
            Some(m) => m.min(out.makespan),
            None => out.makespan,
        });
        fingerprints.insert(dfs.log.fingerprint());
        if let Err(error) = verdict {
            report.failures.push(Failure {
                seed: u64::MAX,
                choices: dfs.log.choices(),
                error,
            });
        }
        prefix = DfsController::next_prefix(&dfs.log);
    }
    report.exhausted = true;
    report.distinct = fingerprints.len();
    report
}

/// Replays a recorded decision sequence and re-runs the differential
/// oracle. Returns the outcome and the oracle verdict.
pub fn replay(
    graph: &TaskGraph,
    topo: &FabricSpec,
    cfg: &RuntimeConfig,
    choices: &[u32],
    mutation: Option<CoherenceMutation>,
) -> (SimOutcome, Result<(), String>) {
    let bound = makespan_lower_bound(graph, topo, cfg);
    let mut rep = ReplayController::new(choices.to_vec());
    let mut w = Witness::new(&mut rep);
    let out = run_one(graph, topo, cfg, mutation, &mut w);
    let verdict = structural_check(graph, &out)
        .and_then(|()| bound_check(&bound, &out))
        .and_then(|()| w.check(graph).map_err(|e| e.to_string()));
    (out, verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xk_bench::graphgen::{build_random_dag, RandomDagSpec};

    #[test]
    fn canonical_schedule_passes_the_oracle() {
        let g = build_random_dag(1, &RandomDagSpec { flush: true, ..RandomDagSpec::default() });
        let topo = xk_topo::dgx1();
        let cfg = RuntimeConfig::default();
        let (out, verdict) = replay(&g, &topo, &cfg, &[], None);
        assert_eq!(out.tasks_run, g.len());
        assert_eq!(verdict, Ok(()));
    }

    #[test]
    fn random_exploration_finds_many_schedules_and_no_bugs() {
        let g = build_random_dag(2, &RandomDagSpec::default());
        let topo = xk_topo::dgx1();
        let cfg = RuntimeConfig::default();
        let r = explore_random(&g, &topo, &cfg, 0..40, None);
        assert_eq!(r.runs, 40);
        assert!(r.distinct > 10, "only {} distinct schedules in 40 runs", r.distinct);
        assert!(r.failures.is_empty(), "spurious failures: {:?}", r.failures);
    }

    #[test]
    fn dfs_exhausts_a_tiny_dag() {
        let g = build_random_dag(
            3,
            &RandomDagSpec { tasks: 3, handles: 2, max_reads: 1, ..RandomDagSpec::default() },
        );
        let topo = xk_topo::builders::pcie_only(2);
        let cfg = RuntimeConfig::default();
        let r = explore_dfs(&g, &topo, &cfg, 50_000);
        assert!(r.exhausted, "tiny tree not exhausted in {} runs", r.runs);
        assert_eq!(r.distinct, r.runs, "DFS repeated a schedule");
        assert!(r.failures.is_empty(), "failures: {:?}", r.failures);
    }

    #[test]
    fn batched_exploration_matches_serial() {
        let g = build_random_dag(5, &RandomDagSpec::default());
        let topo = xk_topo::dgx1();
        let cfg = RuntimeConfig::default();
        let serial = explore_random(&g, &topo, &cfg, 0..24, None);
        let batched = explore_random_batch(&g, &topo, &cfg, 0..24, None, 4);
        assert_eq!(serial.runs, batched.runs);
        assert_eq!(serial.distinct, batched.distinct);
        assert_eq!(serial.failures.len(), batched.failures.len());
        let sp = explore_pct(&g, &topo, &cfg, 0..12, 7);
        let bp = explore_pct_batch(&g, &topo, &cfg, 0..12, 7, 4);
        assert_eq!(sp.runs, bp.runs);
        assert_eq!(sp.distinct, bp.distinct);
        assert_eq!(sp.failures.len(), bp.failures.len());
    }

    #[test]
    fn exploration_reports_min_makespan_above_the_bound() {
        let g = build_random_dag(7, &RandomDagSpec { flush: true, ..RandomDagSpec::default() });
        let topo = xk_topo::dgx1();
        let cfg = RuntimeConfig::default();
        let r = explore_random(&g, &topo, &cfg, 0..20, None);
        assert!(r.failures.is_empty(), "failures: {:?}", r.failures);
        let bound = makespan_lower_bound(&g, &topo, &cfg);
        let min = r.min_makespan.expect("20 runs recorded a makespan");
        assert!(bound.total > 0.0);
        assert!(
            min >= bound.total * (1.0 - BOUND_RTOL),
            "best explored makespan {min} beats bound {}",
            bound.total
        );
    }

    #[test]
    fn replay_reproduces_a_random_run() {
        let g = build_random_dag(4, &RandomDagSpec::default());
        let topo = xk_topo::dgx1();
        let cfg = RuntimeConfig::default();
        let mut rng = RandomController::new(99);
        let out1 = run_one(&g, &topo, &cfg, None, &mut rng);
        let (out2, verdict) = replay(&g, &topo, &cfg, &rng.log.choices(), None);
        assert_eq!(out1.makespan.to_bits(), out2.makespan.to_bits());
        assert_eq!(out1.bytes_p2p, out2.bytes_p2p);
        assert_eq!(verdict, Ok(()));
    }
}
