//! Shrinking and regression replay.
//!
//! A failing exploration run is a `(DAG spec, seed, choice sequence)`
//! triple. [`shrink_case`] minimizes it — fewer tasks, fewer handles,
//! shorter choice sequence — while the caller's predicate keeps failing,
//! then [`write_regression`] pins the minimized case as a plain text file
//! under `crates/check/regressions/` that [`load_regressions`] replays on
//! every test run.

use std::path::{Path, PathBuf};

use xk_bench::graphgen::{build_random_dag, RandomDagSpec};
use xk_runtime::{Heuristics, RuntimeConfig, TaskGraph};
use xk_topo::FabricSpec;

use crate::topo_util::subtopo;

/// A fully replayable failing case.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayCase {
    /// Short kebab-case name (file stem under `regressions/`).
    pub name: String,
    /// Graph-structure seed for [`xk_bench::graphgen::build_random_dag`].
    pub seed: u64,
    /// Graph shape.
    pub spec: RandomDagSpec,
    /// GPUs of the (DGX-1 prefix) machine the case runs on.
    pub n_gpus: usize,
    /// Heuristics preset name: `full`, `no_optimistic` or `none`.
    pub heuristics: String,
    /// Recorded schedule decisions (canonical-0 past the end).
    pub choices: Vec<u32>,
    /// The oracle verdict that made this a failure, for the file header.
    pub error: String,
}

impl ReplayCase {
    /// The [`Heuristics`] preset this case names.
    pub fn heuristics_preset(&self) -> Heuristics {
        match self.heuristics.as_str() {
            "full" => Heuristics::full(),
            "no_optimistic" => Heuristics::no_optimistic(),
            "none" => Heuristics::none(),
            "host_only" => Heuristics::host_only(),
            other => panic!("unknown heuristics preset {other:?} in case {:?}", self.name),
        }
    }

    /// Rebuilds the scenario the case describes: the generated DAG, the
    /// first-`n_gpus` DGX-1 sub-machine, and the runtime configuration.
    pub fn scenario(&self) -> (TaskGraph, FabricSpec, RuntimeConfig) {
        (
            build_random_dag(self.seed, &self.spec),
            subtopo(&xk_topo::dgx1(), self.n_gpus),
            RuntimeConfig::default().with_heuristics(self.heuristics_preset()),
        )
    }
}

/// Minimizes `case` while `fails` keeps returning `true` for it.
///
/// Two phases, in order: shrink the DAG (tasks, handles, extra reads —
/// re-deriving the schedule from the same seed each time), then shrink the
/// choice sequence of the *final* DAG (truncate the tail, then zero
/// individual entries; a zeroed or missing choice is the canonical pick,
/// so every candidate stays a complete valid schedule).
pub fn shrink_case(mut case: ReplayCase, fails: impl Fn(&ReplayCase) -> bool) -> ReplayCase {
    assert!(fails(&case), "shrink_case needs a failing case to start from");

    // Phase 1: structural shrink, greedily halving toward 1.
    loop {
        let mut improved = false;
        let mut candidates: Vec<RandomDagSpec> = Vec::new();
        if case.spec.tasks > 1 {
            candidates.push(RandomDagSpec { tasks: case.spec.tasks / 2, ..case.spec });
            candidates.push(RandomDagSpec { tasks: case.spec.tasks - 1, ..case.spec });
        }
        if case.spec.handles > 1 {
            candidates.push(RandomDagSpec { handles: case.spec.handles / 2, ..case.spec });
            candidates.push(RandomDagSpec { handles: case.spec.handles - 1, ..case.spec });
        }
        if case.spec.max_reads > 0 {
            candidates.push(RandomDagSpec { max_reads: case.spec.max_reads - 1, ..case.spec });
        }
        for spec in candidates {
            let mut c = case.clone();
            c.spec = spec;
            // A different graph makes the recorded choices meaningless;
            // phase 1 relies on the seed to re-derive the schedule.
            c.choices.clear();
            if fails(&c) {
                case = c;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }

    // Phase 2: choice-sequence shrink (only meaningful when the failure is
    // choice-driven rather than seed-driven).
    let mut lo = 0usize;
    let mut hi = case.choices.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let mut c = case.clone();
        c.choices.truncate(mid);
        if fails(&c) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    case.choices.truncate(hi);
    let mut i = 0;
    while i < case.choices.len() {
        if case.choices[i] != 0 {
            let mut c = case.clone();
            c.choices[i] = 0;
            if fails(&c) {
                case = c;
            }
        }
        i += 1;
    }
    case
}

/// Serializes `case` as the plain-text replay format.
pub fn to_text(case: &ReplayCase) -> String {
    let choices: Vec<String> = case.choices.iter().map(|c| c.to_string()).collect();
    format!(
        "# xk-check regression: replayed by crates/check/tests/regressions.rs\n\
         # error: {}\n\
         name = {}\n\
         seed = {}\n\
         tasks = {}\n\
         handles = {}\n\
         max_reads = {}\n\
         tile_bytes = {}\n\
         on_device = {}\n\
         flush = {}\n\
         n_gpus = {}\n\
         heuristics = {}\n\
         choices = {}\n",
        case.error.replace('\n', " "),
        case.name,
        case.seed,
        case.spec.tasks,
        case.spec.handles,
        case.spec.max_reads,
        case.spec.tile_bytes,
        case.spec.on_device.map_or_else(|| "host".into(), |n| n.to_string()),
        case.spec.flush,
        case.n_gpus,
        case.heuristics,
        choices.join(","),
    )
}

/// Parses the format written by [`to_text`].
pub fn from_text(text: &str) -> Result<ReplayCase, String> {
    let mut case = ReplayCase {
        name: String::new(),
        seed: 0,
        spec: RandomDagSpec::default(),
        n_gpus: 1,
        heuristics: "full".into(),
        choices: Vec::new(),
        error: String::new(),
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            if let Some(e) = line.strip_prefix("# error: ") {
                case.error = e.to_string();
            }
            continue;
        }
        let (key, val) = line.split_once('=').ok_or_else(|| format!("bad line: {line}"))?;
        let (key, val) = (key.trim(), val.trim());
        let parse = |v: &str| v.parse::<u64>().map_err(|e| format!("{key}: {e}"));
        match key {
            "name" => case.name = val.to_string(),
            "seed" => case.seed = parse(val)?,
            "tasks" => case.spec.tasks = parse(val)? as usize,
            "handles" => case.spec.handles = parse(val)? as usize,
            "max_reads" => case.spec.max_reads = parse(val)? as usize,
            "tile_bytes" => case.spec.tile_bytes = parse(val)?,
            "on_device" => {
                case.spec.on_device =
                    if val == "host" { None } else { Some(parse(val)? as usize) }
            }
            "flush" => case.spec.flush = val == "true",
            "n_gpus" => case.n_gpus = parse(val)? as usize,
            "heuristics" => case.heuristics = val.to_string(),
            "choices" => {
                case.choices = if val.is_empty() {
                    Vec::new()
                } else {
                    val.split(',')
                        .map(|c| c.trim().parse::<u32>().map_err(|e| format!("choices: {e}")))
                        .collect::<Result<_, _>>()?
                }
            }
            other => return Err(format!("unknown key: {other}")),
        }
    }
    if case.name.is_empty() {
        return Err("missing name".into());
    }
    Ok(case)
}

/// Writes `case` under `dir` (created if absent) as `<name>.txt`; returns
/// the path.
pub fn write_regression(dir: &Path, case: &ReplayCase) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.txt", case.name));
    std::fs::write(&path, to_text(case))?;
    Ok(path)
}

/// Loads every `*.txt` replay case under `dir`, sorted by file name.
/// A missing directory is an empty corpus, not an error.
pub fn load_regressions(dir: &Path) -> Vec<ReplayCase> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| {
            let text = std::fs::read_to_string(p)
                .unwrap_or_else(|e| panic!("unreadable regression {}: {e}", p.display()));
            from_text(&text)
                .unwrap_or_else(|e| panic!("malformed regression {}: {e}", p.display()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReplayCase {
        ReplayCase {
            name: "sample-case".into(),
            seed: 42,
            spec: RandomDagSpec {
                tasks: 24,
                handles: 8,
                max_reads: 2,
                tile_bytes: 1 << 20,
                on_device: Some(4),
                flush: true,
            },
            n_gpus: 4,
            heuristics: "no_optimistic".into(),
            choices: vec![0, 3, 1, 0, 2],
            error: "final value of handle 3 is 0x1, reference says 0x2".into(),
        }
    }

    #[test]
    fn text_round_trip() {
        let c = sample();
        let parsed = from_text(&to_text(&c)).unwrap();
        assert_eq!(parsed, c);
        // Host placement and empty choices round-trip too.
        let mut c2 = c;
        c2.spec.on_device = None;
        c2.choices.clear();
        assert_eq!(from_text(&to_text(&c2)).unwrap(), c2);
    }

    #[test]
    fn malformed_text_is_rejected() {
        assert!(from_text("name = x\nbogus_key = 1\n").is_err());
        assert!(from_text("seed = 1\n").is_err(), "missing name must fail");
        assert!(from_text("name = x\nseed = notanumber\n").is_err());
    }

    #[test]
    fn shrinker_minimizes_against_a_synthetic_predicate() {
        // "Fails" whenever tasks >= 5 and choices contain a value >= 2 at
        // position 1 — the shrinker must find tasks = 5 and a 2-element
        // canonical-except-last choice list.
        let fails = |c: &ReplayCase| {
            c.spec.tasks >= 5 && c.choices.len() >= 2 && c.choices[1] >= 2
        };
        let start = ReplayCase {
            choices: vec![3, 2, 1, 4, 0, 2],
            ..sample()
        };
        // Phase 1 clears choices, so this predicate must keep failing on a
        // cleared-choices case only via... it will not: choices.clear()
        // makes it pass, so phase 1 keeps the original spec. Use a
        // spec-only predicate for phase 1 behaviour instead.
        let spec_fails = |c: &ReplayCase| c.spec.tasks * c.spec.handles >= 6;
        let shrunk = shrink_case(start.clone(), spec_fails);
        assert!(spec_fails(&shrunk));
        assert!(
            shrunk.spec.tasks * shrunk.spec.handles < 12,
            "barely shrunk: {:?}",
            shrunk.spec
        );

        // Choice-driven predicate: structure cannot shrink (phase 1 clears
        // choices and the predicate then passes), choices must.
        let shrunk2 = shrink_case(start, fails);
        assert!(fails(&shrunk2));
        assert_eq!(shrunk2.choices.len(), 2, "tail not truncated: {:?}", shrunk2.choices);
        assert_eq!(shrunk2.choices[0], 0, "head not canonicalized");
    }

    #[test]
    fn write_and_load_regressions() {
        let dir = std::env::temp_dir().join(format!("xkcheck-shrink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(load_regressions(&dir).is_empty(), "missing dir = empty corpus");
        let c = sample();
        let path = write_regression(&dir, &c).unwrap();
        assert!(path.ends_with("sample-case.txt"));
        let loaded = load_regressions(&dir);
        assert_eq!(loaded, vec![c]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
