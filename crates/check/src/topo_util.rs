//! Fabric surgery for the metamorphic oracles: sub-machines, GPU-id
//! permutations, uniform bandwidth scaling and an automorphism search, all
//! built through [`FabricSpec::from_parts`] so the result revalidates and
//! the extension fields (node map, NIC link, NVSwitch tier) survive.

use xk_topo::{FabricSpec, LinkSpec};

/// Socket table per switch of `t` (switch index -> socket), reconstructed
/// from the per-GPU views.
fn switch_sockets(t: &FabricSpec) -> Vec<usize> {
    let mut out = vec![0usize; t.n_switches()];
    for g in 0..t.n_gpus() {
        out[t.switch_of(g)] = t.socket_of(g);
    }
    out
}

/// The first `n` GPUs of `t` as their own machine — the paper's scaling
/// experiments run 1..=8 GPUs of the DGX-1 exactly this way (CUDA device
/// masking keeps physical ids). Node and tier structure restricts with the
/// GPU set: a sub-machine contained in node 0 is single-node again.
pub fn subtopo(t: &FabricSpec, n: usize) -> FabricSpec {
    assert!(n >= 1 && n <= t.n_gpus(), "bad GPU count {n}");
    let mut gg = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            gg.push(*t.gpu_link(i, j));
        }
    }
    let host: Vec<LinkSpec> = (0..n).map(|g| *t.host_link(g)).collect();
    let switches: Vec<usize> = (0..n).map(|g| t.switch_of(g)).collect();
    let nodes: Vec<usize> = (0..n).map(|g| t.node_of(g)).collect();
    let n_nodes = nodes.iter().copied().max().unwrap_or(0) + 1;
    FabricSpec::from_parts(
        format!("{}-{n}gpu", t.name()),
        n,
        gg,
        host,
        switches,
        switch_sockets(t),
        nodes,
        n_nodes,
        if n_nodes > 1 { t.inter_node().copied() } else { None },
        t.switch_tier().copied(),
    )
    .expect("subtopo of a valid fabric revalidates")
}

/// Relabels GPUs: new GPU `i` is `t`'s GPU `perm[i]`. The machine is
/// physically unchanged — only the ids move — which is exactly what the
/// permutation metamorphic property wants to vary.
pub fn permuted(t: &FabricSpec, perm: &[usize]) -> FabricSpec {
    let n = t.n_gpus();
    assert_eq!(perm.len(), n, "permutation arity");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(p < n && !seen[p], "not a permutation: {perm:?}");
        seen[p] = true;
    }
    let mut gg = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            gg.push(*t.gpu_link(perm[i], perm[j]));
        }
    }
    let host: Vec<LinkSpec> = perm.iter().map(|&p| *t.host_link(p)).collect();
    let switches: Vec<usize> = perm.iter().map(|&p| t.switch_of(p)).collect();
    let nodes: Vec<usize> = perm.iter().map(|&p| t.node_of(p)).collect();
    FabricSpec::from_parts(
        format!("{}-perm", t.name()),
        n,
        gg,
        host,
        switches,
        switch_sockets(t),
        nodes,
        t.n_nodes(),
        t.inter_node().copied(),
        t.switch_tier().copied(),
    )
    .expect("permutation of a valid fabric revalidates")
}

/// Uniformly scales every link bandwidth by `k`; `zero_latency` also drops
/// every latency to 0, which makes each transfer time *exactly* `bytes /
/// (k * bw)` — the form the 1/k span-scaling metamorphic property needs to
/// hold bit-for-bit rather than approximately.
pub fn scaled_bandwidth(t: &FabricSpec, k: f64, zero_latency: bool) -> FabricSpec {
    assert!(k.is_finite() && k > 0.0, "bad scale {k}");
    let n = t.n_gpus();
    let scale = |s: &LinkSpec| LinkSpec {
        class: s.class,
        bandwidth: s.bandwidth * k,
        latency: if zero_latency { 0.0 } else { s.latency },
    };
    let mut gg = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            gg.push(scale(t.gpu_link(i, j)));
        }
    }
    let host: Vec<LinkSpec> = (0..n).map(|g| scale(t.host_link(g))).collect();
    let switches: Vec<usize> = (0..n).map(|g| t.switch_of(g)).collect();
    let nodes: Vec<usize> = (0..n).map(|g| t.node_of(g)).collect();
    FabricSpec::from_parts(
        format!("{}-x{k}", t.name()),
        n,
        gg,
        host,
        switches,
        switch_sockets(t),
        nodes,
        t.n_nodes(),
        t.inter_node().map(scale),
        t.switch_tier().copied(),
    )
    .expect("scaled fabric revalidates")
}

/// Nontrivial automorphisms of the DGX-1 hybrid cube mesh (checked by
/// test): relabeling along one preserves every link class and bandwidth
/// table entry, so a canonical run on the permuted machine is the *same
/// machine* — only the data placement moves.
pub const DGX1_AUTOMORPHISMS: [[usize; 8]; 2] = [
    // Swap the two 4-GPU halves (socket mirror).
    [4, 5, 6, 7, 0, 1, 2, 3],
    // Swap each same-switch GPU pair.
    [1, 0, 3, 2, 5, 4, 7, 6],
];

/// Whether extending a partial relabeling with `i -> perm[i]` keeps every
/// already-placed pair's structure: link specs both ways, the diagonal,
/// the host link, and the switch/socket/node co-location pattern.
fn extends(t: &FabricSpec, perm: &[usize], i: usize) -> bool {
    let pi = perm[i];
    if t.gpu_link(pi, pi) != t.gpu_link(i, i) || t.host_link(pi) != t.host_link(i) {
        return false;
    }
    for j in 0..i {
        let pj = perm[j];
        if t.gpu_link(pi, pj) != t.gpu_link(i, j)
            || t.gpu_link(pj, pi) != t.gpu_link(j, i)
            || (t.switch_of(pi) == t.switch_of(pj)) != (t.switch_of(i) == t.switch_of(j))
            || (t.socket_of(pi) == t.socket_of(pj)) != (t.socket_of(i) == t.socket_of(j))
            || (t.node_of(pi) == t.node_of(pj)) != (t.node_of(i) == t.node_of(j))
        {
            return false;
        }
    }
    true
}

/// Enumerates nontrivial automorphisms of any fabric by backtracking
/// search, in lexicographic order, stopping after `cap` results. An
/// automorphism here is a GPU relabeling under which [`permuted`] yields a
/// machine with identical link tables and co-location structure — the
/// generalization of the hand-derived [`DGX1_AUTOMORPHISMS`] list to
/// arbitrary fabrics (vertex-transitive ones like an NVSwitch all-to-all
/// have factorially many, hence the cap).
pub fn automorphisms(t: &FabricSpec, cap: usize) -> Vec<Vec<usize>> {
    fn search(
        t: &FabricSpec,
        perm: &mut Vec<usize>,
        used: &mut [bool],
        cap: usize,
        out: &mut Vec<Vec<usize>>,
    ) {
        let n = t.n_gpus();
        if out.len() >= cap {
            return;
        }
        if perm.len() == n {
            if perm.iter().enumerate().any(|(i, &p)| p != i) {
                out.push(perm.clone());
            }
            return;
        }
        for cand in 0..n {
            if used[cand] {
                continue;
            }
            perm.push(cand);
            if extends(t, perm, perm.len() - 1) {
                used[cand] = true;
                search(t, perm, used, cap, out);
                used[cand] = false;
            }
            perm.pop();
            if out.len() >= cap {
                return;
            }
        }
    }
    let n = t.n_gpus();
    let mut out = Vec::new();
    if cap > 0 && n > 0 {
        search(t, &mut Vec::with_capacity(n), &mut vec![false; n], cap, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xk_topo::{dgx1, fabrics, Device};

    #[test]
    fn subtopo_keeps_link_specs_and_validates() {
        let t = dgx1();
        for n in 1..=8 {
            let s = subtopo(&t, n);
            assert_eq!(s.n_gpus(), n);
            s.validate().unwrap();
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(s.gpu_link(a, b), t.gpu_link(a, b));
                }
                assert_eq!(s.host_link(a), t.host_link(a));
                assert_eq!(s.switch_of(a), t.switch_of(a));
                assert_eq!(s.socket_of(a), t.socket_of(a));
            }
        }
    }

    #[test]
    fn subtopo_of_one_node_drops_the_nic() {
        let t = fabrics::dual_node_ib(4);
        let s = subtopo(&t, 4);
        s.validate().unwrap();
        assert_eq!(s.n_nodes(), 1);
        assert!(s.inter_node().is_none());
        // A sub-machine that still straddles both nodes keeps the NIC.
        let s = subtopo(&t, 6);
        s.validate().unwrap();
        assert_eq!(s.n_nodes(), 2);
        assert!(s.inter_node().is_some());
    }

    #[test]
    fn dgx1_automorphisms_fix_the_tables() {
        let t = dgx1();
        for perm in DGX1_AUTOMORPHISMS {
            let p = permuted(&t, &perm);
            p.validate().unwrap();
            for a in 0..8 {
                for b in 0..8 {
                    assert_eq!(p.gpu_link(a, b), t.gpu_link(a, b), "{perm:?} at ({a},{b})");
                    // Shared-bus structure is preserved: same-switch pairs
                    // stay paired, same-socket pairs stay co-socketed.
                    assert_eq!(
                        p.switch_of(a) == p.switch_of(b),
                        t.switch_of(a) == t.switch_of(b),
                        "{perm:?} switch pairing ({a},{b})"
                    );
                    assert_eq!(
                        p.socket_of(a) == p.socket_of(b),
                        t.socket_of(a) == t.socket_of(b),
                        "{perm:?} socket pairing ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn a_non_automorphism_changes_the_tables() {
        // Reversal maps the NV2 edge (0,4) onto (7,3), an NV1 edge: the
        // permuted table must differ — guards the automorphism list against
        // silently accepting any permutation.
        let t = dgx1();
        let p = permuted(&t, &[7, 6, 5, 4, 3, 2, 1, 0]);
        let mut differs = false;
        for a in 0..8 {
            for b in 0..8 {
                differs |= p.gpu_link(a, b) != t.gpu_link(a, b);
            }
        }
        assert!(differs);
    }

    #[test]
    fn generator_finds_the_hand_derived_dgx1_automorphisms() {
        let t = dgx1();
        let found = automorphisms(&t, 64);
        for perm in DGX1_AUTOMORPHISMS {
            assert!(
                found.iter().any(|p| p[..] == perm[..]),
                "missing {perm:?} in {found:?}"
            );
        }
        // Every reported automorphism must actually fix the tables.
        for perm in &found {
            let p = permuted(&t, perm);
            for a in 0..8 {
                for b in 0..8 {
                    assert_eq!(p.gpu_link(a, b), t.gpu_link(a, b), "{perm:?}");
                }
            }
        }
        // And the reversal non-automorphism must not be reported.
        assert!(found.iter().all(|p| p[..] != [7, 6, 5, 4, 3, 2, 1, 0]));
    }

    #[test]
    fn vertex_transitive_fabrics_have_many_automorphisms() {
        // The NVSwitch machine is all-to-all uniform: any switch-pair
        // preserving relabeling qualifies, so the cap binds.
        let t = fabrics::dgx2(8);
        let found = automorphisms(&t, 16);
        assert_eq!(found.len(), 16);
        // The PCIe box (one switch, one socket) is fully symmetric too.
        let t = fabrics::pcie_box(4);
        assert!(!automorphisms(&t, 4).is_empty());
    }

    #[test]
    fn scaling_scales_routes_exactly() {
        let t = dgx1();
        let s = scaled_bandwidth(&t, 2.0, true);
        s.validate().unwrap();
        for a in 0..8 {
            for b in 0..8 {
                let r0 = t.route(Device::Gpu(a), Device::Gpu(b));
                let r1 = s.route(Device::Gpu(a), Device::Gpu(b));
                assert_eq!(r1.class, r0.class);
                assert_eq!(r1.bandwidth.to_bits(), (r0.bandwidth * 2.0).to_bits());
                assert_eq!(r1.latency, 0.0);
            }
            let h0 = t.route(Device::Host, Device::Gpu(a));
            let h1 = s.route(Device::Host, Device::Gpu(a));
            assert_eq!(h1.bandwidth.to_bits(), (h0.bandwidth * 2.0).to_bits());
        }
    }

    #[test]
    fn surgery_preserves_extension_fields() {
        let t = fabrics::dual_node_ib(4);
        let p = permuted(&t, &[1, 0, 3, 2, 5, 4, 7, 6]);
        assert_eq!(p.n_nodes(), 2);
        assert_eq!(p.inter_node().unwrap(), t.inter_node().unwrap());
        let s = scaled_bandwidth(&t, 2.0, false);
        assert_eq!(
            s.inter_node().unwrap().bandwidth.to_bits(),
            (t.inter_node().unwrap().bandwidth * 2.0).to_bits()
        );
        let d = fabrics::dgx2(16);
        let s = subtopo(&d, 8);
        assert!(s.switch_tier().is_some());
    }
}
