//! Topology surgery for the metamorphic oracles: sub-machines, GPU-id
//! permutations and uniform bandwidth scaling, all built through
//! [`Topology::from_tables`] so the result revalidates.

use xk_topo::{LinkSpec, Topology};

/// Socket table per switch of `t` (switch index -> socket), reconstructed
/// from the per-GPU views.
fn switch_sockets(t: &Topology) -> Vec<usize> {
    let mut out = vec![0usize; t.n_switches()];
    for g in 0..t.n_gpus() {
        out[t.switch_of(g)] = t.socket_of(g);
    }
    out
}

/// The first `n` GPUs of `t` as their own machine — the paper's scaling
/// experiments run 1..=8 GPUs of the DGX-1 exactly this way (CUDA device
/// masking keeps physical ids).
pub fn subtopo(t: &Topology, n: usize) -> Topology {
    assert!(n >= 1 && n <= t.n_gpus(), "bad GPU count {n}");
    let mut gg = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            gg.push(*t.gpu_link(i, j));
        }
    }
    let host: Vec<LinkSpec> = (0..n).map(|g| *t.host_link(g)).collect();
    let switches: Vec<usize> = (0..n).map(|g| t.switch_of(g)).collect();
    Topology::from_tables(
        format!("{}-{n}gpu", t.name()),
        n,
        gg,
        host,
        switches,
        switch_sockets(t),
    )
}

/// Relabels GPUs: new GPU `i` is `t`'s GPU `perm[i]`. The machine is
/// physically unchanged — only the ids move — which is exactly what the
/// permutation metamorphic property wants to vary.
pub fn permuted(t: &Topology, perm: &[usize]) -> Topology {
    let n = t.n_gpus();
    assert_eq!(perm.len(), n, "permutation arity");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(p < n && !seen[p], "not a permutation: {perm:?}");
        seen[p] = true;
    }
    let mut gg = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            gg.push(*t.gpu_link(perm[i], perm[j]));
        }
    }
    let host: Vec<LinkSpec> = perm.iter().map(|&p| *t.host_link(p)).collect();
    let switches: Vec<usize> = perm.iter().map(|&p| t.switch_of(p)).collect();
    Topology::from_tables(
        format!("{}-perm", t.name()),
        n,
        gg,
        host,
        switches,
        switch_sockets(t),
    )
}

/// Uniformly scales every link bandwidth by `k`; `zero_latency` also drops
/// every latency to 0, which makes each transfer time *exactly* `bytes /
/// (k * bw)` — the form the 1/k span-scaling metamorphic property needs to
/// hold bit-for-bit rather than approximately.
pub fn scaled_bandwidth(t: &Topology, k: f64, zero_latency: bool) -> Topology {
    assert!(k.is_finite() && k > 0.0, "bad scale {k}");
    let n = t.n_gpus();
    let scale = |s: &LinkSpec| LinkSpec {
        class: s.class,
        bandwidth: s.bandwidth * k,
        latency: if zero_latency { 0.0 } else { s.latency },
    };
    let mut gg = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            gg.push(scale(t.gpu_link(i, j)));
        }
    }
    let host: Vec<LinkSpec> = (0..n).map(|g| scale(t.host_link(g))).collect();
    let switches: Vec<usize> = (0..n).map(|g| t.switch_of(g)).collect();
    Topology::from_tables(
        format!("{}-x{k}", t.name()),
        n,
        gg,
        host,
        switches,
        switch_sockets(t),
    )
}

/// Nontrivial automorphisms of the DGX-1 hybrid cube mesh (checked by
/// test): relabeling along one preserves every link class and bandwidth
/// table entry, so a canonical run on the permuted machine is the *same
/// machine* — only the data placement moves.
pub const DGX1_AUTOMORPHISMS: [[usize; 8]; 2] = [
    // Swap the two 4-GPU halves (socket mirror).
    [4, 5, 6, 7, 0, 1, 2, 3],
    // Swap each same-switch GPU pair.
    [1, 0, 3, 2, 5, 4, 7, 6],
];

#[cfg(test)]
mod tests {
    use super::*;
    use xk_topo::{dgx1, Device};

    #[test]
    fn subtopo_keeps_link_specs_and_validates() {
        let t = dgx1();
        for n in 1..=8 {
            let s = subtopo(&t, n);
            assert_eq!(s.n_gpus(), n);
            s.validate().unwrap();
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(s.gpu_link(a, b), t.gpu_link(a, b));
                }
                assert_eq!(s.host_link(a), t.host_link(a));
                assert_eq!(s.switch_of(a), t.switch_of(a));
                assert_eq!(s.socket_of(a), t.socket_of(a));
            }
        }
    }

    #[test]
    fn dgx1_automorphisms_fix_the_tables() {
        let t = dgx1();
        for perm in DGX1_AUTOMORPHISMS {
            let p = permuted(&t, &perm);
            p.validate().unwrap();
            for a in 0..8 {
                for b in 0..8 {
                    assert_eq!(p.gpu_link(a, b), t.gpu_link(a, b), "{perm:?} at ({a},{b})");
                    // Shared-bus structure is preserved: same-switch pairs
                    // stay paired, same-socket pairs stay co-socketed.
                    assert_eq!(
                        p.switch_of(a) == p.switch_of(b),
                        t.switch_of(a) == t.switch_of(b),
                        "{perm:?} switch pairing ({a},{b})"
                    );
                    assert_eq!(
                        p.socket_of(a) == p.socket_of(b),
                        t.socket_of(a) == t.socket_of(b),
                        "{perm:?} socket pairing ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn a_non_automorphism_changes_the_tables() {
        // Reversal maps the NV2 edge (0,4) onto (7,3), an NV1 edge: the
        // permuted table must differ — guards the automorphism list against
        // silently accepting any permutation.
        let t = dgx1();
        let p = permuted(&t, &[7, 6, 5, 4, 3, 2, 1, 0]);
        let mut differs = false;
        for a in 0..8 {
            for b in 0..8 {
                differs |= p.gpu_link(a, b) != t.gpu_link(a, b);
            }
        }
        assert!(differs);
    }

    #[test]
    fn scaling_scales_routes_exactly() {
        let t = dgx1();
        let s = scaled_bandwidth(&t, 2.0, true);
        s.validate().unwrap();
        for a in 0..8 {
            for b in 0..8 {
                let r0 = t.route(Device::Gpu(a), Device::Gpu(b));
                let r1 = s.route(Device::Gpu(a), Device::Gpu(b));
                assert_eq!(r1.class, r0.class);
                assert_eq!(r1.bandwidth.to_bits(), (r0.bandwidth * 2.0).to_bits());
                assert_eq!(r1.latency, 0.0);
            }
            let h0 = t.route(Device::Host, Device::Gpu(a));
            let h1 = s.route(Device::Host, Device::Gpu(a));
            assert_eq!(h1.bandwidth.to_bits(), (h0.bandwidth * 2.0).to_bits());
        }
    }
}
