//! Schedule controllers: deterministic drivers of the executors'
//! nondeterministic choice points.
//!
//! Every controller records its decisions in a [`ChoiceLog`], so any run —
//! random, DFS, PCT — can be replayed exactly with a
//! [`ReplayController`], and distinct schedules can be counted by log
//! fingerprint.

use xk_runtime::{ChoicePoint, ScheduleController};

/// SplitMix64: the seed expander used throughout the checker. Stable
/// across platforms and free of dependencies, so a failing seed printed
/// on one machine reproduces on every other.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next pseudo-random value.
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One recorded decision: at `point`, `choice` of `n` candidates was taken.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChoiceRec {
    /// Where the decision was made.
    pub point: ChoicePoint,
    /// How many candidates were on offer (always >= 2).
    pub n: u32,
    /// The index taken.
    pub choice: u32,
}

/// The full decision sequence of one run.
#[derive(Clone, Default, Debug)]
pub struct ChoiceLog(pub Vec<ChoiceRec>);

impl ChoiceLog {
    fn tag(p: ChoicePoint) -> u64 {
        match p {
            ChoicePoint::EventTieBreak => 1,
            ChoicePoint::ReadyTaskPick => 2,
            ChoicePoint::StealVictim => 3,
            ChoicePoint::SourceTieBreak => 4,
            ChoicePoint::EvictionPick => 5,
            ChoicePoint::WorkerStep => 6,
            ChoicePoint::InlineSuccessor => 7,
        }
    }

    /// Order-sensitive hash of the decision sequence: two runs with equal
    /// fingerprints made the same choices at the same points, i.e. they
    /// are the same explored schedule.
    pub fn fingerprint(&self) -> u64 {
        let mut h = SplitMix64(0x5EED_CAFE);
        let mut acc = 0u64;
        for r in &self.0 {
            let word = Self::tag(r.point) ^ ((r.n as u64) << 8) ^ ((r.choice as u64) << 40);
            h.0 ^= word;
            acc = acc.rotate_left(7) ^ h.next();
        }
        acc ^ self.0.len() as u64
    }

    /// The bare choice indices, for replay files.
    pub fn choices(&self) -> Vec<u32> {
        self.0.iter().map(|r| r.choice).collect()
    }
}

/// Uniformly random choices from a `u64` seed.
pub struct RandomController {
    rng: SplitMix64,
    /// Decisions taken so far.
    pub log: ChoiceLog,
}

impl RandomController {
    /// Controller for `seed`.
    pub fn new(seed: u64) -> Self {
        RandomController { rng: SplitMix64(seed), log: ChoiceLog::default() }
    }
}

impl ScheduleController for RandomController {
    fn choose(&mut self, point: ChoicePoint, n: usize) -> usize {
        let c = (self.rng.next() % n as u64) as usize;
        self.log.0.push(ChoiceRec { point, n: n as u32, choice: c as u32 });
        c
    }
}

/// PCT-style controller: decisions follow hashed candidate *priorities*
/// that stay fixed for long stretches and shift at seeded points, the
/// probabilistic concurrency testing recipe — it reaches deep orderings a
/// uniform sampler needs many more runs to hit (e.g. "always last" for a
/// hundred consecutive decisions).
pub struct PctController {
    seed: u64,
    epoch: u64,
    step: u64,
    change_every: u64,
    /// Decisions taken so far.
    pub log: ChoiceLog,
}

impl PctController {
    /// Controller for `seed`; priorities reshuffle every `change_every`
    /// decisions (>= 1).
    pub fn new(seed: u64, change_every: u64) -> Self {
        PctController {
            seed,
            epoch: 0,
            step: 0,
            change_every: change_every.max(1),
            log: ChoiceLog::default(),
        }
    }
}

impl ScheduleController for PctController {
    fn choose(&mut self, point: ChoicePoint, n: usize) -> usize {
        self.step += 1;
        if self.step % self.change_every == 0 {
            self.epoch += 1;
        }
        // Highest hashed priority wins; the hash depends on the epoch and
        // the candidate index only, so within an epoch the same rank is
        // preferred at every decision of the same arity.
        let c = (0..n)
            .max_by_key(|&i| {
                SplitMix64(self.seed ^ self.epoch.rotate_left(17) ^ (i as u64) << 3).next()
            })
            .unwrap_or(0);
        self.log.0.push(ChoiceRec { point, n: n as u32, choice: c as u32 });
        c
    }
}

/// Bounded depth-first enumeration of the whole choice tree.
///
/// Each run follows a prescribed `prefix` of choices and takes candidate 0
/// (the canonical pick) beyond it; the recorded log then yields the next
/// prefix in DFS order via [`DfsController::next_prefix`]. Driving runs
/// until `next_prefix` returns `None` visits every schedule of the tree
/// exactly once — feasible for small DAGs, and exhaustive where it is.
pub struct DfsController {
    prefix: Vec<u32>,
    /// Decisions taken so far.
    pub log: ChoiceLog,
}

impl DfsController {
    /// Controller replaying `prefix` then canonical-0.
    pub fn new(prefix: Vec<u32>) -> Self {
        DfsController { prefix, log: ChoiceLog::default() }
    }

    /// The DFS successor of a completed run's decision sequence: the
    /// longest prefix whose last decision can still be incremented, with
    /// that decision incremented. `None` when the tree is exhausted.
    pub fn next_prefix(log: &ChoiceLog) -> Option<Vec<u32>> {
        let mut cs = log.choices();
        for i in (0..cs.len()).rev() {
            if log.0[i].choice + 1 < log.0[i].n {
                cs.truncate(i + 1);
                cs[i] += 1;
                return Some(cs);
            }
        }
        None
    }
}

impl ScheduleController for DfsController {
    fn choose(&mut self, point: ChoicePoint, n: usize) -> usize {
        let c = self
            .prefix
            .get(self.log.0.len())
            .map_or(0, |&p| (p as usize).min(n - 1));
        self.log.0.push(ChoiceRec { point, n: n as u32, choice: c as u32 });
        c
    }
}

/// Replays a recorded choice sequence; canonical-0 once exhausted (so a
/// truncated sequence is still a complete, deterministic schedule — the
/// property the shrinker leans on).
pub struct ReplayController {
    choices: Vec<u32>,
    cursor: usize,
    /// Decisions taken so far.
    pub log: ChoiceLog,
}

impl ReplayController {
    /// Controller replaying `choices`.
    pub fn new(choices: Vec<u32>) -> Self {
        ReplayController { choices, cursor: 0, log: ChoiceLog::default() }
    }
}

impl ScheduleController for ReplayController {
    fn choose(&mut self, point: ChoicePoint, n: usize) -> usize {
        let c = self
            .choices
            .get(self.cursor)
            .map_or(0, |&p| (p as usize).min(n - 1));
        self.cursor += 1;
        self.log.0.push(ChoiceRec { point, n: n as u32, choice: c as u32 });
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stable() {
        // Reference values of SplitMix64 from the published algorithm —
        // seeds must mean the same schedule on every platform forever.
        let mut r = SplitMix64(0);
        assert_eq!(r.next(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn random_controller_is_deterministic_per_seed() {
        let mut a = RandomController::new(7);
        let mut b = RandomController::new(7);
        let mut c = RandomController::new(8);
        let seq_a: Vec<usize> =
            (2..20).map(|n| a.choose(ChoicePoint::ReadyTaskPick, n)).collect();
        let seq_b: Vec<usize> =
            (2..20).map(|n| b.choose(ChoicePoint::ReadyTaskPick, n)).collect();
        let seq_c: Vec<usize> =
            (2..20).map(|n| c.choose(ChoicePoint::ReadyTaskPick, n)).collect();
        assert_eq!(seq_a, seq_b);
        assert_ne!(seq_a, seq_c);
        assert_eq!(a.log.fingerprint(), b.log.fingerprint());
        assert_ne!(a.log.fingerprint(), c.log.fingerprint());
    }

    #[test]
    fn dfs_prefix_enumeration_counts_the_tree() {
        // A synthetic decision tree: every run makes 3 binary decisions —
        // DFS must visit exactly 2^3 = 8 distinct schedules, each once.
        let mut prefix = Some(Vec::new());
        let mut seen = std::collections::HashSet::new();
        let mut runs = 0;
        while let Some(p) = prefix {
            let mut c = DfsController::new(p);
            for _ in 0..3 {
                c.choose(ChoicePoint::EventTieBreak, 2);
            }
            assert!(seen.insert(c.log.choices()), "duplicate schedule");
            runs += 1;
            assert!(runs <= 8, "runaway enumeration");
            prefix = DfsController::next_prefix(&c.log);
        }
        assert_eq!(runs, 8);
    }

    #[test]
    fn dfs_handles_varying_arity() {
        // Arity can depend on earlier choices; enumeration must still
        // terminate and never repeat. Tree: first decision of 3; branch 0
        // has a follow-up of 2, others none -> 4 leaves.
        let mut prefix = Some(Vec::new());
        let mut seen = std::collections::HashSet::new();
        while let Some(p) = prefix {
            let mut c = DfsController::new(p);
            let first = c.choose(ChoicePoint::ReadyTaskPick, 3);
            if first == 0 {
                c.choose(ChoicePoint::StealVictim, 2);
            }
            assert!(seen.insert(c.log.choices()));
            prefix = DfsController::next_prefix(&c.log);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn replay_reproduces_and_pads_with_canonical() {
        let mut orig = RandomController::new(3);
        let ns = [2usize, 5, 3, 7, 2];
        let seq: Vec<usize> =
            ns.iter().map(|&n| orig.choose(ChoicePoint::EventTieBreak, n)).collect();
        let mut rep = ReplayController::new(orig.log.choices());
        let seq2: Vec<usize> =
            ns.iter().map(|&n| rep.choose(ChoicePoint::EventTieBreak, n)).collect();
        assert_eq!(seq, seq2);
        // Beyond the recorded sequence: canonical pick.
        assert_eq!(rep.choose(ChoicePoint::EventTieBreak, 9), 0);
    }

    #[test]
    fn pct_prefers_one_rank_within_an_epoch() {
        let mut c = PctController::new(11, 1000);
        let first = c.choose(ChoicePoint::ReadyTaskPick, 4);
        for _ in 0..50 {
            assert_eq!(c.choose(ChoicePoint::ReadyTaskPick, 4), first);
        }
        // Across epochs the preference eventually moves.
        let mut d = PctController::new(11, 1);
        let picks: std::collections::HashSet<usize> =
            (0..64).map(|_| d.choose(ChoicePoint::ReadyTaskPick, 4)).collect();
        assert!(picks.len() > 1, "priorities never shifted");
    }

    #[test]
    fn fingerprint_distinguishes_point_kind() {
        let mut a = ChoiceLog::default();
        a.0.push(ChoiceRec { point: ChoicePoint::ReadyTaskPick, n: 2, choice: 1 });
        let mut b = ChoiceLog::default();
        b.0.push(ChoiceRec { point: ChoicePoint::StealVictim, n: 2, choice: 1 });
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
