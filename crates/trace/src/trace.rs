//! The trace container and its aggregations.

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use crate::span::{FlowId, Label, Place, Span, SpanKind};

/// Longest hole in a set of `(start, end)` intervals, ignoring the idle
/// lead-in before the first interval starts (`[0, first_start)` is warm-up —
/// e.g. host-side setup — not a synchronization gap).
fn longest_interval_gap(mut intervals: Vec<(f64, f64)>) -> f64 {
    if intervals.is_empty() {
        return 0.0;
    }
    intervals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut gap: f64 = 0.0;
    let mut covered_until = intervals[0].0;
    for (s, e) in intervals {
        if s > covered_until {
            gap = gap.max(s - covered_until);
        }
        covered_until = covered_until.max(e);
    }
    gap
}

/// A complete execution trace: every engine operation of a simulated run.
///
/// Span labels are interned: each [`Span`] carries a [`Label`] index into
/// this trace's symbol table ([`Trace::intern`] / [`Trace::label`]), so
/// recording a span never clones a `String`.
#[derive(Clone, Debug, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Trace {
    spans: Vec<Span>,
    /// Symbol table: `Label(i)` resolves to `labels[i]`.
    #[cfg_attr(feature = "serde", serde(default))]
    labels: Vec<String>,
    /// Reverse lookup for `intern`; rebuilt lazily after deserialization
    /// (it is not serialized).
    #[cfg_attr(feature = "serde", serde(skip))]
    index: HashMap<String, u32>,
}

/// Per-kind cumulated busy time, in seconds.
#[derive(Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Breakdown {
    /// Seconds per span kind.
    pub by_kind: BTreeMap<SpanKind, f64>,
}

impl Breakdown {
    /// Total seconds across all kinds.
    pub fn total(&self) -> f64 {
        self.by_kind.values().sum()
    }

    /// Seconds spent in transfers (H2D + D2H + P2P).
    pub fn transfer(&self) -> f64 {
        SpanKind::ALL
            .iter()
            .filter(|k| k.is_transfer())
            .map(|k| self.by_kind.get(k).copied().unwrap_or(0.0))
            .sum()
    }

    /// Fraction of total time spent in transfers, in `[0, 1]`
    /// (the paper's Fig. 6 right-hand metric: XKBlas ≈ 25.4 %,
    /// Chameleon Tile ≈ 41.2 % on GEMM N=32768).
    pub fn transfer_ratio(&self) -> f64 {
        let t = self.total();
        if t <= 0.0 {
            0.0
        } else {
            self.transfer() / t
        }
    }

    /// Normalized share of each kind, in `[0, 1]`, report order.
    pub fn normalized(&self) -> Vec<(SpanKind, f64)> {
        let t = self.total();
        SpanKind::ALL
            .iter()
            .map(|k| {
                let v = self.by_kind.get(k).copied().unwrap_or(0.0);
                (*k, if t <= 0.0 { 0.0 } else { v / t })
            })
            .collect()
    }

    /// Seconds recorded for one kind.
    pub fn get(&self, kind: SpanKind) -> f64 {
        self.by_kind.get(&kind).copied().unwrap_or(0.0)
    }
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Interns `label`, returning its stable [`Label`] index. Interning the
    /// same string twice returns the same index; the empty string maps to
    /// [`Label::NONE`] without occupying a table slot.
    pub fn intern(&mut self, label: &str) -> Label {
        if label.is_empty() {
            return Label::NONE;
        }
        if self.index.len() != self.labels.len() {
            // Rebuild after deserialization (the index is not serialized).
            self.index = self
                .labels
                .iter()
                .enumerate()
                .map(|(i, s)| (s.clone(), i as u32))
                .collect();
        }
        if let Some(&id) = self.index.get(label) {
            return Label(id);
        }
        let id = self.labels.len() as u32;
        self.labels.push(label.to_string());
        self.index.insert(label.to_string(), id);
        Label(id)
    }

    /// Resolves an interned label back to its text. [`Label::NONE`] and
    /// out-of-range labels resolve to `""`.
    pub fn label(&self, l: Label) -> &str {
        self.labels
            .get(l.0 as usize)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// The symbol table, indexed by `Label(i)`.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Records one span.
    ///
    /// # Panics
    /// Panics if `end < start` (debug builds) — a negative-duration span is
    /// always an executor bug.
    pub fn push(&mut self, span: Span) {
        debug_assert!(
            span.end >= span.start,
            "negative-duration span: {span:?}"
        );
        self.spans.push(span);
    }

    /// All recorded spans, unsorted.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Latest end time over all spans (the makespan), 0 for empty traces.
    pub fn makespan(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Cumulated busy seconds per kind over the whole trace
    /// (paper Fig. 6 left).
    pub fn breakdown(&self) -> Breakdown {
        let mut b = Breakdown::default();
        for s in &self.spans {
            *b.by_kind.entry(s.kind).or_insert(0.0) += s.duration();
        }
        b
    }

    /// Cumulated busy seconds per kind for each device (paper Fig. 7).
    pub fn breakdown_per_device(&self) -> BTreeMap<Place, Breakdown> {
        let mut out: BTreeMap<Place, Breakdown> = BTreeMap::new();
        for s in &self.spans {
            *out.entry(s.place)
                .or_default()
                .by_kind
                .entry(s.kind)
                .or_insert(0.0) += s.duration();
        }
        out
    }

    /// Total bytes moved, per transfer kind.
    pub fn bytes_by_kind(&self) -> BTreeMap<SpanKind, u64> {
        let mut out = BTreeMap::new();
        for s in &self.spans {
            if s.kind.is_transfer() {
                *out.entry(s.kind).or_insert(0) += s.bytes;
            }
        }
        out
    }

    /// Per-device kernel busy seconds — the load vector used for the
    /// imbalance analysis of §IV-E.
    pub fn kernel_load_per_gpu(&self, n_gpus: usize) -> Vec<f64> {
        let mut loads = vec![0.0; n_gpus];
        for s in &self.spans {
            if s.kind == SpanKind::Kernel {
                if let Place::Gpu(g) = s.place {
                    if (g as usize) < n_gpus {
                        loads[g as usize] += s.duration();
                    }
                }
            }
        }
        loads
    }

    /// Spans of one device sorted by start time (Gantt input).
    pub fn device_spans_sorted(&self, place: Place) -> Vec<&Span> {
        let mut v: Vec<&Span> = self.spans.iter().filter(|s| s.place == place).collect();
        v.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        v
    }

    /// The longest gap with *no* span active anywhere, within `[0, makespan]`.
    /// The composition analysis (Fig. 9) uses this: XKBlas keeps GPUs busy
    /// across routine calls while Chameleon shows synchronization gaps.
    /// Idle time before the first span starts does not count as a gap.
    pub fn longest_global_gap(&self) -> f64 {
        longest_interval_gap(self.spans.iter().map(|s| (s.start, s.end)).collect())
    }

    /// The longest interval with no *kernel* running on any device, within
    /// the span of kernel activity — the measure of the synchronization
    /// holes in the composition Gantt (Fig. 9): during Chameleon's
    /// inter-call redistribution every GPU computes nothing.
    pub fn longest_kernel_gap(&self) -> f64 {
        longest_interval_gap(
            self.spans
                .iter()
                .filter(|s| s.kind == SpanKind::Kernel)
                .map(|s| (s.start, s.end))
                .collect(),
        )
    }

    /// Merges another trace into this one (used when composing calls).
    /// The other trace's labels are re-interned into this trace's symbol
    /// table and its spans remapped accordingly; its flow chains are
    /// renumbered past this trace's highest flow id so that chains from the
    /// two runs never merge in a viewer.
    pub fn extend(&mut self, other: Trace) {
        let map: Vec<Label> = other.labels.iter().map(|s| self.intern(s)).collect();
        let flow_base = self
            .spans
            .iter()
            .filter(|s| s.flow != FlowId::NONE)
            .map(|s| s.flow.0 + 1)
            .max()
            .unwrap_or(0);
        self.spans.extend(other.spans.into_iter().map(|mut s| {
            s.label = map.get(s.label.0 as usize).copied().unwrap_or(Label::NONE);
            if s.flow != FlowId::NONE {
                s.flow = FlowId(s.flow.0 + flow_base);
            }
            s
        }));
    }

    /// Shifts every span by `dt` seconds (sequencing synchronous calls,
    /// e.g. Chameleon's back-to-back TRSM + GEMM in Fig. 9).
    pub fn shift(&mut self, dt: f64) {
        for s in &mut self.spans {
            s.start += dt;
            s.end += dt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(place: Place, kind: SpanKind, start: f64, end: f64) -> Span {
        Span {
            place,
            lane: 0,
            kind,
            start,
            end,
            bytes: if kind.is_transfer() { 100 } else { 0 },
            label: Label::NONE,
            flow: FlowId::NONE,
        }
    }

    #[test]
    fn breakdown_accumulates_by_kind() {
        let mut t = Trace::new();
        t.push(span(Place::Gpu(0), SpanKind::H2D, 0.0, 1.0));
        t.push(span(Place::Gpu(0), SpanKind::H2D, 1.0, 3.0));
        t.push(span(Place::Gpu(1), SpanKind::Kernel, 0.0, 4.0));
        let b = t.breakdown();
        assert!((b.get(SpanKind::H2D) - 3.0).abs() < 1e-12);
        assert!((b.get(SpanKind::Kernel) - 4.0).abs() < 1e-12);
        assert!((b.total() - 7.0).abs() < 1e-12);
        assert!((b.transfer_ratio() - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn per_device_breakdown_splits() {
        let mut t = Trace::new();
        t.push(span(Place::Gpu(0), SpanKind::Kernel, 0.0, 1.0));
        t.push(span(Place::Gpu(1), SpanKind::Kernel, 0.0, 2.0));
        let per = t.breakdown_per_device();
        assert_eq!(per.len(), 2);
        assert!((per[&Place::Gpu(1)].get(SpanKind::Kernel) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_and_loads() {
        let mut t = Trace::new();
        t.push(span(Place::Gpu(0), SpanKind::Kernel, 0.0, 1.0));
        t.push(span(Place::Gpu(1), SpanKind::Kernel, 2.0, 5.0));
        assert!((t.makespan() - 5.0).abs() < 1e-12);
        let loads = t.kernel_load_per_gpu(2);
        assert!((loads[0] - 1.0).abs() < 1e-12);
        assert!((loads[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn longest_gap_detects_sync_holes() {
        let mut t = Trace::new();
        t.push(span(Place::Gpu(0), SpanKind::Kernel, 0.0, 1.0));
        t.push(span(Place::Gpu(1), SpanKind::Kernel, 0.5, 1.2));
        t.push(span(Place::Gpu(0), SpanKind::Kernel, 3.0, 4.0));
        assert!((t.longest_global_gap() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn pre_first_span_idle_is_not_a_gap() {
        // A run that warms up on the host before the first span at t=5 has
        // no synchronization gap: [0, 5) is lead-in, not a hole.
        let mut t = Trace::new();
        t.push(span(Place::Gpu(0), SpanKind::Kernel, 5.0, 6.0));
        t.push(span(Place::Gpu(0), SpanKind::Kernel, 6.0, 7.0));
        assert_eq!(t.longest_global_gap(), 0.0);
        assert_eq!(t.longest_kernel_gap(), 0.0);
        // A genuine hole after the first span still registers.
        t.push(span(Place::Gpu(0), SpanKind::Kernel, 9.0, 10.0));
        assert!((t.longest_global_gap() - 2.0).abs() < 1e-12);
        assert!((t.longest_kernel_gap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gap_is_zero_when_dense() {
        let mut t = Trace::new();
        t.push(span(Place::Gpu(0), SpanKind::Kernel, 0.0, 2.0));
        t.push(span(Place::Gpu(1), SpanKind::Kernel, 1.0, 3.0));
        assert_eq!(t.longest_global_gap(), 0.0);
    }

    #[test]
    fn normalized_shares_sum_to_one() {
        let mut t = Trace::new();
        t.push(span(Place::Gpu(0), SpanKind::H2D, 0.0, 1.0));
        t.push(span(Place::Gpu(0), SpanKind::Kernel, 0.0, 3.0));
        let shares = t.breakdown().normalized();
        let sum: f64 = shares.iter().map(|(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::new();
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.longest_global_gap(), 0.0);
        assert_eq!(t.breakdown().transfer_ratio(), 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn intern_deduplicates_and_resolves() {
        let mut t = Trace::new();
        let a = t.intern("gemm(0,1)");
        let b = t.intern("gemm(2,3)");
        let a2 = t.intern("gemm(0,1)");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.label(a), "gemm(0,1)");
        assert_eq!(t.label(b), "gemm(2,3)");
        assert_eq!(t.labels().len(), 2);
    }

    #[test]
    fn empty_label_is_none() {
        let mut t = Trace::new();
        assert_eq!(t.intern(""), Label::NONE);
        assert_eq!(t.label(Label::NONE), "");
        assert!(t.labels().is_empty());
    }

    #[test]
    fn extend_remaps_labels() {
        let mut a = Trace::new();
        let la = a.intern("shared");
        let mut sa = span(Place::Gpu(0), SpanKind::Kernel, 0.0, 1.0);
        sa.label = la;
        a.push(sa);

        let mut b = Trace::new();
        let _ = b.intern("only-in-b");
        let lb = b.intern("shared");
        let mut sb = span(Place::Gpu(1), SpanKind::Kernel, 1.0, 2.0);
        sb.label = lb;
        b.push(sb);

        a.extend(b);
        assert_eq!(a.spans().len(), 2);
        // Both spans must resolve to "shared" in the merged table.
        for s in a.spans() {
            assert_eq!(a.label(s.label), "shared");
        }
    }

    #[test]
    fn extend_renumbers_flows_past_existing_chains() {
        let mut a = Trace::new();
        let mut sa = span(Place::Gpu(0), SpanKind::H2D, 0.0, 1.0);
        sa.flow = FlowId(0);
        a.push(sa);

        let mut b = Trace::new();
        let mut sb0 = span(Place::Gpu(1), SpanKind::H2D, 0.0, 1.0);
        sb0.flow = FlowId(0);
        let mut sb1 = span(Place::Gpu(1), SpanKind::Kernel, 1.0, 2.0);
        sb1.flow = FlowId::NONE;
        b.push(sb0);
        b.push(sb1);

        a.extend(b);
        // b's chain 0 must not collide with a's chain 0; NONE stays NONE.
        assert_eq!(a.spans()[0].flow, FlowId(0));
        assert_eq!(a.spans()[1].flow, FlowId(1));
        assert_eq!(a.spans()[2].flow, FlowId::NONE);
    }

    /// Gated on the real serde: under the inert offline shim this
    /// round-trip cannot work by construction, so the test compiles out
    /// instead of failing.
    #[cfg(feature = "serde")]
    #[test]
    fn intern_index_rebuilds_after_deserialization() {
        // Runtime probe: offline builds may wire an inert serde_json whose
        // output is a fixed placeholder — skip the round-trip there.
        if !serde_json::to_string(&1u32).map(|s| s == "1").unwrap_or(false) {
            return;
        }
        let mut t = Trace::new();
        let a = t.intern("x");
        let json = serde_json::to_string(&t).unwrap();
        let mut back: Trace = serde_json::from_str(&json).unwrap();
        // The reverse index is skipped by serde; interning again must still
        // deduplicate against the persisted table.
        assert_eq!(back.intern("x"), a);
        assert_eq!(back.labels().len(), 1);
    }
}
