//! CSV / JSON export of traces and breakdowns, including Chrome
//! `trace_event` JSON for ui.perfetto.dev / `chrome://tracing`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::span::{FlowId, Place, SpanKind};
use crate::trace::Trace;

/// Serializes the full trace to CSV
/// (`place,lane,kind,start,end,bytes,label`).
pub fn trace_to_csv(trace: &Trace) -> String {
    let mut out = String::from("place,lane,kind,start,end,bytes,label\n");
    for s in trace.spans() {
        let _ = writeln!(
            out,
            "{},{},{},{:.9},{:.9},{},{}",
            s.place,
            s.lane,
            s.kind.label(),
            s.start,
            s.end,
            s.bytes,
            trace.label(s.label).replace(',', ";")
        );
    }
    out
}

/// Serializes the per-kind breakdown to CSV (`kind,seconds,share`).
pub fn breakdown_to_csv(trace: &Trace) -> String {
    let b = trace.breakdown();
    let mut out = String::from("kind,seconds,share\n");
    for (kind, share) in b.normalized() {
        let _ = writeln!(out, "{},{:.9},{:.6}", kind.label(), b.get(kind), share);
    }
    out
}

/// Serializes the whole trace to JSON (via serde; `serde` feature only).
#[cfg(feature = "serde")]
pub fn trace_to_json(trace: &Trace) -> serde_json::Result<String> {
    serde_json::to_string(trace)
}

/// Parses a trace back from JSON (`serde` feature only).
#[cfg(feature = "serde")]
pub fn trace_from_json(json: &str) -> serde_json::Result<Trace> {
    serde_json::from_str(json)
}

/// `trace_event` process id of a place: host is pid 0, `gpuN` is pid N+1.
fn chrome_pid(place: Place) -> u32 {
    match place {
        Place::Host => 0,
        Place::Gpu(g) => g + 1,
    }
}

/// Human name of an engine lane, used as the track (thread) name.
fn lane_name(place: Place, lane: u8) -> String {
    match (place, lane) {
        (Place::Host, l) => format!("host lane {l}"),
        (_, 0) => "copy in (H2D/P2P)".to_string(),
        (_, 2) => "copy out (D2H)".to_string(),
        (_, l) if l >= 3 => format!("kernel stream {}", l - 3),
        (_, l) => format!("lane {l}"),
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes included).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes the trace to Chrome `trace_event` JSON, loadable in
/// ui.perfetto.dev or `chrome://tracing`.
///
/// Layout: one *process* per device (host = pid 0, `gpuN` = pid N+1), one
/// *track* (thread) per engine lane, one `"X"` complete event per span
/// (`ts`/`dur` in microseconds, `cat` = the span kind's paper-legend label,
/// `args.bytes` for transfers). Spans sharing a [`FlowId`] are linked with
/// flow arrows (`"s"`/`"t"`/`"f"` events named `tile-flow`), so a tile's
/// H2D read, its device-to-device forwards and the kernels that consumed it
/// render as one connected chain — the optimistic D2D heuristic made
/// visible. The output is deterministic: same trace, same bytes.
///
/// Hand-rolled string building (no serde) so it stays available in builds
/// where `serde_json` is stubbed out.
pub fn chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + trace.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };

    // Metadata: name every process and track, sorted for determinism.
    let mut pids: BTreeSet<Place> = BTreeSet::new();
    let mut tracks: BTreeSet<(Place, u8)> = BTreeSet::new();
    for s in trace.spans() {
        pids.insert(s.place);
        tracks.insert((s.place, s.lane));
    }
    for place in &pids {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"{place}\"}}}}",
            chrome_pid(*place)
        );
    }
    for (place, lane) in &tracks {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{},\"tid\":{lane},\
             \"args\":{{\"name\":",
            chrome_pid(*place)
        );
        push_json_str(&mut out, &lane_name(*place, *lane));
        out.push_str("}}");
    }

    // One "X" complete event per span, in recording order.
    for s in trace.spans() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":",
            chrome_pid(s.place),
            s.lane,
            s.start * 1e6,
            s.duration() * 1e6
        );
        let label = trace.label(s.label);
        push_json_str(&mut out, if label.is_empty() { s.kind.label() } else { label });
        out.push_str(",\"cat\":");
        push_json_str(&mut out, s.kind.label());
        if s.bytes > 0 {
            let _ = write!(out, ",\"args\":{{\"bytes\":{}}}", s.bytes);
        }
        out.push('}');
    }

    // Flow arrows: group spans by FlowId, order each chain by (start, idx).
    let mut chains: BTreeMap<FlowId, Vec<usize>> = BTreeMap::new();
    for (i, s) in trace.spans().iter().enumerate() {
        if s.flow != FlowId::NONE {
            chains.entry(s.flow).or_default().push(i);
        }
    }
    for (flow, mut idxs) in chains {
        if idxs.len() < 2 {
            continue; // a chain of one span has no arrow to draw
        }
        idxs.sort_by(|&a, &b| {
            let (sa, sb) = (&trace.spans()[a], &trace.spans()[b]);
            sa.start.partial_cmp(&sb.start).unwrap().then(a.cmp(&b))
        });
        let last = idxs.len() - 1;
        for (pos, &i) in idxs.iter().enumerate() {
            let s = &trace.spans()[i];
            let ph = match pos {
                0 => "s",
                p if p == last => "f",
                _ => "t",
            };
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"{ph}\",\"id\":{},\"name\":\"tile-flow\",\"cat\":\"flow\",\
                 \"pid\":{},\"tid\":{},\"ts\":{}",
                flow.0,
                chrome_pid(s.place),
                s.lane,
                s.start * 1e6
            );
            if ph == "f" {
                out.push_str(",\"bp\":\"e\"");
            }
            out.push('}');
        }
    }
    out.push_str("\n]}");
    out
}

/// A minimal JSON parser + Chrome `trace_event` schema checker.
///
/// Exists so tests (here and in dependent crates) can validate
/// [`chrome_json`] output even in build environments where `serde_json` is
/// stubbed out. Not a general-purpose parser — no number edge cases beyond
/// what `f64::from_str` accepts, no `\u` surrogate pairs.
#[doc(hidden)]
pub mod jsonck {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number, as `f64`.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, preserving key order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Object field lookup (first match).
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => {
                    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
                }
                _ => None,
            }
        }

        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The numeric payload, if this is a number.
        pub fn as_num(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
            {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected '{}' at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                ))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(_) => self.number(),
                None => Err("unexpected end of input".to_string()),
            }
        }

        fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while self.peek().is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
            }) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = std::str::from_utf8(hex)
                                    .ok()
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or("bad \\u escape")?;
                                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                self.pos += 4;
                            }
                            other => {
                                return Err(format!("bad escape {other:?}"));
                            }
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Copy one UTF-8 scalar (the input is a &str upstream,
                        // so slicing on char boundaries is safe).
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|e| e.to_string())?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                    None => return Err("unterminated string".to_string()),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => return Err(format!("bad array delimiter {other:?}")),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                let val = self.value()?;
                fields.push((key, val));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    other => return Err(format!("bad object delimiter {other:?}")),
                }
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(json: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: json.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Validates a Chrome `trace_event` document: top-level object with a
    /// `traceEvents` array whose every element has the fields its phase
    /// requires. Returns the number of events.
    pub fn validate_trace_events(json: &str) -> Result<usize, String> {
        let doc = parse(json)?;
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .ok_or("missing traceEvents array")?;
        for (i, ev) in events.iter().enumerate() {
            let ph = ev
                .get("ph")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("event {i}: missing ph"))?;
            for field in ["pid", "tid"] {
                ev.get(field)
                    .and_then(Value::as_num)
                    .ok_or_else(|| format!("event {i}: missing numeric {field}"))?;
            }
            match ph {
                "M" => {
                    let name = ev
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("event {i}: M without name"))?;
                    if !matches!(name, "process_name" | "thread_name") {
                        return Err(format!("event {i}: unknown metadata {name}"));
                    }
                    ev.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("event {i}: M without args.name"))?;
                }
                "X" => {
                    for field in ["ts", "dur"] {
                        let v = ev
                            .get(field)
                            .and_then(Value::as_num)
                            .ok_or_else(|| format!("event {i}: X without {field}"))?;
                        if !(v >= 0.0) {
                            return Err(format!("event {i}: negative {field}"));
                        }
                    }
                    ev.get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("event {i}: X without name"))?;
                }
                "s" | "t" | "f" => {
                    ev.get("id")
                        .and_then(Value::as_num)
                        .ok_or_else(|| format!("event {i}: flow without id"))?;
                    ev.get("ts")
                        .and_then(Value::as_num)
                        .ok_or_else(|| format!("event {i}: flow without ts"))?;
                    if ph == "f" && ev.get("bp").and_then(Value::as_str) != Some("e") {
                        return Err(format!("event {i}: f without bp:e"));
                    }
                }
                other => return Err(format!("event {i}: unknown phase {other}")),
            }
        }
        Ok(events.len())
    }
}

/// Renders a per-device stacked table: one row per device, one column per
/// span kind, seconds (the numbers behind Fig. 7).
pub fn per_device_table(trace: &Trace) -> String {
    let per = trace.breakdown_per_device();
    let mut out = String::from("device");
    for k in SpanKind::ALL {
        let _ = write!(out, ",{}", k.label());
    }
    out.push('\n');
    for (place, b) in per {
        let _ = write!(out, "{place}");
        for k in SpanKind::ALL {
            let _ = write!(out, ",{:.6}", b.get(k));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Label, Place, Span};

    fn t() -> Trace {
        let mut t = Trace::new();
        let tile = t.intern("tile(0,0)");
        t.push(Span {
            place: Place::Gpu(0),
            lane: 0,
            kind: SpanKind::H2D,
            start: 0.0,
            end: 0.5,
            bytes: 128,
            label: tile,
            flow: FlowId(0),
        });
        let dgemm = t.intern("dgemm");
        t.push(Span {
            place: Place::Gpu(1),
            lane: 2,
            kind: SpanKind::Kernel,
            start: 0.5,
            end: 1.5,
            bytes: 0,
            label: dgemm,
            flow: FlowId(0),
        });
        t
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = trace_to_csv(&t());
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("place,lane,kind"));
        assert!(csv.contains("gpu1,2,GPU Kernel"));
    }

    /// Gated on the real serde: the inert offline shim cannot round-trip
    /// by construction, so the test compiles out instead of failing.
    #[cfg(feature = "serde")]
    #[test]
    fn json_round_trips() {
        // Same runtime probe as the trace-intern round-trip: skip under an
        // inert offline serde_json shim.
        if !serde_json::to_string(&1u32).map(|s| s == "1").unwrap_or(false) {
            return;
        }
        let original = t();
        let json = trace_to_json(&original).unwrap();
        let back = trace_from_json(&json).unwrap();
        assert_eq!(original.spans(), back.spans());
    }

    #[test]
    fn breakdown_csv_shares_sum_to_one() {
        let csv = breakdown_to_csv(&t());
        let total: f64 = csv
            .lines()
            .skip(1)
            .map(|l| l.rsplit(',').next().unwrap().parse::<f64>().unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_device_table_rows() {
        let table = per_device_table(&t());
        assert!(table.lines().count() >= 3);
        assert!(table.contains("gpu0"));
        assert!(table.contains("gpu1"));
    }

    #[test]
    fn labels_with_commas_are_sanitized() {
        let mut tr = Trace::new();
        let label = tr.intern("a,b");
        tr.push(Span {
            place: Place::Gpu(0),
            lane: 0,
            kind: SpanKind::Kernel,
            start: 0.0,
            end: 1.0,
            bytes: 0,
            label,
            flow: FlowId::NONE,
        });
        let csv = trace_to_csv(&tr);
        let data_line = csv.lines().nth(1).unwrap();
        assert_eq!(data_line.matches(',').count(), 6);
    }

    #[test]
    fn chrome_json_is_valid_trace_event() {
        let json = chrome_json(&t());
        // 2 process_name + 2 thread_name + 2 X + 2 flow events.
        assert_eq!(jsonck::validate_trace_events(&json).unwrap(), 8);
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("\"name\":\"tile(0,0)\""));
        assert!(json.contains("\"cat\":\"GPU Kernel\""));
        assert!(json.contains("\"args\":{\"bytes\":128}"));
    }

    #[test]
    fn chrome_json_escapes_and_skips_lone_flows() {
        let mut tr = Trace::new();
        let label = tr.intern("quote\"back\\slash");
        tr.push(Span {
            place: Place::Host,
            lane: 0,
            kind: SpanKind::HostWork,
            start: 0.0,
            end: 1.0,
            bytes: 0,
            label,
            flow: FlowId(7),
        });
        let json = chrome_json(&tr);
        let n = jsonck::validate_trace_events(&json).unwrap();
        // process_name + thread_name + X; the single-span flow draws nothing.
        assert_eq!(n, 3);
        let doc = jsonck::parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(jsonck::Value::as_str) == Some("X"))
            .unwrap();
        assert_eq!(
            x.get("name").and_then(jsonck::Value::as_str),
            Some("quote\"back\\slash")
        );
    }

    #[test]
    fn chrome_json_flow_chain_order_follows_time() {
        // Chain recorded out of time order must still emit s → t → f by start.
        let mut tr = Trace::new();
        let mk = |start: f64, end: f64, kind| Span {
            place: Place::Gpu(0),
            lane: 0,
            kind,
            start,
            end,
            bytes: 1,
            label: Label::NONE,
            flow: FlowId(3),
        };
        tr.push(mk(2.0, 3.0, SpanKind::Kernel));
        tr.push(mk(0.0, 1.0, SpanKind::H2D));
        tr.push(mk(1.0, 2.0, SpanKind::P2P));
        let json = chrome_json(&tr);
        jsonck::validate_trace_events(&json).unwrap();
        let doc = jsonck::parse(&json).unwrap();
        let phases: Vec<(String, f64)> = doc
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(|e| {
                let ph = e.get("ph")?.as_str()?;
                if matches!(ph, "s" | "t" | "f") {
                    Some((ph.to_string(), e.get("ts")?.as_num()?))
                } else {
                    None
                }
            })
            .collect();
        assert_eq!(
            phases,
            vec![
                ("s".to_string(), 0.0),
                ("t".to_string(), 1e6),
                ("f".to_string(), 2e6)
            ]
        );
    }

    #[test]
    fn jsonck_rejects_malformed_documents() {
        assert!(jsonck::parse("{\"a\":1,}").is_err());
        assert!(jsonck::parse("[1 2]").is_err());
        assert!(jsonck::parse("{} garbage").is_err());
        assert!(jsonck::validate_trace_events("{\"traceEvents\":7}").is_err());
        assert!(jsonck::validate_trace_events(
            "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0}]}"
        )
        .is_err());
        assert_eq!(
            jsonck::parse("{\"a\":[1,true,null,\"s\"]}").unwrap().get("a"),
            Some(&jsonck::Value::Arr(vec![
                jsonck::Value::Num(1.0),
                jsonck::Value::Bool(true),
                jsonck::Value::Null,
                jsonck::Value::Str("s".to_string()),
            ]))
        );
    }
}
