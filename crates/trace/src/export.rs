//! CSV / JSON export of traces and breakdowns.

use std::fmt::Write as _;

use crate::span::SpanKind;
use crate::trace::Trace;

/// Serializes the full trace to CSV
/// (`place,lane,kind,start,end,bytes,label`).
pub fn trace_to_csv(trace: &Trace) -> String {
    let mut out = String::from("place,lane,kind,start,end,bytes,label\n");
    for s in trace.spans() {
        let _ = writeln!(
            out,
            "{},{},{},{:.9},{:.9},{},{}",
            s.place,
            s.lane,
            s.kind.label(),
            s.start,
            s.end,
            s.bytes,
            trace.label(s.label).replace(',', ";")
        );
    }
    out
}

/// Serializes the per-kind breakdown to CSV (`kind,seconds,share`).
pub fn breakdown_to_csv(trace: &Trace) -> String {
    let b = trace.breakdown();
    let mut out = String::from("kind,seconds,share\n");
    for (kind, share) in b.normalized() {
        let _ = writeln!(out, "{},{:.9},{:.6}", kind.label(), b.get(kind), share);
    }
    out
}

/// Serializes the whole trace to JSON (via serde).
pub fn trace_to_json(trace: &Trace) -> serde_json::Result<String> {
    serde_json::to_string(trace)
}

/// Parses a trace back from JSON.
pub fn trace_from_json(json: &str) -> serde_json::Result<Trace> {
    serde_json::from_str(json)
}

/// Renders a per-device stacked table: one row per device, one column per
/// span kind, seconds (the numbers behind Fig. 7).
pub fn per_device_table(trace: &Trace) -> String {
    let per = trace.breakdown_per_device();
    let mut out = String::from("device");
    for k in SpanKind::ALL {
        let _ = write!(out, ",{}", k.label());
    }
    out.push('\n');
    for (place, b) in per {
        let _ = write!(out, "{place}");
        for k in SpanKind::ALL {
            let _ = write!(out, ",{:.6}", b.get(k));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Place, Span};

    fn t() -> Trace {
        let mut t = Trace::new();
        let tile = t.intern("tile(0,0)");
        t.push(Span {
            place: Place::Gpu(0),
            lane: 0,
            kind: SpanKind::H2D,
            start: 0.0,
            end: 0.5,
            bytes: 128,
            label: tile,
        });
        let dgemm = t.intern("dgemm");
        t.push(Span {
            place: Place::Gpu(1),
            lane: 2,
            kind: SpanKind::Kernel,
            start: 0.5,
            end: 1.5,
            bytes: 0,
            label: dgemm,
        });
        t
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = trace_to_csv(&t());
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("place,lane,kind"));
        assert!(csv.contains("gpu1,2,GPU Kernel"));
    }

    #[test]
    fn json_round_trips() {
        let original = t();
        let json = trace_to_json(&original).unwrap();
        let back = trace_from_json(&json).unwrap();
        assert_eq!(original.spans(), back.spans());
    }

    #[test]
    fn breakdown_csv_shares_sum_to_one() {
        let csv = breakdown_to_csv(&t());
        let total: f64 = csv
            .lines()
            .skip(1)
            .map(|l| l.rsplit(',').next().unwrap().parse::<f64>().unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_device_table_rows() {
        let table = per_device_table(&t());
        assert!(table.lines().count() >= 3);
        assert!(table.contains("gpu0"));
        assert!(table.contains("gpu1"));
    }

    #[test]
    fn labels_with_commas_are_sanitized() {
        let mut tr = Trace::new();
        let label = tr.intern("a,b");
        tr.push(Span {
            place: Place::Gpu(0),
            lane: 0,
            kind: SpanKind::Kernel,
            start: 0.0,
            end: 1.0,
            bytes: 0,
            label,
        });
        let csv = trace_to_csv(&tr);
        let data_line = csv.lines().nth(1).unwrap();
        assert_eq!(data_line.matches(',').count(), 6);
    }
}
