//! ASCII Gantt rendering of traces (the model's version of Fig. 9).

use crate::span::{Place, SpanKind};
use crate::trace::Trace;

/// Options controlling the ASCII Gantt rendering.
#[derive(Clone, Debug)]
pub struct GanttOptions {
    /// Total character width of the time axis.
    pub width: usize,
    /// Render one row per (device, lane) instead of one row per device.
    pub per_lane: bool,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            width: 100,
            per_lane: false,
        }
    }
}

fn glyph(kind: SpanKind) -> char {
    match kind {
        SpanKind::H2D => 'h',
        SpanKind::D2H => 'd',
        SpanKind::P2P => 'p',
        SpanKind::Kernel => '#',
        SpanKind::HostWork => 'w',
    }
}

/// Renders an ASCII Gantt chart: one row per GPU (or per lane), kernels as
/// `#`, transfers as `h`/`d`/`p`, host work as `w`, idle as `.`.
///
/// Later spans overwrite earlier ones within a cell; with `per_lane` each
/// engine gets its own row so overlaps are visible.
pub fn render(trace: &Trace, n_gpus: usize, opts: &GanttOptions) -> String {
    let makespan = trace.makespan();
    let mut out = String::new();
    if makespan <= 0.0 {
        out.push_str("(empty trace)\n");
        return out;
    }
    let width = opts.width.max(10);
    let scale = width as f64 / makespan;

    let mut rows: Vec<(String, Vec<char>)> = Vec::new();
    let mut row_index = std::collections::BTreeMap::new();

    let mut places: Vec<Place> = (0..n_gpus as u32).map(Place::Gpu).collect();
    places.push(Place::Host);

    for place in &places {
        let spans = trace.device_spans_sorted(*place);
        if spans.is_empty() && *place == Place::Host {
            continue;
        }
        if opts.per_lane {
            for s in &spans {
                row_index
                    .entry((*place, s.lane))
                    .or_insert_with(|| {
                        rows.push((format!("{place}/{}", s.lane), vec!['.'; width]));
                        rows.len() - 1
                    });
            }
        } else {
            row_index.entry((*place, 0)).or_insert_with(|| {
                rows.push((place.to_string(), vec!['.'; width]));
                rows.len() - 1
            });
        }
        for s in spans {
            let key = if opts.per_lane {
                (*place, s.lane)
            } else {
                (*place, 0)
            };
            let row = &mut rows[row_index[&key]].1;
            let a = ((s.start * scale) as usize).min(width - 1);
            let b = (((s.end * scale).ceil()) as usize).clamp(a + 1, width);
            for cell in row.iter_mut().take(b).skip(a) {
                // Kernels win over transfers in the condensed view so that
                // compute density is what the eye sees, as in Fig. 9.
                if *cell == '.' || (glyph(s.kind) == '#') {
                    *cell = glyph(s.kind);
                }
            }
        }
    }

    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(4).max(4);
    out.push_str(&format!(
        "{:label_w$} 0{:>w$}\n",
        "",
        format!("{makespan:.4}s"),
        label_w = label_w,
        w = width - 1
    ));
    for (label, cells) in &rows {
        out.push_str(&format!(
            "{:label_w$} {}\n",
            label,
            cells.iter().collect::<String>(),
            label_w = label_w
        ));
    }
    out.push_str(&format!(
        "{:label_w$} legend: #=kernel h=HtoD d=DtoH p=PtoP w=host .=idle\n",
        "",
        label_w = label_w
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{FlowId, Label, Span};

    fn t() -> Trace {
        let mut t = Trace::new();
        t.push(Span {
            place: Place::Gpu(0),
            lane: 0,
            kind: SpanKind::H2D,
            start: 0.0,
            end: 0.5,
            bytes: 10,
            label: Label::NONE,
            flow: FlowId::NONE,
        });
        t.push(Span {
            place: Place::Gpu(0),
            lane: 1,
            kind: SpanKind::Kernel,
            start: 0.5,
            end: 1.0,
            bytes: 0,
            label: Label::NONE,
            flow: FlowId::NONE,
        });
        t.push(Span {
            place: Place::Gpu(1),
            lane: 1,
            kind: SpanKind::Kernel,
            start: 0.0,
            end: 1.0,
            bytes: 0,
            label: Label::NONE,
            flow: FlowId::NONE,
        });
        t
    }

    #[test]
    fn renders_rows_per_gpu() {
        let s = render(&t(), 2, &GanttOptions::default());
        assert!(s.contains("gpu0"));
        assert!(s.contains("gpu1"));
        assert!(s.contains('#'));
        assert!(s.contains('h'));
        assert!(s.contains("legend"));
    }

    #[test]
    fn per_lane_gets_more_rows() {
        let condensed = render(&t(), 2, &GanttOptions::default());
        let lanes = render(
            &t(),
            2,
            &GanttOptions {
                per_lane: true,
                ..Default::default()
            },
        );
        assert!(lanes.lines().count() > condensed.lines().count());
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let s = render(&Trace::new(), 2, &GanttOptions::default());
        assert!(s.contains("empty trace"));
    }

    #[test]
    fn gpu1_row_is_dense_kernel() {
        let s = render(&t(), 2, &GanttOptions { width: 20, per_lane: false });
        let row = s.lines().find(|l| l.starts_with("gpu1")).unwrap();
        let body: String = row.split_whitespace().nth(1).unwrap().to_string();
        assert!(body.chars().all(|c| c == '#'), "row was {body}");
    }
}
