//! Trace spans: one timed operation on one engine of one device.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Category of a traced operation, matching the categories of the paper's
/// nvprof-based figures (Fig. 6, 7, 9).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum SpanKind {
    /// `CUDA memcpy HtoD` — host to device transfer.
    H2D,
    /// `CUDA memcpy DtoH` — device to host transfer.
    D2H,
    /// `CUDA memcpy PtoP` — device to device transfer.
    P2P,
    /// `GPU Kernel` — compute kernel execution.
    Kernel,
    /// Host-side work (e.g. Chameleon's LAPACK↔tile layout conversion).
    HostWork,
}

impl SpanKind {
    /// Label used in reports, matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::H2D => "CUDA memcpy HtoD",
            SpanKind::D2H => "CUDA memcpy DtoH",
            SpanKind::P2P => "CUDA memcpy PtoP",
            SpanKind::Kernel => "GPU Kernel",
            SpanKind::HostWork => "Host work",
        }
    }

    /// True for the three transfer kinds.
    pub fn is_transfer(self) -> bool {
        matches!(self, SpanKind::H2D | SpanKind::D2H | SpanKind::P2P)
    }

    /// All kinds, in report order.
    pub const ALL: [SpanKind; 5] = [
        SpanKind::D2H,
        SpanKind::H2D,
        SpanKind::P2P,
        SpanKind::Kernel,
        SpanKind::HostWork,
    ];
}

/// Location of a span: which device, or the host.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Place {
    /// Host CPU / main memory.
    Host,
    /// GPU with the given index.
    Gpu(u32),
}

impl std::fmt::Display for Place {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Place::Host => write!(f, "host"),
            Place::Gpu(i) => write!(f, "gpu{i}"),
        }
    }
}

/// An interned span label: an index into the owning [`crate::Trace`]'s
/// symbol table.
///
/// Simulated executors record hundreds of thousands of spans whose labels
/// repeat a few hundred distinct strings (tile coordinates, kernel names).
/// Storing a `u32` per span instead of a cloned `String` keeps the DES hot
/// loop allocation-free; the text is resolved once, at export, via
/// [`crate::Trace::label`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Label(pub u32);

impl Label {
    /// The empty label: resolves to `""` without occupying a table slot.
    pub const NONE: Label = Label(u32::MAX);
}

impl Default for Label {
    fn default() -> Self {
        Label::NONE
    }
}

/// A data-flow chain identifier linking the spans of one tile broadcast:
/// the H2D read that brought a tile on device, every device-to-device
/// forward of that copy, and the kernels that consumed it.
///
/// Flow ids are dense per trace (executors use the span index of the chain
/// root). [`FlowId::NONE`] marks spans that belong to no chain. The Chrome
/// `trace_event` export renders each chain as flow arrows, making the
/// optimistic D2D forwarding (paper §III-C) directly visible in a viewer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct FlowId(pub u32);

impl FlowId {
    /// No flow membership.
    pub const NONE: FlowId = FlowId(u32::MAX);
}

impl Default for FlowId {
    fn default() -> Self {
        FlowId::NONE
    }
}

/// One timed operation.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Span {
    /// Device the operation is attributed to. Transfers are attributed to
    /// their *destination* device (as nvprof attributes memcpys to the
    /// stream's device).
    pub place: Place,
    /// Engine lane within the device (e.g. `"h2d"`, `"kernel0"`), used to
    /// group spans into Gantt rows.
    pub lane: u8,
    /// Operation category.
    pub kind: SpanKind,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Payload size for transfers, 0 for kernels.
    pub bytes: u64,
    /// Short description (kernel name, tile coordinates...), interned in
    /// the owning [`crate::Trace`] — resolve with [`crate::Trace::label`].
    pub label: Label,
    /// Data-flow chain membership ([`FlowId::NONE`] when unlinked).
    /// Defaults on deserialization so traces recorded before flow tracking
    /// still load.
    #[cfg_attr(feature = "serde", serde(default))]
    pub flow: FlowId,
}

impl Span {
    /// Span duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_match_paper_legend() {
        assert_eq!(SpanKind::H2D.label(), "CUDA memcpy HtoD");
        assert_eq!(SpanKind::Kernel.label(), "GPU Kernel");
        assert!(SpanKind::P2P.is_transfer());
        assert!(!SpanKind::Kernel.is_transfer());
    }

    #[test]
    fn duration_is_end_minus_start() {
        let s = Span {
            place: Place::Gpu(0),
            lane: 0,
            kind: SpanKind::Kernel,
            start: 1.0,
            end: 3.5,
            bytes: 0,
            label: Label::NONE,
            flow: FlowId::NONE,
        };
        assert!((s.duration() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn label_none_is_default() {
        assert_eq!(Label::default(), Label::NONE);
        assert_ne!(Label(0), Label::NONE);
        assert_eq!(FlowId::default(), FlowId::NONE);
    }

    #[test]
    fn place_display() {
        assert_eq!(Place::Host.to_string(), "host");
        assert_eq!(Place::Gpu(3).to_string(), "gpu3");
    }
}
