//! # xk-trace — execution traces for simulated runs
//!
//! Every simulated executor in this workspace records a [`Span`] per engine
//! operation (kernel, HtoD/DtoH/PtoP memcpy, host work). This crate holds
//! the container plus the aggregations that regenerate the paper's trace
//! figures:
//!
//! * [`Trace::breakdown`] — cumulated seconds per kind and the transfer
//!   ratio of Fig. 6.
//! * [`Trace::breakdown_per_device`] — the per-GPU stacked bars of Fig. 7.
//! * [`gantt::render`] — the ASCII Gantt chart standing in for Fig. 9.
//! * [`Trace::longest_global_gap`] — quantifies the synchronization holes
//!   visible in Chameleon's composition Gantt.
//!
//! Span labels are interned in the owning [`Trace`] ([`Trace::intern`] /
//! [`Trace::label`]): each [`Span`] stores a `u32` [`Label`] instead of a
//! cloned `String`, keeping span recording allocation-free in the DES hot
//! loop.
//!
//! ```
//! use xk_trace::{Trace, Span, SpanKind, Place, FlowId};
//!
//! let mut trace = Trace::new();
//! let a00 = trace.intern("A(0,0)");
//! trace.push(Span { place: Place::Gpu(0), lane: 0, kind: SpanKind::H2D,
//!                   start: 0.0, end: 0.1, bytes: 1 << 20, label: a00,
//!                   flow: FlowId(0) });
//! let dgemm = trace.intern("dgemm");
//! trace.push(Span { place: Place::Gpu(0), lane: 1, kind: SpanKind::Kernel,
//!                   start: 0.1, end: 0.5, bytes: 0, label: dgemm,
//!                   flow: FlowId(0) });
//! assert!(trace.breakdown().transfer_ratio() < 0.5);
//! assert_eq!(trace.label(dgemm), "dgemm");
//! // One click in ui.perfetto.dev away:
//! let json = xk_trace::export::chrome_json(&trace);
//! assert!(json.contains("traceEvents"));
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod gantt;
mod span;
#[allow(clippy::module_inception)]
mod trace;

pub use gantt::GanttOptions;
pub use span::{FlowId, Label, Place, Span, SpanKind};
pub use trace::{Breakdown, Trace};
