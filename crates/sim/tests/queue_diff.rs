//! Heap-vs-calendar differential suite (deterministic edition).
//!
//! Runs identical randomized op scripts — pushes from adversarial time
//! distributions, pops, tied pops with pseudo-random picks, peeks —
//! against both [`QueueBackend`]s in lockstep and asserts every observable
//! result is identical. This is the plain-`#[test]` twin of the proptest
//! suite in `tests/properties.rs`, runnable without dev-dependencies; the
//! proptest version explores the same space with shrinking on top.

use xk_sim::{EventQueue, QueueBackend, SimTime};

/// SplitMix64: small, seedable, and identical everywhere.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Time distributions that stress different calendar-queue mechanisms.
#[derive(Clone, Copy, Debug)]
enum Dist {
    /// Uniform over one second: the calendar's happy path.
    Uniform,
    /// A handful of distinct timestamps: large same-time tie groups.
    Bursts,
    /// Mostly a dense cluster, occasionally 6-9 orders of magnitude out:
    /// exercises the overflow ladder and post-drain migration.
    FarFuture,
    /// Tiny gaps around a huge base: stale-width and re-estimation path.
    DenseClusterFarOrigin,
    /// Monotonically shrinking times: front-insert path and cursor moves.
    Decreasing,
}

impl Dist {
    fn sample(self, rng: &mut Rng, step: usize) -> SimTime {
        let t = match self {
            Dist::Uniform => rng.unit(),
            Dist::Bursts => rng.below(7) as f64 * 0.125,
            Dist::FarFuture => {
                if rng.below(16) == 0 {
                    1e6 + rng.unit() * 1e9
                } else {
                    rng.unit() * 1e-3
                }
            }
            Dist::DenseClusterFarOrigin => 5e8 + rng.unit() * 1e-6,
            Dist::Decreasing => 1e3 - step as f64 * 1e-3,
        };
        SimTime::new(t)
    }
}

/// One lockstep script: every push/pop/peek/len result must agree between
/// the two backends at every step.
fn lockstep(seed: u64, dist: Dist, ops: usize) {
    let mut rng = Rng(seed);
    let mut heap = EventQueue::with_backend(QueueBackend::Heap);
    let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
    let mut next_id: u64 = 0;
    for step in 0..ops {
        match rng.below(10) {
            // Pushes are weighted so queues grow, then drain at the end.
            0..=4 => {
                let t = dist.sample(&mut rng, step);
                heap.push(t, next_id);
                cal.push(t, next_id);
                next_id += 1;
            }
            5 => {
                let n = 1 + rng.below(32) as usize;
                let batch: Vec<(SimTime, u64)> = (0..n)
                    .map(|i| (dist.sample(&mut rng, step), next_id + i as u64))
                    .collect();
                next_id += n as u64;
                heap.push_batch(batch.iter().copied());
                cal.push_batch(batch);
            }
            6..=7 => {
                assert_eq!(heap.pop(), cal.pop(), "{dist:?} seed {seed} step {step}");
            }
            8 => {
                // Both backends present the same FIFO-ordered tie group,
                // so feeding one pick sequence to both must select the
                // same event and leave the same queue behind.
                let mut picks_h = Vec::new();
                let mut picks_c = Vec::new();
                let pick = rng.next();
                let h = heap.pop_tied(&mut |n| {
                    picks_h.push(n);
                    (pick % n as u64) as usize
                });
                let c = cal.pop_tied(&mut |n| {
                    picks_c.push(n);
                    (pick % n as u64) as usize
                });
                assert_eq!(h, c, "{dist:?} seed {seed} step {step}");
                assert_eq!(
                    picks_h, picks_c,
                    "tie-group sizes diverged ({dist:?} seed {seed} step {step})"
                );
            }
            _ => {
                assert_eq!(heap.peek_time(), cal.peek_time());
                assert_eq!(heap.len(), cal.len());
                assert_eq!(heap.is_empty(), cal.is_empty());
            }
        }
    }
    // Drain both completely: the tails must agree too.
    loop {
        let (h, c) = (heap.pop(), cal.pop());
        assert_eq!(h, c, "drain tail diverged ({dist:?} seed {seed})");
        if h.is_none() {
            break;
        }
    }
}

#[test]
fn lockstep_uniform() {
    for seed in 0..8 {
        lockstep(seed, Dist::Uniform, 4000);
    }
}

#[test]
fn lockstep_same_time_bursts() {
    for seed in 0..8 {
        lockstep(100 + seed, Dist::Bursts, 4000);
    }
}

#[test]
fn lockstep_far_future_outliers() {
    for seed in 0..8 {
        lockstep(200 + seed, Dist::FarFuture, 4000);
    }
}

#[test]
fn lockstep_dense_cluster_far_origin() {
    for seed in 0..8 {
        lockstep(300 + seed, Dist::DenseClusterFarOrigin, 4000);
    }
}

#[test]
fn lockstep_decreasing_times() {
    for seed in 0..4 {
        lockstep(400 + seed, Dist::Decreasing, 2000);
    }
}

/// Capacity-constructed queues follow the same contract (the calendar
/// pre-sizes its bucket array from the hint; nothing observable changes).
#[test]
fn lockstep_with_capacity_hint() {
    let mut rng = Rng(9);
    let mut heap = EventQueue::with_backend_capacity(QueueBackend::Heap, 4096);
    let mut cal = EventQueue::with_backend_capacity(QueueBackend::Calendar, 4096);
    for i in 0..4096u64 {
        let t = SimTime::new(rng.unit() * 60.0);
        heap.push(t, i);
        cal.push(t, i);
    }
    while let Some(h) = heap.pop() {
        assert_eq!(Some(h), cal.pop());
    }
    assert!(cal.is_empty());
}
