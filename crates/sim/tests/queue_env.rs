//! `XK_EVENT_QUEUE` selection semantics, mirroring the kernel crate's
//! `XK_KERNEL_ISA` contract (`crates/kernels/tests/isa_dispatch.rs`):
//! unset/empty/`auto` pick the best backend, explicit names pin, a
//! valid-but-unavailable name falls back to the conservative heap oracle
//! (never a *different* accelerated backend — pinned CI legs must stay
//! pinned), and garbage panics loudly.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, OnceLock};

use xk_sim::{selected_backend, Clock, EventQueue, QueueBackend, SimTime, QUEUE_ENV};

/// Serializes tests that touch the process-wide environment.
fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Restores the ambient `XK_EVENT_QUEUE` value on drop, so test order
/// never leaks backend pins between tests.
struct EnvRestore(Option<String>);

impl EnvRestore {
    fn capture() -> Self {
        EnvRestore(std::env::var(QUEUE_ENV).ok())
    }
}

impl Drop for EnvRestore {
    fn drop(&mut self) {
        match &self.0 {
            Some(v) => std::env::set_var(QUEUE_ENV, v),
            None => std::env::remove_var(QUEUE_ENV),
        }
    }
}

#[test]
fn env_selection_semantics() {
    let _guard = env_lock();
    let _restore = EnvRestore::capture();

    std::env::remove_var(QUEUE_ENV);
    assert_eq!(
        selected_backend(),
        QueueBackend::Calendar,
        "unset picks the calendar"
    );
    std::env::set_var(QUEUE_ENV, "auto");
    assert_eq!(
        selected_backend(),
        QueueBackend::Calendar,
        "auto picks the calendar"
    );
    std::env::set_var(QUEUE_ENV, "");
    assert_eq!(
        selected_backend(),
        QueueBackend::Calendar,
        "empty picks the calendar"
    );

    std::env::set_var(QUEUE_ENV, "calendar");
    assert_eq!(selected_backend(), QueueBackend::Calendar);
    std::env::set_var(QUEUE_ENV, "heap");
    assert_eq!(selected_backend(), QueueBackend::Heap, "heap always pins");
    std::env::set_var(QUEUE_ENV, "HEAP");
    assert_eq!(
        selected_backend(),
        QueueBackend::Heap,
        "names are case-insensitive"
    );

    // `ladder` names a backend this build does not provide: it must fall
    // back to the heap oracle, not to the calendar under test.
    std::env::set_var(QUEUE_ENV, "ladder");
    assert_eq!(
        selected_backend(),
        QueueBackend::Heap,
        "valid-but-unavailable falls back to the heap oracle"
    );

    std::env::set_var(QUEUE_ENV, "splay-tree");
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(selected_backend));
    panic::set_hook(prev_hook);
    assert!(result.is_err(), "garbage backend name must panic");
}

/// Queues and clocks read the variable at construction time, so a test (or
/// CI leg) that pins the env gets the pinned backend for every queue it
/// builds afterwards — and explicit constructors ignore the env entirely.
#[test]
fn constructors_honor_and_override_the_env() {
    let _guard = env_lock();
    let _restore = EnvRestore::capture();

    std::env::set_var(QUEUE_ENV, "heap");
    assert_eq!(EventQueue::<u8>::new().backend(), QueueBackend::Heap);
    assert_eq!(
        EventQueue::<u8>::with_capacity(64).backend(),
        QueueBackend::Heap
    );
    std::env::set_var(QUEUE_ENV, "calendar");
    assert_eq!(EventQueue::<u8>::new().backend(), QueueBackend::Calendar);
    assert_eq!(
        EventQueue::<u8>::with_backend(QueueBackend::Heap).backend(),
        QueueBackend::Heap,
        "explicit constructor ignores the env"
    );

    // A pinned clock still delivers events; selection never changes
    // behavior, only the storage underneath.
    let mut c: Clock<u32> = Clock::with_backend_capacity(QueueBackend::Heap, 4);
    c.schedule(SimTime::new(1.0), 7);
    assert_eq!(c.next(), Some((SimTime::new(1.0), 7)));
}
