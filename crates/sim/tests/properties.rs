//! Property-based tests of the DES core invariants, including the
//! heap-vs-calendar differential property (the shrinking twin of the
//! deterministic lockstep scripts in `tests/queue_diff.rs`).

use proptest::prelude::*;
use xk_sim::{Clock, Duration, EnginePool, EventQueue, QueueBackend, SimTime};

/// One step of a differential op script. Times mix a dense uniform range,
/// coarse quantized values (same-time tie bursts) and far-future outliers
/// (overflow-ladder residents) — the distributions a calendar queue finds
/// adversarial.
#[derive(Clone, Debug)]
enum QOp {
    Push(f64),
    PushBurst(u8, u8),
    Pop,
    PopTied(u64),
    Peek,
}

fn qop() -> impl Strategy<Value = QOp> {
    prop_oneof![
        4 => prop_oneof![
            3 => 0.0f64..1.0,
            2 => (0u8..8).prop_map(|q| f64::from(q) * 0.25),
            1 => 1e6f64..1e12,
        ].prop_map(QOp::Push),
        1 => (0u8..8, 1u8..16).prop_map(|(q, n)| QOp::PushBurst(q, n)),
        3 => Just(QOp::Pop),
        2 => any::<u64>().prop_map(QOp::PopTied),
        1 => Just(QOp::Peek),
    ]
}

proptest! {
    /// Events always pop in non-decreasing time order regardless of the
    /// scheduling order.
    #[test]
    fn events_pop_monotonically(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut clock: Clock<usize> = Clock::new();
        for (i, t) in times.iter().enumerate() {
            clock.schedule(SimTime::new(*t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = clock.next() {
            prop_assert!(t >= last);
            last = t;
        }
        prop_assert_eq!(clock.pending(), 0);
    }

    /// Joint reservations never overlap on any engine: for a random sequence
    /// of operations over a random engine subset, the reserved windows on
    /// each engine are pairwise disjoint.
    #[test]
    fn reservations_never_overlap(
        ops in proptest::collection::vec(
            (proptest::collection::btree_set(0usize..6, 1..4), 0.0f64..10.0, 1e-6f64..5.0),
            1..60
        )
    ) {
        let mut pool = EnginePool::new();
        let engines: Vec<_> = (0..6).map(|i| pool.add(format!("e{i}"))).collect();
        let mut windows: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 6];
        for (subset, earliest, dur) in ops {
            let ids: Vec<_> = subset.iter().map(|&i| engines[i]).collect();
            let r = pool.reserve(&ids, SimTime::new(earliest), Duration::new(dur));
            prop_assert!(r.start >= SimTime::new(earliest));
            prop_assert!((r.end.seconds() - r.start.seconds() - dur).abs() < 1e-9);
            for &i in &subset {
                windows[i].push((r.start.seconds(), r.end.seconds()));
            }
        }
        for w in &mut windows {
            w.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for pair in w.windows(2) {
                prop_assert!(pair[0].1 <= pair[1].0 + 1e-9,
                    "overlapping reservations: {:?}", pair);
            }
        }
    }

    /// Busy-time accounting equals the sum of requested durations.
    #[test]
    fn busy_accounting_is_exact(durs in proptest::collection::vec(1e-6f64..2.0, 1..50)) {
        let mut pool = EnginePool::new();
        let e = pool.add("only");
        let mut total = 0.0;
        for d in &durs {
            pool.reserve(&[e], SimTime::ZERO, Duration::new(*d));
            total += d;
        }
        prop_assert!((pool.busy_total(e).seconds() - total).abs() < 1e-6);
        prop_assert_eq!(pool.ops(e), durs.len() as u64);
        // With all ops requested at t=0, a single engine back-to-back
        // schedule means free_at == total busy time.
        prop_assert!((pool.free_at(e).seconds() - total).abs() < 1e-6);
    }

    /// The calendar backend is bit-for-bit interchangeable with the binary
    /// heap: any interleaving of pushes (dense, tied, far-future), pops,
    /// tied pops with arbitrary picks and peeks observes identical results
    /// from both, and both drain to identical tails.
    #[test]
    fn calendar_matches_heap_bit_for_bit(ops in proptest::collection::vec(qop(), 1..400)) {
        let mut heap = EventQueue::with_backend(QueueBackend::Heap);
        let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
        let mut next_id: u64 = 0;
        for op in &ops {
            match *op {
                QOp::Push(t) => {
                    let t = SimTime::new(t);
                    heap.push(t, next_id);
                    cal.push(t, next_id);
                    next_id += 1;
                }
                QOp::PushBurst(q, n) => {
                    // Same-time burst through the batch path.
                    let t = SimTime::new(f64::from(q) * 0.25);
                    let batch: Vec<(SimTime, u64)> =
                        (0..u64::from(n)).map(|i| (t, next_id + i)).collect();
                    next_id += u64::from(n);
                    heap.push_batch(batch.iter().copied());
                    cal.push_batch(batch);
                }
                QOp::Pop => prop_assert_eq!(heap.pop(), cal.pop()),
                QOp::PopTied(pick) => {
                    let mut sizes = (None, None);
                    let h = heap.pop_tied(&mut |n| {
                        sizes.0 = Some(n);
                        (pick % n as u64) as usize
                    });
                    let c = cal.pop_tied(&mut |n| {
                        sizes.1 = Some(n);
                        (pick % n as u64) as usize
                    });
                    prop_assert_eq!(h, c);
                    prop_assert_eq!(sizes.0, sizes.1, "tie-group sizes diverged");
                }
                QOp::Peek => {
                    prop_assert_eq!(heap.peek_time(), cal.peek_time());
                    prop_assert_eq!(heap.len(), cal.len());
                }
            }
        }
        loop {
            let (h, c) = (heap.pop(), cal.pop());
            prop_assert_eq!(&h, &c, "drain tail diverged");
            if h.is_none() {
                break;
            }
        }
    }
}

/// Two identical simulations produce identical pop sequences (determinism).
#[test]
fn determinism_same_inputs_same_order() {
    let build = || {
        let mut clock: Clock<u32> = Clock::new();
        for i in 0..1000u32 {
            // Lots of ties on purpose.
            clock.schedule(SimTime::new(f64::from(i % 7)), i);
        }
        let mut order = Vec::new();
        while let Some((_, e)) = clock.next() {
            order.push(e);
        }
        order
    };
    assert_eq!(build(), build());
}
