//! Serially reusable resources ("engines").
//!
//! Copy engines, kernel streams, PCIe switches and host link segments are all
//! modelled as *engines*: resources that execute one operation at a time.
//! An operation that needs several engines at once (e.g. a transfer that
//! crosses a PCIe switch occupies the source copy engine, the switch and the
//! destination copy engine) makes a *joint reservation*: it starts when every
//! involved engine is free and holds all of them for its duration.
//!
//! This "availability time" model is the standard way to keep a DES
//! deterministic while still making shared buses a real bottleneck: two
//! transfers contending for one switch serialize, exactly like DMA on
//! hardware where a PCIe link carries one maximum-rate stream at a time.

use crate::time::{Duration, SimTime};

/// Identifier of an engine inside an [`EnginePool`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EngineId(pub usize);

#[derive(Clone, Debug)]
struct Engine {
    name: String,
    free_at: SimTime,
    busy_total: Duration,
    ops: u64,
}

/// A pool of serially reusable engines with joint-reservation semantics.
#[derive(Clone, Debug, Default)]
pub struct EnginePool {
    engines: Vec<Engine>,
}

/// Outcome of a reservation: the operation runs in `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Reservation {
    /// When the operation actually starts (≥ requested earliest time).
    pub start: SimTime,
    /// When the operation completes and the engines become free again.
    pub end: SimTime,
}

impl EnginePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        EnginePool::default()
    }

    /// Registers a new engine and returns its id. `name` is used in traces
    /// and utilization reports.
    pub fn add(&mut self, name: impl Into<String>) -> EngineId {
        let id = EngineId(self.engines.len());
        self.engines.push(Engine {
            name: name.into(),
            free_at: SimTime::ZERO,
            busy_total: Duration::ZERO,
            ops: 0,
        });
        id
    }

    /// Number of registered engines.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// True when no engine has been registered.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// Engine display name.
    pub fn name(&self, id: EngineId) -> &str {
        &self.engines[id.0].name
    }

    /// Earliest time at which `id` is free.
    pub fn free_at(&self, id: EngineId) -> SimTime {
        self.engines[id.0].free_at
    }

    /// Earliest time at which *all* of `ids` are simultaneously free, but not
    /// before `earliest`.
    pub fn earliest_start(&self, ids: &[EngineId], earliest: SimTime) -> SimTime {
        ids.iter()
            .fold(earliest, |acc, id| acc.max(self.engines[id.0].free_at))
    }

    /// The engine of `ids` that *binds* a joint reservation requested at
    /// `earliest`: the one whose `free_at` is latest and strictly after
    /// `earliest`. Returns `None` when no engine delays the start (the
    /// operation is not contended). Ties keep the first engine in `ids`,
    /// so the attribution is deterministic.
    ///
    /// Must be queried *before* [`EnginePool::reserve`] mutates `free_at` —
    /// observability layers use it to charge contention wait to the
    /// saturated link.
    pub fn bottleneck(&self, ids: &[EngineId], earliest: SimTime) -> Option<EngineId> {
        let mut best: Option<(EngineId, SimTime)> = None;
        for &id in ids {
            let f = self.engines[id.0].free_at;
            if f > earliest && best.map(|(_, bf)| f > bf).unwrap_or(true) {
                best = Some((id, f));
            }
        }
        best.map(|(id, _)| id)
    }

    /// Jointly reserves every engine in `ids` for `duration`, starting no
    /// earlier than `earliest`. Returns the realized `[start, end)` window.
    ///
    /// All engines become free at `end`; each accumulates `duration` of busy
    /// time for utilization accounting.
    ///
    /// # Panics
    /// Panics if `ids` contains a duplicate (a single op cannot hold the same
    /// engine twice) — enforced in debug builds only, as the check is O(n²).
    pub fn reserve(&mut self, ids: &[EngineId], earliest: SimTime, duration: Duration) -> Reservation {
        debug_assert!(
            ids.iter()
                .enumerate()
                .all(|(i, a)| ids[i + 1..].iter().all(|b| a != b)),
            "duplicate engine in joint reservation: {ids:?}"
        );
        let start = self.earliest_start(ids, earliest);
        let end = start + duration;
        for id in ids {
            let e = &mut self.engines[id.0];
            e.free_at = end;
            e.busy_total = e.busy_total + duration;
            e.ops += 1;
        }
        Reservation { start, end }
    }

    /// Total busy time accumulated by `id`.
    pub fn busy_total(&self, id: EngineId) -> Duration {
        self.engines[id.0].busy_total
    }

    /// Number of operations executed on `id`.
    pub fn ops(&self, id: EngineId) -> u64 {
        self.engines[id.0].ops
    }

    /// Utilization of `id` over the horizon `[0, horizon)`, in `[0, 1]`.
    /// Returns 0 for a zero horizon.
    pub fn utilization(&self, id: EngineId, horizon: SimTime) -> f64 {
        if horizon.seconds() <= 0.0 {
            return 0.0;
        }
        (self.engines[id.0].busy_total.seconds() / horizon.seconds()).min(1.0)
    }

    /// Iterates over `(id, name, busy_total, ops)` for reporting.
    pub fn report(&self) -> impl Iterator<Item = (EngineId, &str, Duration, u64)> + '_ {
        self.engines
            .iter()
            .enumerate()
            .map(|(i, e)| (EngineId(i), e.name.as_str(), e.busy_total, e.ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_engine_serializes() {
        let mut pool = EnginePool::new();
        let e = pool.add("copy");
        let r1 = pool.reserve(&[e], SimTime::ZERO, Duration::new(2.0));
        assert_eq!(r1.start, SimTime::ZERO);
        assert_eq!(r1.end, SimTime::new(2.0));
        // A second op requested at t=1 must wait until t=2.
        let r2 = pool.reserve(&[e], SimTime::new(1.0), Duration::new(1.0));
        assert_eq!(r2.start, SimTime::new(2.0));
        assert_eq!(r2.end, SimTime::new(3.0));
        assert_eq!(pool.busy_total(e), Duration::new(3.0));
        assert_eq!(pool.ops(e), 2);
    }

    #[test]
    fn joint_reservation_waits_for_all() {
        let mut pool = EnginePool::new();
        let a = pool.add("a");
        let b = pool.add("b");
        pool.reserve(&[a], SimTime::ZERO, Duration::new(5.0));
        // Joint op on (a, b) requested at t=0 must wait for a.
        let r = pool.reserve(&[a, b], SimTime::ZERO, Duration::new(1.0));
        assert_eq!(r.start, SimTime::new(5.0));
        assert_eq!(pool.free_at(b), SimTime::new(6.0));
    }

    #[test]
    fn earliest_start_respects_request_time() {
        let mut pool = EnginePool::new();
        let a = pool.add("a");
        assert_eq!(
            pool.earliest_start(&[a], SimTime::new(7.0)),
            SimTime::new(7.0)
        );
    }

    #[test]
    fn utilization_bounds() {
        let mut pool = EnginePool::new();
        let a = pool.add("a");
        pool.reserve(&[a], SimTime::ZERO, Duration::new(1.0));
        assert!((pool.utilization(a, SimTime::new(2.0)) - 0.5).abs() < 1e-12);
        assert_eq!(pool.utilization(a, SimTime::ZERO), 0.0);
        assert_eq!(pool.utilization(a, SimTime::new(0.5)), 1.0);
    }

    #[test]
    fn bottleneck_identifies_binding_engine() {
        let mut pool = EnginePool::new();
        let a = pool.add("a");
        let b = pool.add("b");
        pool.reserve(&[a], SimTime::ZERO, Duration::new(2.0));
        pool.reserve(&[b], SimTime::ZERO, Duration::new(5.0));
        // b frees last: it binds a joint request at t=0.
        assert_eq!(pool.bottleneck(&[a, b], SimTime::ZERO), Some(b));
        // Requested after both free: nothing binds.
        assert_eq!(pool.bottleneck(&[a, b], SimTime::new(6.0)), None);
        // Only a binds when the request lands between the two frees.
        assert_eq!(pool.bottleneck(&[a], SimTime::new(1.0)), Some(a));
    }

    #[test]
    fn independent_engines_overlap() {
        let mut pool = EnginePool::new();
        let a = pool.add("a");
        let b = pool.add("b");
        let ra = pool.reserve(&[a], SimTime::ZERO, Duration::new(2.0));
        let rb = pool.reserve(&[b], SimTime::ZERO, Duration::new(2.0));
        assert_eq!(ra.start, rb.start);
    }
}
