//! Small statistics helpers shared by the reproduction harness.

/// Online mean/min/max accumulator (Welford variance).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 for fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of the 95% confidence interval of the mean, using the
    /// normal approximation (the paper reports 95% CIs over 8 runs).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.n as f64).sqrt()
        }
    }
}

/// Relative load imbalance of a set of per-worker loads:
/// `max/mean - 1`, i.e. 0 for a perfectly balanced set.
pub fn imbalance(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let mean = loads.iter().sum::<f64>() / loads.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let max = loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    max / mean - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        let var = ((1.5f64).powi(2) + 0.25 + 0.25 + 2.25) / 3.0;
        assert!((s.stddev() - var.sqrt()).abs() < 1e-12);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn summary_empty_and_single() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        s.add(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn imbalance_balanced_is_zero() {
        assert!(imbalance(&[2.0, 2.0, 2.0]).abs() < 1e-12);
    }

    #[test]
    fn imbalance_detects_skew() {
        let i = imbalance(&[1.0, 1.0, 4.0]);
        assert!((i - 1.0).abs() < 1e-12); // max 4, mean 2 -> 1.0
    }

    #[test]
    fn imbalance_edge_cases() {
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0.0, 0.0]), 0.0);
    }
}
