//! Cross-seed batch replica driver.
//!
//! Schedule-space exploration (xk-check's 1100-seed matrices) and best-tile
//! sweeps run the *same* simulation many times with only a seed, controller
//! or tile parameter varying — an embarrassingly parallel replica workload.
//! [`run_replicas`] fans those replicas out over a bounded worker pool,
//! sharing the immutable inputs (task graph, topology, config) by reference
//! and collecting one result per replica **in replica-index order**, so a
//! batched caller observes exactly the vectors a serial loop would have
//! produced (structure-of-arrays over the replica axis: callers index
//! result fields by replica, not by completion order).
//!
//! Determinism: each replica is a pure function of its index; worker
//! scheduling only changes *when* a result is computed, never *what* it is
//! or *where* it lands. Panics inside a replica propagate to the caller
//! once the pool joins, like a serial loop's panic would.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Number of worker threads [`run_replicas`] uses when the caller passes
/// `0` ("auto"): the machine's available parallelism, or 1 when that is
/// unknown.
pub fn default_replica_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0..replicas)` over a pool of `threads` workers (0 = auto via
/// [`default_replica_threads`]) and returns the results indexed by replica.
///
/// `f` must be a pure function of the replica index over shared immutable
/// state — that is what makes the batched result identical to the serial
/// `(0..replicas).map(f).collect()`: results are placed by index, not by
/// completion order. With `threads <= 1` (or a single replica) it *is* that
/// serial loop, with no pool spun up at all.
pub fn run_replicas<T, F>(replicas: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = if threads == 0 {
        default_replica_threads()
    } else {
        threads
    };
    let workers = threads.min(replicas);
    if workers <= 1 {
        return (0..replicas).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = Vec::with_capacity(replicas);
    slots.resize_with(replicas, || None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= replicas {
                        break;
                    }
                    // A send can only fail if the receiver was dropped,
                    // which happens when a sibling worker panicked and the
                    // scope is unwinding — stop quietly and let the scope
                    // re-raise that panic.
                    if tx.send((i, f(i))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (i, result) in rx {
            slots[i] = Some(result);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every replica sends exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_replica_order() {
        // Uneven per-replica work so completion order differs from index
        // order; results must come back indexed anyway.
        let out = run_replicas(64, 4, |i| {
            let spin = (i * 2654435761) % 1000;
            let mut acc = i as u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
            }
            let _ = acc;
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_replicas(33, 1, |i| i as u64 * i as u64);
        let parallel = run_replicas(33, 8, |i| i as u64 * i as u64);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_replicas_and_auto_threads() {
        let out: Vec<u32> = run_replicas(0, 0, |_| unreachable!());
        assert!(out.is_empty());
        let out = run_replicas(3, 0, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn shares_immutable_state_by_reference() {
        let table: Vec<u64> = (0..100).map(|i| i * 7).collect();
        let out = run_replicas(100, 4, |i| table[i] + 1);
        assert_eq!(out, (0..100).map(|i| i * 7 + 1).collect::<Vec<_>>());
    }
}
