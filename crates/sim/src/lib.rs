//! # xk-sim — deterministic discrete-event simulation core
//!
//! This crate is the timing substrate for the whole reproduction: it knows
//! nothing about GPUs or BLAS, only about **virtual time**, **events** and
//! **serially reusable engines**.
//!
//! The executors in `xk-runtime` and the baseline library models in
//! `xk-baselines` are built on three primitives:
//!
//! * [`SimTime`] / [`Duration`] — totally ordered `f64` seconds.
//! * [`Clock`] / [`EventQueue`] — a deterministic event queue with FIFO
//!   tie-breaking, so identical inputs always produce identical traces.
//!   Two pop-identical backends (calendar queue and binary heap) are
//!   selectable via the `XK_EVENT_QUEUE` environment variable; see
//!   [`selected_backend`]. [`run_replicas`] fans independent replica
//!   simulations (seed sweeps, tile sweeps) over a worker pool.
//! * [`EnginePool`] — resources (copy engines, kernel streams, PCIe
//!   switches) that execute one operation at a time, with *joint
//!   reservations* for operations that hold several resources at once.
//!
//! ## Example
//!
//! ```
//! use xk_sim::{Clock, EnginePool, SimTime, Duration};
//!
//! // Two transfers contending for one copy engine serialize.
//! let mut pool = EnginePool::new();
//! let engine = pool.add("gpu0.h2d");
//! let first = pool.reserve(&[engine], SimTime::ZERO, Duration::new(1.0));
//! let second = pool.reserve(&[engine], SimTime::ZERO, Duration::new(1.0));
//! assert_eq!(second.start, first.end);
//!
//! // Events pop in time order, FIFO among ties.
//! let mut clock: Clock<&str> = Clock::new();
//! clock.schedule(SimTime::new(2.0), "later");
//! clock.schedule(SimTime::new(1.0), "sooner");
//! assert_eq!(clock.next().unwrap().1, "sooner");
//! ```

#![warn(missing_docs)]

mod batch;
mod calendar;
mod engine;
mod event;
mod stats;
mod time;

pub use batch::{default_replica_threads, run_replicas};
pub use engine::{EngineId, EnginePool, Reservation};
pub use event::{selected_backend, Clock, EventQueue, QueueBackend, QUEUE_ENV};
pub use stats::{imbalance, Summary};
pub use time::{Duration, SimTime};
