//! Simulated time.
//!
//! The simulator measures time in seconds as an `f64`. [`SimTime`] wraps the
//! raw value to provide a total order (the constructor rejects NaN) so that
//! times can live inside ordered collections such as the event heap.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in seconds since the start of the simulation.
///
/// `SimTime` is totally ordered; constructing one from NaN panics, and the
/// arithmetic operators preserve the non-NaN invariant (panicking otherwise,
/// which would indicate a modelling bug such as a zero-bandwidth link).
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a `SimTime` from raw seconds.
    ///
    /// # Panics
    /// Panics if `seconds` is NaN or negative.
    #[inline]
    pub fn new(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "SimTime must be finite and non-negative, got {seconds}"
        );
        SimTime(seconds)
    }

    /// Raw value in seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Returns the later of `self` and `other`.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// Returns the earlier of `self` and `other`.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// Calendar-queue bucket math: the virtual bucket index of `self` on a
    /// bucket calendar whose day zero starts at `start` and whose buckets
    /// are `1.0 / inv_width` seconds wide.
    ///
    /// Times before `start` map to bucket 0, and indices saturate at
    /// `u64::MAX` instead of wrapping, so callers can compare indices of
    /// far-future outliers without overflow. Monotone in `self`: a later
    /// time never maps to a smaller virtual bucket.
    #[inline]
    pub fn virtual_bucket(self, start: SimTime, inv_width: f64) -> u64 {
        // `as` saturates on float-to-int casts (negative -> 0,
        // too-large/inf -> u64::MAX), which is exactly the clamping the
        // calendar queue needs.
        ((self.0 - start.0) * inv_width) as u64
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Safe: the constructor guarantees non-NaN.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: Duration) -> SimTime {
        SimTime::new(self.0 + d.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, other: SimTime) -> Duration {
        Duration::new((self.0 - other.0).max(0.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

/// A span of simulated time, in seconds.
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Duration(f64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0.0);

    /// Creates a duration from raw seconds.
    ///
    /// # Panics
    /// Panics if `seconds` is NaN, infinite or negative.
    #[inline]
    pub fn new(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "Duration must be finite and non-negative, got {seconds}"
        );
        Duration(seconds)
    }

    /// Raw value in seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }
}

impl Eq for Duration {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Duration {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("Duration is never NaN")
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, other: Duration) -> Duration {
        Duration::new(self.0 + other.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b - a, Duration::new(1.0));
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert_eq!(a - b, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_rejected() {
        let _ = Duration::new(-1.0);
    }

    #[test]
    fn virtual_bucket_math() {
        let start = SimTime::new(1.0);
        let inv_w = 10.0; // buckets 0.1 s wide
        assert_eq!(SimTime::new(0.5).virtual_bucket(start, inv_w), 0);
        assert_eq!(SimTime::new(1.0).virtual_bucket(start, inv_w), 0);
        assert_eq!(SimTime::new(1.05).virtual_bucket(start, inv_w), 0);
        assert_eq!(SimTime::new(1.1).virtual_bucket(start, inv_w), 1);
        assert_eq!(SimTime::new(2.0).virtual_bucket(start, inv_w), 10);
        // Far-future outliers saturate instead of wrapping.
        assert_eq!(
            SimTime::new(f64::MAX).virtual_bucket(start, 1e300),
            u64::MAX
        );
        // Monotone: later times never map to a smaller bucket.
        let mut prev = 0;
        for i in 0..1000 {
            let vb = SimTime::new(i as f64 * 0.037).virtual_bucket(start, inv_w);
            assert!(vb >= prev);
            prev = vb;
        }
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += Duration::new(0.5);
        t += Duration::new(0.25);
        assert_eq!(t, SimTime::new(0.75));
    }
}
