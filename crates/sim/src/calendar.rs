//! Calendar-queue backend for the deterministic event queue.
//!
//! A calendar queue (Brown 1988) spreads pending events over an array of
//! time buckets, each `width` seconds wide, walked cyclically by a dequeue
//! cursor — giving O(1) amortized push/pop when the bucket width tracks the
//! typical inter-event gap. This implementation adds the two refinements a
//! schedule-space checker needs:
//!
//! - **Exact `(time, seq)` order.** Buckets are kept sorted, the cursor
//!   never skips a bucket whose front belongs to the current "year", and a
//!   far-future **overflow ladder** (a plain binary heap) absorbs outliers
//!   that would otherwise force a huge bucket span. Every pop compares the
//!   calendar candidate against the overflow front, so the pop sequence is
//!   bit-identical to a binary heap over the same entries.
//! - **Deterministic resizing.** Bucket count and width are recomputed only
//!   from the queue's own contents (median inter-event gap of a strided
//!   sample) and from operation counters — never from wall-clock time or
//!   randomness — so replaying the same push/pop script rebuilds the same
//!   structure every run.
//!
//! The queue is an internal backend: [`crate::EventQueue`] owns sequence
//! numbering and tie-group semantics and forwards storage here.

use std::collections::{BinaryHeap, VecDeque};

use crate::event::Entry;
use crate::time::SimTime;

/// Minimum number of buckets (power of two).
const MIN_BUCKETS: usize = 16;
/// Maximum number of buckets (power of two); bounds rebuild cost.
const MAX_BUCKETS: usize = 1 << 20;
/// Fallback bucket width when the contents give no usable gap estimate
/// (e.g. every pending event shares one timestamp).
const FALLBACK_WIDTH: f64 = 1.0;
/// Smallest admissible bucket width; keeps `1.0 / width` finite.
const MIN_WIDTH: f64 = 1e-12;
/// Scan/shift work (in probe steps and shifted entries) each operation is
/// allowed for free; anything beyond accrues as rebuild debt.
const COST_BUDGET_PER_OP: u64 = 2;
/// Number of operations between adaptive-rebuild debt checks.
const COST_WINDOW: u64 = 64;
/// Target average entries per occupied bucket. Densities near 1 minimize
/// scan work but scatter entries over so many tiny heap blocks that cache
/// and TLB misses dominate at large queue sizes; a handful of entries per
/// bucket keeps the bucket array compact while insertion shifts stay a few
/// cache lines.
const DENSITY: usize = 4;

/// A time-bucketed priority queue over [`Entry`] values, pop-identical to a
/// min-heap ordered by `(time, seq)`.
pub(crate) struct CalendarQueue<E> {
    /// `nbuckets` deques, each sorted ascending by `(time, seq)`.
    buckets: Vec<VecDeque<Entry<E>>>,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    mask: u64,
    /// Bucket width in seconds and its cached reciprocal.
    width: f64,
    inv_width: f64,
    /// Absolute time of virtual bucket 0.
    start: SimTime,
    /// Dequeue cursor: no calendar entry lives in a virtual bucket below
    /// this (pushes into the past move it back).
    cur_vb: u64,
    /// Entries in `buckets` (excludes the overflow ladder).
    cal_len: usize,
    /// Far-future ladder rung: entries at least a full calendar "year"
    /// past the cursor. `Entry`'s inverted `Ord` makes this a min-heap.
    overflow: BinaryHeap<Entry<E>>,
    /// Scan steps (pop) and shift distance (push) with the operation count
    /// for the current window, plus the excess over the per-op budget
    /// accumulated since the last rebuild. A stale bucket width shows up as
    /// growing debt and triggers a deterministic re-estimate — but only
    /// once the debt rivals the rebuild's own O(len) cost, so rebuilds are
    /// amortized O(1) per operation and a workload the width cannot improve
    /// (e.g. heavy same-time bursts) cannot thrash.
    cost: u64,
    ops: u64,
    debt: u64,
    rebuilds: u64,
}

impl<E> CalendarQueue<E> {
    pub(crate) fn new() -> Self {
        Self::with_capacity(0)
    }

    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let nbuckets = buckets_for(capacity);
        CalendarQueue {
            buckets: (0..nbuckets).map(|_| VecDeque::new()).collect(),
            mask: nbuckets as u64 - 1,
            width: FALLBACK_WIDTH,
            inv_width: 1.0 / FALLBACK_WIDTH,
            start: SimTime::ZERO,
            cur_vb: 0,
            cal_len: 0,
            overflow: BinaryHeap::new(),
            cost: 0,
            ops: 0,
            debt: 0,
            rebuilds: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.cal_len + self.overflow.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grows the bucket array ahead of `additional` expected pushes so the
    /// hot loop does not pay for incremental doublings.
    pub(crate) fn reserve(&mut self, additional: usize) {
        let target = buckets_for(self.len().saturating_add(additional));
        if target > self.buckets.len() {
            self.rebuild(target);
        }
    }

    #[inline]
    fn vb(&self, t: SimTime) -> u64 {
        t.virtual_bucket(self.start, self.inv_width)
    }

    /// Inserts `e` keeping its original sequence number (used both for new
    /// pushes and for re-inserting unpicked tie-group members).
    pub(crate) fn push_entry(&mut self, e: Entry<E>) {
        let vb = self.vb(e.time);
        if vb >= self.cur_vb.saturating_add(self.buckets.len() as u64) {
            // More than a calendar year ahead: ladder it. Migrated back on
            // the next rebuild once the cursor catches up.
            self.overflow.push(e);
            return;
        }
        if vb < self.cur_vb {
            // EventQueue permits pushes at times earlier than the last pop
            // (the Clock forbids it, but the queue contract does not).
            self.cur_vb = vb;
        }
        let bucket = &mut self.buckets[(vb & self.mask) as usize];
        let key = (e.time, e.seq);
        if bucket.back().is_none_or(|last| (last.time, last.seq) < key) {
            bucket.push_back(e); // common case: roughly increasing times
        } else if bucket.front().is_some_and(|first| key < (first.time, first.seq)) {
            bucket.push_front(e); // decreasing pattern stays O(1) too
        } else {
            let idx = bucket.partition_point(|x| (x.time, x.seq) < key);
            // Shifting is a contiguous memmove, far cheaper per entry than
            // the pointer-chasing probe steps pops pay — charge it per
            // couple of cache lines, not per entry, so same-time burst
            // groups landing mid-bucket do not masquerade as a stale width.
            self.cost += ((bucket.len() - idx) as u64) >> 3;
            bucket.insert(idx, e);
        }
        self.cal_len += 1;
        self.ops += 1;
        if self.cal_len > DENSITY * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(self.buckets.len() * 2);
        } else {
            self.maybe_adaptive_rebuild();
        }
    }

    /// Where the minimum entry lives, plus the scan steps spent finding it.
    fn locate_min(&self) -> (u64, Option<MinLoc>) {
        let mut steps = 0;
        let mut cal: Option<(SimTime, u64, u64)> = None; // (time, seq, vb)
        if self.cal_len > 0 {
            // Walk at most one calendar year from the cursor; a sorted
            // bucket's front is its minimum, and a front belonging to the
            // scanned virtual bucket is the calendar-wide minimum.
            let nb = self.buckets.len() as u64;
            for step in 0..nb {
                steps += 1;
                let vbv = self.cur_vb.saturating_add(step);
                let front = self.buckets[(vbv & self.mask) as usize].front();
                if let Some(f) = front {
                    if self.vb(f.time) == vbv {
                        cal = Some((f.time, f.seq, vbv));
                        break;
                    }
                }
            }
            if cal.is_none() {
                // Everything is over a year ahead of the cursor (stale
                // width). Fall back to a direct min over bucket fronts.
                for bucket in &self.buckets {
                    if let Some(f) = bucket.front() {
                        if cal.is_none_or(|(t, s, _)| (f.time, f.seq) < (t, s)) {
                            cal = Some((f.time, f.seq, self.vb(f.time)));
                        }
                    }
                }
            }
        }
        let loc = match (cal, self.overflow.peek()) {
            (None, None) => None,
            (Some((_, _, vbv)), None) => Some(MinLoc::Calendar(vbv)),
            (None, Some(_)) => Some(MinLoc::Overflow),
            (Some((t, s, vbv)), Some(o)) => {
                if (o.time, o.seq) < (t, s) {
                    Some(MinLoc::Overflow)
                } else {
                    Some(MinLoc::Calendar(vbv))
                }
            }
        };
        (steps, loc)
    }

    /// Time of the earliest pending entry (read-only; the cursor is not
    /// advanced).
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        match self.locate_min().1? {
            MinLoc::Overflow => self.overflow.peek().map(|e| e.time),
            MinLoc::Calendar(vbv) => self.buckets[(vbv & self.mask) as usize]
                .front()
                .map(|e| e.time),
        }
    }

    /// Removes and returns the minimum entry by `(time, seq)`.
    pub(crate) fn pop(&mut self) -> Option<Entry<E>> {
        let (steps, loc) = self.locate_min();
        self.cost += steps;
        self.ops += 1;
        let e = match loc? {
            MinLoc::Overflow => self.overflow.pop().expect("peeked overflow entry"),
            MinLoc::Calendar(vbv) => {
                self.cur_vb = vbv;
                self.cal_len -= 1;
                self.buckets[(vbv & self.mask) as usize]
                    .pop_front()
                    .expect("located calendar entry")
            }
        };
        // All remaining entries are at or after the popped time, so the
        // cursor may jump straight to its bucket (skipping drained years).
        self.cur_vb = self.vb(e.time);
        self.after_pop();
        Some(e)
    }

    /// Removes *every* entry whose time equals the current minimum into
    /// `out` (bucket run first, overflow entries after; both in `seq`
    /// order) and returns that time. This is the tie-group primitive
    /// behind [`crate::EventQueue::pop_tied`].
    pub(crate) fn drain_min_time_into(&mut self, out: &mut Vec<Entry<E>>) -> Option<SimTime> {
        let (steps, loc) = self.locate_min();
        self.cost += steps;
        self.ops += 1;
        let t = match loc? {
            MinLoc::Overflow => self.overflow.peek().expect("peeked overflow entry").time,
            MinLoc::Calendar(vbv) => self.buckets[(vbv & self.mask) as usize]
                .front()
                .expect("located calendar entry")
                .time,
        };
        // Equal times share one virtual bucket, and `t` is the global
        // minimum, so the whole calendar-side tie group is the front run
        // of exactly this bucket.
        let vbt = self.vb(t);
        self.cur_vb = vbt;
        let bucket = &mut self.buckets[(vbt & self.mask) as usize];
        while bucket.front().is_some_and(|f| f.time == t) {
            out.push(bucket.pop_front().expect("front run entry"));
            self.cal_len -= 1;
        }
        while self.overflow.peek().is_some_and(|f| f.time == t) {
            out.push(self.overflow.pop().expect("peeked overflow entry"));
        }
        self.after_pop();
        Some(t)
    }

    /// Post-pop maintenance: migrate the ladder when the calendar drains,
    /// shrink when mostly empty, re-estimate a stale width.
    fn after_pop(&mut self) {
        if self.cal_len == 0 && !self.overflow.is_empty() {
            // The cursor caught up with the ladder: re-seat the calendar
            // around the far-future cluster.
            self.rebuild(self.buckets.len());
        } else if self.len() < DENSITY * self.buckets.len() / 8 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild((self.buckets.len() / 2).max(MIN_BUCKETS));
        } else {
            self.maybe_adaptive_rebuild();
        }
    }

    /// Rebuilds when recent operations paid too much scan/shift work per
    /// op — the deterministic signal that the bucket width went stale
    /// (too narrow: long empty scans; too wide: long sorted inserts).
    fn maybe_adaptive_rebuild(&mut self) {
        if self.ops >= COST_WINDOW {
            self.debt = self
                .debt
                .saturating_add(self.cost.saturating_sub(COST_BUDGET_PER_OP * self.ops));
            self.cost = 0;
            self.ops = 0;
            // Rebuild only when the excess work since the last rebuild
            // rivals what the rebuild itself costs. A tiny queue with a
            // degenerate width (everything piled into one bucket) heals
            // within O(len) operations; a large queue whose residual cost
            // the width cannot remove never rebuilds at all.
            if self.debt > self.len() as u64 && self.len() >= MIN_BUCKETS {
                self.rebuild(self.buckets.len());
            }
        }
    }

    /// Loads a whole batch of entries in one rebuild-style pass: a single
    /// sort over old-plus-new followed by sequential distribution, instead
    /// of one sorted insert per entry. Bucket access is monotonic in sorted
    /// order, so the pass is cache-friendly even for millions of entries.
    /// Callers gate on batch size — the pass touches every stored entry,
    /// so it only pays off when the batch is comparable to the queue.
    pub(crate) fn push_bulk(&mut self, extra: Vec<Entry<E>>) {
        if extra.is_empty() {
            return;
        }
        let target = buckets_for(self.len() + extra.len()).max(self.buckets.len());
        self.rebuild_with(target, extra);
    }

    /// Collects every entry, re-estimates the bucket width from the
    /// contents, and redistributes over `nbuckets` buckets (power of two).
    /// Purely a function of the stored entries — deterministic.
    fn rebuild(&mut self, nbuckets: usize) {
        self.rebuild_with(nbuckets, Vec::new());
    }

    fn rebuild_with(&mut self, nbuckets: usize, extra: Vec<Entry<E>>) {
        self.rebuilds += 1;
        self.cost = 0;
        self.ops = 0;
        self.debt = 0;
        debug_assert!(nbuckets.is_power_of_two());
        let mut all: Vec<Entry<E>> = Vec::with_capacity(self.len() + extra.len());
        for b in &mut self.buckets {
            all.extend(b.drain(..));
        }
        all.extend(std::mem::take(&mut self.overflow));
        all.extend(extra);
        if self.buckets.len() != nbuckets {
            self.buckets = (0..nbuckets).map(|_| VecDeque::new()).collect();
            self.mask = nbuckets as u64 - 1;
        }
        self.cal_len = 0;
        self.cur_vb = 0;
        self.cost = 0;
        self.ops = 0;
        // Sorting once lets each bucket be rebuilt by pure push_backs, and
        // the sample below reuses the ordered times. SimTime is
        // non-negative and finite, so the IEEE bit pattern orders exactly
        // like the float and the sort runs on plain integer keys.
        all.sort_unstable_by_key(|e| (e.time.seconds().to_bits(), e.seq));
        self.start = all.first().map_or(SimTime::ZERO, |e| e.time);
        self.width = estimate_width(&all);
        self.inv_width = 1.0 / self.width;
        let horizon = nbuckets as u64; // cur_vb == 0
        for e in all {
            let vb = self.vb(e.time);
            if vb >= horizon {
                self.overflow.push(e);
            } else {
                self.buckets[(vb & self.mask) as usize].push_back(e);
                self.cal_len += 1;
            }
        }
    }
}

enum MinLoc {
    /// Minimum is `overflow.peek()`.
    Overflow,
    /// Minimum is the front of the bucket for this virtual bucket index.
    Calendar(u64),
}

/// Power-of-two bucket count sized so that `len` entries average about
/// [`DENSITY`] per occupied bucket with a 2x margin (so one calendar year
/// spans roughly twice the pending window), clamped to
/// `[MIN_BUCKETS, MAX_BUCKETS]`.
fn buckets_for(len: usize) -> usize {
    (2 * len / DENSITY).next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS)
}

/// Bucket width from the median positive inter-event gap of a strided
/// sample of `sorted` (ascending by time). Median, not mean: one far-future
/// outlier must not blow up the width for the dense cluster. Falls back to
/// [`FALLBACK_WIDTH`] when every sampled gap is zero (equal-time bursts sit
/// in a single bucket at O(1) per op regardless of width).
fn estimate_width<E>(sorted: &[Entry<E>]) -> f64 {
    const MAX_SAMPLE: usize = 1024;
    if sorted.len() < 2 {
        return FALLBACK_WIDTH;
    }
    let stride = sorted.len().div_ceil(MAX_SAMPLE).max(1);
    let mut gaps: Vec<f64> = Vec::with_capacity(MAX_SAMPLE);
    let mut prev: Option<f64> = None;
    for e in sorted.iter().step_by(stride) {
        let t = e.time.seconds();
        if let Some(p) = prev {
            let g = t - p;
            if g > 0.0 {
                gaps.push(g);
            }
        }
        prev = Some(t);
    }
    if gaps.is_empty() {
        return FALLBACK_WIDTH;
    }
    gaps.sort_unstable_by(|a, b| a.partial_cmp(b).expect("gaps are finite"));
    // A sampled gap spans `stride` consecutive entries, so the per-event
    // gap is `gap / stride`. A bucket width of `DENSITY` per-event gaps
    // pairs with `buckets_for`'s count so that one calendar year covers
    // about twice the pending window.
    (DENSITY as f64 * gaps[gaps.len() / 2] / stride as f64).max(MIN_WIDTH)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(t: f64, seq: u64) -> Entry<u64> {
        Entry {
            time: SimTime::new(t),
            seq,
            event: seq,
        }
    }

    /// Reference pop order: sort by (time, seq).
    fn drain(q: &mut CalendarQueue<u64>) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.time.seconds(), e.seq));
        }
        out
    }

    #[test]
    fn pops_sorted_across_resizes() {
        let mut q = CalendarQueue::new();
        // Enough entries to force several grow rebuilds.
        let mut expect = Vec::new();
        for i in 0..500u64 {
            let t = ((i * 2654435761) % 1000) as f64 * 1e-3;
            q.push_entry(entry(t, i));
            expect.push((t, i));
        }
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(drain(&mut q), expect);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_outliers_go_to_overflow_and_come_back() {
        let mut q = CalendarQueue::new();
        for i in 0..64u64 {
            q.push_entry(entry(i as f64 * 1e-6, i));
        }
        // Outliers millions of bucket-widths ahead.
        q.push_entry(entry(1e6, 64));
        q.push_entry(entry(2e6, 65));
        assert!(
            !q.overflow.is_empty(),
            "outliers should land in the overflow ladder"
        );
        let order = drain(&mut q);
        assert_eq!(order.len(), 66);
        assert_eq!(order[64], (1e6, 64));
        assert_eq!(order[65], (2e6, 65));
    }

    #[test]
    fn same_time_burst_pops_in_seq_order() {
        let mut q = CalendarQueue::new();
        for i in 0..1000u64 {
            q.push_entry(entry(1.0, i));
        }
        let order = drain(&mut q);
        assert_eq!(order, (0..1000u64).map(|i| (1.0, i)).collect::<Vec<_>>());
    }

    #[test]
    fn push_below_cursor_moves_it_back() {
        let mut q = CalendarQueue::new();
        q.push_entry(entry(10.0, 0));
        assert_eq!(q.pop().unwrap().seq, 0);
        // The queue contract (unlike the Clock) allows pushing a time
        // earlier than the last pop.
        q.push_entry(entry(1.0, 1));
        q.push_entry(entry(5.0, 2));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn shrink_keeps_order() {
        let mut q = CalendarQueue::with_capacity(4096);
        let before = q.buckets.len();
        for i in 0..4096u64 {
            q.push_entry(entry(i as f64, i));
        }
        // Drain most of the queue; the bucket array should shrink.
        for i in 0..4090u64 {
            assert_eq!(q.pop().unwrap().seq, i);
        }
        assert!(q.buckets.len() < before, "expected shrink rebuild");
        for i in 4090..4096u64 {
            assert_eq!(q.pop().unwrap().seq, i);
        }
    }

    #[test]
    fn drain_min_time_collects_bucket_and_overflow() {
        let mut q = CalendarQueue::new();
        for i in 0..8u64 {
            q.push_entry(entry(1.0, i));
        }
        q.push_entry(entry(2.0, 8));
        // A far-future outlier sits in the overflow ladder and must not
        // join (or disturb) the minimum-time group.
        q.push_entry(entry(1e9, 9));
        let mut out = Vec::new();
        assert_eq!(q.drain_min_time_into(&mut out), Some(SimTime::new(1.0)));
        assert_eq!(out.iter().map(|e| e.seq).collect::<Vec<_>>(), (0..8).collect::<Vec<_>>());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn peek_does_not_advance_cursor() {
        let mut q = CalendarQueue::new();
        q.push_entry(entry(3.0, 0));
        q.push_entry(entry(1.0, 1));
        assert_eq!(q.peek_time(), Some(SimTime::new(1.0)));
        assert_eq!(q.peek_time(), Some(SimTime::new(1.0)));
        // A push earlier than the peeked minimum must still win.
        q.push_entry(entry(0.5, 2));
        assert_eq!(q.pop().unwrap().seq, 2);
    }
}
