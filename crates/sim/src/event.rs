//! Deterministic event queue.
//!
//! A classic discrete-event priority queue keyed by [`SimTime`]. Ties are
//! broken by a monotonically increasing sequence number so that two events
//! scheduled for the same instant always pop in scheduling order — this is
//! what makes whole-simulation runs bit-for-bit reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// Events of type `E` are scheduled at absolute [`SimTime`]s and popped in
/// non-decreasing time order, FIFO among equal times.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with heap space for `capacity` events, so the
    /// hot loop of a simulation never reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Pre-reserves heap space for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Schedules a batch of events in one call. Sequence numbers are
    /// assigned in iteration order, so FIFO tie-breaking among equal times
    /// is identical to pushing them one by one.
    pub fn push_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let it = events.into_iter();
        let (lower, _) = it.size_hint();
        self.heap.reserve(lower);
        for (time, event) in it {
            self.push(time, event);
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Removes and returns one of the earliest-time events, letting `tie`
    /// pick among them when several share the minimum timestamp.
    ///
    /// The tied events are presented to `tie` in FIFO (sequence) order, so
    /// `tie(_) == 0` reproduces [`EventQueue::pop`] exactly. Events not
    /// picked are re-inserted with their original sequence numbers, so
    /// future pops keep the deterministic FIFO order among them. `tie` is
    /// only consulted when two or more events are tied; out-of-range picks
    /// are clamped to the last candidate.
    pub fn pop_tied(&mut self, tie: &mut dyn FnMut(usize) -> usize) -> Option<(SimTime, E)> {
        let first = self.heap.pop()?;
        let t = first.time;
        if self.heap.peek().is_none_or(|e| e.time != t) {
            return Some((first.time, first.event));
        }
        // Collect the whole tie group; BinaryHeap pops it in seq order.
        let mut tied = vec![first];
        while let Some(e) = self.heap.peek() {
            if e.time != t {
                break;
            }
            tied.push(self.heap.pop().expect("peeked entry"));
        }
        let pick = tie(tied.len()).min(tied.len() - 1);
        let chosen = tied.swap_remove(pick);
        // Re-insert the rest; their original `seq` values keep relative
        // FIFO order stable for later pops.
        for e in tied {
            self.heap.push(e);
        }
        Some((chosen.time, chosen.event))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The simulation driver: a clock plus an event queue.
///
/// [`Clock::advance_to`] enforces monotonicity; popping through the clock
/// keeps `now()` consistent with the last delivered event.
pub struct Clock<E> {
    now: SimTime,
    queue: EventQueue<E>,
}

impl<E> Default for Clock<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Clock<E> {
    /// A clock at time zero with an empty queue.
    pub fn new() -> Self {
        Clock {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
        }
    }

    /// A clock at time zero whose queue pre-reserves space for `capacity`
    /// pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        Clock {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity(capacity),
        }
    }

    /// Pre-reserves queue space for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// Current simulated time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past — scheduling into the past would break
    /// causality and always indicates a model bug.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule event in the past: {:?} < {:?}",
            time,
            self.now
        );
        self.queue.push(time, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event heap returned a past event");
        self.now = t;
        Some((t, e))
    }

    /// Pops one of the earliest-time events, advancing the clock to its
    /// timestamp; `tie` picks among same-time candidates (see
    /// [`EventQueue::pop_tied`]). With `tie(_) == 0` this is exactly
    /// [`Clock::next`] — the hook schedule-space checkers use to explore
    /// event orderings without giving up determinism.
    pub fn next_with(&mut self, tie: &mut dyn FnMut(usize) -> usize) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop_tied(tie)?;
        debug_assert!(t >= self.now, "event heap returned a past event");
        self.now = t;
        Some((t, e))
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(3.0), "c");
        q.push(SimTime::new(1.0), "a");
        q.push(SimTime::new(2.0), "b");
        assert_eq!(q.pop(), Some((SimTime::new(1.0), "a")));
        assert_eq!(q.pop(), Some((SimTime::new(2.0), "b")));
        assert_eq!(q.pop(), Some((SimTime::new(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::new(1.0), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime::new(1.0), i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut c = Clock::new();
        c.schedule(SimTime::new(5.0), ());
        c.schedule(SimTime::new(2.0), ());
        assert_eq!(c.now(), SimTime::ZERO);
        c.next();
        assert_eq!(c.now(), SimTime::new(2.0));
        c.next();
        assert_eq!(c.now(), SimTime::new(5.0));
        assert!(c.next().is_none());
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut c = Clock::new();
        c.schedule(SimTime::new(2.0), ());
        c.next();
        c.schedule(SimTime::new(1.0), ());
    }

    #[test]
    fn push_batch_matches_individual_pushes() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(8);
        let events = [
            (SimTime::new(2.0), 'x'),
            (SimTime::new(1.0), 'y'),
            (SimTime::new(2.0), 'z'),
            (SimTime::new(1.0), 'w'),
        ];
        for &(t, e) in &events {
            a.push(t, e);
        }
        b.push_batch(events);
        while let Some(ea) = a.pop() {
            assert_eq!(Some(ea), b.pop());
        }
        assert!(b.is_empty());
    }

    #[test]
    fn reserve_does_not_disturb_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(2.0), 1u8);
        q.reserve(1000);
        q.push(SimTime::new(1.0), 2u8);
        assert_eq!(q.pop(), Some((SimTime::new(1.0), 2u8)));
        assert_eq!(q.pop(), Some((SimTime::new(2.0), 1u8)));
    }

    #[test]
    fn pop_tied_zero_is_fifo() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for (t, e) in [(1.0, 0), (1.0, 1), (2.0, 2), (1.0, 3), (2.0, 4)] {
            a.push(SimTime::new(t), e);
            b.push(SimTime::new(t), e);
        }
        let mut canonical = |_n: usize| 0;
        while let Some(ea) = a.pop() {
            assert_eq!(Some(ea), b.pop_tied(&mut canonical));
        }
        assert!(b.pop_tied(&mut canonical).is_none());
    }

    #[test]
    fn pop_tied_picks_and_preserves_rest() {
        let mut q = EventQueue::new();
        for i in 0..4 {
            q.push(SimTime::new(1.0), i);
        }
        q.push(SimTime::new(2.0), 9);
        let mut ns = Vec::new();
        let got = q
            .pop_tied(&mut |n| {
                ns.push(n);
                2
            })
            .unwrap();
        assert_eq!(got, (SimTime::new(1.0), 2));
        assert_eq!(ns, vec![4]);
        // Remaining tied events keep FIFO order among themselves.
        assert_eq!(q.pop(), Some((SimTime::new(1.0), 0)));
        assert_eq!(q.pop(), Some((SimTime::new(1.0), 1)));
        assert_eq!(q.pop(), Some((SimTime::new(1.0), 3)));
        assert_eq!(q.pop(), Some((SimTime::new(2.0), 9)));
    }

    #[test]
    fn pop_tied_out_of_range_clamps_and_singleton_skips_tie() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(1.0), 'a');
        // Single candidate: tie must not be consulted.
        let mut called = false;
        let got = q.pop_tied(&mut |_| {
            called = true;
            0
        });
        assert_eq!(got, Some((SimTime::new(1.0), 'a')));
        assert!(!called);
        q.push(SimTime::new(3.0), 'x');
        q.push(SimTime::new(3.0), 'y');
        assert_eq!(q.pop_tied(&mut |_| 99), Some((SimTime::new(3.0), 'y')));
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::new(4.0), 1u8);
        q.push(SimTime::new(2.0), 2u8);
        assert_eq!(q.peek_time(), Some(SimTime::new(2.0)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::new(2.0));
    }
}
