//! Deterministic event queue.
//!
//! A classic discrete-event priority queue keyed by [`SimTime`]. Ties are
//! broken by a monotonically increasing sequence number so that two events
//! scheduled for the same instant always pop in scheduling order — this is
//! what makes whole-simulation runs bit-for-bit reproducible.
//!
//! Two storage backends implement that contract:
//!
//! - [`QueueBackend::Calendar`] (the default): a calendar queue with a
//!   far-future overflow ladder ([`crate::calendar`]), O(1) amortized on
//!   the DES hot path.
//! - [`QueueBackend::Heap`]: the classic `BinaryHeap`, kept as the
//!   differential oracle the calendar backend is pinned against.
//!
//! The backend is chosen per queue at construction time from the
//! [`QUEUE_ENV`] environment variable (`XK_EVENT_QUEUE`), mirroring the
//! kernel crate's `XK_KERNEL_ISA` semantics: unset/empty/`auto` pick the
//! best available backend, an explicit name pins it, a recognized-but-
//! unavailable name falls back to the conservative heap, and garbage
//! panics. Both backends pop the exact same `(time, seq)` sequence, so the
//! choice never changes simulation output — only its speed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::calendar::CalendarQueue;
use crate::time::SimTime;

pub(crate) struct Entry<E> {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Environment variable selecting the event-queue backend
/// (`auto`/`calendar`/`heap`; see [`selected_backend`]).
pub const QUEUE_ENV: &str = "XK_EVENT_QUEUE";

/// Storage backend behind an [`EventQueue`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueBackend {
    /// `std::collections::BinaryHeap` — O(log n) per op, the differential
    /// oracle.
    Heap,
    /// Calendar queue with overflow ladder — O(1) amortized, the default.
    Calendar,
}

/// Resolves [`QUEUE_ENV`] to a backend, with `XK_KERNEL_ISA`-style
/// semantics:
///
/// - unset, empty or `auto`: the best available backend (calendar);
/// - `calendar` or `heap`: that backend, pinned;
/// - `ladder`: recognized (the calendar's overflow rung is a one-rung
///   ladder queue; a full ladder backend is not built) but unavailable —
///   falls back to the conservative [`QueueBackend::Heap`] oracle, so a
///   pinned CI leg never silently runs the backend under test;
/// - anything else: panics, so typos in CI matrices fail loudly.
///
/// Names are case-insensitive. Read at queue construction time, not once
/// per process, so tests can flip the variable between queues.
pub fn selected_backend() -> QueueBackend {
    match std::env::var(QUEUE_ENV) {
        Err(_) => QueueBackend::Calendar,
        Ok(v) => {
            let v = v.trim();
            if v.is_empty() || v.eq_ignore_ascii_case("auto") || v.eq_ignore_ascii_case("calendar")
            {
                QueueBackend::Calendar
            } else if v.eq_ignore_ascii_case("heap") || v.eq_ignore_ascii_case("ladder") {
                // `ladder` is a valid name for a backend this build does
                // not provide; fall back to the heap oracle rather than a
                // different accelerated backend.
                QueueBackend::Heap
            } else {
                panic!("{QUEUE_ENV}={v:?} is not a recognized event-queue backend (expected auto, calendar or heap)");
            }
        }
    }
}

enum Storage<E> {
    Heap(BinaryHeap<Entry<E>>),
    Calendar(CalendarQueue<E>),
}

/// A deterministic discrete-event queue.
///
/// Events of type `E` are scheduled at absolute [`SimTime`]s and popped in
/// non-decreasing time order, FIFO among equal times — regardless of which
/// [`QueueBackend`] stores them.
pub struct EventQueue<E> {
    storage: Storage<E>,
    seq: u64,
    /// Scratch for `pop_tied` tie groups, reused across calls so tied pops
    /// under exploration controllers stay allocation-free after warm-up.
    tie_scratch: Vec<Entry<E>>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the backend selected by
    /// [`selected_backend`].
    pub fn new() -> Self {
        Self::with_backend(selected_backend())
    }

    /// Creates an empty queue with space for `capacity` events, so the hot
    /// loop of a simulation never reallocates. Backend from
    /// [`selected_backend`].
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_backend_capacity(selected_backend(), capacity)
    }

    /// Creates an empty queue pinned to `backend`, ignoring [`QUEUE_ENV`].
    /// This is how differential tests and benchmarks hold both backends in
    /// one process.
    pub fn with_backend(backend: QueueBackend) -> Self {
        Self::with_backend_capacity(backend, 0)
    }

    /// Creates an empty queue pinned to `backend` with space for
    /// `capacity` events.
    pub fn with_backend_capacity(backend: QueueBackend, capacity: usize) -> Self {
        let storage = match backend {
            QueueBackend::Heap => Storage::Heap(BinaryHeap::with_capacity(capacity)),
            QueueBackend::Calendar => Storage::Calendar(CalendarQueue::with_capacity(capacity)),
        };
        EventQueue {
            storage,
            seq: 0,
            tie_scratch: Vec::new(),
        }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.storage {
            Storage::Heap(_) => QueueBackend::Heap,
            Storage::Calendar(_) => QueueBackend::Calendar,
        }
    }

    /// Pre-reserves space for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        match &mut self.storage {
            Storage::Heap(h) => h.reserve(additional),
            Storage::Calendar(c) => c.reserve(additional),
        }
    }

    #[inline]
    fn push_entry(&mut self, e: Entry<E>) {
        match &mut self.storage {
            Storage::Heap(h) => h.push(e),
            Storage::Calendar(c) => c.push_entry(e),
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.push_entry(Entry { time, seq, event });
    }

    /// Schedules a batch of events in one call. Sequence numbers are
    /// assigned in iteration order, so FIFO tie-breaking among equal times
    /// is identical to pushing them one by one.
    ///
    /// Reserves from the iterator's upper `size_hint` bound when one is
    /// reported — for `ExactSizeIterator`s (slices, `Vec`s, ranges) that is
    /// the exact length, so the whole batch lands without reallocation.
    pub fn push_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        /// Below this batch size (or when the batch is small next to what
        /// is already queued), per-entry pushes beat a sort-and-distribute
        /// pass over old plus new.
        const BULK_MIN: usize = 256;
        let it = events.into_iter();
        let (lower, upper) = it.size_hint();
        let hint = upper.unwrap_or(lower);
        if hint >= BULK_MIN {
            if let Storage::Calendar(c) = &mut self.storage {
                let mut seq = self.seq;
                let entries: Vec<Entry<E>> = it
                    .map(|(time, event)| {
                        let e = Entry { time, seq, event };
                        seq += 1;
                        e
                    })
                    .collect();
                self.seq = seq;
                // The size hint was only a hint; decide on the real length.
                if entries.len() >= BULK_MIN && entries.len() >= c.len() / 4 {
                    c.push_bulk(entries);
                } else {
                    for e in entries {
                        c.push_entry(e);
                    }
                }
                return;
            }
        }
        self.reserve(hint);
        for (time, event) in it {
            self.push(time, event);
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = match &mut self.storage {
            Storage::Heap(h) => h.pop(),
            Storage::Calendar(c) => c.pop(),
        }?;
        Some((e.time, e.event))
    }

    /// Removes and returns one of the earliest-time events, letting `tie`
    /// pick among them when several share the minimum timestamp.
    ///
    /// The tied events are presented to `tie` in FIFO (sequence) order, so
    /// `tie(_) == 0` reproduces [`EventQueue::pop`] exactly. Events not
    /// picked are re-inserted with their original sequence numbers, so
    /// future pops keep the deterministic FIFO order among them. `tie` is
    /// only consulted when two or more events are tied; out-of-range picks
    /// are clamped to the last candidate.
    pub fn pop_tied(&mut self, tie: &mut dyn FnMut(usize) -> usize) -> Option<(SimTime, E)> {
        match &mut self.storage {
            Storage::Heap(h) => {
                let first = h.pop()?;
                let t = first.time;
                if h.peek().is_none_or(|e| e.time != t) {
                    return Some((first.time, first.event));
                }
                // Collect the whole tie group into the reused scratch;
                // BinaryHeap pops it in seq order.
                let tied = &mut self.tie_scratch;
                debug_assert!(tied.is_empty());
                tied.push(first);
                while let Some(e) = h.peek() {
                    if e.time != t {
                        break;
                    }
                    tied.push(h.pop().expect("peeked entry"));
                }
                let pick = tie(tied.len()).min(tied.len() - 1);
                let chosen = tied.swap_remove(pick);
                // Re-insert the rest; their original `seq` values keep
                // relative FIFO order stable for later pops.
                for e in tied.drain(..) {
                    h.push(e);
                }
                Some((chosen.time, chosen.event))
            }
            Storage::Calendar(c) => {
                let tied = &mut self.tie_scratch;
                debug_assert!(tied.is_empty());
                c.drain_min_time_into(tied)?;
                // The drain yields the bucket run and the overflow run,
                // each already in seq order; one sort merges them (seqs
                // are unique, so unstable is fine and usually a no-op).
                tied.sort_unstable_by_key(|e| e.seq);
                let chosen = if tied.len() == 1 {
                    tied.pop().expect("single tied entry")
                } else {
                    let pick = tie(tied.len()).min(tied.len() - 1);
                    tied.swap_remove(pick)
                };
                for e in tied.drain(..) {
                    c.push_entry(e);
                }
                Some((chosen.time, chosen.event))
            }
        }
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.storage {
            Storage::Heap(h) => h.peek().map(|e| e.time),
            Storage::Calendar(c) => c.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.storage {
            Storage::Heap(h) => h.len(),
            Storage::Calendar(c) => c.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        match &self.storage {
            Storage::Heap(h) => h.is_empty(),
            Storage::Calendar(c) => c.is_empty(),
        }
    }
}

/// The simulation driver: a clock plus an event queue.
///
/// [`Clock::schedule`] enforces monotonicity; popping through the clock
/// keeps `now()` consistent with the last delivered event.
pub struct Clock<E> {
    now: SimTime,
    queue: EventQueue<E>,
}

impl<E> Default for Clock<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Clock<E> {
    /// A clock at time zero with an empty queue (backend from
    /// [`selected_backend`]).
    pub fn new() -> Self {
        Clock {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
        }
    }

    /// A clock at time zero whose queue pre-reserves space for `capacity`
    /// pending events (backend from [`selected_backend`]).
    pub fn with_capacity(capacity: usize) -> Self {
        Clock {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity(capacity),
        }
    }

    /// A clock at time zero pinned to `backend` with space for `capacity`
    /// pending events, ignoring [`QUEUE_ENV`].
    pub fn with_backend_capacity(backend: QueueBackend, capacity: usize) -> Self {
        Clock {
            now: SimTime::ZERO,
            queue: EventQueue::with_backend_capacity(backend, capacity),
        }
    }

    /// Pre-reserves queue space for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.queue.reserve(additional);
    }

    /// Current simulated time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is in the past — scheduling into the past would break
    /// causality and always indicates a model bug.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule event in the past: {:?} < {:?}",
            time,
            self.now
        );
        self.queue.push(time, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue returned a past event");
        self.now = t;
        Some((t, e))
    }

    /// Pops one of the earliest-time events, advancing the clock to its
    /// timestamp; `tie` picks among same-time candidates (see
    /// [`EventQueue::pop_tied`]). With `tie(_) == 0` this is exactly
    /// [`Clock::next`] — the hook schedule-space checkers use to explore
    /// event orderings without giving up determinism.
    pub fn next_with(&mut self, tie: &mut dyn FnMut(usize) -> usize) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop_tied(tie)?;
        debug_assert!(t >= self.now, "event queue returned a past event");
        self.now = t;
        Some((t, e))
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Time of the earliest pending event, if any — without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both backends, explicitly — unit tests must not depend on the
    /// ambient `XK_EVENT_QUEUE` value.
    const BACKENDS: [QueueBackend; 2] = [QueueBackend::Heap, QueueBackend::Calendar];

    #[test]
    fn pops_in_time_order() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            q.push(SimTime::new(3.0), "c");
            q.push(SimTime::new(1.0), "a");
            q.push(SimTime::new(2.0), "b");
            assert_eq!(q.pop(), Some((SimTime::new(1.0), "a")));
            assert_eq!(q.pop(), Some((SimTime::new(2.0), "b")));
            assert_eq!(q.pop(), Some((SimTime::new(3.0), "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn equal_times_pop_fifo() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            for i in 0..100 {
                q.push(SimTime::new(1.0), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((SimTime::new(1.0), i)));
            }
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut c = Clock::new();
        c.schedule(SimTime::new(5.0), ());
        c.schedule(SimTime::new(2.0), ());
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.peek_time(), Some(SimTime::new(2.0)));
        assert!(!c.is_empty());
        c.next();
        assert_eq!(c.now(), SimTime::new(2.0));
        c.next();
        assert_eq!(c.now(), SimTime::new(5.0));
        assert!(c.next().is_none());
        assert!(c.is_empty());
        assert_eq!(c.peek_time(), None);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut c = Clock::new();
        c.schedule(SimTime::new(2.0), ());
        c.next();
        c.schedule(SimTime::new(1.0), ());
    }

    #[test]
    fn push_batch_matches_individual_pushes() {
        for be in BACKENDS {
            let mut a = EventQueue::with_backend(be);
            let mut b = EventQueue::with_backend_capacity(be, 8);
            let events = [
                (SimTime::new(2.0), 'x'),
                (SimTime::new(1.0), 'y'),
                (SimTime::new(2.0), 'z'),
                (SimTime::new(1.0), 'w'),
            ];
            for &(t, e) in &events {
                a.push(t, e);
            }
            b.push_batch(events);
            while let Some(ea) = a.pop() {
                assert_eq!(Some(ea), b.pop());
            }
            assert!(b.is_empty());
        }
    }

    #[test]
    fn reserve_does_not_disturb_order() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            q.push(SimTime::new(2.0), 1u8);
            q.reserve(1000);
            q.push(SimTime::new(1.0), 2u8);
            assert_eq!(q.pop(), Some((SimTime::new(1.0), 2u8)));
            assert_eq!(q.pop(), Some((SimTime::new(2.0), 1u8)));
        }
    }

    #[test]
    fn pop_tied_zero_is_fifo() {
        for be in BACKENDS {
            let mut a = EventQueue::with_backend(be);
            let mut b = EventQueue::with_backend(be);
            for (t, e) in [(1.0, 0), (1.0, 1), (2.0, 2), (1.0, 3), (2.0, 4)] {
                a.push(SimTime::new(t), e);
                b.push(SimTime::new(t), e);
            }
            let mut canonical = |_n: usize| 0;
            while let Some(ea) = a.pop() {
                assert_eq!(Some(ea), b.pop_tied(&mut canonical));
            }
            assert!(b.pop_tied(&mut canonical).is_none());
        }
    }

    #[test]
    fn pop_tied_picks_and_preserves_rest() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            for i in 0..4 {
                q.push(SimTime::new(1.0), i);
            }
            q.push(SimTime::new(2.0), 9);
            let mut ns = Vec::new();
            let got = q
                .pop_tied(&mut |n| {
                    ns.push(n);
                    2
                })
                .unwrap();
            assert_eq!(got, (SimTime::new(1.0), 2));
            assert_eq!(ns, vec![4]);
            // Remaining tied events keep FIFO order among themselves.
            assert_eq!(q.pop(), Some((SimTime::new(1.0), 0)));
            assert_eq!(q.pop(), Some((SimTime::new(1.0), 1)));
            assert_eq!(q.pop(), Some((SimTime::new(1.0), 3)));
            assert_eq!(q.pop(), Some((SimTime::new(2.0), 9)));
        }
    }

    #[test]
    fn pop_tied_out_of_range_clamps_and_singleton_skips_tie() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            q.push(SimTime::new(1.0), 'a');
            // Single candidate: tie must not be consulted.
            let mut called = false;
            let got = q.pop_tied(&mut |_| {
                called = true;
                0
            });
            assert_eq!(got, Some((SimTime::new(1.0), 'a')));
            assert!(!called);
            q.push(SimTime::new(3.0), 'x');
            q.push(SimTime::new(3.0), 'y');
            assert_eq!(q.pop_tied(&mut |_| 99), Some((SimTime::new(3.0), 'y')));
        }
    }

    #[test]
    fn peek_matches_pop() {
        for be in BACKENDS {
            let mut q = EventQueue::with_backend(be);
            q.push(SimTime::new(4.0), 1u8);
            q.push(SimTime::new(2.0), 2u8);
            assert_eq!(q.peek_time(), Some(SimTime::new(2.0)));
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime::new(2.0));
        }
    }

    #[test]
    fn backend_reports_and_defaults() {
        assert_eq!(
            EventQueue::<u8>::with_backend(QueueBackend::Heap).backend(),
            QueueBackend::Heap
        );
        assert_eq!(
            EventQueue::<u8>::with_backend(QueueBackend::Calendar).backend(),
            QueueBackend::Calendar
        );
    }
}
