//! Integration tests of the observability layer: golden Chrome-JSON
//! export, `trace_event` schema validation, counter/trace consistency and
//! the critical-path invariant across runtime configurations.

use xk_kernels::perfmodel::TileOp;
use xk_runtime::task::{Access, TaskAccess};
use xk_runtime::{DataInfo, Heuristics, ObsLevel, RuntimeConfig, SchedulerKind, SimSession, TaskGraph};
use xk_topo::builders::nvlink_all_to_all;
use xk_topo::dgx1;
use xk_trace::export::{chrome_json, jsonck};
use xk_trace::{Place, SpanKind};

const MB: u64 = 1 << 20;

/// The 2-GPU GEMM of the golden trace: one shared input tile pulled over
/// PCIe once and forwarded device-to-device, one output tile per GPU,
/// results flushed back to the host.
fn two_gpu_gemm() -> TaskGraph {
    let mut g = TaskGraph::new();
    let a = g.add_host_tile(32 * MB, false, "A(0,0)");
    let mut outs = Vec::new();
    for i in 0..2usize {
        let c = g.add_data(DataInfo::host(32 * MB, false, format!("C({i},0)")).with_owner(i));
        g.add_task(
            TileOp::Gemm { m: 2048, n: 2048, k: 2048 },
            vec![
                TaskAccess { handle: a, access: Access::Read },
                TaskAccess { handle: c, access: Access::ReadWrite },
            ],
            format!("gemm C({i},0)"),
        );
        outs.push(c);
    }
    for (i, c) in outs.into_iter().enumerate() {
        g.add_flush(&[c], format!("coherent C({i},0)"));
    }
    g
}

/// A broadcast graph on the DGX-1: one shared tile read by one task per
/// GPU (exercises PCIe, switch uplinks and NVLink forwards).
fn broadcast(n: usize) -> TaskGraph {
    let mut g = TaskGraph::new();
    let a = g.add_host_tile(32 * MB, true, "A");
    for i in 0..n {
        let c = g.add_data(DataInfo::host(32 * MB, true, format!("C{i}")).with_owner(i));
        g.add_task(
            TileOp::Gemm { m: 2048, n: 2048, k: 2048 },
            vec![
                TaskAccess { handle: a, access: Access::Read },
                TaskAccess { handle: c, access: Access::ReadWrite },
            ],
            format!("t{i}"),
        );
    }
    g
}

/// The exported Chrome JSON of the 2-GPU GEMM is byte-identical to the
/// checked-in golden file (and the golden is schema-valid). Regenerate
/// with `cargo test -p xk-runtime --test observability -- --ignored
/// regenerate_golden` after an intentional format change.
#[test]
fn golden_chrome_json_two_gpu_gemm() {
    let topo = nvlink_all_to_all(2);
    let run = SimSession::on(&topo).observe(ObsLevel::Full).run(&two_gpu_gemm());
    let json = chrome_json(run.trace());
    let golden = include_str!("golden/two_gpu_gemm.trace.json");
    assert_eq!(json, golden, "chrome export drifted from the golden file");
    let events = jsonck::validate_trace_events(&json).expect("golden is schema-valid");
    assert!(events > 0);
}

/// Writes the golden file; run manually after intentional format changes.
#[test]
#[ignore]
fn regenerate_golden() {
    let topo = nvlink_all_to_all(2);
    let run = SimSession::on(&topo).observe(ObsLevel::Full).run(&two_gpu_gemm());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/two_gpu_gemm.trace.json");
    std::fs::write(path, chrome_json(run.trace())).expect("golden written");
}

/// Every exported trace of a full DGX-1 run passes the `trace_event`
/// schema check: metadata first, complete events with non-negative
/// durations, flow events with ids and correct binding points.
#[test]
fn dgx1_export_is_schema_valid() {
    let topo = dgx1();
    let run = SimSession::on(&topo).observe(ObsLevel::Full).run(&broadcast(8));
    let json = chrome_json(run.trace());
    let events = jsonck::validate_trace_events(&json).expect("schema-valid export");
    // At least: 9 process + 9*lane thread metadata, one X per span.
    assert!(events > run.trace().len(), "{events} events for {} spans", run.trace().len());
}

/// Per-link occupancy equals the sum of span durations on that engine:
/// kernel engines against kernel spans per GPU, and utilization stays in
/// `[0, 1]` with `busy <= makespan` everywhere.
#[test]
fn link_busy_matches_span_duration_sums() {
    let topo = dgx1();
    let run = SimSession::on(&topo).observe(ObsLevel::Full).run(&broadcast(8));
    let obs = run.metrics().expect("full observability");
    for g in 0..topo.n_gpus() {
        let spans_sum: f64 = run
            .trace()
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Kernel && s.place == Place::Gpu(g as u32))
            .map(|s| s.duration())
            .sum();
        let link = obs.link(&format!("gpu{g}.kernel")).expect("kernel engine reported");
        assert!(
            (link.busy - spans_sum).abs() <= 1e-9 * spans_sum.max(1.0),
            "gpu{g}: busy {} != span sum {spans_sum}",
            link.busy
        );
    }
    for l in &obs.links {
        assert!((0.0..=1.0 + 1e-12).contains(&l.utilization), "{}: utilization {}", l.name, l.utilization);
        assert!(l.busy <= obs.makespan + 1e-12, "{}: busy {} > makespan {}", l.name, l.busy, obs.makespan);
        assert!(l.wait >= 0.0);
    }
}

/// The critical-path invariant holds across schedulers and heuristic
/// ablations: the chain's end equals the makespan bit-for-bit and its
/// per-kind composition plus the runtime gap tiles `[0, makespan]`.
#[test]
fn critical_path_invariant_across_configs() {
    let topo = dgx1();
    let configs = [
        RuntimeConfig::xkblas(),
        RuntimeConfig::default().with_scheduler(SchedulerKind::Dmdas),
        RuntimeConfig::default().with_scheduler(SchedulerKind::StaticOwner),
        RuntimeConfig::default().with_heuristics(Heuristics::none()),
        RuntimeConfig::default().with_heuristics(Heuristics::host_only()),
    ];
    for cfg in configs {
        let run = SimSession::on(&topo)
            .config(cfg.clone())
            .observe(ObsLevel::Full)
            .run(&broadcast(8));
        let obs = run.metrics().expect("full observability");
        let cp = obs.critical_path.as_ref().expect("critical path recorded");
        assert_eq!(
            cp.length.to_bits(),
            obs.makespan.to_bits(),
            "critical path {} != makespan {} under {cfg:?}",
            cp.length,
            obs.makespan
        );
        let covered: f64 = cp.by_kind.values().sum::<f64>() + cp.runtime_gap;
        assert!(
            (covered - obs.makespan).abs() <= 1e-9 * obs.makespan.max(1.0),
            "chain covers {covered} of makespan {} under {cfg:?}",
            obs.makespan
        );
    }
}

/// `ObsLevel::Off` records nothing and perturbs nothing: the outcome's
/// report is `None` while the trace stays bit-identical to a full run.
#[test]
fn off_level_is_free_and_identical() {
    let topo = dgx1();
    let g = broadcast(8);
    let off = SimSession::on(&topo).observe(ObsLevel::Off).run(&g);
    let full = SimSession::on(&topo).observe(ObsLevel::Full).run(&g);
    assert!(off.metrics().is_none());
    assert!(full.metrics().is_some());
    assert_eq!(off.outcome().makespan.to_bits(), full.outcome().makespan.to_bits());
    assert_eq!(off.trace().len(), full.trace().len());
    for (a, b) in off.trace().spans().iter().zip(full.trace().spans()) {
        assert_eq!(a.start.to_bits(), b.start.to_bits());
        assert_eq!(a.end.to_bits(), b.end.to_bits());
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.flow, b.flow);
    }
}
