//! Property-based tests of the software-cache protocol: random operation
//! sequences must preserve the MOSI + UnderTransfer invariants.

use proptest::prelude::*;
use xk_runtime::{DataInfo, DataRegistry, HandleId, SoftwareCache};
use xk_sim::SimTime;

#[derive(Clone, Debug)]
enum Op {
    BeginTransfer { h: usize, g: usize, ready: f64 },
    MarkWritten { h: usize, g: usize },
    Flush { h: usize },
    Touch { h: usize, g: usize },
    MakeRoom { g: usize, bytes: u64 },
    PinUnpin { h: usize, g: usize },
}

fn arb_op(n_handles: usize, n_gpus: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n_handles, 0..n_gpus, 0.0f64..10.0)
            .prop_map(|(h, g, ready)| Op::BeginTransfer { h, g, ready }),
        (0..n_handles, 0..n_gpus).prop_map(|(h, g)| Op::MarkWritten { h, g }),
        (0..n_handles).prop_map(|h| Op::Flush { h }),
        (0..n_handles, 0..n_gpus).prop_map(|(h, g)| Op::Touch { h, g }),
        (0..n_gpus, 1u64..2000).prop_map(|(g, bytes)| Op::MakeRoom { g, bytes }),
        (0..n_handles, 0..n_gpus).prop_map(|(h, g)| Op::PinUnpin { h, g }),
    ]
}

fn registry(n: usize) -> DataRegistry {
    let mut reg = DataRegistry::new();
    for i in 0..n {
        reg.add(DataInfo::host(512, i % 2 == 0, format!("t{i}")));
    }
    reg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any sequence of operations:
    /// * at most one device holds a dirty copy,
    /// * a handle is never simultaneously dirty and host-valid,
    /// * per-device byte accounting is exact,
    /// * a written-then-unflushed handle always has *some* valid replica.
    #[test]
    fn protocol_invariants_hold(
        ops in proptest::collection::vec(arb_op(6, 4), 1..80),
    ) {
        let reg = registry(6);
        let mut cache = SoftwareCache::new(4, 4096, &reg);
        for op in ops {
            match op {
                Op::BeginTransfer { h, g, ready } => {
                    let h = HandleId(h);
                    // Only meaningful if a source exists: host-valid or
                    // some valid replica (mirrors the executor contract).
                    cache.begin_transfer(h, g, 512, SimTime::new(ready));
                }
                Op::MarkWritten { h, g } => {
                    cache.mark_written(HandleId(h), g, 512, &reg);
                }
                Op::Flush { h } => {
                    let h = HandleId(h);
                    if cache.dirty_on(h).is_some() {
                        cache.mark_flushed(h);
                    }
                }
                Op::Touch { h, g } => cache.touch(HandleId(h), g),
                Op::MakeRoom { g, bytes } => {
                    let _ = cache.make_room(g, bytes, &[], &reg);
                }
                Op::PinUnpin { h, g } => {
                    let h = HandleId(h);
                    cache.pin(h, g);
                    cache.unpin(h, g);
                }
            }
            cache.check_invariants(&reg).unwrap();
            // Dirty handles must hold a valid replica somewhere.
            for (h, _) in reg.iter() {
                if let Some(owner) = cache.dirty_on(h) {
                    prop_assert!(
                        cache.valid_on(h, owner, SimTime::new(1e12)),
                        "dirty {h:?} has no replica on gpu{owner}"
                    );
                }
            }
        }
    }

    /// `make_room` never evicts pinned handles and always leaves byte
    /// accounting consistent.
    #[test]
    fn make_room_respects_pins(
        resident in proptest::collection::btree_set(0usize..8, 1..8),
        pinned in proptest::collection::btree_set(0usize..8, 0..4),
        request in 1u64..4096,
    ) {
        let reg = registry(8);
        let mut cache = SoftwareCache::new(1, 2048, &reg);
        for &h in &resident {
            cache.begin_transfer(HandleId(h), 0, 512, SimTime::ZERO);
        }
        for &h in &pinned {
            cache.pin(HandleId(h), 0);
        }
        let _ = cache.make_room(0, request, &[], &reg);
        cache.check_invariants(&reg).unwrap();
        for &h in pinned.intersection(&resident) {
            prop_assert!(
                cache.replica(HandleId(h), 0).is_some(),
                "pinned handle {h} evicted"
            );
        }
    }

    /// Under-transfer replicas become valid exactly at their deadline.
    #[test]
    fn under_transfer_deadline(ready in 0.1f64..100.0, eps in 1e-6f64..0.05) {
        let reg = registry(1);
        let mut cache = SoftwareCache::new(1, 4096, &reg);
        let h = HandleId(0);
        cache.begin_transfer(h, 0, 512, SimTime::new(ready));
        prop_assert!(!cache.valid_on(h, 0, SimTime::new(ready - eps)));
        prop_assert!(cache.valid_on(h, 0, SimTime::new(ready)));
        prop_assert_eq!(cache.in_flight(h, SimTime::new(ready - eps)).len(), 1);
        prop_assert!(cache.in_flight(h, SimTime::new(ready)).is_empty());
    }
}
