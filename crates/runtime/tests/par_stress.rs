//! Stress test: `run_parallel` over a 100k-task random DAG.
//!
//! Every task stamps a global completion sequence number; afterwards each
//! task's stamp must be later than all of its predecessors' — a full
//! topological-order witness for the claim-flag executor, the batched
//! successor release and the parking protocol at scale.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use xk_kernels::perfmodel::TileOp;
use xk_runtime::{run_parallel, Access, TaskAccess, TaskGraph, TaskId};

const N_TASKS: usize = 100_000;
const N_HANDLES: usize = 4096;

/// Deterministic xorshift64* — no rand dependency in the hot loop.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn hundred_thousand_task_random_dag_runs_in_dependency_order() {
    let mut rng = Rng(0x9E3779B97F4A7C15);
    let mut g = TaskGraph::new();
    let handles: Vec<_> = (0..N_HANDLES)
        .map(|i| g.add_host_tile(64, false, format!("h{i}")))
        .collect();

    let stamps: Arc<Vec<AtomicUsize>> =
        Arc::new((0..N_TASKS).map(|_| AtomicUsize::new(0)).collect());
    let clock = Arc::new(AtomicUsize::new(0));

    for t in 0..N_TASKS {
        // 1-3 accesses; mostly reads plus one writer-ish access so the DAG
        // has both wide fan-out (shared reads) and serial chains.
        let n_acc = 1 + rng.below(3);
        let mut accesses = [TaskAccess { handle: handles[0], access: Access::Read }; 3];
        for acc in accesses.iter_mut().take(n_acc) {
            let h = handles[rng.below(N_HANDLES)];
            let mode = match rng.below(10) {
                0..=5 => Access::Read,
                6..=7 => Access::ReadWrite,
                _ => Access::Write,
            };
            *acc = TaskAccess { handle: h, access: mode };
        }
        let stamps = stamps.clone();
        let clock = clock.clone();
        g.add_task_with_body(
            TileOp::Gemm { m: 4, n: 4, k: 4 },
            &accesses[..n_acc],
            "t",
            Box::new(move || {
                stamps[t].store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
            }),
        );
    }

    let out = run_parallel(&mut g, 0);
    assert_eq!(out.tasks_run, N_TASKS);
    assert_eq!(clock.load(Ordering::SeqCst), N_TASKS);

    for t in 0..N_TASKS {
        let my_stamp = stamps[t].load(Ordering::SeqCst);
        assert!(my_stamp > 0, "task {t} never ran");
        for p in g.predecessors(TaskId(t)) {
            let pred_stamp = stamps[p.0].load(Ordering::SeqCst);
            assert!(
                pred_stamp < my_stamp,
                "task {t} (stamp {my_stamp}) ran before its dependency {} (stamp {pred_stamp})",
                p.0
            );
        }
    }
}
