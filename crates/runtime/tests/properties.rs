//! Property-based tests of the runtime: dependency safety, cache protocol
//! invariants, and simulator conservation laws on random task graphs.

use proptest::prelude::*;
use xk_kernels::perfmodel::TileOp;
use xk_runtime::task::{Access, TaskAccess};
use xk_runtime::{
    DataInfo, Heuristics, RuntimeConfig, SchedulerKind, SimOutcome, SimSession, TaskGraph,
};
use xk_topo::{dgx1, FabricSpec};
use xk_trace::SpanKind;

/// All simulated runs go through the session front door.
fn simulate(graph: &TaskGraph, topo: &FabricSpec, cfg: &RuntimeConfig) -> SimOutcome {
    SimSession::on(topo).config(cfg.clone()).run(graph).into_outcome()
}

const MB: u64 = 1 << 20;

/// A random but well-formed graph: `n_tiles` tiles, `ops` random accesses.
fn build_graph(n_tiles: usize, ops: &[(usize, usize, u8)]) -> TaskGraph {
    let mut g = TaskGraph::new();
    let tiles: Vec<_> = (0..n_tiles)
        .map(|i| g.add_data(DataInfo::host(4 * MB, i % 2 == 0, format!("t{i}")).with_owner(i % 8)))
        .collect();
    for (idx, &(a, b, mode)) in ops.iter().enumerate() {
        let ha = tiles[a % n_tiles];
        let hb = tiles[b % n_tiles];
        let accesses = match mode % 3 {
            0 => vec![
                TaskAccess { handle: ha, access: Access::Read },
                TaskAccess { handle: hb, access: Access::ReadWrite },
            ],
            1 => vec![TaskAccess { handle: hb, access: Access::Write }],
            _ => {
                if ha == hb {
                    vec![TaskAccess { handle: ha, access: Access::ReadWrite }]
                } else {
                    vec![
                        TaskAccess { handle: ha, access: Access::Read },
                        TaskAccess { handle: hb, access: Access::Read },
                        // Reads need a written tile somewhere to anchor
                        // scheduling; use hb as output too.
                        TaskAccess { handle: tiles[(a + b) % n_tiles], access: Access::ReadWrite },
                    ]
                }
            }
        };
        // Deduplicate handles (a task must not access one tile twice).
        let mut seen = Vec::new();
        let accesses: Vec<_> = accesses
            .into_iter()
            .filter(|acc| {
                if seen.contains(&acc.handle) {
                    false
                } else {
                    seen.push(acc.handle);
                    true
                }
            })
            .collect();
        g.add_task(TileOp::Gemm { m: 256, n: 256, k: 256 }, accesses, format!("op{idx}"));
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random graph completes on every scheduler with no deadlock,
    /// and per-engine spans never overlap.
    #[test]
    fn random_graphs_complete_everywhere(
        n_tiles in 1usize..12,
        ops in proptest::collection::vec((0usize..12, 0usize..12, 0u8..3), 1..40),
        sched_pick in 0usize..4,
    ) {
        let topo = dgx1();
        let sched = [
            SchedulerKind::LocalityWorkStealing,
            SchedulerKind::Dmdas,
            SchedulerKind::RoundRobin,
            SchedulerKind::StaticOwner,
        ][sched_pick];
        let g = build_graph(n_tiles, &ops);
        let n_tasks = g.len();
        let out = simulate(&g, &topo, &RuntimeConfig::default().with_scheduler(sched));
        prop_assert_eq!(out.tasks_run, n_tasks);
        prop_assert!(out.makespan >= 0.0);
        // Kernel spans on one (gpu, lane) never overlap.
        let mut by_lane: std::collections::BTreeMap<(xk_trace::Place, u8), Vec<(f64, f64)>> =
            Default::default();
        for s in out.trace.spans() {
            if s.kind == SpanKind::Kernel {
                by_lane.entry((s.place, s.lane)).or_default().push((s.start, s.end));
            }
        }
        for spans in by_lane.values_mut() {
            spans.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0 + 1e-9, "kernel overlap {w:?}");
            }
        }
    }

    /// Determinism: identical graphs and configs produce identical traces.
    #[test]
    fn simulation_is_deterministic(
        n_tiles in 1usize..10,
        ops in proptest::collection::vec((0usize..10, 0usize..10, 0u8..3), 1..30),
    ) {
        let topo = dgx1();
        let cfg = RuntimeConfig::default();
        let o1 = simulate(&build_graph(n_tiles, &ops), &topo, &cfg);
        let o2 = simulate(&build_graph(n_tiles, &ops), &topo, &cfg);
        prop_assert_eq!(o1.makespan, o2.makespan);
        prop_assert_eq!(o1.bytes_h2d, o2.bytes_h2d);
        prop_assert_eq!(o1.bytes_p2p, o2.bytes_p2p);
        prop_assert_eq!(o1.trace.len(), o2.trace.len());
    }

    /// The heuristics can only reduce host traffic, never break completion;
    /// and disabling them never *reduces* H2D bytes on read-shared graphs.
    #[test]
    fn heuristics_never_increase_host_traffic(
        n_readers in 2usize..8,
        tile_mb in 1u64..32,
    ) {
        let topo = dgx1();
        let build = || {
            let mut g = TaskGraph::new();
            let shared = g.add_host_tile(tile_mb * MB, true, "A");
            for i in 0..n_readers {
                let c = g.add_data(DataInfo::host(tile_mb * MB, true, format!("C{i}")).with_owner(i));
                g.add_task(
                    TileOp::Gemm { m: 512, n: 512, k: 512 },
                    vec![
                        TaskAccess { handle: shared, access: Access::Read },
                        TaskAccess { handle: c, access: Access::ReadWrite },
                    ],
                    format!("t{i}"),
                );
            }
            g
        };
        let on = simulate(&build(), &topo, &RuntimeConfig::default());
        let off = simulate(
            &build(),
            &topo,
            &RuntimeConfig::default().with_heuristics(Heuristics::none()),
        );
        prop_assert!(on.bytes_h2d <= off.bytes_h2d,
            "heuristics increased H2D: {} > {}", on.bytes_h2d, off.bytes_h2d);
        prop_assert_eq!(on.tasks_run, off.tasks_run);
    }

    /// Makespan is never below the critical path (conservation law).
    #[test]
    fn makespan_at_least_critical_path(
        n_tiles in 1usize..8,
        ops in proptest::collection::vec((0usize..8, 0usize..8, 0u8..3), 1..25),
    ) {
        let topo = dgx1();
        let cfg = RuntimeConfig::default();
        let g = build_graph(n_tiles, &ops);
        let cp = g.critical_path_seconds(&cfg.gpu_model);
        let out = simulate(&g, &topo, &cfg);
        prop_assert!(out.makespan >= cp - 1e-9, "makespan {} < cp {}", out.makespan, cp);
    }
}

/// Transfer byte accounting matches the trace.
#[test]
fn byte_accounting_matches_trace() {
    let topo = dgx1();
    let mut g = TaskGraph::new();
    let a = g.add_host_tile(8 * MB, true, "A");
    for i in 0..4 {
        let c = g.add_data(DataInfo::host(8 * MB, true, format!("C{i}")).with_owner(i));
        g.add_task(
            TileOp::Gemm { m: 512, n: 512, k: 512 },
            vec![
                TaskAccess { handle: a, access: Access::Read },
                TaskAccess { handle: c, access: Access::ReadWrite },
            ],
            format!("t{i}"),
        );
    }
    g.add_flush(&[a], "flush");
    let out = simulate(&g, &topo, &RuntimeConfig::default());
    let traced = out.trace.bytes_by_kind();
    assert_eq!(
        traced.get(&SpanKind::H2D).copied().unwrap_or(0),
        out.bytes_h2d
    );
    assert_eq!(
        traced.get(&SpanKind::P2P).copied().unwrap_or(0),
        out.bytes_p2p
    );
    assert_eq!(
        traced.get(&SpanKind::D2H).copied().unwrap_or(0),
        out.bytes_d2h
    );
}
