//! The CSR-based `TaskGraph` must infer exactly the edges the seed's
//! straightforward representation did: per-handle histories in a HashMap,
//! `readers_since_write` as owned Vecs, successors as `Vec<Vec<TaskId>>`.
//! This oracle replays that algorithm over random access sequences
//! (Read/Write/ReadWrite mixes, duplicate handles, flushes) and compares
//! edge-for-edge.

use std::collections::HashMap;

use proptest::prelude::*;
use xk_kernels::perfmodel::TileOp;
use xk_runtime::{Access, TaskAccess, TaskGraph, TaskId};

fn op() -> TileOp {
    TileOp::Gemm { m: 8, n: 8, k: 8 }
}

/// One submitted operation of the random program.
#[derive(Clone, Debug)]
enum Op {
    /// A kernel task: `(handle index, access mode)` pairs, duplicates allowed.
    Task(Vec<(usize, Access)>),
    /// A flush over a set of handle indices.
    Flush(Vec<usize>),
}

/// The seed's graph algorithm, verbatim: the reference the CSR graph must
/// reproduce.
#[derive(Default)]
struct Oracle {
    last_writer: HashMap<usize, usize>,
    readers_since_write: HashMap<usize, Vec<usize>>,
    successors: Vec<Vec<usize>>,
    n_predecessors: Vec<usize>,
    predecessors: Vec<Vec<usize>>,
    n_edges: usize,
}

impl Oracle {
    fn push(&mut self, accesses: &[(usize, Access)]) {
        let id = self.successors.len();
        let mut deps: Vec<usize> = Vec::new();
        for &(h, acc) in accesses {
            if acc.reads() {
                if let Some(&w) = self.last_writer.get(&h) {
                    deps.push(w);
                }
            }
            if acc.writes() {
                if let Some(&w) = self.last_writer.get(&h) {
                    deps.push(w);
                }
                deps.extend(
                    self.readers_since_write
                        .get(&h)
                        .into_iter()
                        .flatten()
                        .copied(),
                );
            }
        }
        deps.sort_unstable();
        deps.dedup();
        deps.retain(|&d| d != id);
        for &(h, acc) in accesses {
            if acc.writes() {
                self.last_writer.insert(h, id);
                self.readers_since_write.entry(h).or_default().clear();
            } else if acc.reads() {
                self.readers_since_write.entry(h).or_default().push(id);
            }
        }
        self.successors.push(Vec::new());
        self.n_predecessors.push(deps.len());
        for &d in &deps {
            self.successors[d].push(id);
            self.n_edges += 1;
        }
        self.predecessors.push(deps);
    }
}

fn access_strategy() -> impl Strategy<Value = Access> {
    prop_oneof![
        Just(Access::Read),
        Just(Access::Write),
        Just(Access::ReadWrite),
    ]
}

fn ops_strategy(n_handles: usize) -> impl Strategy<Value = Vec<Op>> {
    let task = prop::collection::vec((0..n_handles, access_strategy()), 1..5).prop_map(Op::Task);
    let flush = prop::collection::vec(0..n_handles, 1..4).prop_map(Op::Flush);
    prop::collection::vec(prop_oneof![4 => task, 1 => flush], 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn csr_matches_per_task_vec_oracle(ops in ops_strategy(16)) {
        let mut g = TaskGraph::new();
        let handles: Vec<_> = (0..16)
            .map(|i| g.add_host_tile(64, false, format!("h{i}")))
            .collect();
        let mut oracle = Oracle::default();

        for op_desc in &ops {
            match op_desc {
                Op::Task(accs) => {
                    let accesses: Vec<TaskAccess> = accs
                        .iter()
                        .map(|&(h, access)| TaskAccess { handle: handles[h], access })
                        .collect();
                    g.add_task(op(), accesses, "t");
                    oracle.push(accs);
                }
                Op::Flush(hs) => {
                    let unique: Vec<_> = hs.iter().map(|&h| handles[h]).collect();
                    g.add_flush(&unique, "f");
                    let accs: Vec<(usize, Access)> =
                        hs.iter().map(|&h| (h, Access::Read)).collect();
                    oracle.push(&accs);
                }
            }
        }

        prop_assert_eq!(g.len(), oracle.successors.len());
        prop_assert_eq!(g.n_edges(), oracle.n_edges);
        let pred_counts: Vec<usize> = g.pred_counts().collect();
        prop_assert_eq!(&pred_counts, &oracle.n_predecessors);
        for t in 0..g.len() {
            let id = TaskId(t);
            let preds: Vec<usize> = g.predecessors(id).map(|p| p.0).collect();
            prop_assert_eq!(&preds, &oracle.predecessors[t], "predecessors of task {}", t);
            let succs: Vec<usize> = g.successors(id).iter().map(|s| s.0).collect();
            prop_assert_eq!(&succs, &oracle.successors[t], "successors of task {}", t);
        }
        let roots: Vec<usize> = g.roots().iter().map(|r| r.0).collect();
        let oracle_roots: Vec<usize> = oracle
            .n_predecessors
            .iter()
            .enumerate()
            .filter(|(_, &n)| n == 0)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(roots, oracle_roots);
    }

    #[test]
    fn interleaved_queries_stay_consistent(ops in ops_strategy(8)) {
        // Query successors *between* pushes: the lazy successor cache must
        // invalidate and rebuild correctly.
        let mut g = TaskGraph::new();
        let handles: Vec<_> = (0..8)
            .map(|i| g.add_host_tile(64, false, format!("h{i}")))
            .collect();
        let mut oracle = Oracle::default();
        for (step, op_desc) in ops.iter().enumerate() {
            if let Op::Task(accs) = op_desc {
                let accesses: Vec<TaskAccess> = accs
                    .iter()
                    .map(|&(h, access)| TaskAccess { handle: handles[h], access })
                    .collect();
                g.add_task(op(), accesses, "t");
                oracle.push(accs);
            } else if let Op::Flush(hs) = op_desc {
                let unique: Vec<_> = hs.iter().map(|&h| handles[h]).collect();
                g.add_flush(&unique, "f");
                let accs: Vec<(usize, Access)> =
                    hs.iter().map(|&h| (h, Access::Read)).collect();
                oracle.push(&accs);
            }
            if step % 3 == 0 {
                // Force a (to-be-invalidated) successor CSR build mid-stream.
                let t = TaskId(step % g.len().max(1));
                let succs: Vec<usize> = g.successors(t).iter().map(|s| s.0).collect();
                prop_assert_eq!(&succs, &oracle.successors[t.0]);
            }
        }
        for t in 0..g.len() {
            let succs: Vec<usize> = g.successors(TaskId(t)).iter().map(|s| s.0).collect();
            prop_assert_eq!(&succs, &oracle.successors[t]);
        }
    }
}
