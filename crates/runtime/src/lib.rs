//! # xk-runtime — the XKaapi-like data-flow task runtime
//!
//! The reproduction of the runtime layer of the paper: tasks with
//! read/write accesses on tiles, automatic dependency inference, a
//! multi-GPU software cache with a MOSI + *UnderTransfer* protocol, and the
//! paper's two contributions at their original interface:
//!
//! * [`heuristics::select_source`] — topology-aware source selection
//!   (§III-B) and the optimistic device-to-device heuristic (§III-C),
//!   toggled by [`Heuristics`] exactly as the ablation of Fig. 3 does.
//!
//! Two executors consume the same [`TaskGraph`]:
//!
//! * [`simulate`] — a deterministic discrete-event simulation of a
//!   multi-GPU node (the substitution for the paper's DGX-1), producing a
//!   makespan and an [`xk_trace::Trace`];
//! * [`run_parallel`] — a crossbeam work-stealing pool that actually
//!   executes the tile kernels on host memory, validating the numerics.
//!
//! ```
//! use xk_runtime::{TaskGraph, RuntimeConfig, simulate};
//! use xk_runtime::task::{Access, TaskAccess};
//! use xk_kernels::perfmodel::TileOp;
//!
//! let mut graph = TaskGraph::new();
//! let c = graph.add_host_tile(32 << 20, true, "C(0,0)");
//! graph.add_task(
//!     TileOp::Gemm { m: 2048, n: 2048, k: 2048 },
//!     vec![TaskAccess { handle: c, access: Access::ReadWrite }],
//!     "gemm C(0,0)",
//! );
//! let outcome = simulate(&graph, &xk_topo::dgx1(), &RuntimeConfig::xkblas());
//! assert_eq!(outcome.tasks_run, 1);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod data;
pub mod graph;
pub mod heuristics;
pub mod par_exec;
pub mod sched;
pub mod sim_exec;
pub mod task;

pub use cache::{Eviction, ReplicaState, SoftwareCache};
pub use config::{Heuristics, RuntimeConfig, SchedulerKind};
pub use data::{DataInfo, DataRegistry, HandleId};
pub use graph::TaskGraph;
pub use par_exec::{run_parallel, ParOutcome};
pub use sim_exec::{measure_bandwidth_matrix, simulate, SimExecutor, SimOutcome};
pub use task::{Access, Task, TaskAccess, TaskAccesses, TaskId, TaskKind, TaskLabel};
