//! # xk-runtime — the XKaapi-like data-flow task runtime
//!
//! The reproduction of the runtime layer of the paper: tasks with
//! read/write accesses on tiles, automatic dependency inference, a
//! multi-GPU software cache with a MOSI + *UnderTransfer* protocol, and the
//! paper's two contributions at their original interface:
//!
//! * [`heuristics::select_source`] — topology-aware source selection
//!   (§III-B) and the optimistic device-to-device heuristic (§III-C),
//!   toggled by [`Heuristics`] exactly as the ablation of Fig. 3 does.
//!
//! Two executors consume the same [`TaskGraph`]:
//!
//! * [`SimSession`] — the front door to a deterministic discrete-event
//!   simulation of a multi-GPU node (the substitution for the paper's
//!   DGX-1), producing a makespan, an [`xk_trace::Trace`] and — when
//!   observability is on — an [`ObsReport`] with link occupancy,
//!   contention wait and the critical path;
//! * [`run_parallel`] — a crossbeam work-stealing pool that actually
//!   executes the tile kernels on host memory, validating the numerics.
//!
//! ```
//! use xk_runtime::{ObsLevel, RuntimeConfig, SimSession, TaskGraph};
//! use xk_runtime::task::{Access, TaskAccess};
//! use xk_kernels::perfmodel::TileOp;
//!
//! let mut graph = TaskGraph::new();
//! let c = graph.add_host_tile(32 << 20, true, "C(0,0)");
//! graph.add_task(
//!     TileOp::Gemm { m: 2048, n: 2048, k: 2048 },
//!     vec![TaskAccess { handle: c, access: Access::ReadWrite }],
//!     "gemm C(0,0)",
//! );
//! let topo = xk_topo::dgx1();
//! let run = SimSession::on(&topo)
//!     .config(RuntimeConfig::xkblas())
//!     .observe(ObsLevel::Full)
//!     .run(&graph);
//! assert_eq!(run.outcome().tasks_run, 1);
//! let report = run.metrics().unwrap();
//! assert_eq!(report.critical_path.as_ref().unwrap().length, run.outcome().makespan);
//! ```

#![warn(missing_docs)]

pub mod attribution;
pub mod bound;
pub mod cache;
pub mod choice;
pub mod config;
pub mod data;
pub mod error;
pub mod graph;
pub mod heuristics;
pub mod obs;
pub mod par_exec;
pub mod sched;
pub mod session;
pub mod sim_exec;
pub mod task;

pub use attribution::{link_attribution, Attribution, LinkValue};
pub use bound::{makespan_lower_bound, MakespanBound};
pub use cache::{Eviction, ReplicaState, SoftwareCache};
pub use choice::{CanonicalController, ChoicePoint, ScheduleController};
pub use config::{Heuristics, RuntimeConfig, SchedulerKind};
pub use data::{DataInfo, DataRegistry, HandleId};
pub use error::Error;
pub use graph::TaskGraph;
pub use obs::{CpSegment, CriticalPath, GpuObs, LinkStats, ObsLevel, ObsReport};
pub use par_exec::{run_parallel, ParOutcome};
pub use session::{Run, SimSession};
#[allow(deprecated)]
pub use sim_exec::{measure_bandwidth_matrix, simulate};
pub use par_exec::run_controlled;
pub use sim_exec::{LinkFault, SimExecutor, SimOutcome, SimPrep};
pub use task::{Access, Task, TaskAccess, TaskAccesses, TaskId, TaskKind, TaskLabel};
