//! Tasks: the unit of scheduling of the XKaapi-like runtime.

use xk_kernels::perfmodel::TileOp;

use crate::data::HandleId;

/// Task identifier (index into the graph's task table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Access mode of a task on a data handle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Access {
    /// The task reads the tile.
    Read,
    /// The task overwrites the tile without reading it.
    Write,
    /// The task reads and updates the tile.
    ReadWrite,
}

impl Access {
    /// True when the tile's previous contents must be present on the device.
    pub fn reads(self) -> bool {
        matches!(self, Access::Read | Access::ReadWrite)
    }

    /// True when the task produces a new version of the tile.
    pub fn writes(self) -> bool {
        matches!(self, Access::Write | Access::ReadWrite)
    }
}

/// One access of a task.
#[derive(Clone, Copy, Debug)]
pub struct TaskAccess {
    /// The tile accessed.
    pub handle: HandleId,
    /// The access mode.
    pub access: Access,
}

/// Number of accesses stored inline in [`TaskAccesses`]. Every BLAS-3 tile
/// task touches at most three tiles (two reads plus the output), and the
/// per-tile coherency flushes touch one; four covers them all without a
/// heap allocation.
pub const INLINE_ACCESSES: usize = 3;

/// The access list of a task.
///
/// Small lists (the steady state of the tiled builders) live inline in the
/// task; longer lists — multi-handle flushes, hand-built test graphs —
/// spill to the heap. This is what makes task submission allocation-free:
/// the old `Vec<TaskAccess>` per task was one of the four per-task heap
/// allocations the CSR graph rework removed.
#[derive(Clone, Debug)]
pub enum TaskAccesses {
    /// Up to [`INLINE_ACCESSES`] accesses stored in place.
    Inline {
        /// Number of live entries in `buf`.
        len: u8,
        /// Inline storage; entries past `len` are unspecified.
        buf: [TaskAccess; INLINE_ACCESSES],
    },
    /// More than [`INLINE_ACCESSES`] accesses, heap-allocated.
    Heap(Vec<TaskAccess>),
}

impl TaskAccesses {
    /// Empty access list.
    pub const fn empty() -> Self {
        const NO_ACCESS: TaskAccess = TaskAccess {
            handle: HandleId(0),
            access: Access::Read,
        };
        TaskAccesses::Inline {
            len: 0,
            buf: [NO_ACCESS; INLINE_ACCESSES],
        }
    }

    /// The accesses as a slice, in declaration order.
    pub fn as_slice(&self) -> &[TaskAccess] {
        match self {
            TaskAccesses::Inline { len, buf } => &buf[..*len as usize],
            TaskAccesses::Heap(v) => v,
        }
    }
}

impl Default for TaskAccesses {
    fn default() -> Self {
        TaskAccesses::empty()
    }
}

impl std::ops::Deref for TaskAccesses {
    type Target = [TaskAccess];
    fn deref(&self) -> &[TaskAccess] {
        self.as_slice()
    }
}

impl From<&[TaskAccess]> for TaskAccesses {
    fn from(s: &[TaskAccess]) -> Self {
        if s.len() <= INLINE_ACCESSES {
            let mut out = TaskAccesses::empty();
            if let TaskAccesses::Inline { len, buf } = &mut out {
                buf[..s.len()].copy_from_slice(s);
                *len = s.len() as u8;
            }
            out
        } else {
            TaskAccesses::Heap(s.to_vec())
        }
    }
}

impl<const N: usize> From<[TaskAccess; N]> for TaskAccesses {
    fn from(s: [TaskAccess; N]) -> Self {
        TaskAccesses::from(&s[..])
    }
}

impl From<Vec<TaskAccess>> for TaskAccesses {
    fn from(v: Vec<TaskAccess>) -> Self {
        if v.len() <= INLINE_ACCESSES {
            TaskAccesses::from(&v[..])
        } else {
            TaskAccesses::Heap(v)
        }
    }
}

impl FromIterator<TaskAccess> for TaskAccesses {
    fn from_iter<I: IntoIterator<Item = TaskAccess>>(iter: I) -> Self {
        let mut out = TaskAccesses::empty();
        for acc in iter {
            match &mut out {
                TaskAccesses::Inline { len, buf } => {
                    if (*len as usize) < INLINE_ACCESSES {
                        buf[*len as usize] = acc;
                        *len += 1;
                    } else {
                        let mut v = buf.to_vec();
                        v.push(acc);
                        out = TaskAccesses::Heap(v);
                    }
                }
                TaskAccesses::Heap(v) => v.push(acc),
            }
        }
        out
    }
}

impl<'a> IntoIterator for &'a TaskAccesses {
    type Item = &'a TaskAccess;
    type IntoIter = std::slice::Iter<'a, TaskAccess>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// What a task is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskKind {
    /// A compute kernel (runs on a GPU in simulated mode).
    Kernel,
    /// A host-coherency task (`xkblas_memory_coherent_async`): makes its
    /// read handles valid in host memory. Runs on the host; in the
    /// simulator it reserves DtoH transfers for every dirty handle.
    Flush,
}

/// A lazily-rendered task label.
///
/// The tiled builders submit hundreds of thousands of tasks whose labels
/// all follow a handful of `"<verb> <obj>(<i>,<j>)"` patterns. Rendering
/// the text at submission time (`format!` per task, as the seed did) costs
/// a heap allocation on the hottest path of the library; storing the
/// *pattern* costs nothing and renders the identical text on demand —
/// once per task when a simulation interns labels into its
/// [`xk_trace::Trace`] symbol table, or never at all under the numeric
/// executor, which doesn't trace.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum TaskLabel {
    /// No label; renders as the empty string.
    #[default]
    None,
    /// Borrowed static text.
    Static(&'static str),
    /// `"<verb> <obj>(<i>,<j>)"` — e.g. `tile("gemm", 'C', 1, 2)` renders
    /// as `"gemm C(1,2)"`. The pattern of every tiled-builder kernel task.
    Tile {
        /// Routine verb, e.g. `"gemm"`.
        verb: &'static str,
        /// Operand letter, e.g. `'C'`.
        obj: char,
        /// Tile row.
        i: u32,
        /// Tile column.
        j: u32,
    },
    /// `"<verb> M<mat>(<i>,<j>)"` — e.g. `"coherent M3(0,1)"`. The pattern
    /// of the per-tile coherency flushes.
    MatTile {
        /// Verb, e.g. `"coherent"`.
        verb: &'static str,
        /// Matrix id (graphs never hold 4 billion matrices).
        mat: u32,
        /// Tile row.
        i: u32,
        /// Tile column.
        j: u32,
    },
    /// Arbitrary owned text. Allocates — cold paths and tests only.
    Text(Box<str>),
}

impl TaskLabel {
    /// Builds the `"<verb> <obj>(<i>,<j>)"` pattern.
    pub fn tile(verb: &'static str, obj: char, i: usize, j: usize) -> Self {
        TaskLabel::Tile {
            verb,
            obj,
            i: i as u32,
            j: j as u32,
        }
    }

    /// Builds the `"<verb> M<mat>(<i>,<j>)"` pattern.
    pub fn mat_tile(verb: &'static str, mat: u64, i: usize, j: usize) -> Self {
        debug_assert!(mat <= u32::MAX as u64);
        TaskLabel::MatTile {
            verb,
            mat: mat as u32,
            i: i as u32,
            j: j as u32,
        }
    }

    /// Appends the rendered text to `out` (reuse one buffer to render many
    /// labels without reallocating).
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            TaskLabel::None => {}
            TaskLabel::Static(s) => out.push_str(s),
            TaskLabel::Tile { verb, obj, i, j } => {
                let _ = write!(out, "{verb} {obj}({i},{j})");
            }
            TaskLabel::MatTile { verb, mat, i, j } => {
                let _ = write!(out, "{verb} M{mat}({i},{j})");
            }
            TaskLabel::Text(s) => out.push_str(s),
        }
    }

    /// The rendered text as a fresh `String`.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        self.render_into(&mut s);
        s
    }
}

impl From<String> for TaskLabel {
    fn from(s: String) -> Self {
        TaskLabel::Text(s.into_boxed_str())
    }
}

impl From<&str> for TaskLabel {
    fn from(s: &str) -> Self {
        TaskLabel::Text(Box::from(s))
    }
}

/// Numeric payload executed by the parallel (real CPU) executor.
///
/// Captures the tile views; the scheduling layer guarantees exclusive
/// access to written tiles at execution time.
pub type TaskBody = Box<dyn FnOnce() + Send + Sync>;

/// A runtime task.
pub struct Task {
    /// Identifier (assigned by the graph).
    pub id: TaskId,
    /// Kernel vs flush.
    pub kind: TaskKind,
    /// Shape fed to the GPU performance model (kernels only).
    pub op: Option<TileOp>,
    /// Data accesses, in declaration order. The *first written* handle is
    /// the task's "owner tile" for owner-computes scheduling.
    pub accesses: TaskAccesses,
    /// Lazily-rendered label for traces (e.g. `"gemm C(1,2)"`).
    pub label: TaskLabel,
    /// Numeric payload for the parallel executor (consumed on execution).
    pub body: Option<TaskBody>,
    /// Scheduling priority (higher runs earlier among ready tasks; tiled
    /// algorithms use this to favour the critical path, like StarPU's
    /// `dmdas` consumes priorities).
    pub priority: i32,
}

impl Task {
    /// The first handle this task writes, if any (owner-computes anchor).
    pub fn owner_handle(&self) -> Option<HandleId> {
        self.accesses
            .iter()
            .find(|a| a.access.writes())
            .map(|a| a.handle)
    }

    /// Handles that must be resident (and valid) before the kernel starts.
    pub fn read_handles(&self) -> impl Iterator<Item = HandleId> + '_ {
        self.accesses
            .iter()
            .filter(|a| a.access.reads())
            .map(|a| a.handle)
    }

    /// Handles written by this task.
    pub fn written_handles(&self) -> impl Iterator<Item = HandleId> + '_ {
        self.accesses
            .iter()
            .filter(|a| a.access.writes())
            .map(|a| a.handle)
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("id", &self.id)
            .field("kind", &self.kind)
            .field("label", &self.label)
            .field("accesses", &self.accesses.as_slice())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_predicates() {
        assert!(Access::Read.reads() && !Access::Read.writes());
        assert!(!Access::Write.reads() && Access::Write.writes());
        assert!(Access::ReadWrite.reads() && Access::ReadWrite.writes());
    }

    #[test]
    fn owner_is_first_written_handle() {
        let t = Task {
            id: TaskId(0),
            kind: TaskKind::Kernel,
            op: None,
            accesses: vec![
                TaskAccess { handle: HandleId(7), access: Access::Read },
                TaskAccess { handle: HandleId(9), access: Access::ReadWrite },
                TaskAccess { handle: HandleId(3), access: Access::Write },
            ]
            .into(),
            label: TaskLabel::None,
            body: None,
            priority: 0,
        };
        assert_eq!(t.owner_handle(), Some(HandleId(9)));
        assert_eq!(t.read_handles().collect::<Vec<_>>(), vec![HandleId(7), HandleId(9)]);
        assert_eq!(t.written_handles().collect::<Vec<_>>(), vec![HandleId(9), HandleId(3)]);
    }

    #[test]
    fn accesses_inline_then_spill() {
        let acc = |h: usize| TaskAccess { handle: HandleId(h), access: Access::Read };
        let small = TaskAccesses::from([acc(0), acc(1), acc(2)]);
        assert!(matches!(small, TaskAccesses::Inline { len: 3, .. }));
        assert_eq!(small.len(), 3);
        assert_eq!(small[1].handle, HandleId(1));

        let big: TaskAccesses = (0..6).map(acc).collect();
        assert!(matches!(big, TaskAccesses::Heap(_)));
        assert_eq!(big.len(), 6);
        assert_eq!(big.as_slice()[5].handle, HandleId(5));

        let from_vec = TaskAccesses::from(vec![acc(0); 2]);
        assert!(matches!(from_vec, TaskAccesses::Inline { len: 2, .. }));
    }

    #[test]
    fn labels_render_like_the_old_format_strings() {
        assert_eq!(TaskLabel::tile("gemm", 'C', 1, 2).to_text(), "gemm C(1,2)");
        assert_eq!(
            TaskLabel::mat_tile("coherent", 3, 0, 1).to_text(),
            "coherent M3(0,1)"
        );
        assert_eq!(TaskLabel::None.to_text(), "");
        assert_eq!(TaskLabel::Static("flush").to_text(), "flush");
        assert_eq!(TaskLabel::from(format!("k{}", 7)).to_text(), "k7");
        let mut buf = String::from("x");
        TaskLabel::tile("trsm", 'B', 4, 5).render_into(&mut buf);
        assert_eq!(buf, "xtrsm B(4,5)");
    }
}
