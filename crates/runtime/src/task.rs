//! Tasks: the unit of scheduling of the XKaapi-like runtime.

use xk_kernels::perfmodel::TileOp;

use crate::data::HandleId;

/// Task identifier (index into the graph's task table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Access mode of a task on a data handle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Access {
    /// The task reads the tile.
    Read,
    /// The task overwrites the tile without reading it.
    Write,
    /// The task reads and updates the tile.
    ReadWrite,
}

impl Access {
    /// True when the tile's previous contents must be present on the device.
    pub fn reads(self) -> bool {
        matches!(self, Access::Read | Access::ReadWrite)
    }

    /// True when the task produces a new version of the tile.
    pub fn writes(self) -> bool {
        matches!(self, Access::Write | Access::ReadWrite)
    }
}

/// One access of a task.
#[derive(Clone, Copy, Debug)]
pub struct TaskAccess {
    /// The tile accessed.
    pub handle: HandleId,
    /// The access mode.
    pub access: Access,
}

/// What a task is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskKind {
    /// A compute kernel (runs on a GPU in simulated mode).
    Kernel,
    /// A host-coherency task (`xkblas_memory_coherent_async`): makes its
    /// read handles valid in host memory. Runs on the host; in the
    /// simulator it reserves DtoH transfers for every dirty handle.
    Flush,
}

/// Numeric payload executed by the parallel (real CPU) executor.
///
/// Captures the tile views; the scheduling layer guarantees exclusive
/// access to written tiles at execution time.
pub type TaskBody = Box<dyn FnOnce() + Send + Sync>;

/// A runtime task.
pub struct Task {
    /// Identifier (assigned by the graph).
    pub id: TaskId,
    /// Kernel vs flush.
    pub kind: TaskKind,
    /// Shape fed to the GPU performance model (kernels only).
    pub op: Option<TileOp>,
    /// Data accesses, in declaration order. The *first written* handle is
    /// the task's "owner tile" for owner-computes scheduling.
    pub accesses: Vec<TaskAccess>,
    /// Short label for traces (e.g. `"gemm C(1,2) k=3"`).
    pub label: String,
    /// Numeric payload for the parallel executor (consumed on execution).
    pub body: Option<TaskBody>,
    /// Scheduling priority (higher runs earlier among ready tasks; tiled
    /// algorithms use this to favour the critical path, like StarPU's
    /// `dmdas` consumes priorities).
    pub priority: i32,
}

impl Task {
    /// The first handle this task writes, if any (owner-computes anchor).
    pub fn owner_handle(&self) -> Option<HandleId> {
        self.accesses
            .iter()
            .find(|a| a.access.writes())
            .map(|a| a.handle)
    }

    /// Handles that must be resident (and valid) before the kernel starts.
    pub fn read_handles(&self) -> impl Iterator<Item = HandleId> + '_ {
        self.accesses
            .iter()
            .filter(|a| a.access.reads())
            .map(|a| a.handle)
    }

    /// Handles written by this task.
    pub fn written_handles(&self) -> impl Iterator<Item = HandleId> + '_ {
        self.accesses
            .iter()
            .filter(|a| a.access.writes())
            .map(|a| a.handle)
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("id", &self.id)
            .field("kind", &self.kind)
            .field("label", &self.label)
            .field("accesses", &self.accesses)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_predicates() {
        assert!(Access::Read.reads() && !Access::Read.writes());
        assert!(!Access::Write.reads() && Access::Write.writes());
        assert!(Access::ReadWrite.reads() && Access::ReadWrite.writes());
    }

    #[test]
    fn owner_is_first_written_handle() {
        let t = Task {
            id: TaskId(0),
            kind: TaskKind::Kernel,
            op: None,
            accesses: vec![
                TaskAccess { handle: HandleId(7), access: Access::Read },
                TaskAccess { handle: HandleId(9), access: Access::ReadWrite },
                TaskAccess { handle: HandleId(3), access: Access::Write },
            ],
            label: String::new(),
            body: None,
            priority: 0,
        };
        assert_eq!(t.owner_handle(), Some(HandleId(9)));
        assert_eq!(t.read_handles().collect::<Vec<_>>(), vec![HandleId(7), HandleId(9)]);
        assert_eq!(t.written_handles().collect::<Vec<_>>(), vec![HandleId(9), HandleId(3)]);
    }
}
