//! Data-flow task graph with automatic dependency inference.
//!
//! Tasks declare read/write accesses on tiles; the graph derives the
//! dependency edges from sequential-consistency rules, as XKaapi does for
//! its dependent-task model (paper §III): a reader depends on the last
//! writer of each tile it reads, and a writer depends on the last writer
//! *and* every reader of the current version (anti-dependency).
//!
//! # Representation (million-task scale)
//!
//! Everything on the submission path is flat and index-based so that the
//! steady state performs **zero heap allocations per task** (only amortized
//! `Vec` doubling):
//!
//! - per-handle history lives in a dense `Vec` indexed by `HandleId`
//!   (handles are sequential small integers — no hashing);
//! - `readers_since_write` lists are singly-linked nodes in one pooled
//!   arena with a free list, recycled when a writer clears them;
//! - dependency edges go into an incrementally-built *predecessor* CSR
//!   (`pred_offsets`/`pred_targets`): a task's dependencies are final the
//!   moment it is pushed, so appending is O(deps);
//! - the *successor* CSR is derived lazily (counting sort over the
//!   predecessor CSR) on first use and cached behind a [`OnceLock`];
//!   any later mutation invalidates it. Successor lists come out in
//!   ascending-target order — exactly the order the old per-task
//!   `Vec<Vec<TaskId>>` produced, which the deterministic simulator
//!   relies on;
//! - the scratch buffer used to sort/dedup each task's dependencies is
//!   reused across `push_task` calls.

use std::sync::OnceLock;

use xk_kernels::perfmodel::{GpuModel, TileOp};

use crate::data::{DataInfo, DataRegistry, HandleId};
use crate::task::{Access, Task, TaskAccess, TaskAccesses, TaskBody, TaskId, TaskKind, TaskLabel};

/// Sentinel for "no task" / "no node" in the index-based structures.
const NONE: u32 = u32::MAX;

/// Per-handle dependency state, indexed by `HandleId.0`.
#[derive(Clone, Copy, Debug)]
struct HandleHistory {
    /// Last task that wrote the handle, or `NONE`.
    last_writer: u32,
    /// Head of the pooled readers-since-last-write list, or `NONE`.
    readers_head: u32,
}

impl Default for HandleHistory {
    fn default() -> Self {
        HandleHistory {
            last_writer: NONE,
            readers_head: NONE,
        }
    }
}

/// One node of a pooled singly-linked reader list.
#[derive(Clone, Copy, Debug)]
struct ReaderNode {
    task: u32,
    next: u32,
}

/// Lazily-derived successor adjacency in CSR form.
#[derive(Debug)]
struct SuccCsr {
    offsets: Vec<u32>,
    targets: Vec<TaskId>,
}

/// A complete task graph: tasks, tiles and dependency edges.
pub struct TaskGraph {
    tasks: Vec<Task>,
    data: DataRegistry,
    history: Vec<HandleHistory>,
    reader_nodes: Vec<ReaderNode>,
    reader_free: u32,
    scratch_deps: Vec<TaskId>,
    /// `pred_offsets[i]..pred_offsets[i+1]` indexes task `i`'s
    /// predecessors in `pred_targets`. Always `tasks.len() + 1` long.
    pred_offsets: Vec<u32>,
    pred_targets: Vec<u32>,
    succ: OnceLock<SuccCsr>,
}

impl Default for TaskGraph {
    fn default() -> Self {
        TaskGraph {
            tasks: Vec::new(),
            data: DataRegistry::default(),
            history: Vec::new(),
            reader_nodes: Vec::new(),
            reader_free: NONE,
            scratch_deps: Vec::new(),
            pred_offsets: vec![0],
            pred_targets: Vec::new(),
            succ: OnceLock::new(),
        }
    }
}

impl TaskGraph {
    /// Empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Reserves capacity for `tasks` more tasks and `edges` more
    /// dependency edges. Tiled builders know both up front (`nt³` tasks,
    /// ~3 edges each), and reserving once turns the amortized `Vec`
    /// doubling on the submission path into a single allocation.
    pub fn reserve(&mut self, tasks: usize, edges: usize) {
        self.tasks.reserve(tasks);
        self.pred_offsets.reserve(tasks);
        self.pred_targets.reserve(edges);
        // Read accesses park one pooled node each until the next writer
        // recycles them; edge count is a good proxy for the peak.
        self.reader_nodes.reserve(edges);
    }

    /// Registers a tile.
    pub fn add_data(&mut self, info: DataInfo) -> HandleId {
        let h = self.data.add(info);
        debug_assert_eq!(h.0, self.history.len());
        self.history.push(HandleHistory::default());
        h
    }

    /// Convenience: registers a host-resident tile.
    pub fn add_host_tile(&mut self, bytes: u64, pitched: bool, label: impl Into<String>) -> HandleId {
        self.add_data(DataInfo::host(bytes, pitched, label))
    }

    /// Adds a kernel task; dependencies are inferred from `accesses`.
    pub fn add_task(
        &mut self,
        op: TileOp,
        accesses: impl Into<TaskAccesses>,
        label: impl Into<TaskLabel>,
    ) -> TaskId {
        self.push_task(TaskKind::Kernel, Some(op), accesses.into(), label.into(), None, 0)
    }

    /// Adds a kernel task with a numeric body for the parallel executor.
    pub fn add_task_with_body(
        &mut self,
        op: TileOp,
        accesses: impl Into<TaskAccesses>,
        label: impl Into<TaskLabel>,
        body: TaskBody,
    ) -> TaskId {
        self.push_task(
            TaskKind::Kernel,
            Some(op),
            accesses.into(),
            label.into(),
            Some(body),
            0,
        )
    }

    /// Adds a kernel task with an explicit priority.
    pub fn add_task_prio(
        &mut self,
        op: TileOp,
        accesses: impl Into<TaskAccesses>,
        label: impl Into<TaskLabel>,
        priority: i32,
    ) -> TaskId {
        self.push_task(
            TaskKind::Kernel,
            Some(op),
            accesses.into(),
            label.into(),
            None,
            priority,
        )
    }

    /// Adds a host-coherency (flush) task reading `handles`: the model of
    /// `xkblas_memory_coherent_async`. It depends on the last writers of
    /// every handle and, in the simulator, triggers the DtoH transfers.
    pub fn add_flush(&mut self, handles: &[HandleId], label: impl Into<TaskLabel>) -> TaskId {
        let accesses = handles
            .iter()
            .map(|&h| TaskAccess {
                handle: h,
                access: Access::Read,
            })
            .collect();
        self.push_task(TaskKind::Flush, None, accesses, label.into(), None, 0)
    }

    #[inline]
    fn push_task(
        &mut self,
        kind: TaskKind,
        op: Option<TileOp>,
        accesses: TaskAccesses,
        label: TaskLabel,
        body: Option<TaskBody>,
        priority: i32,
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        assert!(id.0 < NONE as usize, "task count exceeds u32 index space");
        let idx = id.0 as u32;

        // One pass per access: collect dependencies from the pre-task
        // history and update it in place. A later entry for the same
        // handle sees the earlier entry's update, which can only add
        // `id` itself to the raw list (an RW pair, a write-then-read);
        // the `retain` below removes it, so the edge set matches the
        // two-pass formulation exactly.
        self.scratch_deps.clear();
        for acc in accesses.iter() {
            // A real check, not a debug_assert: a dangling handle would
            // silently corrupt the dense history table in release builds.
            assert!(
                acc.handle.0 < self.history.len(),
                "unknown handle {:?} (registry has {} tiles)",
                acc.handle,
                self.history.len()
            );
            let h = acc.handle.0;
            let hist = self.history[h];
            if acc.access.reads() && hist.last_writer != NONE {
                self.scratch_deps.push(TaskId(hist.last_writer as usize));
            }
            if acc.access.writes() {
                if hist.last_writer != NONE {
                    self.scratch_deps.push(TaskId(hist.last_writer as usize));
                }
                // Walk the reader list once: every reader becomes a
                // dependency, and the tail splices the whole list onto
                // the free list.
                let head = hist.readers_head;
                if head != NONE {
                    let mut node = head;
                    loop {
                        let rn = self.reader_nodes[node as usize];
                        self.scratch_deps.push(TaskId(rn.task as usize));
                        if rn.next == NONE {
                            break;
                        }
                        node = rn.next;
                    }
                    self.reader_nodes[node as usize].next = self.reader_free;
                    self.reader_free = head;
                }
                self.history[h] = HandleHistory {
                    last_writer: idx,
                    readers_head: NONE,
                };
            } else if acc.access.reads() {
                let slot = if self.reader_free != NONE {
                    let s = self.reader_free;
                    self.reader_free = self.reader_nodes[s as usize].next;
                    s
                } else {
                    self.reader_nodes.push(ReaderNode { task: 0, next: NONE });
                    (self.reader_nodes.len() - 1) as u32
                };
                self.reader_nodes[slot as usize] = ReaderNode {
                    task: idx,
                    next: hist.readers_head,
                };
                self.history[h].readers_head = slot;
            }
        }
        let deps = &mut self.scratch_deps;
        // Tiled kernels produce tiny dependency lists (a GEMM update has
        // at most two raw entries); skip the sorter's dispatch for those.
        match deps.len() {
            0 => {}
            1 => {
                if deps[0] == id {
                    deps.clear();
                }
            }
            2 => {
                if deps[0] == deps[1] {
                    deps.pop();
                } else if deps[0] > deps[1] {
                    deps.swap(0, 1);
                }
                deps.retain(|&d| d != id);
            }
            _ => {
                deps.sort_unstable();
                deps.dedup();
                deps.retain(|&d| d != id);
            }
        }

        assert!(
            self.pred_targets.len() + deps.len() < NONE as usize,
            "edge count exceeds u32 index space"
        );
        self.pred_targets
            .extend(self.scratch_deps.iter().map(|d| d.0 as u32));
        self.pred_offsets.push(self.pred_targets.len() as u32);
        self.succ.take(); // invalidate the cached successor CSR
        self.tasks.push(Task {
            id,
            kind,
            op,
            accesses,
            label,
            body,
            priority,
        });
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of dependency edges.
    pub fn n_edges(&self) -> usize {
        self.pred_targets.len()
    }

    /// Task by id.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Mutable task by id (the parallel executor takes bodies out).
    pub fn task_mut(&mut self, id: TaskId) -> &mut Task {
        &mut self.tasks[id.0]
    }

    /// All tasks in creation order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Tile registry.
    pub fn data(&self) -> &DataRegistry {
        &self.data
    }

    /// Predecessors (dependencies) of a task, in ascending id order.
    pub fn predecessors(&self, id: TaskId) -> impl ExactSizeIterator<Item = TaskId> + '_ {
        let a = self.pred_offsets[id.0] as usize;
        let b = self.pred_offsets[id.0 + 1] as usize;
        self.pred_targets[a..b].iter().map(|&p| TaskId(p as usize))
    }

    /// Number of predecessors of a task.
    pub fn pred_count(&self, id: TaskId) -> usize {
        (self.pred_offsets[id.0 + 1] - self.pred_offsets[id.0]) as usize
    }

    /// Predecessor counts of all tasks, in id order.
    pub fn pred_counts(&self) -> impl Iterator<Item = usize> + '_ {
        self.pred_offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
    }

    /// Successors of a task, in ascending id order. Derived from the
    /// predecessor CSR on first call after a mutation (O(V+E) counting
    /// sort); interleaving queries with `add_task` rebuilds each time —
    /// call [`TaskGraph::finalize`] once after construction instead.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        let csr = self.succ_csr();
        let a = csr.offsets[id.0] as usize;
        let b = csr.offsets[id.0 + 1] as usize;
        &csr.targets[a..b]
    }

    /// Forces the successor CSR to be built now (it is otherwise derived
    /// lazily on the first `successors` call).
    pub fn finalize(&self) {
        let _ = self.succ_csr();
    }

    fn succ_csr(&self) -> &SuccCsr {
        self.succ.get_or_init(|| {
            let n = self.tasks.len();
            let mut offsets = vec![0u32; n + 1];
            for &p in &self.pred_targets {
                offsets[p as usize + 1] += 1;
            }
            for i in 0..n {
                offsets[i + 1] += offsets[i];
            }
            let mut cursor: Vec<u32> = offsets[..n].to_vec();
            let mut targets = vec![TaskId(0); self.pred_targets.len()];
            // Iterating destinations in id order writes each source's
            // successor list in ascending-destination order.
            for dst in 0..n {
                let a = self.pred_offsets[dst] as usize;
                let b = self.pred_offsets[dst + 1] as usize;
                for &src in &self.pred_targets[a..b] {
                    targets[cursor[src as usize] as usize] = TaskId(dst);
                    cursor[src as usize] += 1;
                }
            }
            SuccCsr { offsets, targets }
        })
    }

    /// Tasks with no predecessors.
    pub fn roots(&self) -> Vec<TaskId> {
        self.pred_counts()
            .enumerate()
            .filter(|(_, n)| *n == 0)
            .map(|(i, _)| TaskId(i))
            .collect()
    }

    /// Critical-path length in seconds under the given GPU model (kernels
    /// only, transfers ignored): the lower bound on makespan with infinite
    /// GPUs. Flush tasks count as zero.
    pub fn critical_path_seconds(&self, model: &GpuModel) -> f64 {
        let mut finish = vec![0.0f64; self.tasks.len()];
        // Tasks are in topological order by construction (dependencies only
        // point to earlier tasks), so one forward pass over predecessors
        // suffices — and needs no successor CSR.
        let mut best = 0.0f64;
        for t in &self.tasks {
            let dur = t.op.map_or(0.0, |op| model.kernel_time(op));
            let start = self
                .predecessors(t.id)
                .fold(0.0f64, |m, p| m.max(finish[p.0]));
            let f = start + dur;
            finish[t.id.0] = f;
            best = best.max(f);
        }
        best
    }

    /// Total kernel flops in the graph.
    pub fn total_flops(&self) -> f64 {
        self.tasks
            .iter()
            .filter_map(|t| t.op)
            .map(TileOp::flops)
            .sum()
    }

    /// Approximate retained bytes of the graph structure (task table,
    /// CSR arrays, histories, reader pool, successor cache). Excludes
    /// heap-spilled access lists / text labels, which the tiled builders
    /// never produce.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = self.tasks.capacity() * size_of::<Task>()
            + self.pred_offsets.capacity() * size_of::<u32>()
            + self.pred_targets.capacity() * size_of::<u32>()
            + self.history.capacity() * size_of::<HandleHistory>()
            + self.reader_nodes.capacity() * size_of::<ReaderNode>()
            + self.data.len() * size_of::<DataInfo>();
        if let Some(csr) = self.succ.get() {
            bytes += csr.offsets.capacity() * size_of::<u32>()
                + csr.targets.capacity() * size_of::<TaskId>();
        }
        bytes
    }

    /// Graphviz DOT rendering (small graphs; debugging aid).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        fn escape(label: &str) -> String {
            label.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut buf = String::new();
        let mut s = String::from("digraph tasks {\n  rankdir=LR;\n");
        for t in &self.tasks {
            buf.clear();
            t.label.render_into(&mut buf);
            let _ = writeln!(s, "  t{} [label=\"{}\"];", t.id.0, escape(&buf));
        }
        for t in &self.tasks {
            for succ in self.successors(t.id) {
                let _ = writeln!(s, "  t{} -> t{};", t.id.0, succ.0);
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op() -> TileOp {
        TileOp::Gemm { m: 4, n: 4, k: 4 }
    }

    fn read(h: HandleId) -> TaskAccess {
        TaskAccess {
            handle: h,
            access: Access::Read,
        }
    }
    fn write(h: HandleId) -> TaskAccess {
        TaskAccess {
            handle: h,
            access: Access::Write,
        }
    }
    fn rw(h: HandleId) -> TaskAccess {
        TaskAccess {
            handle: h,
            access: Access::ReadWrite,
        }
    }

    #[test]
    fn reader_depends_on_writer() {
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        let w = g.add_task(op(), vec![write(h)], "w");
        let r = g.add_task(op(), vec![read(h)], "r");
        assert_eq!(g.successors(w), &[r]);
        assert_eq!(g.pred_count(r), 1);
        assert_eq!(g.predecessors(r).collect::<Vec<_>>(), vec![w]);
        assert_eq!(g.roots(), vec![w]);
    }

    #[test]
    fn writer_waits_for_readers() {
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        let w1 = g.add_task(op(), vec![write(h)], "w1");
        let r1 = g.add_task(op(), vec![read(h)], "r1");
        let r2 = g.add_task(op(), vec![read(h)], "r2");
        let w2 = g.add_task(op(), vec![write(h)], "w2");
        // w2 depends on w1 (output dep) and r1, r2 (anti-deps).
        assert_eq!(g.pred_count(w2), 3);
        assert_eq!(g.predecessors(w2).collect::<Vec<_>>(), vec![w1, r1, r2]);
        assert!(g.successors(r1).contains(&w2));
        assert!(g.successors(r2).contains(&w2));
        assert!(g.successors(w1).contains(&w2));
    }

    #[test]
    fn independent_tiles_no_edges() {
        let mut g = TaskGraph::new();
        let h1 = g.add_host_tile(64, false, "x");
        let h2 = g.add_host_tile(64, false, "y");
        g.add_task(op(), vec![write(h1)], "a");
        g.add_task(op(), vec![write(h2)], "b");
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.roots().len(), 2);
    }

    #[test]
    fn rw_chain_serializes() {
        // The GEMM k-loop pattern: successive ReadWrite on the same C tile.
        let mut g = TaskGraph::new();
        let c = g.add_host_tile(64, false, "c");
        let t0 = g.add_task(op(), vec![rw(c)], "k0");
        let t1 = g.add_task(op(), vec![rw(c)], "k1");
        let t2 = g.add_task(op(), vec![rw(c)], "k2");
        assert_eq!(g.successors(t0), &[t1]);
        assert_eq!(g.successors(t1), &[t2]);
        assert_eq!(g.pred_count(t1), 1);
        assert_eq!(g.pred_count(t2), 1);
    }

    #[test]
    fn duplicate_deps_coalesce() {
        let mut g = TaskGraph::new();
        let a = g.add_host_tile(64, false, "a");
        let b = g.add_host_tile(64, false, "b");
        let w = g.add_task(op(), vec![write(a), write(b)], "w");
        let r = g.add_task(op(), vec![read(a), read(b)], "r");
        // Both deps point at w but must count once.
        assert_eq!(g.pred_count(r), 1);
        assert_eq!(g.successors(w), &[r]);
    }

    #[test]
    fn flush_depends_on_last_writers() {
        let mut g = TaskGraph::new();
        let a = g.add_host_tile(64, false, "a");
        let b = g.add_host_tile(64, false, "b");
        let w1 = g.add_task(op(), vec![write(a)], "w1");
        let w2 = g.add_task(op(), vec![write(b)], "w2");
        let f = g.add_flush(&[a, b], "flush");
        assert_eq!(g.pred_count(f), 2);
        assert!(g.successors(w1).contains(&f));
        assert!(g.successors(w2).contains(&f));
        assert_eq!(g.task(f).kind, TaskKind::Flush);
    }

    #[test]
    fn critical_path_of_chain() {
        let mut g = TaskGraph::new();
        let c = g.add_host_tile(64, false, "c");
        for i in 0..5 {
            g.add_task(
                TileOp::Gemm { m: 1024, n: 1024, k: 1024 },
                vec![rw(c)],
                format!("k{i}"),
            );
        }
        let model = GpuModel::v100();
        let one = model.kernel_time(TileOp::Gemm { m: 1024, n: 1024, k: 1024 });
        let cp = g.critical_path_seconds(&model);
        assert!((cp - 5.0 * one).abs() < 1e-12);
    }

    #[test]
    fn dot_renders() {
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        let w = g.add_task(op(), vec![write(h)], "w");
        let r = g.add_task(op(), vec![read(h)], "r");
        let dot = g.to_dot();
        assert!(dot.contains(&format!("t{} -> t{}", w.0, r.0)));
    }

    #[test]
    fn dot_escapes_quotes_and_backslashes() {
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        g.add_task(op(), vec![write(h)], r#"say "hi" \ bye"#);
        let dot = g.to_dot();
        assert!(dot.contains(r#"[label="say \"hi\" \\ bye"]"#), "{dot}");
    }

    #[test]
    #[should_panic(expected = "unknown handle")]
    fn unknown_handle_panics_in_release_too() {
        let mut g = TaskGraph::new();
        g.add_task(op(), vec![write(HandleId(3))], "bad");
    }

    #[test]
    fn successor_cache_invalidated_by_later_pushes() {
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        let w = g.add_task(op(), vec![write(h)], "w");
        assert!(g.successors(w).is_empty());
        let r = g.add_task(op(), vec![read(h)], "r");
        assert_eq!(g.successors(w), &[r]);
    }

    #[test]
    fn reader_pool_recycles_nodes() {
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        // Many write/read/read rounds: the pool should stay at the high
        //-water mark of live readers (2), not grow per round.
        for _ in 0..50 {
            g.add_task(op(), vec![write(h)], "w");
            g.add_task(op(), vec![read(h)], "r1");
            g.add_task(op(), vec![read(h)], "r2");
        }
        assert!(g.reader_nodes.len() <= 2, "pool grew: {}", g.reader_nodes.len());
        assert!(g.memory_bytes() > 0);
    }
}
