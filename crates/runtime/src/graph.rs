//! Data-flow task graph with automatic dependency inference.
//!
//! Tasks declare read/write accesses on tiles; the graph derives the
//! dependency edges from sequential-consistency rules, as XKaapi does for
//! its dependent-task model (paper §III): a reader depends on the last
//! writer of each tile it reads, and a writer depends on the last writer
//! *and* every reader of the current version (anti-dependency).

use std::collections::HashMap;

use xk_kernels::perfmodel::{GpuModel, TileOp};

use crate::data::{DataInfo, DataRegistry, HandleId};
use crate::task::{Access, Task, TaskAccess, TaskBody, TaskId, TaskKind};

#[derive(Clone, Debug, Default)]
struct HandleHistory {
    last_writer: Option<TaskId>,
    readers_since_write: Vec<TaskId>,
}

/// A complete task graph: tasks, tiles and dependency edges.
#[derive(Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    data: DataRegistry,
    history: HashMap<HandleId, HandleHistory>,
    successors: Vec<Vec<TaskId>>,
    n_predecessors: Vec<usize>,
    n_edges: usize,
}

impl TaskGraph {
    /// Empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Registers a tile.
    pub fn add_data(&mut self, info: DataInfo) -> HandleId {
        self.data.add(info)
    }

    /// Convenience: registers a host-resident tile.
    pub fn add_host_tile(&mut self, bytes: u64, pitched: bool, label: impl Into<String>) -> HandleId {
        self.add_data(DataInfo::host(bytes, pitched, label))
    }

    /// Adds a kernel task; dependencies are inferred from `accesses`.
    pub fn add_task(
        &mut self,
        op: TileOp,
        accesses: Vec<TaskAccess>,
        label: impl Into<String>,
    ) -> TaskId {
        self.push_task(TaskKind::Kernel, Some(op), accesses, label.into(), None, 0)
    }

    /// Adds a kernel task with a numeric body for the parallel executor.
    pub fn add_task_with_body(
        &mut self,
        op: TileOp,
        accesses: Vec<TaskAccess>,
        label: impl Into<String>,
        body: TaskBody,
    ) -> TaskId {
        self.push_task(
            TaskKind::Kernel,
            Some(op),
            accesses,
            label.into(),
            Some(body),
            0,
        )
    }

    /// Adds a kernel task with an explicit priority.
    pub fn add_task_prio(
        &mut self,
        op: TileOp,
        accesses: Vec<TaskAccess>,
        label: impl Into<String>,
        priority: i32,
    ) -> TaskId {
        self.push_task(
            TaskKind::Kernel,
            Some(op),
            accesses,
            label.into(),
            None,
            priority,
        )
    }

    /// Adds a host-coherency (flush) task reading `handles`: the model of
    /// `xkblas_memory_coherent_async`. It depends on the last writers of
    /// every handle and, in the simulator, triggers the DtoH transfers.
    pub fn add_flush(&mut self, handles: &[HandleId], label: impl Into<String>) -> TaskId {
        let accesses = handles
            .iter()
            .map(|&h| TaskAccess {
                handle: h,
                access: Access::Read,
            })
            .collect();
        self.push_task(TaskKind::Flush, None, accesses, label.into(), None, 0)
    }

    fn push_task(
        &mut self,
        kind: TaskKind,
        op: Option<TileOp>,
        accesses: Vec<TaskAccess>,
        label: String,
        body: Option<TaskBody>,
        priority: i32,
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        let mut deps: Vec<TaskId> = Vec::new();
        for acc in &accesses {
            debug_assert!(acc.handle.0 < self.data.len(), "unknown handle");
            let hist = self.history.entry(acc.handle).or_default();
            if acc.access.reads() {
                if let Some(w) = hist.last_writer {
                    deps.push(w);
                }
            }
            if acc.access.writes() {
                if let Some(w) = hist.last_writer {
                    deps.push(w);
                }
                deps.extend(hist.readers_since_write.iter().copied());
            }
        }
        deps.sort_unstable();
        deps.dedup();
        deps.retain(|&d| d != id);

        // Update histories after computing deps (a task reading and writing
        // the same tile must not depend on itself).
        for acc in &accesses {
            let hist = self.history.entry(acc.handle).or_default();
            if acc.access.writes() {
                hist.last_writer = Some(id);
                hist.readers_since_write.clear();
            } else if acc.access.reads() {
                hist.readers_since_write.push(id);
            }
        }

        self.successors.push(Vec::new());
        self.n_predecessors.push(deps.len());
        for d in &deps {
            self.successors[d.0].push(id);
            self.n_edges += 1;
        }
        self.tasks.push(Task {
            id,
            kind,
            op,
            accesses,
            label,
            body,
            priority,
        });
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of dependency edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Task by id.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Mutable task by id (the parallel executor takes bodies out).
    pub fn task_mut(&mut self, id: TaskId) -> &mut Task {
        &mut self.tasks[id.0]
    }

    /// All tasks in creation order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Tile registry.
    pub fn data(&self) -> &DataRegistry {
        &self.data
    }

    /// Successors of a task.
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.successors[id.0]
    }

    /// Number of predecessors of each task (indexed by `TaskId.0`).
    pub fn predecessor_counts(&self) -> &[usize] {
        &self.n_predecessors
    }

    /// Tasks with no predecessors.
    pub fn roots(&self) -> Vec<TaskId> {
        self.n_predecessors
            .iter()
            .enumerate()
            .filter(|(_, &n)| n == 0)
            .map(|(i, _)| TaskId(i))
            .collect()
    }

    /// Critical-path length in seconds under the given GPU model (kernels
    /// only, transfers ignored): the lower bound on makespan with infinite
    /// GPUs. Flush tasks count as zero.
    pub fn critical_path_seconds(&self, model: &GpuModel) -> f64 {
        let mut finish = vec![0.0f64; self.tasks.len()];
        // Tasks are in topological order by construction (dependencies only
        // point to earlier tasks).
        let mut best = 0.0f64;
        for t in &self.tasks {
            let dur = t.op.map_or(0.0, |op| model.kernel_time(op));
            // finish[t] = dur + max over predecessors; we don't store
            // predecessor lists, so push forward over successors instead.
            let f = finish[t.id.0] + dur;
            finish[t.id.0] = f;
            best = best.max(f);
            for s in &self.successors[t.id.0] {
                if finish[s.0] < f {
                    finish[s.0] = f;
                }
            }
        }
        best
    }

    /// Total kernel flops in the graph.
    pub fn total_flops(&self) -> f64 {
        self.tasks
            .iter()
            .filter_map(|t| t.op)
            .map(TileOp::flops)
            .sum()
    }

    /// Graphviz DOT rendering (small graphs; debugging aid).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph tasks {\n  rankdir=LR;\n");
        for t in &self.tasks {
            let _ = writeln!(s, "  t{} [label=\"{}\"];", t.id.0, t.label);
        }
        for t in &self.tasks {
            for succ in &self.successors[t.id.0] {
                let _ = writeln!(s, "  t{} -> t{};", t.id.0, succ.0);
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op() -> TileOp {
        TileOp::Gemm { m: 4, n: 4, k: 4 }
    }

    fn read(h: HandleId) -> TaskAccess {
        TaskAccess {
            handle: h,
            access: Access::Read,
        }
    }
    fn write(h: HandleId) -> TaskAccess {
        TaskAccess {
            handle: h,
            access: Access::Write,
        }
    }
    fn rw(h: HandleId) -> TaskAccess {
        TaskAccess {
            handle: h,
            access: Access::ReadWrite,
        }
    }

    #[test]
    fn reader_depends_on_writer() {
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        let w = g.add_task(op(), vec![write(h)], "w");
        let r = g.add_task(op(), vec![read(h)], "r");
        assert_eq!(g.successors(w), &[r]);
        assert_eq!(g.predecessor_counts()[r.0], 1);
        assert_eq!(g.roots(), vec![w]);
    }

    #[test]
    fn writer_waits_for_readers() {
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        let w1 = g.add_task(op(), vec![write(h)], "w1");
        let r1 = g.add_task(op(), vec![read(h)], "r1");
        let r2 = g.add_task(op(), vec![read(h)], "r2");
        let w2 = g.add_task(op(), vec![write(h)], "w2");
        // w2 depends on w1 (output dep) and r1, r2 (anti-deps).
        assert_eq!(g.predecessor_counts()[w2.0], 3);
        assert!(g.successors(r1).contains(&w2));
        assert!(g.successors(r2).contains(&w2));
        assert!(g.successors(w1).contains(&w2));
    }

    #[test]
    fn independent_tiles_no_edges() {
        let mut g = TaskGraph::new();
        let h1 = g.add_host_tile(64, false, "x");
        let h2 = g.add_host_tile(64, false, "y");
        g.add_task(op(), vec![write(h1)], "a");
        g.add_task(op(), vec![write(h2)], "b");
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.roots().len(), 2);
    }

    #[test]
    fn rw_chain_serializes() {
        // The GEMM k-loop pattern: successive ReadWrite on the same C tile.
        let mut g = TaskGraph::new();
        let c = g.add_host_tile(64, false, "c");
        let t0 = g.add_task(op(), vec![rw(c)], "k0");
        let t1 = g.add_task(op(), vec![rw(c)], "k1");
        let t2 = g.add_task(op(), vec![rw(c)], "k2");
        assert_eq!(g.successors(t0), &[t1]);
        assert_eq!(g.successors(t1), &[t2]);
        assert_eq!(g.predecessor_counts()[t1.0], 1);
        assert_eq!(g.predecessor_counts()[t2.0], 1);
    }

    #[test]
    fn duplicate_deps_coalesce() {
        let mut g = TaskGraph::new();
        let a = g.add_host_tile(64, false, "a");
        let b = g.add_host_tile(64, false, "b");
        let w = g.add_task(op(), vec![write(a), write(b)], "w");
        let r = g.add_task(op(), vec![read(a), read(b)], "r");
        // Both deps point at w but must count once.
        assert_eq!(g.predecessor_counts()[r.0], 1);
        assert_eq!(g.successors(w), &[r]);
    }

    #[test]
    fn flush_depends_on_last_writers() {
        let mut g = TaskGraph::new();
        let a = g.add_host_tile(64, false, "a");
        let b = g.add_host_tile(64, false, "b");
        let w1 = g.add_task(op(), vec![write(a)], "w1");
        let w2 = g.add_task(op(), vec![write(b)], "w2");
        let f = g.add_flush(&[a, b], "flush");
        assert_eq!(g.predecessor_counts()[f.0], 2);
        assert!(g.successors(w1).contains(&f));
        assert!(g.successors(w2).contains(&f));
        assert_eq!(g.task(f).kind, TaskKind::Flush);
    }

    #[test]
    fn critical_path_of_chain() {
        let mut g = TaskGraph::new();
        let c = g.add_host_tile(64, false, "c");
        for i in 0..5 {
            g.add_task(
                TileOp::Gemm { m: 1024, n: 1024, k: 1024 },
                vec![rw(c)],
                format!("k{i}"),
            );
        }
        let model = GpuModel::v100();
        let one = model.kernel_time(TileOp::Gemm { m: 1024, n: 1024, k: 1024 });
        let cp = g.critical_path_seconds(&model);
        assert!((cp - 5.0 * one).abs() < 1e-12);
    }

    #[test]
    fn dot_renders() {
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        let w = g.add_task(op(), vec![write(h)], "w");
        let r = g.add_task(op(), vec![read(h)], "r");
        let dot = g.to_dot();
        assert!(dot.contains(&format!("t{} -> t{}", w.0, r.0)));
    }
}
