//! The workspace-wide run error.
//!
//! One enum replaces the three ad-hoc failure paths that grew up around the
//! harness: library capability errors (`Unsupported` / `OutOfMemory`,
//! previously `xk_baselines::RunError`), the sweep's best-tile fallback
//! bookkeeping, and bench I/O errors (previously raw `std::io::Error`).
//! `#[non_exhaustive]` keeps room for future variants without breaking
//! downstream matches.

use std::sync::Arc;

/// Why a run (or the harness around it) failed.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum Error {
    /// The library does not implement this routine on GPUs.
    Unsupported,
    /// The library's allocator fails at this size (BLASX above N = 45000,
    /// §IV-D / Fig. 5 caption).
    OutOfMemory,
    /// A modelled interconnect link went down while a transfer was in
    /// flight on it; every waiter on that transfer (including optimistic
    /// D2D forwards sourced from it) surfaces this error.
    LinkDown {
        /// Source GPU of the failed directed link.
        src: usize,
        /// Destination GPU of the failed directed link.
        dst: usize,
    },
    /// A harness I/O operation failed (writing a CSV, a trace export...).
    Io {
        /// What was being done, usually the file path involved.
        context: String,
        /// The underlying error. `Arc`-wrapped so run results stay
        /// cheaply cloneable (the run cache clones outcomes on every hit).
        source: Arc<std::io::Error>,
    },
}

impl Error {
    /// Wraps an I/O error with its context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Error::Io {
            context: context.into(),
            source: Arc::new(source),
        }
    }

    /// How much a failure tells the caller: a concrete resource failure
    /// beats the catch-all `Unsupported`, and an environmental I/O failure
    /// beats both (it means the harness, not the library, broke).
    fn rank(&self) -> u8 {
        match self {
            Error::Unsupported => 0,
            Error::OutOfMemory => 1,
            // A hardware fault explains more than a capacity limit but less
            // than a broken harness.
            Error::LinkDown { .. } => 2,
            Error::Io { .. } => 3,
        }
    }

    /// Of two failures, keeps the more informative one; on equal rank the
    /// newer (`other`) wins. This is the sweep's error-folding rule: after
    /// trying every tile candidate, report the failure that best explains
    /// why no tile worked.
    pub fn most_informative(self, other: Error) -> Error {
        if self.rank() > other.rank() {
            self
        } else {
            other
        }
    }
}

impl PartialEq for Error {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Error::Unsupported, Error::Unsupported) => true,
            (Error::OutOfMemory, Error::OutOfMemory) => true,
            (
                Error::LinkDown { src: sa, dst: da },
                Error::LinkDown { src: sb, dst: db },
            ) => sa == sb && da == db,
            // io::Error is not PartialEq; kind + context identify the
            // failure for test assertions and cache-consistency checks.
            (
                Error::Io { context: ca, source: sa },
                Error::Io { context: cb, source: sb },
            ) => ca == cb && sa.kind() == sb.kind(),
            _ => false,
        }
    }
}

impl Eq for Error {}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Unsupported => write!(f, "routine not implemented by this library"),
            Error::OutOfMemory => write!(f, "memory allocation error"),
            Error::LinkDown { src, dst } => {
                write!(f, "link gpu{src} -> gpu{dst} failed during transfer")
            }
            Error::Io { context, source } => write!(f, "I/O error ({context}): {source}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::io("unspecified I/O operation", e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    #[test]
    fn most_informative_prefers_concrete_failures() {
        // OOM survives a later Unsupported (the old sweep rule).
        assert_eq!(
            Error::OutOfMemory.most_informative(Error::Unsupported),
            Error::OutOfMemory
        );
        assert_eq!(
            Error::Unsupported.most_informative(Error::OutOfMemory),
            Error::OutOfMemory
        );
        // Equal rank: the newer error wins (also the old rule).
        assert_eq!(
            Error::Unsupported.most_informative(Error::Unsupported),
            Error::Unsupported
        );
        let io_err = Error::io("x", io::Error::other("boom"));
        assert_eq!(
            Error::OutOfMemory.most_informative(io_err.clone()),
            io_err
        );
    }

    #[test]
    fn most_informative_folding_order() {
        // The sweep folds errors left-to-right over tile candidates; the
        // result must be the highest-ranked error, and among equal ranks
        // the one seen *last*. Exercise whole sequences, not just pairs.
        let first = Error::io("first.csv", io::Error::other("a"));
        let last = Error::io("last.csv", io::Error::other("b"));
        let seq = vec![
            Error::Unsupported,
            first.clone(),
            Error::OutOfMemory,
            Error::LinkDown { src: 0, dst: 4 },
            last.clone(),
            Error::Unsupported,
        ];
        let folded = seq
            .into_iter()
            .reduce(|acc, e| acc.most_informative(e))
            .unwrap();
        // Io outranks everything; `last` beats `first` on the rank tie.
        assert_eq!(folded, last);
        assert_ne!(folded, first);

        // Fold order without any Io: LinkDown beats OOM beats Unsupported.
        let seq = vec![
            Error::OutOfMemory,
            Error::LinkDown { src: 1, dst: 2 },
            Error::Unsupported,
            Error::OutOfMemory,
        ];
        let folded = seq
            .into_iter()
            .reduce(|acc, e| acc.most_informative(e))
            .unwrap();
        assert_eq!(folded, Error::LinkDown { src: 1, dst: 2 });

        // Equal-rank LinkDowns: the newer one wins, like every rank tie.
        let folded = Error::LinkDown { src: 0, dst: 1 }
            .most_informative(Error::LinkDown { src: 2, dst: 3 });
        assert_eq!(folded, Error::LinkDown { src: 2, dst: 3 });
    }

    #[test]
    fn link_down_display_and_equality() {
        let e = Error::LinkDown { src: 0, dst: 4 };
        assert_eq!(e.to_string(), "link gpu0 -> gpu4 failed during transfer");
        assert_eq!(e, Error::LinkDown { src: 0, dst: 4 });
        assert_ne!(e, Error::LinkDown { src: 4, dst: 0 });
        assert_ne!(e, Error::Unsupported);
        use std::error::Error as _;
        assert!(e.source().is_none());
    }

    #[test]
    fn io_equality_is_by_kind_and_context() {
        let a = Error::io("f.csv", io::Error::new(io::ErrorKind::NotFound, "a"));
        let b = Error::io("f.csv", io::Error::new(io::ErrorKind::NotFound, "b"));
        let c = Error::io("g.csv", io::Error::new(io::ErrorKind::NotFound, "a"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, Error::Unsupported);
    }

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        assert_eq!(
            Error::Unsupported.to_string(),
            "routine not implemented by this library"
        );
        assert_eq!(Error::OutOfMemory.to_string(), "memory allocation error");
        let e = Error::io("out.json", io::Error::other("disk full"));
        assert!(e.to_string().contains("out.json"));
        assert!(e.source().is_some());
        assert!(Error::Unsupported.source().is_none());
    }

    #[test]
    fn from_io_error() {
        let e: Error = io::Error::new(io::ErrorKind::PermissionDenied, "no").into();
        assert!(matches!(e, Error::Io { .. }));
    }
}
