//! Schedule-free makespan lower bound: `max(critical path, LP link load,
//! aggregate compute)`.
//!
//! Every quantity here is a *relaxation* — true for any schedule the
//! simulator can produce, under any controller, heuristic set or event
//! ordering — so `bound ≤ makespan` is a free correctness oracle for the
//! DES (asserted across the whole differential matrix by `xk-check`) and
//! the denominator of the optimality gap reported by `bench_snapshot`.
//!
//! The three components:
//!
//! * **Critical path** — longest dependency chain where each kernel costs
//!   its model time, first reads of host-resident tiles cost at least the
//!   cheapest H2D route, and dirty tiles drained by a flush cost at least
//!   the cheapest D2H route after their last writer. Purely combinatorial.
//! * **Link LP** — mandatory host traffic (tiles whose first access is a
//!   read of host data must cross some host uplink once; dirty flush
//!   reads must cross back) scheduled fractionally over GPUs to minimize
//!   the bottleneck engine's busy time. Solved with `xk-lp`'s revised
//!   simplex; variables are per-(tile, GPU) delivered fractions, rows are
//!   the executor's actual engines (PCIe in/out per GPU, switch uplinks,
//!   inter-socket, NICs) with coefficients from the exact route tables
//!   including the pitched-copy derating. Latency is dropped (transfers
//!   could be batched), which only lowers the bound.
//! * **Compute** — each GPU serializes kernels on one model stream, so
//!   `Σ kernel_time / n_gpus` is unbeatable even by a perfect scheduler.
//!
//! What is deliberately *not* in the bound: submission-window ordering
//! (the work-stealing path re-acquires tasks in ways that break a
//! serialization argument) and any claim about which GPU runs what — the
//! LP lets every byte take its cheapest route, every task its free GPU.

use xk_kernels::perfmodel::PITCHED_COPY_FACTOR;
use xk_lp::{Lp, LpResult};
use xk_topo::{BusSegment, Device, FabricSpec, Route};

use crate::config::RuntimeConfig;
use crate::graph::TaskGraph;
use crate::task::TaskKind;

/// A makespan lower bound, broken into its component relaxations.
///
/// `total` is the binding value (`max` of the components); the parts are
/// kept so reports can say *why* a run cannot be faster — link-capacity
/// bound problems and dependency-chain bound problems call for different
/// optimizations.
#[derive(Clone, Debug, PartialEq)]
pub struct MakespanBound {
    /// `max(critical_path, link_lp, compute)` — the usable bound, seconds.
    pub total: f64,
    /// Longest dependency chain with mandatory-transfer floors, seconds.
    pub critical_path: f64,
    /// LP bottleneck-engine optimum over mandatory host traffic, seconds.
    pub link_lp: f64,
    /// Aggregate kernel time over all GPUs, seconds.
    pub compute: f64,
    /// Simplex pivots spent on the link LP (0 when no mandatory traffic).
    pub lp_iterations: usize,
}

impl MakespanBound {
    /// Relative optimality gap of an achieved `makespan` against this
    /// bound: `makespan / total − 1` (`0` = provably optimal schedule).
    /// Returns `None` for empty workloads with a zero bound.
    pub fn gap(&self, makespan: f64) -> Option<f64> {
        (self.total > 0.0).then(|| makespan / self.total - 1.0)
    }

    /// True when `makespan` respects the bound within `rel_tol`
    /// (`makespan ≥ total · (1 − rel_tol)`). The differential harness
    /// uses `1e-9`, matching the LP solver's own tolerance.
    pub fn admits(&self, makespan: f64, rel_tol: f64) -> bool {
        makespan >= self.total * (1.0 - rel_tol)
    }
}

/// Effective bandwidth of a route for one tile: pitched host transfers
/// are derated exactly like the executor derates them.
fn route_seconds(route: &Route, bytes: u64, pitched: bool) -> f64 {
    let mut bw = route.bandwidth;
    if pitched {
        bw *= PITCHED_COPY_FACTOR;
    }
    bytes as f64 / bw
}

/// Index space of the shared engines the LP rows model, mirroring the
/// executor's engine pool (minus the per-GPU kernel streams, which the
/// `compute` component covers).
struct Engines {
    n_gpus: usize,
    n_switches: usize,
}

impl Engines {
    fn count(&self, n_nodes: usize) -> usize {
        2 * self.n_gpus + self.n_switches + 1 + n_nodes
    }

    fn pcie_in(&self, g: usize) -> usize {
        g
    }

    fn pcie_out(&self, g: usize) -> usize {
        self.n_gpus + g
    }

    fn segment(&self, s: &BusSegment) -> usize {
        match s {
            BusSegment::HostUplink(sw) => 2 * self.n_gpus + sw,
            BusSegment::InterSocket => 2 * self.n_gpus + self.n_switches,
            BusSegment::InterNode(nd) => 2 * self.n_gpus + self.n_switches + 1 + nd,
        }
    }
}

/// Computes the schedule-free lower bound on the makespan of `graph` on
/// `topo` under `cfg`'s performance model.
///
/// The result only depends on the graph, the fabric and the kernel model
/// — never on heuristics, scheduler kind or controller decisions — so one
/// bound serves every explored schedule of a scenario.
pub fn makespan_lower_bound(
    graph: &TaskGraph,
    topo: &FabricSpec,
    cfg: &RuntimeConfig,
) -> MakespanBound {
    let n = topo.n_gpus();
    let data = graph.data();
    let n_handles = data.len();

    // ---- Mandatory transfers -------------------------------------------
    // H2D: a tile whose *first* access (in submission order, which is
    // dependency order) reads host-initial data must be delivered from the
    // host at least once — no schedule can conjure it from a device.
    // D2H: a tile a flush reads while dirty (written on device, or
    // device-initial) must be written back at least once.
    let mut first_touch_reads: Vec<Option<bool>> = vec![None; n_handles];
    let mut last_writer: Vec<Option<usize>> = vec![None; n_handles];
    let mut flushed: Vec<bool> = vec![false; n_handles];
    let mut d2h_mandatory: Vec<bool> = vec![false; n_handles];

    // Critical-path state, filled in the same submission-order pass.
    let mut finish = vec![0.0f64; graph.len()];
    let mut flush_tail = 0.0f64;
    // Cheapest H2D/D2H per handle, lazily materialized.
    let mut h2d_floor: Vec<f64> = vec![f64::NAN; n_handles];
    let mut d2h_floor: Vec<f64> = vec![f64::NAN; n_handles];
    let mut floor = |cache: &mut Vec<f64>, h: usize, to_gpu: bool| -> f64 {
        if cache[h].is_nan() {
            let info = data.info(crate::data::HandleId(h));
            let mut best = f64::INFINITY;
            for g in 0..n {
                let (src, dst) = if to_gpu {
                    (Device::Host, Device::Gpu(g))
                } else {
                    (Device::Gpu(g), Device::Host)
                };
                let route = topo.route_ref(src, dst);
                let t = route.latency + route_seconds(route, info.bytes, info.pitched);
                best = best.min(t);
            }
            cache[h] = best;
        }
        cache[h]
    };

    for (t, task) in graph.tasks().iter().enumerate() {
        let mut ready = 0.0f64;
        for p in graph.predecessors(crate::task::TaskId(t)) {
            ready = ready.max(finish[p.0]);
        }
        match task.kind {
            TaskKind::Kernel => {
                for a in task.accesses.iter() {
                    let h = a.handle.0;
                    if first_touch_reads[h].is_none() {
                        first_touch_reads[h] = Some(a.access.reads());
                    }
                    if a.access.reads()
                        && last_writer[h].is_none()
                        && data.info(a.handle).initial.is_host()
                    {
                        ready = ready.max(floor(&mut h2d_floor, h, true));
                    }
                }
                let kernel = task.op.map_or(0.0, |op| cfg.gpu_model.kernel_time(op));
                finish[t] = ready + kernel;
                for h in task.written_handles() {
                    last_writer[h.0] = Some(t);
                    flushed[h.0] = false;
                }
            }
            TaskKind::Flush => {
                // The flush itself completes at `ready`; the write-backs it
                // (or eager flushing) forces end at least one cheapest-D2H
                // after the last writer, bounding the *makespan* rather
                // than the flush's successors (eager mode drains early).
                finish[t] = ready;
                for h in task.read_handles() {
                    let hi = h.0;
                    if flushed[hi] {
                        continue;
                    }
                    let dirty_since = match (last_writer[hi], data.info(h).initial) {
                        (Some(w), _) => Some(finish[w]),
                        (None, Device::Gpu(_)) => Some(0.0),
                        (None, _) => None,
                    };
                    if let Some(since) = dirty_since {
                        d2h_mandatory[hi] = true;
                        flushed[hi] = true;
                        flush_tail = flush_tail.max(since + floor(&mut d2h_floor, hi, false));
                    }
                }
            }
        }
    }
    let critical_path = finish
        .iter()
        .fold(flush_tail, |acc, &f| acc.max(f));

    // ---- Aggregate compute ---------------------------------------------
    let compute = if n > 0 {
        graph
            .tasks()
            .iter()
            .filter(|t| t.kind == TaskKind::Kernel)
            .filter_map(|t| t.op)
            .map(|op| cfg.gpu_model.kernel_time(op))
            .sum::<f64>()
            / n as f64
    } else {
        0.0
    };

    // ---- Link LP --------------------------------------------------------
    let h2d: Vec<usize> = (0..n_handles)
        .filter(|&h| {
            first_touch_reads[h] == Some(true)
                && data.info(crate::data::HandleId(h)).initial.is_host()
        })
        .collect();
    let d2h: Vec<usize> = (0..n_handles).filter(|&h| d2h_mandatory[h]).collect();
    let (link_lp, lp_iterations) = link_lp_bound(topo, graph, &h2d, &d2h);

    let total = critical_path.max(compute).max(link_lp);
    MakespanBound { total, critical_path, link_lp, compute, lp_iterations }
}

/// Builds and solves the bottleneck-engine LP over the mandatory
/// transfers: minimize `M` subject to "every mandatory tile fully
/// delivered (fractionally, over any GPUs)" and "every shared engine's
/// assigned seconds ≤ M".
fn link_lp_bound(
    topo: &FabricSpec,
    graph: &TaskGraph,
    h2d: &[usize],
    d2h: &[usize],
) -> (f64, usize) {
    let n = topo.n_gpus();
    if n == 0 || (h2d.is_empty() && d2h.is_empty()) {
        return (0.0, 0);
    }
    let engines = Engines { n_gpus: n, n_switches: topo.n_switches() };
    let n_engines = engines.count(topo.n_nodes());
    let n_vars = (h2d.len() + d2h.len()) * n + 1;
    let m_col = n_vars - 1;

    // Variables are delivered *fractions* of each tile (well-scaled into
    // [0, 1]); engine-row coefficients are whole-tile seconds.
    let mut objective = vec![0.0; n_vars];
    objective[m_col] = 1.0;
    let mut lp = Lp::minimize(objective);
    let mut engine_rows = vec![vec![0.0; n_vars]; n_engines];

    let mut delivery = |lp: &mut Lp,
                        engine_rows: &mut Vec<Vec<f64>>,
                        handles: &[usize],
                        var_base: usize,
                        to_gpu: bool| {
        for (hi, &h) in handles.iter().enumerate() {
            let info = graph.data().info(crate::data::HandleId(h));
            let mut row = vec![0.0; n_vars];
            for g in 0..n {
                let var = var_base + hi * n + g;
                row[var] = 1.0;
                let (src, dst, endpoint) = if to_gpu {
                    (Device::Host, Device::Gpu(g), engines.pcie_in(g))
                } else {
                    (Device::Gpu(g), Device::Host, engines.pcie_out(g))
                };
                let route = topo.route_ref(src, dst);
                let secs = route_seconds(route, info.bytes, info.pitched);
                engine_rows[endpoint][var] += secs;
                for s in &route.segments {
                    engine_rows[engines.segment(s)][var] += secs;
                }
            }
            lp.ge(row, 1.0);
        }
    };
    delivery(&mut lp, &mut engine_rows, h2d, 0, true);
    delivery(&mut lp, &mut engine_rows, d2h, h2d.len() * n, false);

    for mut row in engine_rows {
        if row.iter().any(|&c| c != 0.0) {
            row[m_col] = -1.0;
            lp.le(row, 0.0);
        }
    }

    match xk_lp::solve(&lp) {
        LpResult::Optimal(s) => (s.value.max(0.0), s.iterations),
        // The LP is feasible (route everything through GPU 0) and bounded
        // (M ≥ 0 minimized); anything else is a solver bug — fall back to
        // the trivial bound rather than poisoning the oracle.
        other => {
            debug_assert!(false, "link LP not optimal: {other:?}");
            (0.0, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::data::DataInfo;
    use crate::sim_exec::SimExecutor;
    use crate::task::{Access, TaskAccess};
    use xk_kernels::perfmodel::TileOp;

    const MB32: u64 = 32 << 20;

    fn gemm() -> TileOp {
        TileOp::Gemm { m: 2048, n: 2048, k: 2048 }
    }

    fn chain_graph(len: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        let c = g.add_host_tile(MB32, true, "C");
        for i in 0..len {
            g.add_task(
                gemm(),
                vec![TaskAccess { handle: c, access: Access::ReadWrite }],
                format!("t{i}"),
            );
        }
        g
    }

    fn fan_graph(width: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        let shared = g.add_host_tile(MB32, true, "A");
        let mut handles = vec![shared];
        for i in 0..width {
            let c = g.add_host_tile(MB32, true, format!("C{i}"));
            handles.push(c);
            g.add_task(
                gemm(),
                vec![
                    TaskAccess { handle: shared, access: Access::Read },
                    TaskAccess { handle: c, access: Access::ReadWrite },
                ],
                format!("t{i}"),
            );
        }
        g.add_flush(&handles, "flush");
        g
    }

    #[test]
    fn bound_is_positive_and_below_makespan() {
        let topo = xk_topo::dgx1();
        let cfg = RuntimeConfig::xkblas();
        for g in [chain_graph(6), fan_graph(12)] {
            let bound = makespan_lower_bound(&g, &topo, &cfg);
            assert!(bound.total > 0.0);
            let out = SimExecutor::new(&g, &topo, &cfg).run();
            assert!(
                bound.admits(out.makespan, 1e-9),
                "bound {} > makespan {}",
                bound.total,
                out.makespan,
            );
            assert!(bound.gap(out.makespan).unwrap() >= -1e-9);
        }
    }

    #[test]
    fn chain_bound_is_dominated_by_the_critical_path() {
        let topo = xk_topo::dgx1();
        let cfg = RuntimeConfig::xkblas();
        let g = chain_graph(8);
        let b = makespan_lower_bound(&g, &topo, &cfg);
        assert_eq!(b.total, b.critical_path);
        // 8 dependent kernels: at least 8 kernel times end to end.
        assert!(b.critical_path >= 8.0 * cfg.gpu_model.kernel_time(gemm()));
        // One GPU's worth of compute spread over 8: strictly smaller.
        assert!(b.compute < b.critical_path);
    }

    #[test]
    fn pure_write_first_tiles_need_no_h2d() {
        // First access writes: host data is never read, so the LP sees no
        // mandatory H2D for it.
        let mut g = TaskGraph::new();
        let c = g.add_host_tile(MB32, true, "C");
        g.add_task(gemm(), vec![TaskAccess { handle: c, access: Access::Write }], "w");
        g.add_task(gemm(), vec![TaskAccess { handle: c, access: Access::Read }], "r");
        let topo = xk_topo::dgx1();
        let cfg = RuntimeConfig::xkblas();
        let b = makespan_lower_bound(&g, &topo, &cfg);
        assert_eq!(b.link_lp, 0.0);
        assert_eq!(b.lp_iterations, 0);
        // Two dependent kernels still chain.
        assert!(b.critical_path >= 2.0 * cfg.gpu_model.kernel_time(gemm()));
    }

    #[test]
    fn device_initial_dirty_tiles_force_a_writeback_bound() {
        let mut g = TaskGraph::new();
        let c = g.add_data(DataInfo::on_gpu(MB32, 0, "C"));
        g.add_task(gemm(), vec![TaskAccess { handle: c, access: Access::Read }], "r");
        g.add_flush(&[c], "flush");
        let topo = xk_topo::dgx1();
        let cfg = RuntimeConfig::xkblas();
        let b = makespan_lower_bound(&g, &topo, &cfg);
        assert!(b.link_lp > 0.0, "flush of a dirty device tile moves bytes");
        let out = SimExecutor::new(&g, &topo, &cfg).run();
        assert!(b.admits(out.makespan, 1e-9));
    }

    #[test]
    fn bound_is_schedule_independent() {
        let topo = xk_topo::dgx1();
        let g = fan_graph(8);
        let a = makespan_lower_bound(&g, &topo, &RuntimeConfig::xkblas());
        let b = makespan_lower_bound(
            &g,
            &topo,
            &RuntimeConfig::xkblas().with_heuristics(crate::config::Heuristics::none()),
        );
        // Heuristics do not enter the bound (same model, same graph).
        assert_eq!(a, b);
    }
}
