//! Schedule-space choice points: the hook a checker drives to explore
//! interleavings.
//!
//! Both executors are deterministic by default — every tie is broken by a
//! fixed canonical rule. That determinism is great for reproducibility but
//! hides the schedules a real machine would produce. A
//! [`ScheduleController`] makes the nondeterminism explicit: the executors
//! consult it at every point where more than one continuation is legal
//! (which same-time event fires, which queued task launches, which victim
//! an idle GPU steals from, which equally-ranked source supplies a tile,
//! which replica is evicted), and `xk-check` supplies controllers that
//! enumerate, randomize or replay those decisions. A run under a
//! controller is exactly as deterministic as the controller itself, so one
//! failing interleaving is a replayable seed plus choice string.
//!
//! The controller doubles as a *semantic witness*: the executors report
//! every data movement and kernel execution (with simulated start/end
//! times) through the `on_*` observer methods, which default to no-ops.
//! `xk-check` uses them to replay the run's data flow against a serial
//! reference and catch stale reads, lost forwards and use-before-arrival —
//! without the executors knowing anything about the oracle.

/// The kind of nondeterministic decision being resolved.
///
/// Candidates are always presented in a canonical deterministic order
/// (documented per variant), so `choose(_, _) == 0` reproduces the
/// executor's default behaviour exactly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ChoicePoint {
    /// Which of several same-timestamp DES events fires first.
    /// Candidates in FIFO (scheduling) order.
    EventTieBreak,
    /// Which queued ready task a GPU launches next. Candidates in queue
    /// (submission) order.
    ReadyTaskPick,
    /// Which victim an idle GPU steals from. Candidates are the GPUs with
    /// non-empty queues, the thief excluded, sorted longest queue first
    /// (ascending index on ties) so candidate 0 is the canonical victim.
    StealVictim,
    /// Which equally-ranked source GPU supplies a tile
    /// ([`crate::heuristics::select_source`] tie). Candidates ascending by
    /// GPU index.
    SourceTieBreak,
    /// Which evictable replica leaves a full cache first. Candidates in the
    /// canonical eviction order (clean before dirty, LRU within a class).
    EvictionPick,
    /// Which virtual worker of the controlled parallel executor takes the
    /// next step. Candidates are the runnable workers, ascending index.
    WorkerStep,
    /// Which newly-ready successor a finishing worker runs inline (the
    /// rest become stealable). Candidate 0 is the canonical inline pick
    /// (the *last* newly-ready successor, matching [`crate::run_parallel`]);
    /// the rest follow in successor (CSR) order.
    InlineSuccessor,
}

/// Resolves nondeterministic choice points and observes semantic effects.
///
/// `choose` is only consulted when two or more candidates exist; returning
/// an out-of-range index is clamped to the last candidate by every caller.
/// The `on_*` observers fire as the corresponding operation is *reserved*
/// (simulated start/end times are final at that point) and default to
/// no-ops, so a pure exploration controller only implements `choose`.
pub trait ScheduleController {
    /// Picks one of `n >= 2` canonically-ordered candidates at `point`.
    fn choose(&mut self, point: ChoicePoint, n: usize) -> usize;

    /// A host→device transfer of handle `h` into GPU `dst` over
    /// `[start, end]` seconds: samples host memory at `start`, makes the
    /// replica valid at `end`.
    fn on_h2d(&mut self, h: usize, dst: usize, start: f64, end: f64) {
        let _ = (h, dst, start, end);
    }

    /// A device→device transfer of `h` from `src` to `dst` over
    /// `[start, end]`: samples the source replica at `start`, makes the
    /// destination replica valid at `end`.
    fn on_p2p(&mut self, h: usize, src: usize, dst: usize, start: f64, end: f64) {
        let _ = (h, src, dst, start, end);
    }

    /// A device→host write-back of `h` from `src` over `[start, end]`:
    /// samples the device replica at `start`, makes host memory valid at
    /// `end`.
    fn on_d2h(&mut self, h: usize, src: usize, start: f64, end: f64) {
        let _ = (h, src, start, end);
    }

    /// Kernel of task `t` on GPU `gpu` over `[start, end]`: samples its
    /// read replicas at `start`, commits its written replicas at `end`.
    fn on_kernel(&mut self, t: usize, gpu: usize, start: f64, end: f64) {
        let _ = (t, gpu, start, end);
    }
}

/// The canonical controller: always picks candidate 0 and observes
/// nothing — byte-identical to running without a controller. Useful as a
/// replay fallback and in tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct CanonicalController;

impl ScheduleController for CanonicalController {
    fn choose(&mut self, _point: ChoicePoint, _n: usize) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_controller_picks_first() {
        let mut c = CanonicalController;
        assert_eq!(c.choose(ChoicePoint::EventTieBreak, 5), 0);
        // Observer defaults are callable no-ops.
        c.on_h2d(0, 1, 0.0, 1.0);
        c.on_p2p(0, 1, 2, 0.0, 1.0);
        c.on_d2h(0, 1, 0.0, 1.0);
        c.on_kernel(0, 1, 0.0, 1.0);
    }
}
