//! The multi-GPU software cache (XKaapi's, paper §III-A and §III-C).
//!
//! Tracks every replica of every tile across the host and the GPUs with a
//! MOSI-flavoured protocol plus one extra state the paper adds for its
//! optimistic heuristic: **UnderTransfer**, "a data is under transfer to a
//! specific GPU". Eviction follows XKaapi's policy: read-only (clean)
//! replicas are evicted first, LRU within a class.

use std::collections::HashMap;

use xk_sim::SimTime;
use xk_topo::Device;

use crate::data::{DataRegistry, HandleId};

/// State of one replica on one device.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ReplicaState {
    /// Valid copy of the current version.
    Valid,
    /// Transfer of the current version into this device completes at
    /// `ready_at` (the paper's extension of the cache metadata).
    UnderTransfer {
        /// Simulated time at which the replica becomes valid.
        ready_at: SimTime,
    },
}

#[derive(Clone, Debug, Default)]
struct DeviceCache {
    replicas: HashMap<HandleId, ReplicaState>,
    /// LRU clock per handle.
    last_use: HashMap<HandleId, u64>,
    used_bytes: u64,
    capacity: u64,
}

/// Per-handle global coherence metadata.
#[derive(Clone, Debug, Default)]
struct Coherence {
    /// True when host memory holds the current version.
    host_valid: bool,
    /// Device holding a dirty (not host-flushed) version, if any.
    dirty_on: Option<usize>,
}

/// Eviction action the executor must perform.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Eviction {
    /// Drop a clean replica (no traffic).
    Drop(HandleId),
    /// Write a dirty replica back to the host, then drop it.
    WriteBack(HandleId),
}

/// A deliberately injectable coherence bug, used by `xk-check`'s mutation
/// tests to prove the differential oracle actually catches protocol
/// violations. Never enabled in normal operation.
#[doc(hidden)]
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CoherenceMutation {
    /// No mutation: the correct protocol.
    #[default]
    None,
    /// `mark_written` forgets to invalidate peer replicas — readers on
    /// other GPUs can then source a stale version (a classic MSI bug).
    StaleRead,
}

/// The software cache over all devices.
pub struct SoftwareCache {
    devices: Vec<DeviceCache>,
    coherence: Vec<Coherence>,
    clock: u64,
    /// Pin counts per (handle, device): pinned replicas are never evicted
    /// (inputs of queued tasks, prefetched but not yet consumed).
    pins: HashMap<(HandleId, usize), u32>,
    /// Injected protocol bug for mutation testing (default: none).
    mutation: CoherenceMutation,
}

impl SoftwareCache {
    /// Creates the cache for `n_gpus` devices of `capacity` bytes each,
    /// with initial validity taken from each handle's `initial` placement.
    pub fn new(n_gpus: usize, capacity: u64, data: &DataRegistry) -> Self {
        let mut cache = SoftwareCache {
            devices: (0..n_gpus)
                .map(|_| DeviceCache {
                    capacity,
                    ..Default::default()
                })
                .collect(),
            coherence: vec![Coherence::default(); data.len()],
            clock: 0,
            pins: HashMap::new(),
            mutation: CoherenceMutation::default(),
        };
        for (h, info) in data.iter() {
            match info.initial {
                Device::Host => cache.coherence[h.0].host_valid = true,
                Device::Gpu(g) => {
                    cache.coherence[h.0].host_valid = false;
                    let dev = &mut cache.devices[g];
                    dev.replicas.insert(h, ReplicaState::Valid);
                    dev.used_bytes += info.bytes;
                    dev.last_use.insert(h, 0);
                    // Device-initial data is considered dirty w.r.t. host so
                    // that a flush would move it back.
                    cache.coherence[h.0].dirty_on = Some(g);
                }
            }
        }
        cache
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Enables an injected protocol bug (mutation testing only).
    #[doc(hidden)]
    pub fn inject_mutation(&mut self, m: CoherenceMutation) {
        self.mutation = m;
    }

    /// Is the host copy of `h` valid?
    pub fn host_valid(&self, h: HandleId) -> bool {
        self.coherence[h.0].host_valid
    }

    /// Device holding a dirty version of `h`, if any.
    pub fn dirty_on(&self, h: HandleId) -> Option<usize> {
        self.coherence[h.0].dirty_on
    }

    /// Replica state of `h` on GPU `g`.
    pub fn replica(&self, h: HandleId, g: usize) -> Option<ReplicaState> {
        self.devices[g].replicas.get(&h).copied()
    }

    /// True when `h` is fully valid on GPU `g` at time `now`.
    pub fn valid_on(&self, h: HandleId, g: usize, now: SimTime) -> bool {
        match self.replica(h, g) {
            Some(ReplicaState::Valid) => true,
            Some(ReplicaState::UnderTransfer { ready_at }) => ready_at <= now,
            None => false,
        }
    }

    /// GPUs holding a valid copy of `h` at `now`, ascending index.
    pub fn valid_gpus(&self, h: HandleId, now: SimTime) -> Vec<usize> {
        (0..self.devices.len())
            .filter(|&g| self.valid_on(h, g, now))
            .collect()
    }

    /// GPUs with `h` under transfer (not yet ready) at `now`, with their
    /// completion times — the optimistic heuristic's candidates.
    pub fn in_flight(&self, h: HandleId, now: SimTime) -> Vec<(usize, SimTime)> {
        (0..self.devices.len())
            .filter_map(|g| match self.replica(h, g) {
                Some(ReplicaState::UnderTransfer { ready_at }) if ready_at > now => {
                    Some((g, ready_at))
                }
                _ => None,
            })
            .collect()
    }

    /// Bytes currently resident on GPU `g`.
    pub fn used_bytes(&self, g: usize) -> u64 {
        self.devices[g].used_bytes
    }

    /// Capacity of GPU `g`.
    pub fn capacity(&self, g: usize) -> u64 {
        self.devices[g].capacity
    }

    /// Records the start of a transfer of `h` into GPU `g`, completing at
    /// `ready_at`. The caller must have ensured capacity first.
    pub fn begin_transfer(&mut self, h: HandleId, g: usize, bytes: u64, ready_at: SimTime) {
        let t = self.tick();
        let dev = &mut self.devices[g];
        if dev.replicas.insert(h, ReplicaState::UnderTransfer { ready_at }).is_none() {
            dev.used_bytes += bytes;
        }
        dev.last_use.insert(h, t);
    }

    /// Marks `h` resident on `g` without any transfer (freshly allocated
    /// output tile that will be overwritten).
    pub fn allocate_output(&mut self, h: HandleId, g: usize, bytes: u64) {
        let t = self.tick();
        let dev = &mut self.devices[g];
        if dev.replicas.insert(h, ReplicaState::Valid).is_none() {
            dev.used_bytes += bytes;
        }
        dev.last_use.insert(h, t);
    }

    /// Records that a kernel on GPU `g` produced a new version of `h`:
    /// all other replicas are invalidated, host becomes stale, `g` holds
    /// the only (dirty) copy.
    pub fn mark_written(&mut self, h: HandleId, g: usize, bytes: u64, data: &DataRegistry) {
        let t = self.tick();
        if self.mutation != CoherenceMutation::StaleRead {
            for (gi, dev) in self.devices.iter_mut().enumerate() {
                if gi != g {
                    if dev.replicas.remove(&h).is_some() {
                        dev.used_bytes -= data.info(h).bytes;
                    }
                    dev.last_use.remove(&h);
                }
            }
        }
        let dev = &mut self.devices[g];
        if dev.replicas.insert(h, ReplicaState::Valid).is_none() {
            dev.used_bytes += bytes;
        }
        dev.last_use.insert(h, t);
        self.coherence[h.0].host_valid = false;
        self.coherence[h.0].dirty_on = Some(g);
    }

    /// Records a completed flush of `h` to the host: host becomes valid,
    /// the device copy stays valid but is now clean.
    pub fn mark_flushed(&mut self, h: HandleId) {
        self.coherence[h.0].host_valid = true;
        self.coherence[h.0].dirty_on = None;
    }

    /// Drops the replica of `h` on `g` if present, clean and unpinned
    /// (no-cache-inputs mode). Dirty or pinned replicas are kept.
    pub fn drop_replica(&mut self, h: HandleId, g: usize, data: &DataRegistry) {
        if self.coherence[h.0].dirty_on == Some(g) || self.is_pinned(h, g) {
            return;
        }
        if self.devices[g].replicas.remove(&h).is_some() {
            self.devices[g].used_bytes -= data.info(h).bytes;
            self.devices[g].last_use.remove(&h);
        }
    }

    /// Pins `h` on device `g` (eviction-exempt until unpinned).
    pub fn pin(&mut self, h: HandleId, g: usize) {
        *self.pins.entry((h, g)).or_insert(0) += 1;
    }

    /// Releases one pin of `h` on `g`.
    pub fn unpin(&mut self, h: HandleId, g: usize) {
        if let Some(c) = self.pins.get_mut(&(h, g)) {
            *c -= 1;
            if *c == 0 {
                self.pins.remove(&(h, g));
            }
        }
    }

    /// True when `h` is pinned on `g`.
    pub fn is_pinned(&self, h: HandleId, g: usize) -> bool {
        self.pins.get(&(h, g)).copied().unwrap_or(0) > 0
    }

    /// LRU touch (a kernel read `h` on `g`).
    pub fn touch(&mut self, h: HandleId, g: usize) {
        let t = self.tick();
        if self.devices[g].replicas.contains_key(&h) {
            self.devices[g].last_use.insert(h, t);
        }
    }

    /// Ensures `bytes` fit on GPU `g` next to the pinned set `keep` (the
    /// working set of the launching task, never evicted). Returns the
    /// eviction actions, already applied to the cache state. XKaapi policy:
    /// clean replicas first (LRU), dirty ones (write-back) last.
    pub fn make_room(
        &mut self,
        g: usize,
        bytes: u64,
        keep: &[HandleId],
        data: &DataRegistry,
    ) -> Vec<Eviction> {
        self.make_room_with(g, bytes, keep, data, None)
    }

    /// Like [`SoftwareCache::make_room`], but an optional `pick` closure
    /// chooses which of the remaining eviction candidates (canonical
    /// clean-first / LRU order) goes next — the schedule-space checker's
    /// eviction choice point. `pick(n)` is consulted only while two or more
    /// candidates remain; `None` (and out-of-range picks clamped to the
    /// canonical head) reproduce `make_room` exactly.
    pub fn make_room_with(
        &mut self,
        g: usize,
        bytes: u64,
        keep: &[HandleId],
        data: &DataRegistry,
        mut pick: Option<&mut dyn FnMut(usize) -> usize>,
    ) -> Vec<Eviction> {
        let mut evictions = Vec::new();
        if self.devices[g].used_bytes + bytes <= self.devices[g].capacity {
            return evictions;
        }
        // Candidates: resident handles not in the pinned set, clean first,
        // then LRU order.
        let mut candidates: Vec<(bool, u64, HandleId)> = self.devices[g]
            .replicas
            .keys()
            .filter(|h| !keep.contains(h) && !self.is_pinned(**h, g))
            .map(|&h| {
                let dirty = self.coherence[h.0].dirty_on == Some(g);
                let lru = self.devices[g].last_use.get(&h).copied().unwrap_or(0);
                (dirty, lru, h)
            })
            .collect();
        candidates.sort_unstable();
        while self.devices[g].used_bytes + bytes > self.devices[g].capacity
            && !candidates.is_empty()
        {
            let idx = match pick.as_mut() {
                Some(p) if candidates.len() >= 2 => p(candidates.len()).min(candidates.len() - 1),
                _ => 0,
            };
            let (dirty, _, h) = candidates.remove(idx);
            let sz = data.info(h).bytes;
            self.devices[g].replicas.remove(&h);
            self.devices[g].last_use.remove(&h);
            self.devices[g].used_bytes -= sz;
            if dirty {
                // The executor must issue the write-back; coherence moves to
                // host once it completes, which we record eagerly here (the
                // transfer is reserved before anything else can read it).
                self.coherence[h.0].host_valid = true;
                self.coherence[h.0].dirty_on = None;
                evictions.push(Eviction::WriteBack(h));
            } else {
                evictions.push(Eviction::Drop(h));
            }
        }
        evictions
    }

    /// Number of resident replicas on GPU `g`.
    pub fn resident_count(&self, g: usize) -> usize {
        self.devices[g].replicas.len()
    }

    /// Checks protocol invariants (used by tests): at most one dirty holder,
    /// dirty holder has a replica entry, byte accounting matches.
    pub fn check_invariants(&self, data: &DataRegistry) -> Result<(), String> {
        for (h, _) in data.iter() {
            if let Some(g) = self.coherence[h.0].dirty_on {
                if !self.devices[g].replicas.contains_key(&h) {
                    return Err(format!("dirty handle {h:?} not resident on gpu{g}"));
                }
                if self.coherence[h.0].host_valid {
                    return Err(format!("handle {h:?} both dirty and host-valid"));
                }
            }
        }
        for (g, dev) in self.devices.iter().enumerate() {
            let sum: u64 = dev.replicas.keys().map(|h| data.info(*h).bytes).sum();
            if sum != dev.used_bytes {
                return Err(format!(
                    "gpu{g} byte accounting off: tracked {} actual {sum}",
                    dev.used_bytes
                ));
            }
            if dev.used_bytes > dev.capacity {
                return Err(format!("gpu{g} over capacity"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataInfo;

    fn registry(n: usize, bytes: u64) -> DataRegistry {
        let mut reg = DataRegistry::new();
        for i in 0..n {
            reg.add(DataInfo {
                bytes,
                pitched: false,
                initial: Device::Host,
                label: format!("t{i}"),
                owner_hint: None,
            });
        }
        reg
    }

    #[test]
    fn initial_state_host_valid() {
        let reg = registry(3, 100);
        let c = SoftwareCache::new(2, 1000, &reg);
        let h = HandleId(0);
        assert!(c.host_valid(h));
        assert!(c.valid_gpus(h, SimTime::ZERO).is_empty());
        assert_eq!(c.dirty_on(h), None);
        c.check_invariants(&reg).unwrap();
    }

    #[test]
    fn transfer_lifecycle() {
        let reg = registry(1, 100);
        let mut c = SoftwareCache::new(2, 1000, &reg);
        let h = HandleId(0);
        c.begin_transfer(h, 0, 100, SimTime::new(5.0));
        assert!(!c.valid_on(h, 0, SimTime::new(4.0)));
        assert!(c.valid_on(h, 0, SimTime::new(5.0)));
        assert_eq!(c.in_flight(h, SimTime::new(4.0)), vec![(0, SimTime::new(5.0))]);
        assert!(c.in_flight(h, SimTime::new(6.0)).is_empty());
        assert_eq!(c.used_bytes(0), 100);
        c.check_invariants(&reg).unwrap();
    }

    #[test]
    fn write_invalidates_peers_and_host() {
        let reg = registry(1, 100);
        let mut c = SoftwareCache::new(3, 1000, &reg);
        let h = HandleId(0);
        c.begin_transfer(h, 0, 100, SimTime::ZERO);
        c.begin_transfer(h, 1, 100, SimTime::ZERO);
        c.mark_written(h, 2, 100, &reg);
        assert_eq!(c.valid_gpus(h, SimTime::new(1.0)), vec![2]);
        assert!(!c.host_valid(h));
        assert_eq!(c.dirty_on(h), Some(2));
        assert_eq!(c.used_bytes(0), 0);
        assert_eq!(c.used_bytes(1), 0);
        c.check_invariants(&reg).unwrap();
    }

    #[test]
    fn flush_restores_host_validity() {
        let reg = registry(1, 100);
        let mut c = SoftwareCache::new(1, 1000, &reg);
        let h = HandleId(0);
        c.mark_written(h, 0, 100, &reg);
        c.mark_flushed(h);
        assert!(c.host_valid(h));
        assert_eq!(c.dirty_on(h), None);
        // Device copy remains valid (now clean).
        assert!(c.valid_on(h, 0, SimTime::ZERO));
        c.check_invariants(&reg).unwrap();
    }

    #[test]
    fn eviction_prefers_clean_lru() {
        let reg = registry(3, 400);
        let mut c = SoftwareCache::new(1, 1000, &reg);
        let (h0, h1, h2) = (HandleId(0), HandleId(1), HandleId(2));
        c.begin_transfer(h0, 0, 400, SimTime::ZERO); // oldest clean
        c.mark_written(h1, 0, 400, &reg); // dirty
        // Need room for h2: must evict h0 (clean LRU), not h1 (dirty).
        let ev = c.make_room(0, 400, &[h2], &reg);
        assert_eq!(ev, vec![Eviction::Drop(h0)]);
        assert_eq!(c.resident_count(0), 1);
        c.check_invariants(&reg).unwrap();
    }

    #[test]
    fn eviction_writes_back_dirty_when_no_clean_left() {
        let reg = registry(2, 600);
        let mut c = SoftwareCache::new(1, 1000, &reg);
        let (h0, h1) = (HandleId(0), HandleId(1));
        c.mark_written(h0, 0, 600, &reg);
        let ev = c.make_room(0, 600, &[h1], &reg);
        assert_eq!(ev, vec![Eviction::WriteBack(h0)]);
        assert!(c.host_valid(h0));
        c.check_invariants(&reg).unwrap();
    }

    #[test]
    fn pinned_handles_never_evicted() {
        let reg = registry(2, 600);
        let mut c = SoftwareCache::new(1, 1000, &reg);
        let (h0, h1) = (HandleId(0), HandleId(1));
        c.begin_transfer(h0, 0, 600, SimTime::ZERO);
        let ev = c.make_room(0, 600, &[h0, h1], &reg);
        // Nothing evictable: h0 pinned. Room not made — executor treats
        // this as capacity pressure (over-subscription is reported by
        // check_invariants in tests, real runs size tiles to fit).
        assert!(ev.is_empty());
    }

    #[test]
    fn make_room_with_chooser_reorders_evictions() {
        let reg = registry(3, 400);
        let mut c = SoftwareCache::new(1, 1200, &reg);
        let (h0, h1, h2) = (HandleId(0), HandleId(1), HandleId(2));
        c.begin_transfer(h0, 0, 400, SimTime::ZERO); // clean, oldest
        c.begin_transfer(h1, 0, 400, SimTime::ZERO); // clean, newer
        c.begin_transfer(h2, 0, 400, SimTime::ZERO);
        // Canonical would evict h0 first; the chooser picks the LRU tail.
        let mut last = |n: usize| n - 1;
        let ev = c.make_room_with(0, 400, &[], &reg, Some(&mut last));
        assert_eq!(ev, vec![Eviction::Drop(h2)]);
        assert!(c.replica(h0, 0).is_some());
        c.check_invariants(&reg).unwrap();
        // And `None` delegates to the canonical policy (clean LRU first).
        let ev2 = c.make_room_with(0, 800, &[], &reg, None);
        assert_eq!(ev2, vec![Eviction::Drop(h0)]);
    }

    #[test]
    fn stale_read_mutation_keeps_peer_replicas() {
        let reg = registry(1, 100);
        let mut c = SoftwareCache::new(2, 1000, &reg);
        let h = HandleId(0);
        c.inject_mutation(CoherenceMutation::StaleRead);
        c.begin_transfer(h, 0, 100, SimTime::ZERO);
        c.mark_written(h, 1, 100, &reg);
        // The bug: gpu0's now-stale replica survives the write.
        assert_eq!(c.valid_gpus(h, SimTime::new(1.0)), vec![0, 1]);
        assert_eq!(c.dirty_on(h), Some(1));
    }

    #[test]
    fn data_on_device_initial_placement() {
        let mut reg = DataRegistry::new();
        let h = reg.add(DataInfo {
            bytes: 100,
            pitched: false,
            initial: Device::Gpu(1),
            label: "d".into(),
            owner_hint: None,
        });
        let c = SoftwareCache::new(2, 1000, &reg);
        assert!(!c.host_valid(h));
        assert_eq!(c.valid_gpus(h, SimTime::ZERO), vec![1]);
        assert_eq!(c.dirty_on(h), Some(1));
        c.check_invariants(&reg).unwrap();
    }
}
