//! The parallel executor: runs a task graph *for real* on host threads.
//!
//! This is the numeric twin of [`crate::sim_exec`]: same graph, same
//! dependency semantics, but each task's [`crate::task::TaskBody`] actually
//! executes (calling the `xk-kernels` tile kernels on real memory), spread
//! over a crossbeam-deque work-stealing pool. It turns the library into a
//! usable multicore tiled-BLAS and — more importantly here — lets the test
//! suite verify that every tiled algorithm computes the right numbers
//! under real concurrency.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};

use crate::graph::TaskGraph;
use crate::task::TaskId;

/// Statistics of a parallel run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParOutcome {
    /// Number of tasks executed.
    pub tasks_run: usize,
    /// Number of worker threads used.
    pub threads: usize,
}

/// Executes every task of `graph` respecting dependencies, on
/// `n_threads` workers (0 = one per available core).
///
/// Bodies are taken out of the graph (each runs exactly once). Tasks
/// without a body are treated as no-ops with dependencies (e.g. flush
/// tasks: on the host executor, host memory is already the truth).
pub fn run_parallel(graph: &mut TaskGraph, n_threads: usize) -> ParOutcome {
    let n = graph.len();
    if n == 0 {
        return ParOutcome {
            tasks_run: 0,
            threads: 0,
        };
    }
    let threads = if n_threads == 0 {
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(4)
    } else {
        n_threads
    };

    // Take the bodies out so workers can consume them without aliasing the
    // graph. parking_lot::Mutex<Option<_>> per task would also work; a
    // simple Vec of Options behind indices + atomic claim flags is lighter.
    let mut bodies: Vec<Option<crate::task::TaskBody>> = Vec::with_capacity(n);
    for i in 0..n {
        bodies.push(graph.task_mut(TaskId(i)).body.take());
    }
    let bodies: Vec<parking_lot::Mutex<Option<crate::task::TaskBody>>> =
        bodies.into_iter().map(parking_lot::Mutex::new).collect();

    let pending: Vec<AtomicUsize> = graph
        .predecessor_counts()
        .iter()
        .map(|&c| AtomicUsize::new(c))
        .collect();
    let completed = AtomicUsize::new(0);

    let injector: Injector<TaskId> = Injector::new();
    for t in graph.roots() {
        injector.push(t);
    }

    let workers: Vec<Worker<TaskId>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<TaskId>> = workers.iter().map(Worker::stealer).collect();

    std::thread::scope(|scope| {
        for worker in workers {
            let injector = &injector;
            let stealers = &stealers;
            let pending = &pending;
            let completed = &completed;
            let bodies = &bodies;
            let graph: &TaskGraph = graph;
            scope.spawn(move || loop {
                // Find work: local queue, then injector, then steal.
                let task = worker.pop().or_else(|| {
                    std::iter::repeat_with(|| {
                        injector
                            .steal_batch_and_pop(&worker)
                            .or_else(|| stealers.iter().map(Stealer::steal).collect())
                    })
                    .find(|s| !s.is_retry())
                    .and_then(Steal::success)
                });
                let Some(t) = task else {
                    if completed.load(Ordering::Acquire) >= graph.len() {
                        return;
                    }
                    std::hint::spin_loop();
                    continue;
                };
                if let Some(body) = bodies[t.0].lock().take() {
                    body();
                }
                completed.fetch_add(1, Ordering::AcqRel);
                for &s in graph.successors(t) {
                    if pending[s.0].fetch_sub(1, Ordering::AcqRel) == 1 {
                        worker.push(s);
                    }
                }
            });
        }
    });

    let done = completed.load(Ordering::Acquire);
    assert_eq!(done, n, "parallel executor deadlocked: {done}/{n}");
    ParOutcome {
        tasks_run: done,
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Access, TaskAccess};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use xk_kernels::perfmodel::TileOp;

    fn op() -> TileOp {
        TileOp::Gemm { m: 4, n: 4, k: 4 }
    }

    #[test]
    fn chain_runs_in_order() {
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..10 {
            let log = log.clone();
            g.add_task_with_body(
                op(),
                vec![TaskAccess {
                    handle: h,
                    access: Access::ReadWrite,
                }],
                format!("k{i}"),
                Box::new(move || log.lock().push(i)),
            );
        }
        let out = run_parallel(&mut g, 4);
        assert_eq!(out.tasks_run, 10);
        assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn independent_tasks_all_run() {
        let mut g = TaskGraph::new();
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..100 {
            let h = g.add_host_tile(64, false, format!("x{i}"));
            let c = counter.clone();
            g.add_task_with_body(
                op(),
                vec![TaskAccess {
                    handle: h,
                    access: Access::Write,
                }],
                format!("t{i}"),
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        let out = run_parallel(&mut g, 0);
        assert_eq!(out.tasks_run, 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert!(out.threads >= 1);
    }

    #[test]
    fn diamond_dependency_order() {
        // w -> (r1, r2) -> w2: w2's body must observe both readers done.
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        let state = Arc::new(AtomicU64::new(0));
        let mk = |inc: u64, state: Arc<AtomicU64>| -> crate::task::TaskBody {
            Box::new(move || {
                state.fetch_add(inc, Ordering::SeqCst);
            })
        };
        g.add_task_with_body(
            op(),
            vec![TaskAccess { handle: h, access: Access::Write }],
            "w",
            mk(1, state.clone()),
        );
        for _ in 0..2 {
            g.add_task_with_body(
                op(),
                vec![TaskAccess { handle: h, access: Access::Read }],
                "r",
                mk(10, state.clone()),
            );
        }
        let check = state.clone();
        g.add_task_with_body(
            op(),
            vec![TaskAccess { handle: h, access: Access::Write }],
            "w2",
            Box::new(move || {
                assert_eq!(check.load(Ordering::SeqCst), 21, "w2 ran too early");
            }),
        );
        run_parallel(&mut g, 8);
    }

    #[test]
    fn empty_graph_is_fine() {
        let mut g = TaskGraph::new();
        let out = run_parallel(&mut g, 2);
        assert_eq!(out.tasks_run, 0);
    }

    #[test]
    fn bodyless_tasks_complete() {
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        g.add_task(
            op(),
            vec![TaskAccess { handle: h, access: Access::Write }],
            "no-body",
        );
        g.add_flush(&[h], "flush");
        let out = run_parallel(&mut g, 2);
        assert_eq!(out.tasks_run, 2);
    }
}
