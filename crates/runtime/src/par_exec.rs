//! The parallel executor: runs a task graph *for real* on host threads.
//!
//! This is the numeric twin of [`crate::sim_exec`]: same graph, same
//! dependency semantics, but each task's [`crate::task::TaskBody`] actually
//! executes (calling the `xk-kernels` tile kernels on real memory), spread
//! over a crossbeam-deque work-stealing pool. It turns the library into a
//! usable multicore tiled-BLAS and — more importantly here — lets the test
//! suite verify that every tiled algorithm computes the right numbers
//! under real concurrency.
//!
//! # Executor design
//!
//! - Each task body sits in a [`BodySlot`]: an atomic claim flag plus an
//!   `UnsafeCell` — claiming the flag grants exclusive access to the slot,
//!   with no per-task mutex.
//! - When a task completes, its newly-ready successors are released in a
//!   batch: all but one go to the worker's local deque (stealable by idle
//!   peers), the last is run inline on the same worker for cache warmth.
//! - A worker with nothing to run (local deque, global injector and every
//!   *other* worker's stealer all empty — no self-steal) parks on an
//!   eventcount instead of spinning: idle workers cost ~0 CPU. Producers
//!   bump the epoch and wake sleepers whenever they make work stealable.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};

use crate::graph::TaskGraph;
use crate::task::{TaskBody, TaskId};

/// Statistics of a parallel run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParOutcome {
    /// Number of tasks executed.
    pub tasks_run: usize,
    /// Number of worker threads used.
    pub threads: usize,
    /// Number of times an idle worker parked (0 under saturation).
    pub parks: usize,
}

/// One task's body, claimable by exactly one worker.
struct BodySlot {
    claimed: AtomicBool,
    body: UnsafeCell<Option<TaskBody>>,
}

// SAFETY: the body cell is only accessed by the worker that wins the
// `claimed` compare-exchange, which happens at most once per slot.
unsafe impl Sync for BodySlot {}

impl BodySlot {
    fn new(body: Option<TaskBody>) -> Self {
        BodySlot {
            claimed: AtomicBool::new(false),
            body: UnsafeCell::new(body),
        }
    }

    /// Takes the body if this caller is the first to claim the slot.
    /// Returns `None` both for already-claimed and bodyless tasks; use the
    /// claim result to distinguish.
    fn claim(&self) -> Option<Option<TaskBody>> {
        if self
            .claimed
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: we won the claim; no other thread touches the cell.
            Some(unsafe { (*self.body.get()).take() })
        } else {
            None
        }
    }
}

/// An eventcount: idle workers park here; producers bump the epoch to
/// publish "there may be new work" and wake sleepers.
struct ParkLot {
    epoch: AtomicUsize,
    sleepers: AtomicUsize,
    mutex: Mutex<()>,
    cv: Condvar,
}

impl ParkLot {
    fn new() -> Self {
        ParkLot {
            epoch: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            mutex: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Epoch snapshot; take it *before* the final scan for work, so a
    /// concurrent `wake_all` between scan and park is not lost.
    fn prepare(&self) -> usize {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes new work / completion and wakes all parked workers.
    fn wake_all(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.mutex.lock().unwrap();
            self.cv.notify_all();
        }
    }

    /// Parks until the epoch moves past `seen` (or a timeout, as a
    /// liveness net: a spurious re-scan is cheap and harmless).
    fn park(&self, seen: usize) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.mutex.lock().unwrap();
        while self.epoch.load(Ordering::Acquire) == seen {
            let (g, timeout) = self
                .cv
                .wait_timeout(guard, Duration::from_millis(10))
                .unwrap();
            guard = g;
            if timeout.timed_out() {
                break;
            }
        }
        drop(guard);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One steal sweep: the global injector first, then every *other* worker.
/// Loops only while some source reported a racy `Retry`.
fn steal_external(
    me: usize,
    injector: &Injector<TaskId>,
    stealers: &[Stealer<TaskId>],
    worker: &Worker<TaskId>,
) -> Option<TaskId> {
    loop {
        let mut retry = false;
        match injector.steal_batch_and_pop(worker) {
            Steal::Success(t) => return Some(t),
            Steal::Retry => retry = true,
            Steal::Empty => {}
        }
        for (i, s) in stealers.iter().enumerate() {
            if i == me {
                continue; // self-steal is wasted work: our deque is empty
            }
            match s.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

/// Executes every task of `graph` respecting dependencies, on
/// `n_threads` workers (0 = one per available core).
///
/// Bodies are taken out of the graph (each runs exactly once). Tasks
/// without a body are treated as no-ops with dependencies (e.g. flush
/// tasks: on the host executor, host memory is already the truth).
pub fn run_parallel(graph: &mut TaskGraph, n_threads: usize) -> ParOutcome {
    let n = graph.len();
    if n == 0 {
        return ParOutcome::default();
    }
    let threads = if n_threads == 0 {
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(4)
    } else {
        n_threads
    };

    // Take the bodies out so workers can consume them without aliasing the
    // graph; an atomic claim flag per slot replaces the old per-task mutex.
    let slots: Vec<BodySlot> = (0..n)
        .map(|i| BodySlot::new(graph.task_mut(TaskId(i)).body.take()))
        .collect();

    graph.finalize(); // build the successor CSR once, outside the hot loop

    let pending: Vec<AtomicUsize> = graph.pred_counts().map(AtomicUsize::new).collect();
    let completed = AtomicUsize::new(0);
    let parks = AtomicUsize::new(0);
    let parklot = ParkLot::new();

    let injector: Injector<TaskId> = Injector::new();
    for t in graph.roots() {
        injector.push(t);
    }

    let workers: Vec<Worker<TaskId>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<TaskId>> = workers.iter().map(Worker::stealer).collect();

    std::thread::scope(|scope| {
        for (me, worker) in workers.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let pending = &pending;
            let completed = &completed;
            let slots = &slots;
            let parks = &parks;
            let parklot = &parklot;
            let graph: &TaskGraph = graph;
            scope.spawn(move || {
                // The task chosen to run inline right after its parent.
                let mut next: Option<TaskId> = None;
                let mut my_parks = 0usize;
                loop {
                    let task = next
                        .take()
                        .or_else(|| worker.pop())
                        .or_else(|| steal_external(me, injector, stealers, &worker));
                    let Some(t) = task else {
                        if completed.load(Ordering::Acquire) >= n {
                            break;
                        }
                        let seen = parklot.prepare();
                        // Re-scan between the epoch snapshot and parking:
                        // work published before `seen` cannot wake us.
                        if let Some(t) =
                            steal_external(me, injector, stealers, &worker)
                        {
                            next = Some(t);
                            continue;
                        }
                        if completed.load(Ordering::Acquire) >= n {
                            break;
                        }
                        parklot.park(seen);
                        my_parks += 1;
                        continue;
                    };

                    let Some(body) = slots[t.0].claim() else {
                        continue; // lost a (structurally impossible) race
                    };
                    if let Some(body) = body {
                        body();
                    }

                    // Release successors in a batch: earlier-ready ones go
                    // to the local deque (stealable), the last runs inline.
                    let mut made_stealable = false;
                    for &s in graph.successors(t) {
                        if pending[s.0].fetch_sub(1, Ordering::AcqRel) == 1 {
                            if let Some(prev) = next.replace(s) {
                                worker.push(prev);
                                made_stealable = true;
                            }
                        }
                    }
                    let done = completed.fetch_add(1, Ordering::AcqRel) + 1;
                    if done >= n || made_stealable {
                        parklot.wake_all();
                    }
                }
                if my_parks > 0 {
                    parks.fetch_add(my_parks, Ordering::Relaxed);
                }
            });
        }
    });

    let done = completed.load(Ordering::Acquire);
    assert_eq!(done, n, "parallel executor deadlocked: {done}/{n}");
    ParOutcome {
        tasks_run: done,
        threads,
        parks: parks.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Access, TaskAccess};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use xk_kernels::perfmodel::TileOp;

    fn op() -> TileOp {
        TileOp::Gemm { m: 4, n: 4, k: 4 }
    }

    #[test]
    fn chain_runs_in_order() {
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..10 {
            let log = log.clone();
            g.add_task_with_body(
                op(),
                vec![TaskAccess {
                    handle: h,
                    access: Access::ReadWrite,
                }],
                format!("k{i}"),
                Box::new(move || log.lock().push(i)),
            );
        }
        let out = run_parallel(&mut g, 4);
        assert_eq!(out.tasks_run, 10);
        assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn independent_tasks_all_run() {
        let mut g = TaskGraph::new();
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..100 {
            let h = g.add_host_tile(64, false, format!("x{i}"));
            let c = counter.clone();
            g.add_task_with_body(
                op(),
                vec![TaskAccess {
                    handle: h,
                    access: Access::Write,
                }],
                format!("t{i}"),
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        let out = run_parallel(&mut g, 0);
        assert_eq!(out.tasks_run, 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert!(out.threads >= 1);
    }

    #[test]
    fn diamond_dependency_order() {
        // w -> (r1, r2) -> w2: w2's body must observe both readers done.
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        let state = Arc::new(AtomicU64::new(0));
        let mk = |inc: u64, state: Arc<AtomicU64>| -> crate::task::TaskBody {
            Box::new(move || {
                state.fetch_add(inc, Ordering::SeqCst);
            })
        };
        g.add_task_with_body(
            op(),
            vec![TaskAccess { handle: h, access: Access::Write }],
            "w",
            mk(1, state.clone()),
        );
        for _ in 0..2 {
            g.add_task_with_body(
                op(),
                vec![TaskAccess { handle: h, access: Access::Read }],
                "r",
                mk(10, state.clone()),
            );
        }
        let check = state.clone();
        g.add_task_with_body(
            op(),
            vec![TaskAccess { handle: h, access: Access::Write }],
            "w2",
            Box::new(move || {
                assert_eq!(check.load(Ordering::SeqCst), 21, "w2 ran too early");
            }),
        );
        run_parallel(&mut g, 8);
    }

    #[test]
    fn empty_graph_is_fine() {
        let mut g = TaskGraph::new();
        let out = run_parallel(&mut g, 2);
        assert_eq!(out.tasks_run, 0);
    }

    #[test]
    fn bodyless_tasks_complete() {
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        g.add_task(
            op(),
            vec![TaskAccess { handle: h, access: Access::Write }],
            "no-body",
        );
        g.add_flush(&[h], "flush");
        let out = run_parallel(&mut g, 2);
        assert_eq!(out.tasks_run, 2);
    }

    #[test]
    fn idle_workers_park_on_serial_chain() {
        // A pure chain admits no parallelism: with several workers, the
        // extra ones must park (the old executor would spin at 100% CPU).
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        for i in 0..64 {
            g.add_task_with_body(
                op(),
                vec![TaskAccess { handle: h, access: Access::ReadWrite }],
                format!("k{i}"),
                Box::new(move || std::thread::sleep(Duration::from_micros(200))),
            );
        }
        let out = run_parallel(&mut g, 4);
        assert_eq!(out.tasks_run, 64);
        assert!(out.parks > 0, "idle workers never parked");
    }
}
