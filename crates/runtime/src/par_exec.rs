//! The parallel executor: runs a task graph *for real* on host threads.
//!
//! This is the numeric twin of [`crate::sim_exec`]: same graph, same
//! dependency semantics, but each task's [`crate::task::TaskBody`] actually
//! executes (calling the `xk-kernels` tile kernels on real memory), spread
//! over a crossbeam-deque work-stealing pool. It turns the library into a
//! usable multicore tiled-BLAS and — more importantly here — lets the test
//! suite verify that every tiled algorithm computes the right numbers
//! under real concurrency.
//!
//! # Executor design
//!
//! - Each task body sits in a [`BodySlot`]: an atomic claim flag plus an
//!   `UnsafeCell` — claiming the flag grants exclusive access to the slot,
//!   with no per-task mutex.
//! - When a task completes, its newly-ready successors are released in a
//!   batch: all but one go to the worker's local deque (stealable by idle
//!   peers), the last is run inline on the same worker for cache warmth.
//! - A worker with nothing to run (local deque, global injector and every
//!   *other* worker's stealer all empty — no self-steal) parks on an
//!   eventcount instead of spinning: idle workers cost ~0 CPU. Producers
//!   bump the epoch and wake sleepers whenever they make work stealable.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};

use crate::choice::{ChoicePoint, ScheduleController};
use crate::graph::TaskGraph;
use crate::task::{TaskBody, TaskId};

/// Statistics of a parallel run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParOutcome {
    /// Number of tasks executed.
    pub tasks_run: usize,
    /// Number of worker threads used.
    pub threads: usize,
    /// Number of times an idle worker parked (0 under saturation).
    pub parks: usize,
}

/// One task's body, claimable by exactly one worker.
struct BodySlot {
    claimed: AtomicBool,
    body: UnsafeCell<Option<TaskBody>>,
}

// SAFETY: the body cell is only accessed by the worker that wins the
// `claimed` compare-exchange, which happens at most once per slot.
unsafe impl Sync for BodySlot {}

impl BodySlot {
    fn new(body: Option<TaskBody>) -> Self {
        BodySlot {
            claimed: AtomicBool::new(false),
            body: UnsafeCell::new(body),
        }
    }

    /// Takes the body if this caller is the first to claim the slot.
    /// Returns `None` both for already-claimed and bodyless tasks; use the
    /// claim result to distinguish.
    fn claim(&self) -> Option<Option<TaskBody>> {
        if self
            .claimed
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: we won the claim; no other thread touches the cell.
            Some(unsafe { (*self.body.get()).take() })
        } else {
            None
        }
    }
}

/// An eventcount: idle workers park here; producers bump the epoch to
/// publish "there may be new work" and wake sleepers.
struct ParkLot {
    epoch: AtomicUsize,
    sleepers: AtomicUsize,
    mutex: Mutex<()>,
    cv: Condvar,
}

impl ParkLot {
    fn new() -> Self {
        ParkLot {
            epoch: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            mutex: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Epoch snapshot; take it *before* the final scan for work, so a
    /// concurrent `wake_all` between scan and park is not lost.
    fn prepare(&self) -> usize {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes new work / completion and wakes all parked workers.
    fn wake_all(&self) {
        self.epoch.fetch_add(1, Ordering::Release);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.mutex.lock().unwrap();
            self.cv.notify_all();
        }
    }

    /// Parks until the epoch moves past `seen` (or a timeout, as a
    /// liveness net: a spurious re-scan is cheap and harmless).
    fn park(&self, seen: usize) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.mutex.lock().unwrap();
        while self.epoch.load(Ordering::Acquire) == seen {
            let (g, timeout) = self
                .cv
                .wait_timeout(guard, Duration::from_millis(10))
                .unwrap();
            guard = g;
            if timeout.timed_out() {
                break;
            }
        }
        drop(guard);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One steal sweep: the global injector first, then every *other* worker.
/// Loops only while some source reported a racy `Retry`.
fn steal_external(
    me: usize,
    injector: &Injector<TaskId>,
    stealers: &[Stealer<TaskId>],
    worker: &Worker<TaskId>,
) -> Option<TaskId> {
    loop {
        let mut retry = false;
        match injector.steal_batch_and_pop(worker) {
            Steal::Success(t) => return Some(t),
            Steal::Retry => retry = true,
            Steal::Empty => {}
        }
        for (i, s) in stealers.iter().enumerate() {
            if i == me {
                continue; // self-steal is wasted work: our deque is empty
            }
            match s.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

/// Executes every task of `graph` respecting dependencies, on
/// `n_threads` workers (0 = one per available core).
///
/// Bodies are taken out of the graph (each runs exactly once). Tasks
/// without a body are treated as no-ops with dependencies (e.g. flush
/// tasks: on the host executor, host memory is already the truth).
pub fn run_parallel(graph: &mut TaskGraph, n_threads: usize) -> ParOutcome {
    let n = graph.len();
    if n == 0 {
        return ParOutcome::default();
    }
    let threads = if n_threads == 0 {
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(4)
    } else {
        n_threads
    };

    // Take the bodies out so workers can consume them without aliasing the
    // graph; an atomic claim flag per slot replaces the old per-task mutex.
    let slots: Vec<BodySlot> = (0..n)
        .map(|i| BodySlot::new(graph.task_mut(TaskId(i)).body.take()))
        .collect();

    graph.finalize(); // build the successor CSR once, outside the hot loop

    let pending: Vec<AtomicUsize> = graph.pred_counts().map(AtomicUsize::new).collect();
    let completed = AtomicUsize::new(0);
    let parks = AtomicUsize::new(0);
    let parklot = ParkLot::new();

    let injector: Injector<TaskId> = Injector::new();
    for t in graph.roots() {
        injector.push(t);
    }

    let workers: Vec<Worker<TaskId>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<TaskId>> = workers.iter().map(Worker::stealer).collect();

    std::thread::scope(|scope| {
        for (me, worker) in workers.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let pending = &pending;
            let completed = &completed;
            let slots = &slots;
            let parks = &parks;
            let parklot = &parklot;
            let graph: &TaskGraph = graph;
            scope.spawn(move || {
                // The task chosen to run inline right after its parent.
                let mut next: Option<TaskId> = None;
                let mut my_parks = 0usize;
                loop {
                    let task = next
                        .take()
                        .or_else(|| worker.pop())
                        .or_else(|| steal_external(me, injector, stealers, &worker));
                    let Some(t) = task else {
                        if completed.load(Ordering::Acquire) >= n {
                            break;
                        }
                        let seen = parklot.prepare();
                        // Re-scan between the epoch snapshot and parking:
                        // work published before `seen` cannot wake us.
                        if let Some(t) =
                            steal_external(me, injector, stealers, &worker)
                        {
                            next = Some(t);
                            continue;
                        }
                        if completed.load(Ordering::Acquire) >= n {
                            break;
                        }
                        parklot.park(seen);
                        my_parks += 1;
                        continue;
                    };

                    let Some(body) = slots[t.0].claim() else {
                        continue; // lost a (structurally impossible) race
                    };
                    if let Some(body) = body {
                        body();
                    }

                    // Release successors in a batch: earlier-ready ones go
                    // to the local deque (stealable), the last runs inline.
                    let mut made_stealable = false;
                    for &s in graph.successors(t) {
                        if pending[s.0].fetch_sub(1, Ordering::AcqRel) == 1 {
                            if let Some(prev) = next.replace(s) {
                                worker.push(prev);
                                made_stealable = true;
                            }
                        }
                    }
                    let done = completed.fetch_add(1, Ordering::AcqRel) + 1;
                    if done >= n || made_stealable {
                        parklot.wake_all();
                    }
                }
                if my_parks > 0 {
                    parks.fetch_add(my_parks, Ordering::Relaxed);
                }
            });
        }
    });

    let done = completed.load(Ordering::Acquire);
    assert_eq!(done, n, "parallel executor deadlocked: {done}/{n}");
    ParOutcome {
        tasks_run: done,
        threads,
        parks: parks.load(Ordering::Relaxed),
    }
}

/// Executes every task of `graph` on `n_workers` *virtual* workers under a
/// [`ScheduleController`]: a single-threaded, fully deterministic
/// interpretation of the same work-stealing discipline as
/// [`run_parallel`] — per-worker FIFO deques, a global injector that
/// outranks peer steals, and inline execution of the last newly-ready
/// successor. The controller is consulted at every point where the real
/// pool's outcome depends on thread timing: which runnable worker steps
/// ([`ChoicePoint::WorkerStep`]), which source an empty worker steals from
/// ([`ChoicePoint::StealVictim`]), and which newly-ready successor runs
/// inline ([`ChoicePoint::InlineSuccessor`]). Task bodies really execute,
/// so `xk-check` can drive the executor's dependency protocol through
/// adversarial interleavings and compare the numerics against a serial
/// run — with any failure replayable from the controller's choices.
///
/// Panics (rather than hangs) if the dependency protocol deadlocks.
pub fn run_controlled(
    graph: &mut TaskGraph,
    n_workers: usize,
    ctrl: &mut dyn ScheduleController,
) -> ParOutcome {
    let n = graph.len();
    if n == 0 {
        return ParOutcome::default();
    }
    let workers_n = n_workers.max(1);
    let mut bodies: Vec<Option<TaskBody>> = (0..n)
        .map(|i| graph.task_mut(TaskId(i)).body.take())
        .collect();
    graph.finalize();
    let mut pending: Vec<usize> = graph.pred_counts().collect();
    let mut injector: VecDeque<TaskId> = graph.roots().into_iter().collect();
    let mut deques: Vec<VecDeque<TaskId>> = vec![VecDeque::new(); workers_n];
    let mut inline: Vec<Option<TaskId>> = vec![None; workers_n];
    let mut runnable: Vec<usize> = Vec::with_capacity(workers_n);
    let mut done = 0usize;
    while done < n {
        // A worker is runnable when it can acquire a task this step: a
        // pending inline task, local work, or something to steal.
        runnable.clear();
        for w in 0..workers_n {
            let external = !injector.is_empty()
                || deques.iter().enumerate().any(|(v, d)| v != w && !d.is_empty());
            if inline[w].is_some() || !deques[w].is_empty() || external {
                runnable.push(w);
            }
        }
        assert!(
            !runnable.is_empty(),
            "controlled executor deadlocked: {done}/{n} tasks done"
        );
        let w = match runnable.len() {
            1 => runnable[0],
            m => runnable[ctrl.choose(ChoicePoint::WorkerStep, m).min(m - 1)],
        };
        // Acquire: inline slot, then local deque, then an external steal
        // (injector outranks peers, peers ascending — the order the real
        // pool's steal sweep visits them).
        let t = if let Some(t) = inline[w].take() {
            t
        } else if let Some(t) = deques[w].pop_front() {
            t
        } else {
            let mut sources: Vec<Option<usize>> = Vec::new(); // None = injector
            if !injector.is_empty() {
                sources.push(None);
            }
            for v in 0..workers_n {
                if v != w && !deques[v].is_empty() {
                    sources.push(Some(v));
                }
            }
            let pick = match sources.len() {
                0 => unreachable!("runnable worker has a steal source"),
                1 => 0,
                m => ctrl.choose(ChoicePoint::StealVictim, m).min(m - 1),
            };
            match sources[pick] {
                None => injector.pop_front().expect("injector non-empty"),
                Some(v) => deques[v].pop_front().expect("victim non-empty"),
            }
        };
        if let Some(body) = bodies[t.0].take() {
            body();
        }
        // Release newly-ready successors: one runs inline on this worker,
        // the rest go to its deque (stealable by the other workers).
        let mut ready: Vec<TaskId> = Vec::new();
        for &s in graph.successors(t) {
            pending[s.0] -= 1;
            if pending[s.0] == 0 {
                ready.push(s);
            }
        }
        if !ready.is_empty() {
            let m = ready.len();
            // Candidate 0 = the canonical inline pick (the last
            // newly-ready, what run_parallel keeps); 1..m = the rest in
            // CSR order.
            let idx = match m {
                1 => 0,
                _ => {
                    let k = ctrl.choose(ChoicePoint::InlineSuccessor, m).min(m - 1);
                    if k == 0 {
                        m - 1
                    } else {
                        k - 1
                    }
                }
            };
            let chosen = ready.remove(idx);
            for s in ready {
                deques[w].push_back(s);
            }
            inline[w] = Some(chosen);
        }
        done += 1;
    }
    ParOutcome {
        tasks_run: done,
        threads: workers_n,
        parks: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Access, TaskAccess};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use xk_kernels::perfmodel::TileOp;

    fn op() -> TileOp {
        TileOp::Gemm { m: 4, n: 4, k: 4 }
    }

    #[test]
    fn chain_runs_in_order() {
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..10 {
            let log = log.clone();
            g.add_task_with_body(
                op(),
                vec![TaskAccess {
                    handle: h,
                    access: Access::ReadWrite,
                }],
                format!("k{i}"),
                Box::new(move || log.lock().push(i)),
            );
        }
        let out = run_parallel(&mut g, 4);
        assert_eq!(out.tasks_run, 10);
        assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn independent_tasks_all_run() {
        let mut g = TaskGraph::new();
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..100 {
            let h = g.add_host_tile(64, false, format!("x{i}"));
            let c = counter.clone();
            g.add_task_with_body(
                op(),
                vec![TaskAccess {
                    handle: h,
                    access: Access::Write,
                }],
                format!("t{i}"),
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        let out = run_parallel(&mut g, 0);
        assert_eq!(out.tasks_run, 100);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert!(out.threads >= 1);
    }

    #[test]
    fn diamond_dependency_order() {
        // w -> (r1, r2) -> w2: w2's body must observe both readers done.
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        let state = Arc::new(AtomicU64::new(0));
        let mk = |inc: u64, state: Arc<AtomicU64>| -> crate::task::TaskBody {
            Box::new(move || {
                state.fetch_add(inc, Ordering::SeqCst);
            })
        };
        g.add_task_with_body(
            op(),
            vec![TaskAccess { handle: h, access: Access::Write }],
            "w",
            mk(1, state.clone()),
        );
        for _ in 0..2 {
            g.add_task_with_body(
                op(),
                vec![TaskAccess { handle: h, access: Access::Read }],
                "r",
                mk(10, state.clone()),
            );
        }
        let check = state.clone();
        g.add_task_with_body(
            op(),
            vec![TaskAccess { handle: h, access: Access::Write }],
            "w2",
            Box::new(move || {
                assert_eq!(check.load(Ordering::SeqCst), 21, "w2 ran too early");
            }),
        );
        run_parallel(&mut g, 8);
    }

    #[test]
    fn empty_graph_is_fine() {
        let mut g = TaskGraph::new();
        let out = run_parallel(&mut g, 2);
        assert_eq!(out.tasks_run, 0);
    }

    #[test]
    fn bodyless_tasks_complete() {
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        g.add_task(
            op(),
            vec![TaskAccess { handle: h, access: Access::Write }],
            "no-body",
        );
        g.add_flush(&[h], "flush");
        let out = run_parallel(&mut g, 2);
        assert_eq!(out.tasks_run, 2);
    }

    /// A deterministic pseudo-random controller for exercising
    /// `run_controlled` without xk-check.
    struct Scramble(u64);

    impl crate::choice::ScheduleController for Scramble {
        fn choose(&mut self, _point: ChoicePoint, n: usize) -> usize {
            // SplitMix64 step.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as usize % n
        }
    }

    #[test]
    fn controlled_chain_respects_dependencies() {
        for seed in 0..16u64 {
            let mut g = TaskGraph::new();
            let h = g.add_host_tile(64, false, "x");
            let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
            for i in 0..10 {
                let log = log.clone();
                g.add_task_with_body(
                    op(),
                    vec![TaskAccess { handle: h, access: Access::ReadWrite }],
                    format!("k{i}"),
                    Box::new(move || log.lock().push(i)),
                );
            }
            let mut ctrl = Scramble(seed);
            let out = run_controlled(&mut g, 4, &mut ctrl);
            assert_eq!(out.tasks_run, 10);
            // A chain admits exactly one legal order, whatever the schedule.
            assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn controlled_diamond_order_holds_under_all_seeds() {
        for seed in 0..32u64 {
            let mut g = TaskGraph::new();
            let h = g.add_host_tile(64, false, "x");
            let state = Arc::new(AtomicU64::new(0));
            let mk = |inc: u64, state: Arc<AtomicU64>| -> crate::task::TaskBody {
                Box::new(move || {
                    state.fetch_add(inc, Ordering::SeqCst);
                })
            };
            g.add_task_with_body(
                op(),
                vec![TaskAccess { handle: h, access: Access::Write }],
                "w",
                mk(1, state.clone()),
            );
            for _ in 0..2 {
                g.add_task_with_body(
                    op(),
                    vec![TaskAccess { handle: h, access: Access::Read }],
                    "r",
                    mk(10, state.clone()),
                );
            }
            let check = state.clone();
            g.add_task_with_body(
                op(),
                vec![TaskAccess { handle: h, access: Access::Write }],
                "w2",
                Box::new(move || {
                    assert_eq!(check.load(Ordering::SeqCst), 21, "w2 ran too early");
                }),
            );
            let mut ctrl = Scramble(seed);
            run_controlled(&mut g, 3, &mut ctrl);
        }
    }

    #[test]
    fn controlled_independent_tasks_all_run_once() {
        let mut g = TaskGraph::new();
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..50 {
            let h = g.add_host_tile(64, false, format!("x{i}"));
            let c = counter.clone();
            g.add_task_with_body(
                op(),
                vec![TaskAccess { handle: h, access: Access::Write }],
                format!("t{i}"),
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        let mut ctrl = Scramble(7);
        let out = run_controlled(&mut g, 8, &mut ctrl);
        assert_eq!(out.tasks_run, 50);
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn controlled_empty_graph_and_zero_workers() {
        let mut g = TaskGraph::new();
        let mut ctrl = crate::choice::CanonicalController;
        assert_eq!(run_controlled(&mut g, 0, &mut ctrl).tasks_run, 0);
        let h = g.add_host_tile(64, false, "x");
        g.add_task(op(), vec![TaskAccess { handle: h, access: Access::Write }], "t");
        // 0 workers clamps to 1.
        let out = run_controlled(&mut g, 0, &mut ctrl);
        assert_eq!(out.tasks_run, 1);
        assert_eq!(out.threads, 1);
    }

    #[test]
    fn idle_workers_park_on_serial_chain() {
        // A pure chain admits no parallelism: with several workers, the
        // extra ones must park (the old executor would spin at 100% CPU).
        let mut g = TaskGraph::new();
        let h = g.add_host_tile(64, false, "x");
        for i in 0..64 {
            g.add_task_with_body(
                op(),
                vec![TaskAccess { handle: h, access: Access::ReadWrite }],
                format!("k{i}"),
                Box::new(move || std::thread::sleep(Duration::from_micros(200))),
            );
        }
        let out = run_parallel(&mut g, 4);
        assert_eq!(out.tasks_run, 64);
        assert!(out.parks > 0, "idle workers never parked");
    }
}
