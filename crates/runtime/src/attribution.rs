//! Shapley-style per-link value attribution: how much of a scenario's
//! achieved throughput does each NVLink edge buy?
//!
//! The paper's Fig. 2 bandwidth matrix makes the fabric's *structure*
//! visible; this module makes its *value* visible. Treat every NVLink
//! edge of the fabric as a player in a cooperative game whose
//! characteristic function `v(S)` is the throughput the DES achieves when
//! only the edges in coalition `S` keep their NVLink class and every
//! other edge is downgraded to the PCIe-P2P fallback (what the hardware
//! does when peer access is disabled). The Shapley value of an edge is
//! then its marginal GFLOP/s contribution averaged over orders of
//! addition — a principled "this 2×NVLink is worth 31% of the speedup"
//! number to rank next to the `hot_links` occupancy report.
//!
//! Exact Shapley needs `2^p` coalition evaluations; for small fabrics
//! (`p ≤ 12` edges) we do exactly that. Larger fabrics use permutation
//! sampling with the crate-local [`SplitMix64`] stream, so results are a
//! pure function of `(graph, fabric, config, samples, seed)` — no clocks,
//! no global RNG. Per-permutation telescoping makes the attributions sum
//! to `v(full) − v(none)` *exactly* even under sampling.

use std::collections::HashMap;

use xk_lp::SplitMix64;
use xk_topo::{bw, FabricSpec, LinkClass, LinkSpec};

use crate::config::RuntimeConfig;
use crate::graph::TaskGraph;
use crate::sim_exec::{SimExecutor, SimPrep};

/// Exhaustive coalition enumeration is used up to this many NVLink edges
/// (`2^12 = 4096` DES runs); beyond it, permutation sampling kicks in.
pub const EXACT_ATTRIBUTION_EDGES: usize = 12;

/// Hard cap on the number of players: fabrics with more NVLink edges than
/// bits in the coalition bitmask keep only the first 64 (in `(a, b)`
/// lexicographic order) and lump the rest into the always-on background.
pub const MAX_ATTRIBUTION_EDGES: usize = 64;

/// Shapley value of one NVLink edge.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkValue {
    /// Lower GPU index of the edge.
    pub a: usize,
    /// Higher GPU index of the edge.
    pub b: usize,
    /// Link class of the edge in the undowngraded fabric.
    pub class: LinkClass,
    /// Shapley value in GFLOP/s: the edge's average marginal contribution
    /// to the achieved throughput.
    pub value: f64,
    /// `value` as a fraction of `v(full) − v(none)` (the total throughput
    /// the NVLink mesh adds over an all-PCIe fabric). Zero when the mesh
    /// adds nothing.
    pub share: f64,
}

/// Full attribution report for one scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct Attribution {
    /// Achieved GFLOP/s with every NVLink edge present.
    pub full_value: f64,
    /// Achieved GFLOP/s with every NVLink edge downgraded to PCIe.
    pub baseline_value: f64,
    /// Per-edge Shapley values, sorted by descending `value` (ties by
    /// `(a, b)`). Their sum equals `full_value − baseline_value` up to
    /// floating-point roundoff.
    pub links: Vec<LinkValue>,
    /// Distinct coalitions the DES actually evaluated (cache hits and
    /// repeated prefixes excluded) — the cost knob to watch.
    pub evaluations: usize,
    /// True when the exhaustive formula was used; false under sampling.
    pub exact: bool,
}

impl Attribution {
    /// Throughput the NVLink mesh adds over the all-PCIe baseline.
    pub fn mesh_value(&self) -> f64 {
        self.full_value - self.baseline_value
    }
}

/// Computes the per-NVLink-edge Shapley attribution of the throughput the
/// DES achieves for `graph` on `topo` under `cfg`.
///
/// `samples` requests that many sampled permutations; pass `0` to let the
/// module pick (exhaustive for `p ≤` [`EXACT_ATTRIBUTION_EDGES`], else
/// `8·p` permutations). `seed` feeds the [`SplitMix64`] stream and only
/// matters in the sampled regime. A fabric with no NVLink edges yields an
/// empty `links` list with `full_value == baseline_value`.
pub fn link_attribution(
    graph: &TaskGraph,
    topo: &FabricSpec,
    cfg: &RuntimeConfig,
    samples: usize,
    seed: u64,
) -> Attribution {
    let mut edges: Vec<(usize, usize, LinkClass)> = topo.nvlink_edges();
    edges.truncate(MAX_ATTRIBUTION_EDGES);
    let p = edges.len();
    let flops = graph.total_flops();
    let prep = SimPrep::new(graph);

    // v(S): throughput with exactly the coalition's edges kept.
    let full_mask: u64 = if p == 64 { u64::MAX } else { (1u64 << p) - 1 };
    let mut cache: HashMap<u64, f64> = HashMap::new();
    let mut evaluations = 0usize;
    let mut value_of = |mask: u64, evals: &mut usize| -> f64 {
        if let Some(&v) = cache.get(&mask) {
            return v;
        }
        let fabric = downgrade(topo, &edges, mask);
        let out = SimExecutor::with_prep(graph, &fabric, cfg, &prep).run();
        let v = if out.makespan > 0.0 {
            flops / out.makespan / 1e9
        } else {
            0.0
        };
        cache.insert(mask, v);
        *evals += 1;
        v
    };

    let full_value = value_of(full_mask, &mut evaluations);
    let baseline_value = value_of(0, &mut evaluations);

    let mut phi = vec![0.0f64; p];
    let exact = p > 0 && samples == 0 && p <= EXACT_ATTRIBUTION_EDGES;
    if exact {
        // φ_i = Σ_{S ∌ i} |S|!·(p−1−|S|)!/p! · (v(S ∪ {i}) − v(S)).
        let weights = subset_weights(p);
        for mask in 0..(1u64 << p) {
            let s = mask.count_ones() as usize;
            if s == p {
                continue;
            }
            let base = value_of(mask, &mut evaluations);
            for i in 0..p {
                if mask & (1 << i) == 0 {
                    let with = value_of(mask | (1 << i), &mut evaluations);
                    phi[i] += weights[s] * (with - base);
                }
            }
        }
    } else if p > 0 {
        let rounds = if samples == 0 { 8 * p } else { samples };
        let mut rng = SplitMix64::new(seed);
        let mut order: Vec<usize> = (0..p).collect();
        for _ in 0..rounds {
            rng.shuffle(&mut order);
            let mut mask = 0u64;
            let mut prev = baseline_value;
            for &i in &order {
                mask |= 1 << i;
                let next = value_of(mask, &mut evaluations);
                phi[i] += next - prev;
                prev = next;
            }
        }
        for v in &mut phi {
            *v /= rounds as f64;
        }
    }

    let mesh = full_value - baseline_value;
    let mut links: Vec<LinkValue> = edges
        .iter()
        .zip(&phi)
        .map(|(&(a, b, class), &value)| LinkValue {
            a,
            b,
            class,
            value,
            share: if mesh.abs() > 0.0 { value / mesh } else { 0.0 },
        })
        .collect();
    links.sort_by(|x, y| {
        y.value
            .partial_cmp(&x.value)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (x.a, x.b).cmp(&(y.a, y.b)))
    });

    Attribution { full_value, baseline_value, links, evaluations, exact }
}

/// The fabric with every player edge *outside* `mask`'s coalition
/// downgraded to the PCIe peer-to-peer fallback.
fn downgrade(topo: &FabricSpec, edges: &[(usize, usize, LinkClass)], mask: u64) -> FabricSpec {
    let dropped: Vec<(usize, usize)> = edges
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) == 0)
        .map(|(_, &(a, b, _))| (a, b))
        .collect();
    if dropped.is_empty() {
        return topo.clone();
    }
    topo.map_gpu_links(format!("{}~coalition", topo.name()), |a, b, spec| {
        if dropped.contains(&(a, b)) {
            LinkSpec::new(LinkClass::Pcie, bw::PCIE_P2P)
        } else {
            *spec
        }
    })
    .expect("downgrading NVLink edges keeps the fabric valid")
}

/// Shapley subset weights `w(s) = s!·(p−1−s)!/p!` for `s = 0..p`,
/// computed with ratio recurrences to stay exact in f64 for small `p`.
fn subset_weights(p: usize) -> Vec<f64> {
    let mut w = vec![0.0; p];
    // w(0) = (p-1)!/p! = 1/p; w(s+1) = w(s) · (s+1)/(p−1−s).
    let mut cur = 1.0 / p as f64;
    for s in 0..p {
        w[s] = cur;
        if s + 1 < p {
            cur *= (s + 1) as f64 / (p - 1 - s) as f64;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Access, TaskAccess};
    use xk_kernels::perfmodel::TileOp;
    use xk_topo::FabricBuilder;

    /// A 4-GPU NVLink ring (two 2× and two 1× edges): four players, small
    /// enough for the exhaustive formula.
    fn quad() -> FabricSpec {
        FabricBuilder::named("quad")
            .gpus(4)
            .links(&[(0, 1), (2, 3)], LinkClass::NvLink2, bw::NVLINK2)
            .links(&[(0, 2), (1, 3)], LinkClass::NvLink1, bw::NVLINK1)
            .build()
    }

    /// A transfer-heavy graph: GPUs must exchange tiles, so NVLink edges
    /// carry real value.
    fn exchange_graph(n_gpus: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        let tiles: Vec<_> = (0..n_gpus)
            .map(|i| g.add_host_tile(32 << 20, true, format!("T{i}")))
            .collect();
        let op = TileOp::Gemm { m: 2048, n: 2048, k: 2048 };
        for round in 0..2 {
            for (i, &t) in tiles.iter().enumerate() {
                let peer = tiles[(i + 1) % n_gpus];
                g.add_task(
                    op,
                    vec![
                        TaskAccess { handle: peer, access: Access::Read },
                        TaskAccess { handle: t, access: Access::ReadWrite },
                    ],
                    format!("x{round}.{i}"),
                );
            }
        }
        g.add_flush(&tiles, "flush");
        g
    }

    #[test]
    fn exhaustive_attribution_is_efficient() {
        let topo = quad();
        let cfg = RuntimeConfig::xkblas();
        let g = exchange_graph(4);
        let attr = link_attribution(&g, &topo, &cfg, 0, 1);
        assert!(attr.exact);
        assert!(!attr.links.is_empty());
        let sum: f64 = attr.links.iter().map(|l| l.value).sum();
        let mesh = attr.mesh_value();
        assert!(
            (sum - mesh).abs() <= 1e-9 * mesh.abs().max(1.0),
            "Shapley efficiency violated: {sum} vs {mesh}",
        );
    }

    #[test]
    fn sampled_attribution_telescopes_to_the_mesh_value() {
        let topo = quad();
        let cfg = RuntimeConfig::xkblas();
        let g = exchange_graph(4);
        let attr = link_attribution(&g, &topo, &cfg, 5, 42);
        assert!(!attr.exact);
        let sum: f64 = attr.links.iter().map(|l| l.value).sum();
        let mesh = attr.mesh_value();
        assert!((sum - mesh).abs() <= 1e-9 * mesh.abs().max(1.0));
    }

    #[test]
    fn sampled_attribution_is_deterministic_in_the_seed() {
        let topo = quad();
        let cfg = RuntimeConfig::xkblas();
        let g = exchange_graph(4);
        let a = link_attribution(&g, &topo, &cfg, 3, 7);
        let b = link_attribution(&g, &topo, &cfg, 3, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn no_nvlink_fabric_attributes_nothing() {
        // A single-GPU fabric has no GPU↔GPU edges at all.
        let topo = FabricBuilder::named("uno").gpus(1).build();
        let cfg = RuntimeConfig::xkblas();
        let g = exchange_graph(1);
        let attr = link_attribution(&g, &topo, &cfg, 0, 0);
        assert!(attr.links.is_empty());
        assert_eq!(attr.full_value, attr.baseline_value);
    }

    #[test]
    fn subset_weights_sum_over_subsets_to_one() {
        for p in 1..=8usize {
            let w = subset_weights(p);
            // Σ_s C(p−1, s)·w(s) = 1 (probability a fixed player enters at
            // each position sums over positions).
            let mut total = 0.0;
            let mut binom = 1.0;
            for s in 0..p {
                total += binom * w[s];
                binom *= (p - 1 - s) as f64 / (s + 1) as f64;
            }
            assert!((total - 1.0).abs() < 1e-12, "p={p}: {total}");
        }
    }
}
