//! Runtime configuration: the knobs the paper's ablation turns
//! (Fig. 3 / Table II) plus executor sizing.

use xk_kernels::perfmodel::GpuModel;

/// Scheduling policy for the simulated executor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedulerKind {
    /// XKaapi-style: owner-computes placement (cyclic over output tiles)
    /// plus work stealing from the most loaded queue when idle.
    LocalityWorkStealing,
    /// StarPU `dmdas`-style: minimize estimated completion time including
    /// a transfer estimate; no stealing. Used by the Chameleon baseline.
    Dmdas,
    /// Round-robin over GPUs in ready order (cuBLAS-XT-style block spread).
    RoundRobin,
    /// Strict owner-computes from the data distribution; no stealing
    /// (cuBLAS-MG / ScaLAPACK-style).
    StaticOwner,
}

/// The two heuristics of the paper, independently switchable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Heuristics {
    /// §III-B: when several GPUs hold a valid replica, fetch from the one
    /// with the best performance-rank link to the destination.
    pub topology_aware: bool,
    /// §III-C: when no GPU holds a valid replica but one is under
    /// transfer, wait for it and forward device-to-device instead of
    /// re-reading from the host.
    pub optimistic_d2d: bool,
    /// Whether device-to-device transfers are used at all. Baseline models
    /// of stacks that stage everything through the host (DPLASMA/PaRSEC in
    /// the paper's Fig. 6 shows no PtoP at all) turn this off.
    pub allow_d2d: bool,
}

impl Heuristics {
    /// Both heuristics on: the paper's "XKBlas" configuration.
    pub fn full() -> Self {
        Heuristics {
            topology_aware: true,
            optimistic_d2d: true,
            allow_d2d: true,
        }
    }

    /// "XKBlas, no heuristic": optimistic D2D disabled, topology kept.
    pub fn no_optimistic() -> Self {
        Heuristics {
            topology_aware: true,
            optimistic_d2d: false,
            allow_d2d: true,
        }
    }

    /// "XKBlas, no heuristic, no topo": both disabled.
    pub fn none() -> Self {
        Heuristics {
            topology_aware: false,
            optimistic_d2d: false,
            allow_d2d: true,
        }
    }

    /// Host-staged transfers only: no device-to-device communication.
    pub fn host_only() -> Self {
        Heuristics {
            topology_aware: false,
            optimistic_d2d: false,
            allow_d2d: false,
        }
    }
}

/// Full configuration of a simulated run.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Heuristic switches.
    pub heuristics: Heuristics,
    /// Scheduler policy.
    pub scheduler: SchedulerKind,
    /// Concurrent kernel streams per GPU (XKaapi runs one operation type
    /// per stream with several kernel streams; 4 by default).
    pub kernel_streams: usize,
    /// In-flight task window per GPU (fetch/compute pipeline depth).
    pub window: usize,
    /// GPU memory capacity in bytes (32 GB on the paper's V100s).
    pub gpu_memory: u64,
    /// GPU compute model.
    pub gpu_model: GpuModel,
    /// Whether every written tile is eagerly flushed back to the host as
    /// soon as produced (Chameleon/StarPU behaviour); XKBlas flushes only
    /// at explicit `memory_coherent` tasks.
    pub eager_flush: bool,
    /// Keep fetched read-only inputs cached on the device for reuse
    /// (XKaapi software cache). Off models runtimes that re-read operands
    /// from the host for every task (PaRSEC's GPU support in the paper's
    /// Fig. 6 shows the largest HtoD volume of all stacks).
    pub cache_inputs: bool,
    /// Initiate input transfers the moment a task is *assigned*, instead of
    /// when it enters the execution window. Calibration on the DGX-1 model
    /// showed a shallow window with launch-time fetching tracks the paper's
    /// XKBlas best (assignment-time prefetch floods the PCIe queues in
    /// ready order); the flag is kept for the ablation harness.
    pub prefetch_at_assign: bool,
    /// Host-side cost of creating + scheduling one dynamic task, seconds.
    /// Paid serially on the submission thread — the "overhead of creation
    /// and scheduling of dynamic tasks" the paper's abstract credits
    /// XKBlas with keeping small. XKaapi ≈ 6 µs; StarPU's dmdas with its
    /// model lookups is an order of magnitude above.
    pub task_overhead: f64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            heuristics: Heuristics::full(),
            scheduler: SchedulerKind::LocalityWorkStealing,
            kernel_streams: 4,
            window: 4,
            gpu_memory: 32 * (1 << 30),
            gpu_model: GpuModel::v100(),
            eager_flush: false,
            cache_inputs: true,
            prefetch_at_assign: false,
            task_overhead: 6.0e-6,
        }
    }
}

impl RuntimeConfig {
    /// The paper's full XKBlas configuration.
    pub fn xkblas() -> Self {
        RuntimeConfig::default()
    }

    /// Returns a copy with different heuristics.
    pub fn with_heuristics(mut self, h: Heuristics) -> Self {
        self.heuristics = h;
        self
    }

    /// Returns a copy with a different scheduler.
    pub fn with_scheduler(mut self, s: SchedulerKind) -> Self {
        self.scheduler = s;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_variants() {
        assert!(Heuristics::full().topology_aware && Heuristics::full().optimistic_d2d);
        let no_h = Heuristics::no_optimistic();
        assert!(no_h.topology_aware && !no_h.optimistic_d2d);
        let none = Heuristics::none();
        assert!(!none.topology_aware && !none.optimistic_d2d);
    }

    #[test]
    fn default_config_sane() {
        let c = RuntimeConfig::default();
        assert_eq!(c.scheduler, SchedulerKind::LocalityWorkStealing);
        assert!(c.kernel_streams >= 1);
        assert!(c.window >= c.kernel_streams);
        assert_eq!(c.gpu_memory, 32 * (1 << 30));
        assert!(!c.eager_flush);
    }

    #[test]
    fn builders_compose() {
        let c = RuntimeConfig::xkblas()
            .with_heuristics(Heuristics::none())
            .with_scheduler(SchedulerKind::Dmdas);
        assert_eq!(c.scheduler, SchedulerKind::Dmdas);
        assert!(!c.heuristics.topology_aware);
    }
}
