//! The paper's two transfer-source heuristics (§III-B, §III-C).
//!
//! Both sit at the same interface as in XKBlas: *between* the scheduler
//! (which already chose the destination GPU for a task) and the data layer
//! that initiates input transfers. They decide **where a tile comes from**.

use xk_sim::SimTime;
use xk_topo::{Device, FabricSpec};

use crate::cache::SoftwareCache;
use crate::config::Heuristics;
use crate::data::HandleId;

/// The source decision for one input tile of a task mapped on `dst`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SourceDecision {
    /// Already valid (or already inbound) on the destination; usable at the
    /// given time without any new transfer.
    AlreadyThere {
        /// When the local replica is (or becomes) valid.
        ready_at: SimTime,
    },
    /// Copy device-to-device from a GPU holding a valid replica.
    FromGpu {
        /// Source GPU index.
        src: usize,
    },
    /// §III-C optimistic path: wait for the in-flight replica landing on
    /// `via`, then forward it device-to-device from there.
    ForwardAfter {
        /// The GPU the tile is currently being transferred to.
        via: usize,
        /// When that inbound transfer completes.
        ready_at: SimTime,
    },
    /// Read from host memory over the destination's PCIe link.
    FromHost,
}

/// Picks the transfer source for handle `h` needed on GPU `dst` at `now`.
///
/// Decision ladder (paper §III-B/III-C):
/// 1. Valid (or inbound) on `dst` → no transfer.
/// 2. Valid on some GPU → pick a source among them. With
///    `topology_aware`, sort by descending P2P performance rank to `dst`
///    (ties broken by `tie_break`, typically the GPU whose outbound engine
///    frees first); without it, take the lowest-index valid GPU —
///    the "no topo" ablation of Fig. 3.
/// 3. No valid GPU replica, but one is in flight and `optimistic_d2d` is
///    on → wait for the best in-flight replica and forward D2D.
/// 4. Fall back to the host.
pub fn select_source(
    h: HandleId,
    dst: usize,
    now: SimTime,
    cache: &SoftwareCache,
    topo: &FabricSpec,
    cfg: Heuristics,
    tie_break: &mut dyn FnMut(&[usize]) -> usize,
) -> SourceDecision {
    // 1. Local replica (valid now or inbound).
    match cache.replica(h, dst) {
        Some(crate::cache::ReplicaState::Valid) => {
            return SourceDecision::AlreadyThere { ready_at: now };
        }
        Some(crate::cache::ReplicaState::UnderTransfer { ready_at }) => {
            return SourceDecision::AlreadyThere {
                ready_at: ready_at.max(now),
            };
        }
        None => {}
    }

    // 2. Valid peer replicas (unless D2D is disabled entirely).
    if !cfg.allow_d2d {
        if cache.host_valid(h) {
            return SourceDecision::FromHost;
        }
        // Data only lives on a device (e.g. not yet flushed): the single
        // dirty holder is the only possible source.
        let valid = cache.valid_gpus(h, now);
        return SourceDecision::FromGpu {
            src: *valid.first().expect("some replica must exist"),
        };
    }
    let valid = cache.valid_gpus(h, now);
    let peers: Vec<usize> = valid.into_iter().filter(|&g| g != dst).collect();
    if !peers.is_empty() {
        let src = if cfg.topology_aware {
            let best_rank = peers
                .iter()
                .map(|&g| topo.perf_rank(g, dst))
                .max()
                .expect("peers non-empty");
            let best: Vec<usize> = peers
                .iter()
                .copied()
                .filter(|&g| topo.perf_rank(g, dst) == best_rank)
                .collect();
            best[tie_break(&best).min(best.len() - 1)]
        } else {
            // No topology awareness: arbitrary (first) valid source.
            peers[0]
        };
        return SourceDecision::FromGpu { src };
    }

    // 3. Optimistic: in-flight replicas.
    if cfg.optimistic_d2d {
        let mut inflight = cache.in_flight(h, now);
        if !inflight.is_empty() {
            if cfg.topology_aware {
                // Best link first, then earliest arrival.
                inflight.sort_by(|a, b| {
                    topo.perf_rank(b.0, dst)
                        .cmp(&topo.perf_rank(a.0, dst))
                        .then(a.1.cmp(&b.1))
                        .then(a.0.cmp(&b.0))
                });
            } else {
                inflight.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
            }
            let (via, ready_at) = inflight[0];
            return SourceDecision::ForwardAfter { via, ready_at };
        }
    }

    // 4. Host.
    debug_assert!(
        cache.host_valid(h),
        "no valid replica anywhere for {h:?} — graph dependency bug"
    );
    SourceDecision::FromHost
}

/// Convenience tie-breaker: always the first candidate (deterministic).
pub fn first_candidate(_: &[usize]) -> usize {
    0
}

/// The route device for a decision (used for trace attribution).
pub fn decision_source_device(d: &SourceDecision) -> Option<Device> {
    match d {
        SourceDecision::AlreadyThere { .. } => None,
        SourceDecision::FromGpu { src } => Some(Device::Gpu(*src)),
        SourceDecision::ForwardAfter { via, .. } => Some(Device::Gpu(*via)),
        SourceDecision::FromHost => Some(Device::Host),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{DataInfo, DataRegistry};
    use xk_topo::dgx1;

    fn setup(n: usize) -> (DataRegistry, SoftwareCache) {
        let mut reg = DataRegistry::new();
        for i in 0..n {
            reg.add(DataInfo {
                bytes: 100,
                pitched: false,
                initial: Device::Host,
                label: format!("t{i}"),
                owner_hint: None,
            });
        }
        let cache = SoftwareCache::new(8, 1 << 30, &reg);
        (reg, cache)
    }

    fn tb() -> impl FnMut(&[usize]) -> usize {
        |_: &[usize]| 0
    }

    #[test]
    fn falls_back_to_host_when_nothing_cached() {
        let (_, cache) = setup(1);
        let topo = dgx1();
        let d = select_source(
            HandleId(0),
            3,
            SimTime::ZERO,
            &cache,
            &topo,
            Heuristics::full(),
            &mut tb(),
        );
        assert_eq!(d, SourceDecision::FromHost);
    }

    #[test]
    fn local_replica_wins() {
        let (_, mut cache) = setup(1);
        let topo = dgx1();
        cache.begin_transfer(HandleId(0), 3, 100, SimTime::new(2.0));
        // At t=1 it is inbound: usable at 2.0 without new transfer.
        let d = select_source(
            HandleId(0),
            3,
            SimTime::new(1.0),
            &cache,
            &topo,
            Heuristics::full(),
            &mut tb(),
        );
        assert_eq!(
            d,
            SourceDecision::AlreadyThere {
                ready_at: SimTime::new(2.0)
            }
        );
    }

    #[test]
    fn topology_aware_picks_best_rank() {
        // GPU0's peers: gpu3 (rank 2), gpu1 (rank 1), gpu7 (rank 0).
        let (_, mut cache) = setup(1);
        let topo = dgx1();
        let h = HandleId(0);
        for g in [1, 3, 7] {
            cache.begin_transfer(h, g, 100, SimTime::ZERO);
        }
        let now = SimTime::new(1.0);
        let d = select_source(h, 0, now, &cache, &topo, Heuristics::full(), &mut tb());
        assert_eq!(d, SourceDecision::FromGpu { src: 3 });
        // Without topology awareness: first valid index (gpu1).
        let d2 = select_source(h, 0, now, &cache, &topo, Heuristics::none(), &mut tb());
        assert_eq!(d2, SourceDecision::FromGpu { src: 1 });
    }

    #[test]
    fn optimistic_waits_for_inflight() {
        let (_, mut cache) = setup(1);
        let topo = dgx1();
        let h = HandleId(0);
        // In flight to gpu4 (rank 2 to gpu0), completes at t=5.
        cache.begin_transfer(h, 4, 100, SimTime::new(5.0));
        let now = SimTime::new(1.0);
        let full = select_source(h, 0, now, &cache, &topo, Heuristics::full(), &mut tb());
        assert_eq!(
            full,
            SourceDecision::ForwardAfter {
                via: 4,
                ready_at: SimTime::new(5.0)
            }
        );
        // With the optimistic heuristic disabled: host fallback.
        let no_h = select_source(
            h,
            0,
            now,
            &cache,
            &topo,
            Heuristics::no_optimistic(),
            &mut tb(),
        );
        assert_eq!(no_h, SourceDecision::FromHost);
    }

    #[test]
    fn optimistic_prefers_best_link_then_earliest() {
        let (_, mut cache) = setup(1);
        let topo = dgx1();
        let h = HandleId(0);
        // gpu1 (rank 1 to gpu0) arrives at t=2; gpu4 (rank 2) at t=4.
        cache.begin_transfer(h, 1, 100, SimTime::new(2.0));
        cache.begin_transfer(h, 4, 100, SimTime::new(4.0));
        let d = select_source(
            h,
            0,
            SimTime::ZERO,
            &cache,
            &topo,
            Heuristics::full(),
            &mut tb(),
        );
        assert_eq!(
            d,
            SourceDecision::ForwardAfter {
                via: 4,
                ready_at: SimTime::new(4.0)
            }
        );
        // Topology off: earliest arrival wins.
        let d2 = select_source(
            h,
            0,
            SimTime::ZERO,
            &cache,
            &topo,
            Heuristics {
                topology_aware: false,
                optimistic_d2d: true,
                allow_d2d: true,
            },
            &mut tb(),
        );
        assert_eq!(
            d2,
            SourceDecision::ForwardAfter {
                via: 1,
                ready_at: SimTime::new(2.0)
            }
        );
    }

    #[test]
    fn valid_peer_beats_inflight() {
        let (_, mut cache) = setup(1);
        let topo = dgx1();
        let h = HandleId(0);
        cache.begin_transfer(h, 7, 100, SimTime::new(0.5)); // valid at 0.5
        cache.begin_transfer(h, 4, 100, SimTime::new(9.0)); // still in flight
        let d = select_source(
            h,
            0,
            SimTime::new(1.0),
            &cache,
            &topo,
            Heuristics::full(),
            &mut tb(),
        );
        assert_eq!(d, SourceDecision::FromGpu { src: 7 });
    }

    #[test]
    fn tie_break_consulted_for_equal_ranks() {
        // gpu3 and gpu4 both have rank 2 to gpu0.
        let (_, mut cache) = setup(1);
        let topo = dgx1();
        let h = HandleId(0);
        cache.begin_transfer(h, 3, 100, SimTime::ZERO);
        cache.begin_transfer(h, 4, 100, SimTime::ZERO);
        let now = SimTime::new(1.0);
        let mut pick_last = |c: &[usize]| c.len() - 1;
        let d = select_source(h, 0, now, &cache, &topo, Heuristics::full(), &mut pick_last);
        assert_eq!(d, SourceDecision::FromGpu { src: 4 });
    }
}
