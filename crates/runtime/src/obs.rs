//! Deep observability for simulated runs: per-link occupancy/contention
//! counters and a critical-path analysis over the executed span DAG.
//!
//! The DES (see [`crate::sim_exec`]) makes every operation a joint
//! reservation over a set of engines (copy paths, switch uplinks, NVLink
//! bricks, kernel streams). The recorder in this module piggybacks on those
//! reservations with flat per-engine tables — no per-event heap allocation —
//! and turns them into an [`ObsReport`] at the end of the run:
//!
//! * **occupancy**: busy seconds, op count, bytes and utilization per
//!   engine ([`LinkStats`]);
//! * **contention**: wait seconds charged to the engine that *bound* each
//!   reservation ([`xk_sim::EnginePool::bottleneck`], queried before the
//!   reservation mutates the pool);
//! * **critical path** ([`CriticalPath`], [`ObsLevel::Full`] only): the
//!   chain of spans that determines the makespan, found by walking
//!   backwards from the last-finishing span over data dependencies and
//!   engine-occupancy predecessors. Timestamps in the DES are exact `f64`s
//!   (`SimTime::max` returns an operand bit-for-bit), so "predecessor ends
//!   exactly when this span starts" is an equality test, not a tolerance.
//!   Chain time not covered by any span is reported as `runtime_gap`
//!   (host-side submission serialization, scheduling).
//!
//! The invariant `critical_path.length == report.makespan` is what
//! validates the walk: the chain's span durations plus the runtime gap must
//! tile `[0, makespan]` exactly.

use std::collections::BTreeMap;

use xk_sim::{EngineId, EnginePool, SimTime};
use xk_trace::{Place, SpanKind, Trace};

/// Sentinel for "no node" in the flat observability tables.
const NONE: u32 = u32::MAX;

/// How much observability a run records.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ObsLevel {
    /// Nothing beyond the trace itself (fastest; `SimOutcome::obs` is
    /// `None`).
    Off,
    /// Per-link occupancy/contention counters, no critical path.
    #[default]
    Counters,
    /// Counters plus the span-DAG node table and critical-path analysis.
    Full,
}

/// Occupancy and contention of one engine (PCIe copy path, switch uplink,
/// inter-socket link, NVLink brick or kernel stream).
#[derive(Clone, Debug, PartialEq)]
pub struct LinkStats {
    /// Engine name as registered in the pool (e.g. `"switch0.uplink"`,
    /// `"nvlink0->3"`, `"gpu2.kernel"`).
    pub name: String,
    /// Total busy seconds.
    pub busy: f64,
    /// Number of reservations that held this engine.
    pub ops: u64,
    /// Seconds of start-delay charged to this engine as the *bottleneck* of
    /// contended reservations (shared-bus wait attributable to contention).
    pub wait: f64,
    /// Bytes carried (0 for kernel streams).
    pub bytes: u64,
    /// `busy / makespan`, in `[0, 1]`.
    pub utilization: f64,
    /// Seconds the critical path spent on operations holding this engine
    /// ([`ObsLevel::Full`] only) — an upper bound on how much an infinitely
    /// fast replacement of this link could shorten the run.
    pub cp_seconds: f64,
}

/// Per-GPU scheduling pressure counters.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuObs {
    /// GPU index.
    pub gpu: usize,
    /// Kernel-engine busy seconds.
    pub kernel_busy: f64,
    /// High-water mark of the ready-task queue depth.
    pub max_queue: usize,
    /// High-water mark of concurrently launched kernels (window pressure).
    pub max_in_flight: usize,
}

/// One link of the makespan-dominating chain.
#[derive(Clone, Debug, PartialEq)]
pub struct CpSegment {
    /// Operation category.
    pub kind: SpanKind,
    /// Device the span was attributed to.
    pub place: Place,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Resolved span label.
    pub label: String,
}

/// The critical path: the chain of operations whose durations (plus
/// runtime gaps) exactly tile `[0, makespan]`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CriticalPath {
    /// End time of the chain — equals the makespan (the validated
    /// invariant).
    pub length: f64,
    /// Seconds the chain spends in each span kind (the chain's
    /// *composition*: is the run compute-, transfer- or submission-bound?).
    pub by_kind: BTreeMap<SpanKind, f64>,
    /// Chain seconds covered by no span: host-side submission
    /// serialization, scheduler latency, event plumbing.
    pub runtime_gap: f64,
    /// The chain in time order, truncated to [`CriticalPath::MAX_SEGMENTS`]
    /// entries so reports stay cheap to clone and cache.
    pub segments: Vec<CpSegment>,
    /// Untruncated chain length in spans.
    pub total_segments: usize,
}

impl CriticalPath {
    /// Cap on retained [`CriticalPath::segments`].
    pub const MAX_SEGMENTS: usize = 64;

    /// Seconds the chain spends in one kind.
    pub fn kind_seconds(&self, kind: SpanKind) -> f64 {
        self.by_kind.get(&kind).copied().unwrap_or(0.0)
    }

    /// Seconds the chain spends in transfers (H2D + D2H + P2P).
    pub fn transfer_seconds(&self) -> f64 {
        SpanKind::ALL
            .iter()
            .filter(|k| k.is_transfer())
            .map(|k| self.kind_seconds(*k))
            .sum()
    }
}

/// Everything the observability layer learned about one run.
#[derive(Clone, Debug, PartialEq)]
pub struct ObsReport {
    /// Level the run was recorded at.
    pub level: ObsLevel,
    /// Makespan of the run, seconds (duplicated here so the report is
    /// self-contained even when the caller post-processes the trace).
    pub makespan: f64,
    /// One entry per engine, in pool registration order.
    pub links: Vec<LinkStats>,
    /// One entry per GPU.
    pub gpus: Vec<GpuObs>,
    /// The makespan-dominating chain ([`ObsLevel::Full`] only).
    pub critical_path: Option<CriticalPath>,
}

impl ObsReport {
    /// The `k` busiest links, excluding kernel streams (those are compute,
    /// not interconnect), sorted by busy seconds descending. Ties keep
    /// registration order, so the result is deterministic.
    pub fn hot_links(&self, k: usize) -> Vec<&LinkStats> {
        let mut links: Vec<&LinkStats> = self
            .links
            .iter()
            .filter(|l| !l.name.ends_with(".kernel"))
            .collect();
        links.sort_by(|a, b| b.busy.partial_cmp(&a.busy).unwrap());
        links.truncate(k);
        links
    }

    /// Looks a link up by its engine name.
    pub fn link(&self, name: &str) -> Option<&LinkStats> {
        self.links.iter().find(|l| l.name == name)
    }
}

/// One reservation's observability record: the engines it held, the last
/// reservation seen on each of those engines before it, and its semantic
/// (data-dependency) predecessor. Indices are span indices in the run's
/// trace — the node table is parallel to `trace.spans()`.
#[derive(Clone, Copy, Debug)]
struct ObsNode {
    /// Engines held (as `EngineId.0`), `NONE`-padded. A reservation holds
    /// at most 2 copy paths + 3 bus segments.
    engines: [u32; 6],
    /// Previous node on each corresponding engine (occupancy predecessor).
    engine_preds: [u32; 6],
    /// Semantic predecessor: the transfer/kernel whose completion this
    /// reservation's `earliest` was derived from ([`NONE`] when the input
    /// was host-resident or unconstrained).
    dep: u32,
}

/// Flat-table recorder living inside the executor. All per-event work is
/// O(engines-held) array writes; the analysis runs once, after the event
/// loop.
pub(crate) struct ObsRecorder {
    level: ObsLevel,
    /// Contention wait seconds per engine.
    wait: Vec<f64>,
    /// Bytes carried per engine.
    bytes: Vec<u64>,
    /// Node table, parallel to the trace spans ([`ObsLevel::Full`] only).
    nodes: Vec<ObsNode>,
    /// Last node recorded on each engine.
    last_on_engine: Vec<u32>,
    /// Node that made handle `h` valid on GPU `g`, indexed `h * n_gpus + g`
    /// ([`ObsLevel::Full`] only).
    valid_node: Vec<u32>,
    n_gpus: usize,
}

impl ObsRecorder {
    pub(crate) fn new(
        level: ObsLevel,
        n_engines: usize,
        n_handles: usize,
        n_gpus: usize,
        n_tasks: usize,
    ) -> Self {
        let full = level == ObsLevel::Full;
        ObsRecorder {
            level,
            wait: if level == ObsLevel::Off { Vec::new() } else { vec![0.0; n_engines] },
            bytes: if level == ObsLevel::Off { Vec::new() } else { vec![0; n_engines] },
            // ~3 spans per task (H2D + kernel + write-back) is a generous
            // starting size; growth past it is amortized like the trace's
            // own span vector.
            nodes: if full { Vec::with_capacity(n_tasks.saturating_mul(3).max(64)) } else { Vec::new() },
            last_on_engine: if full { vec![NONE; n_engines] } else { Vec::new() },
            valid_node: if full { vec![NONE; n_handles * n_gpus] } else { Vec::new() },
            n_gpus,
        }
    }

    /// True when any counters are being recorded.
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.level != ObsLevel::Off
    }

    /// True when the node table (critical-path input) is being recorded.
    #[inline]
    pub(crate) fn full(&self) -> bool {
        self.level == ObsLevel::Full
    }

    /// Node that made `h` valid on `g`, or [`NONE`].
    #[inline]
    pub(crate) fn valid_node(&self, h: usize, g: usize) -> u32 {
        if self.full() {
            self.valid_node[h * self.n_gpus + g]
        } else {
            NONE
        }
    }

    /// Marks `node` as the op that made `h` valid on `g`.
    #[inline]
    pub(crate) fn set_valid_node(&mut self, h: usize, g: usize, node: u32) {
        if self.full() {
            self.valid_node[h * self.n_gpus + g] = node;
        }
    }

    /// Records one reservation. `idx` is the index of the span just pushed
    /// (node table stays parallel to the trace); `bound` is the
    /// pre-reservation [`EnginePool::bottleneck`]; `waited` is
    /// `start - earliest` in seconds; `dep` is the semantic predecessor
    /// node.
    #[inline]
    pub(crate) fn record(
        &mut self,
        idx: u32,
        engines: &[EngineId],
        bound: Option<EngineId>,
        waited: f64,
        bytes: u64,
        dep: u32,
    ) {
        if !self.enabled() {
            return;
        }
        if let Some(e) = bound {
            self.wait[e.0] += waited;
        }
        if bytes > 0 {
            for e in engines {
                self.bytes[e.0] += bytes;
            }
        }
        if !self.full() {
            return;
        }
        debug_assert!(engines.len() <= 6, "reservation holds >6 engines");
        debug_assert_eq!(idx as usize, self.nodes.len(), "node table out of sync");
        let mut node = ObsNode {
            engines: [NONE; 6],
            engine_preds: [NONE; 6],
            dep,
        };
        for (slot, &e) in engines.iter().enumerate().take(6) {
            node.engines[slot] = e.0 as u32;
            node.engine_preds[slot] = self.last_on_engine[e.0];
            self.last_on_engine[e.0] = idx;
        }
        self.nodes.push(node);
    }

    /// Consumes the recorder into the final report. `gpus` is prebuilt by
    /// the executor (it owns the engine-to-GPU mapping).
    pub(crate) fn into_report(
        self,
        trace: &Trace,
        pool: &EnginePool,
        makespan: f64,
        gpus: Vec<GpuObs>,
    ) -> ObsReport {
        let mut links: Vec<LinkStats> = pool
            .report()
            .map(|(id, name, busy, ops)| LinkStats {
                name: name.to_string(),
                busy: busy.seconds(),
                ops,
                wait: self.wait.get(id.0).copied().unwrap_or(0.0),
                bytes: self.bytes.get(id.0).copied().unwrap_or(0),
                utilization: pool.utilization(id, SimTime::new(makespan.max(0.0))),
                cp_seconds: 0.0,
            })
            .collect();

        let critical_path = if self.full() {
            Some(self.critical_path(trace, &mut links))
        } else {
            None
        };

        ObsReport {
            level: self.level,
            makespan,
            links,
            gpus,
            critical_path,
        }
    }

    /// Backward walk from the last-finishing span. At each step the
    /// predecessor is, in order of preference:
    ///
    /// 1. the semantic dependency, if it ends *exactly* when this span
    ///    starts (the dependency bound the start);
    /// 2. any occupancy predecessor ending exactly at this start (the
    ///    engine was busy until then — contention bound the start);
    /// 3. otherwise the latest-ending candidate before this start: the
    ///    interval between its end and this start is *runtime gap*
    ///    (submission serialization, scheduling). With no candidate at all
    ///    the remaining `[0, start)` is charged to the runtime.
    fn critical_path(&self, trace: &Trace, links: &mut [LinkStats]) -> CriticalPath {
        let spans = trace.spans();
        let mut cp = CriticalPath::default();
        let Some(start_idx) = spans
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.end
                    .partial_cmp(&b.end)
                    .unwrap()
                    // On equal ends prefer the *earlier* span so ties are
                    // deterministic under max_by's "last max wins" rule.
                    .then(ib.cmp(ia))
            })
            .map(|(i, _)| i)
        else {
            return cp; // empty trace: length 0 == makespan 0
        };

        let mut chain: Vec<u32> = Vec::new();
        let mut cur = start_idx as u32;
        cp.length = spans[start_idx].end;
        // Positive-duration spans cannot cycle; the cap guards against
        // degenerate zero-duration chains.
        let mut steps = spans.len() + 1;
        loop {
            chain.push(cur);
            let s = &spans[cur as usize];
            *cp.by_kind.entry(s.kind).or_insert(0.0) += s.duration();
            for &e in &self.nodes[cur as usize].engines {
                if e != NONE {
                    links[e as usize].cp_seconds += s.duration();
                }
            }
            let t = s.start;
            steps -= 1;
            if t <= 0.0 || steps == 0 {
                cp.runtime_gap += t.max(0.0);
                break;
            }
            let node = &self.nodes[cur as usize];
            // 1. Exact semantic predecessor.
            if node.dep != NONE && spans[node.dep as usize].end == t {
                cur = node.dep;
                continue;
            }
            // 2. Exact occupancy predecessor.
            if let Some(&p) = node
                .engine_preds
                .iter()
                .find(|&&p| p != NONE && spans[p as usize].end == t)
            {
                cur = p;
                continue;
            }
            // 3. Runtime gap back to the latest earlier candidate.
            let mut best: Option<u32> = None;
            for &p in std::iter::once(&node.dep).chain(node.engine_preds.iter()) {
                if p != NONE && spans[p as usize].end < t {
                    let better = best
                        .map(|b| spans[p as usize].end > spans[b as usize].end)
                        .unwrap_or(true);
                    if better {
                        best = Some(p);
                    }
                }
            }
            match best {
                Some(p) => {
                    cp.runtime_gap += t - spans[p as usize].end;
                    cur = p;
                }
                None => {
                    cp.runtime_gap += t;
                    break;
                }
            }
        }

        cp.total_segments = chain.len();
        chain.reverse(); // time order
        cp.segments = chain
            .iter()
            .take(CriticalPath::MAX_SEGMENTS)
            .map(|&i| {
                let s = &spans[i as usize];
                CpSegment {
                    kind: s.kind,
                    place: s.place,
                    start: s.start,
                    end: s.end,
                    label: trace.label(s.label).to_string(),
                }
            })
            .collect();
        cp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_level_is_counters() {
        assert_eq!(ObsLevel::default(), ObsLevel::Counters);
    }

    #[test]
    fn critical_path_helpers() {
        let mut cp = CriticalPath::default();
        cp.by_kind.insert(SpanKind::H2D, 1.0);
        cp.by_kind.insert(SpanKind::P2P, 0.5);
        cp.by_kind.insert(SpanKind::Kernel, 2.0);
        assert!((cp.transfer_seconds() - 1.5).abs() < 1e-12);
        assert!((cp.kind_seconds(SpanKind::Kernel) - 2.0).abs() < 1e-12);
        assert_eq!(cp.kind_seconds(SpanKind::D2H), 0.0);
    }

    #[test]
    fn hot_links_exclude_kernel_engines_and_sort_by_busy() {
        let mk = |name: &str, busy: f64| LinkStats {
            name: name.to_string(),
            busy,
            ops: 1,
            wait: 0.0,
            bytes: 0,
            utilization: 0.0,
            cp_seconds: 0.0,
        };
        let report = ObsReport {
            level: ObsLevel::Counters,
            makespan: 1.0,
            links: vec![
                mk("gpu0.pcie_in", 0.2),
                mk("gpu0.kernel", 9.0),
                mk("switch0.uplink", 0.7),
                mk("nvlink0->1", 0.4),
            ],
            gpus: Vec::new(),
            critical_path: None,
        };
        let hot = report.hot_links(2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].name, "switch0.uplink");
        assert_eq!(hot[1].name, "nvlink0->1");
        assert!(report.link("gpu0.kernel").is_some());
        assert!(report.link("nope").is_none());
    }
}
