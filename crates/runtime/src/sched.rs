//! Task-to-GPU placement policies for the simulated executor.
//!
//! The paper's XKBlas uses XKaapi work stealing with a locality heuristic;
//! Chameleon/StarPU uses `dmdas`. Both are modelled here behind one trait
//! so the comparison isolates exactly what the paper varies.

use xk_sim::SimTime;
use xk_topo::{Device, FabricSpec};

use crate::cache::SoftwareCache;
use crate::config::SchedulerKind;
use crate::graph::TaskGraph;
use crate::task::Task;

/// Snapshot of executor state a scheduler may consult.
pub struct SchedView<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// Per-GPU earliest kernel-stream availability.
    pub gpu_available: &'a [SimTime],
    /// Per-GPU ready-queue lengths.
    pub queue_lens: &'a [usize],
    /// Kernel seconds already assigned to each GPU and not yet finished.
    pub gpu_committed: &'a [f64],
    /// Platform topology.
    pub topo: &'a FabricSpec,
    /// Software cache (for transfer estimates / locality).
    pub cache: &'a SoftwareCache,
    /// GPU compute model.
    pub model: &'a xk_kernels::GpuModel,
}

/// A placement policy.
pub trait Scheduler {
    /// Chooses the GPU for a task that just became ready.
    fn assign(&mut self, task: &Task, graph: &TaskGraph, view: &SchedView<'_>) -> usize;

    /// Whether idle GPUs may steal queued tasks from loaded peers.
    fn allows_stealing(&self) -> bool {
        false
    }
}

/// Builds the scheduler named by the configuration.
pub fn make_scheduler(kind: SchedulerKind, n_gpus: usize) -> Box<dyn Scheduler> {
    match kind {
        SchedulerKind::LocalityWorkStealing => Box::new(LocalityWorkStealing::new(n_gpus)),
        SchedulerKind::Dmdas => Box::new(Dmdas),
        SchedulerKind::RoundRobin => Box::new(RoundRobin::default()),
        SchedulerKind::StaticOwner => Box::new(StaticOwner::new(n_gpus)),
    }
}

/// XKaapi-style owner-computes placement with stealing allowed.
///
/// The owner of a task is the `owner_hint` of its first written tile (the
/// 2D-cyclic distribution chosen by the algorithm layer). Tasks without a
/// hint round-robin. Idle GPUs steal from the most loaded queue — the
/// source of the SYR2K/SYRK load-vs-locality imbalance the paper observes
/// (§IV-E).
pub struct LocalityWorkStealing {
    fallback: usize,
    n_gpus: usize,
}

impl LocalityWorkStealing {
    /// Creates the policy for `n_gpus` devices.
    pub fn new(n_gpus: usize) -> Self {
        LocalityWorkStealing {
            fallback: 0,
            n_gpus,
        }
    }
}

impl Scheduler for LocalityWorkStealing {
    fn assign(&mut self, task: &Task, graph: &TaskGraph, _view: &SchedView<'_>) -> usize {
        if let Some(owner) = task
            .owner_handle()
            .and_then(|h| graph.data().info(h).owner_hint)
        {
            return owner % self.n_gpus;
        }
        let g = self.fallback;
        self.fallback = (self.fallback + 1) % self.n_gpus;
        g
    }

    fn allows_stealing(&self) -> bool {
        true
    }
}

/// StarPU `dmdas`-like policy: place each ready task on the GPU minimizing
/// its estimated completion time (device availability + estimated transfer
/// of the missing inputs + modelled kernel time). No stealing.
pub struct Dmdas;

impl Scheduler for Dmdas {
    fn assign(&mut self, task: &Task, graph: &TaskGraph, view: &SchedView<'_>) -> usize {
        let n = view.gpu_available.len();
        let kernel = task
            .op
            .map(|op| view.model.kernel_time(op))
            .unwrap_or(0.0);
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for g in 0..n {
            let mut transfer = 0.0;
            for h in task.read_handles() {
                if view.cache.valid_on(h, g, view.now) {
                    continue;
                }
                let info = graph.data().info(h);
                // Estimate from the "cheapest" valid location.
                let route = view
                    .cache
                    .valid_gpus(h, view.now)
                    .into_iter()
                    .map(|src| view.topo.route(Device::Gpu(src), Device::Gpu(g)))
                    .min_by(|a, b| a.bandwidth.partial_cmp(&b.bandwidth).unwrap().reverse())
                    .unwrap_or_else(|| view.topo.route(Device::Host, Device::Gpu(g)));
                transfer += route.transfer_time(info.bytes);
            }
            let start = view.gpu_available[g].seconds().max(view.now.seconds())
                + view.gpu_committed[g];
            let cost = start + transfer + kernel;
            if cost < best_cost {
                best_cost = cost;
                best = g;
            }
        }
        best
    }
}

/// Plain round-robin in ready order.
#[derive(Default)]
pub struct RoundRobin {
    next: usize,
}

impl Scheduler for RoundRobin {
    fn assign(&mut self, _task: &Task, _graph: &TaskGraph, view: &SchedView<'_>) -> usize {
        let n = view.gpu_available.len();
        let g = self.next % n;
        self.next = (self.next + 1) % n;
        g
    }
}

/// Strict owner-computes (no stealing): ScaLAPACK / cuBLAS-MG style.
pub struct StaticOwner {
    fallback: usize,
    n_gpus: usize,
}

impl StaticOwner {
    /// Creates the policy for `n_gpus` devices.
    pub fn new(n_gpus: usize) -> Self {
        StaticOwner {
            fallback: 0,
            n_gpus,
        }
    }
}

impl Scheduler for StaticOwner {
    fn assign(&mut self, task: &Task, graph: &TaskGraph, _view: &SchedView<'_>) -> usize {
        if let Some(owner) = task
            .owner_handle()
            .and_then(|h| graph.data().info(h).owner_hint)
        {
            return owner % self.n_gpus;
        }
        let g = self.fallback;
        self.fallback = (self.fallback + 1) % self.n_gpus;
        g
    }
}

/// Chooses a steal victim: the GPU with the longest non-empty queue.
pub fn pick_victim(queue_lens: &[usize], thief: usize) -> Option<usize> {
    let (victim, &len) = queue_lens
        .iter()
        .enumerate()
        .filter(|&(g, _)| g != thief)
        .max_by_key(|&(g, &l)| (l, std::cmp::Reverse(g)))?;
    if len >= 1 {
        Some(victim)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerKind;
    use crate::data::DataInfo;
    use crate::task::{Access, TaskAccess, TaskId};
    use xk_kernels::perfmodel::TileOp;
    use xk_kernels::GpuModel;
    use xk_topo::dgx1;

    fn graph_with_owned_tile(owner: usize) -> (TaskGraph, TaskId) {
        let mut g = TaskGraph::new();
        let h = g.add_data(DataInfo::host(1024, false, "c").with_owner(owner));
        let t = g.add_task(
            TileOp::Gemm { m: 8, n: 8, k: 8 },
            vec![TaskAccess {
                handle: h,
                access: Access::ReadWrite,
            }],
            "t",
        );
        (g, t)
    }

    fn view<'a>(
        topo: &'a xk_topo::FabricSpec,
        cache: &'a SoftwareCache,
        avail: &'a [SimTime],
        lens: &'a [usize],
        model: &'a GpuModel,
    ) -> SchedView<'a> {
        SchedView {
            now: SimTime::ZERO,
            gpu_available: avail,
            queue_lens: lens,
            gpu_committed: &ZERO_COMMIT,
            topo,
            cache,
            model,
        }
    }
    static ZERO_COMMIT: [f64; 8] = [0.0; 8];

    #[test]
    fn locality_ws_honors_owner() {
        let topo = dgx1();
        let (graph, t) = graph_with_owned_tile(5);
        let cache = SoftwareCache::new(8, 1 << 30, graph.data());
        let avail = vec![SimTime::ZERO; 8];
        let lens = vec![0; 8];
        let model = GpuModel::v100();
        let v = view(&topo, &cache, &avail, &lens, &model);
        let mut s = LocalityWorkStealing::new(8);
        assert_eq!(s.assign(graph.task(t), &graph, &v), 5);
        assert!(s.allows_stealing());
    }

    #[test]
    fn dmdas_prefers_device_with_data() {
        let topo = dgx1();
        let (graph, t) = graph_with_owned_tile(0);
        let mut cache = SoftwareCache::new(8, 1 << 30, graph.data());
        // Tile valid on gpu6 — dmdas should place the reader there.
        cache.begin_transfer(crate::data::HandleId(0), 6, 1024, SimTime::ZERO);
        let avail = vec![SimTime::ZERO; 8];
        let lens = vec![0; 8];
        let model = GpuModel::v100();
        let v = view(&topo, &cache, &avail, &lens, &model);
        let mut s = Dmdas;
        assert_eq!(s.assign(graph.task(t), &graph, &v), 6);
        assert!(!s.allows_stealing());
    }

    #[test]
    fn dmdas_avoids_busy_gpu() {
        let topo = dgx1();
        let (graph, t) = graph_with_owned_tile(0);
        let cache = SoftwareCache::new(8, 1 << 30, graph.data());
        let mut avail = vec![SimTime::ZERO; 8];
        avail[0] = SimTime::new(100.0); // gpu0 deeply busy
        let lens = vec![0; 8];
        let model = GpuModel::v100();
        let v = view(&topo, &cache, &avail, &lens, &model);
        let mut s = Dmdas;
        assert_ne!(s.assign(graph.task(t), &graph, &v), 0);
    }

    #[test]
    fn round_robin_cycles() {
        let topo = dgx1();
        let (graph, t) = graph_with_owned_tile(3);
        let cache = SoftwareCache::new(8, 1 << 30, graph.data());
        let avail = vec![SimTime::ZERO; 8];
        let lens = vec![0; 8];
        let model = GpuModel::v100();
        let v = view(&topo, &cache, &avail, &lens, &model);
        let mut s = RoundRobin::default();
        let picks: Vec<usize> = (0..10).map(|_| s.assign(graph.task(t), &graph, &v)).collect();
        assert_eq!(picks[..8], (0..8).collect::<Vec<_>>()[..]);
        assert_eq!(picks[8], 0);
    }

    #[test]
    fn victim_is_longest_queue() {
        assert_eq!(pick_victim(&[0, 3, 1, 0], 0), Some(1));
        assert_eq!(pick_victim(&[0, 0, 0, 0], 2), None);
        // Thief excluded even if longest.
        assert_eq!(pick_victim(&[5, 2, 0, 0], 0), Some(1));
    }

    #[test]
    fn factory_builds_all_kinds() {
        for kind in [
            SchedulerKind::LocalityWorkStealing,
            SchedulerKind::Dmdas,
            SchedulerKind::RoundRobin,
            SchedulerKind::StaticOwner,
        ] {
            let _ = make_scheduler(kind, 8);
        }
    }
}
