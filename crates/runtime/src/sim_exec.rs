//! The simulated executor: runs a task graph on a modelled multi-GPU node.
//!
//! This is the substitution for the paper's DGX-1 (see DESIGN.md §2): a
//! deterministic discrete-event simulation where
//!
//! * each GPU has one inbound and one outbound copy engine plus
//!   `kernel_streams` kernel engines,
//! * each PCIe switch uplink and the inter-socket link are shared engines
//!   (so host traffic of two GPUs on one switch *actually* contends),
//! * transfer sources are chosen by the paper's heuristics
//!   ([`crate::heuristics::select_source`]),
//! * kernel durations come from the calibrated V100 model.
//!
//! The output is a makespan plus a full [`xk_trace::Trace`] from which the
//! paper's figures are regenerated.

use std::collections::{HashMap, VecDeque};

use xk_sim::{Clock, Duration, EngineId, EnginePool, SimTime};
use xk_topo::{BusSegment, Device, FabricSpec};
use xk_trace::{FlowId, Label, Place, Span, SpanKind, Trace};

use crate::cache::{Eviction, SoftwareCache};
use crate::choice::{ChoicePoint, ScheduleController};
use crate::config::RuntimeConfig;
use crate::data::HandleId;
use crate::error::Error;
use crate::graph::TaskGraph;
use crate::heuristics::{select_source, SourceDecision};
use crate::obs::{GpuObs, ObsLevel, ObsRecorder, ObsReport};
use crate::sched::{make_scheduler, pick_victim, SchedView, Scheduler};
use crate::task::{TaskId, TaskKind};
use xk_kernels::PITCHED_COPY_FACTOR;

/// Sentinel for "no observability node".
const NO_NODE: u32 = u32::MAX;

/// Result of a simulated run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// End-to-end simulated time in seconds (last event).
    pub makespan: f64,
    /// Full execution trace.
    pub trace: Trace,
    /// Bytes moved host→device.
    pub bytes_h2d: u64,
    /// Bytes moved device→host.
    pub bytes_d2h: u64,
    /// Bytes moved device→device.
    pub bytes_p2p: u64,
    /// Number of tasks executed.
    pub tasks_run: usize,
    /// Number of tasks executed on a GPU other than their owner hint
    /// (work-stealing migrations).
    pub steals: usize,
    /// Link occupancy / contention / critical-path report; `None` when the
    /// run was recorded at [`ObsLevel::Off`].
    pub obs: Option<ObsReport>,
    /// Tasks that completed *as failed* (task id, error), in task order.
    /// Empty unless a fault was injected ([`SimExecutor::with_fault`]): a
    /// waiter on a transfer that died mid-flight surfaces the transfer's
    /// error here instead of hanging, and the failure cascades to
    /// dependents.
    pub failures: Vec<(usize, Error)>,
}

impl SimOutcome {
    /// Converts a flop count into achieved TFlop/s for this run.
    pub fn tflops(&self, flops: f64) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            flops / self.makespan / 1e12
        }
    }
}

/// A modelled hardware fault: the directed device-to-device link
/// `src -> dst` dies at `at` seconds. Any D2D transfer on that link still
/// in flight at (or reserved after) that instant fails; waiters surface
/// [`Error::LinkDown`] and the failure propagates along forwards and task
/// dependencies instead of deadlocking the run.
#[derive(Clone, Copy, Debug)]
pub struct LinkFault {
    /// Source GPU of the failing directed link.
    pub src: usize,
    /// Destination GPU of the failing directed link.
    pub dst: usize,
    /// Simulated time (seconds) at which the link goes down.
    pub at: f64,
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// A task's kernel (or flush) completed.
    TaskDone(TaskId),
    /// A GPU should try to start queued work.
    TryLaunch(usize),
}

struct GpuState {
    /// PCIe receive path (host reads and PCIe peer traffic).
    pcie_in: EngineId,
    /// PCIe send path (write-backs and PCIe peer traffic).
    pcie_out: EngineId,
    kernel_streams: Vec<EngineId>,
    queue: VecDeque<TaskId>,
    in_flight: usize,
    /// High-water mark of `queue.len()` (queue-depth-over-time summary).
    max_queue: usize,
    /// High-water mark of `in_flight`.
    max_in_flight: usize,
}

/// The simulated executor.
pub struct SimExecutor<'a> {
    graph: &'a TaskGraph,
    topo: &'a FabricSpec,
    cfg: &'a RuntimeConfig,
    pool: EnginePool,
    gpus: Vec<GpuState>,
    uplinks: Vec<EngineId>,
    intersocket: EngineId,
    /// Directional engine per NVLink-connected ordered GPU pair: each
    /// brick is an independent channel, so a GPU can fan a tile out to
    /// several peers concurrently (this is what makes the optimistic
    /// forwarding profitable on the real machine).
    ///
    /// Stored as a flat `n×n` table indexed `src * n + dst` (`None` when the
    /// pair has no NVLink) — the lookup sits on the per-transfer hot path
    /// and a flat index beats hashing a tuple key.
    nvlinks: Vec<Option<EngineId>>,
    /// One NIC engine per node on multi-node fabrics (empty on single-node
    /// machines, so DGX-1-era engine tables are untouched). Inter-node
    /// routes reserve the NICs of both endpoints: the IB card is a shared
    /// serialization point the way a PCIe switch uplink is.
    nics: Vec<EngineId>,
    cache: SoftwareCache,
    clock: Clock<Ev>,
    pending: Vec<usize>,
    assigned_to: Vec<Option<usize>>,
    /// Per task, recorded at assignment time: prefetch target GPU, input
    /// completion time, the observability node of the binding input
    /// transfer and the flow chain it belongs to.
    prefetched: Vec<Option<(usize, SimTime, u32, FlowId)>>,
    /// Final writer of each handle (eager flush only writes back the last
    /// version, like Chameleon's flush-on-release annotations).
    final_writer: Vec<Option<TaskId>>,
    /// Kernel seconds assigned-but-not-finished per GPU (dmdas input).
    committed: Vec<f64>,
    /// Host submission-thread cursor: tasks are activated serially at
    /// `task_overhead` apiece.
    submission_cursor: SimTime,
    scheduler: Box<dyn Scheduler>,
    trace: Trace,
    /// Interned trace label per task (indexed by `TaskId.0`).
    task_labels: Vec<Label>,
    /// Interned trace label per data handle (indexed by `HandleId.0`).
    data_labels: Vec<Label>,
    /// Scratch buffers reused across scheduling steps so the event loop
    /// stays allocation-free after warm-up.
    scratch_avail: Vec<SimTime>,
    scratch_lens: Vec<usize>,
    scratch_handles: Vec<HandleId>,
    scratch_engines: Vec<EngineId>,
    /// Flow chain of each handle's current broadcast: set by the H2D (or
    /// first D2D) that brought the tile on device, inherited by forwards,
    /// consuming kernels and write-backs. Always maintained — flat `u32`
    /// writes — so traces are identical across observability levels.
    flow_root: Vec<FlowId>,
    /// Occupancy/contention/critical-path recorder.
    obs: ObsRecorder,
    /// Schedule-space controller: resolves nondeterministic choice points
    /// and observes semantic effects. `None` (the default) keeps every
    /// canonical tie-break, byte-identical to the pre-hook executor.
    ctrl: Option<&'a mut dyn ScheduleController>,
    /// Injected link fault, if any.
    fault: Option<LinkFault>,
    /// Replicas poisoned by a failed transfer: `(handle, gpu) -> error`.
    failed_replicas: HashMap<(usize, usize), Error>,
    /// Per-task failure state (inherited along dependencies).
    task_failed: Vec<Option<Error>>,
    bytes_h2d: u64,
    bytes_d2h: u64,
    bytes_p2p: u64,
    tasks_done: usize,
    steals: usize,
}

/// Shared per-graph precomputation for batched replica runs.
///
/// `SimExecutor::new` re-derives the same graph-shaped vectors — rendered
/// task labels, final-writer table, predecessor counts — on every run. A
/// seed matrix or tile sweep runs the *same* graph hundreds of times, so
/// [`SimPrep::new`] hoists that work out once and
/// [`SimExecutor::with_prep`] stamps executors from it (a few memcpys per
/// replica). Prep is plain immutable data: one instance is shared by
/// reference across replica threads.
///
/// Byte-identity: `with_prep` interns the pre-rendered labels in exactly
/// the order `new` renders them (tasks first, then data handles), so
/// traces — and therefore whole simulations — are unchanged.
pub struct SimPrep {
    /// Task labels rendered from their lazy patterns, indexed by `TaskId.0`.
    task_label_strings: Vec<String>,
    /// Final writer of each handle, indexed by `HandleId.0`.
    final_writer: Vec<Option<TaskId>>,
    /// Unsatisfied-predecessor counts, indexed by `TaskId.0`.
    pending: Vec<usize>,
}

impl SimPrep {
    /// Precomputes the graph-shaped run state (and finalizes the graph's
    /// successor CSR, so replica threads never race to build it).
    pub fn new(graph: &TaskGraph) -> Self {
        graph.finalize();
        let mut final_writer = vec![None; graph.data().len()];
        for task in graph.tasks() {
            for h in task.written_handles() {
                final_writer[h.0] = Some(task.id);
            }
        }
        let mut label_buf = String::new();
        let task_label_strings: Vec<String> = graph
            .tasks()
            .iter()
            .map(|t| {
                label_buf.clear();
                t.label.render_into(&mut label_buf);
                label_buf.clone()
            })
            .collect();
        SimPrep {
            task_label_strings,
            final_writer,
            pending: graph.pred_counts().collect(),
        }
    }
}

impl<'a> SimExecutor<'a> {
    /// Prepares an executor for one run.
    ///
    /// For batched replica runs over one graph, build a [`SimPrep`] once
    /// and use [`SimExecutor::with_prep`] instead — this constructor
    /// derives the same state from scratch every call.
    pub fn new(graph: &'a TaskGraph, topo: &'a FabricSpec, cfg: &'a RuntimeConfig) -> Self {
        Self::with_prep(graph, topo, cfg, &SimPrep::new(graph))
    }

    /// Prepares an executor for one run from shared precomputed state.
    ///
    /// `prep` must have been built from this same `graph`; the executor is
    /// byte-identical to one from [`SimExecutor::new`].
    pub fn with_prep(
        graph: &'a TaskGraph,
        topo: &'a FabricSpec,
        cfg: &'a RuntimeConfig,
        prep: &SimPrep,
    ) -> Self {
        debug_assert_eq!(prep.pending.len(), graph.len(), "prep built from another graph?");
        let n = topo.n_gpus();
        let mut pool = EnginePool::new();
        let gpus = (0..n)
            .map(|g| GpuState {
                pcie_in: pool.add(format!("gpu{g}.pcie_in")),
                pcie_out: pool.add(format!("gpu{g}.pcie_out")),
                // One compute engine per GPU: CUDA streams share the SMs,
                // so concurrent kernels time-share rather than multiply
                // throughput. Streams still matter for transfer/compute
                // overlap, which the separate copy engines provide.
                kernel_streams: vec![pool.add(format!("gpu{g}.kernel"))],
                queue: VecDeque::new(),
                in_flight: 0,
                max_queue: 0,
                max_in_flight: 0,
            })
            .collect();
        let uplinks: Vec<EngineId> = (0..topo.n_switches())
            .map(|s| pool.add(format!("switch{s}.uplink")))
            .collect();
        let intersocket = pool.add("intersocket");
        // Engines must be added in the same deterministic order as the
        // historical HashMap-based construction so EngineIds (and therefore
        // whole simulations) stay bit-identical.
        let mut nvlinks: Vec<Option<EngineId>> = vec![None; n * n];
        for (a, b, _) in topo.nvlink_edges() {
            nvlinks[a * n + b] = Some(pool.add(format!("nvlink{a}->{b}")));
            nvlinks[b * n + a] = Some(pool.add(format!("nvlink{b}->{a}")));
        }
        // NIC engines are appended *after* every legacy engine and only on
        // multi-node fabrics, so single-node EngineIds stay bit-identical.
        let nics: Vec<EngineId> = if topo.n_nodes() > 1 {
            (0..topo.n_nodes())
                .map(|nd| pool.add(format!("node{nd}.nic")))
                .collect()
        } else {
            Vec::new()
        };
        let cache = SoftwareCache::new(n, cfg.gpu_memory, graph.data());
        // Intern every label up front: the event loop then records spans
        // with a copyable u32 instead of cloning a String per span. The
        // prep holds the rendered pattern text; interning here follows the
        // exact order the eager-String era used (tasks first, then data
        // handles), keeping traces bit-identical.
        let mut trace = Trace::new();
        let task_labels: Vec<Label> = prep
            .task_label_strings
            .iter()
            .map(|s| trace.intern(s))
            .collect();
        let data_labels: Vec<Label> = (0..graph.data().len())
            .map(|i| trace.intern(&graph.data().info(HandleId(i)).label))
            .collect();
        let obs = ObsRecorder::new(
            ObsLevel::default(),
            pool.len(),
            graph.data().len(),
            n,
            graph.len(),
        );
        SimExecutor {
            graph,
            topo,
            cfg,
            pool,
            gpus,
            uplinks,
            intersocket,
            nvlinks,
            nics,
            cache,
            // Each task typically produces a TaskDone plus a handful of
            // TryLaunch events; pre-reserving avoids queue regrowth
            // mid-run (the heap backend sizes its array, the calendar
            // backend its bucket ring — see `xk_sim::selected_backend`
            // for how `XK_EVENT_QUEUE` picks between them).
            clock: Clock::with_capacity(graph.len().saturating_mul(4).max(64)),
            pending: prep.pending.clone(),
            assigned_to: vec![None; graph.len()],
            prefetched: vec![None; graph.len()],
            final_writer: prep.final_writer.clone(),
            committed: vec![0.0; n],
            submission_cursor: SimTime::ZERO,
            scheduler: make_scheduler(cfg.scheduler, n),
            trace,
            task_labels,
            data_labels,
            scratch_avail: Vec::with_capacity(n),
            scratch_lens: Vec::with_capacity(n),
            scratch_handles: Vec::new(),
            scratch_engines: Vec::new(),
            flow_root: vec![FlowId::NONE; graph.data().len()],
            obs,
            ctrl: None,
            fault: None,
            failed_replicas: HashMap::new(),
            task_failed: vec![None; graph.len()],
            bytes_h2d: 0,
            bytes_d2h: 0,
            bytes_p2p: 0,
            tasks_done: 0,
            steals: 0,
        }
    }

    /// Sets the observability level for this run (default:
    /// [`ObsLevel::Counters`]). Observability never changes the simulation —
    /// traces and makespans are bit-identical across levels.
    pub fn observe(mut self, level: ObsLevel) -> Self {
        self.obs = ObsRecorder::new(
            level,
            self.pool.len(),
            self.graph.data().len(),
            self.gpus.len(),
            self.graph.len(),
        );
        self
    }

    /// Attaches a [`ScheduleController`]: the executor consults it at every
    /// nondeterministic choice point and reports every transfer/kernel to
    /// its observers. A controller that always picks candidate 0 reproduces
    /// the canonical (no-controller) run bit for bit.
    pub fn control(mut self, ctrl: &'a mut dyn ScheduleController) -> Self {
        self.ctrl = Some(ctrl);
        self
    }

    /// Injects a link fault for this run (see [`LinkFault`]).
    pub fn with_fault(mut self, fault: LinkFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Injects a cache-coherence bug for mutation testing (`xk-check`
    /// proves its oracles catch the resulting stale reads).
    #[doc(hidden)]
    pub fn inject_cache_mutation(mut self, m: crate::cache::CoherenceMutation) -> Self {
        self.cache.inject_mutation(m);
        self
    }

    /// Runs the graph to completion and returns the outcome.
    pub fn run(mut self) -> SimOutcome {
        for t in self.graph.roots() {
            self.on_ready(t);
        }
        loop {
            let next = match self.ctrl.as_mut() {
                Some(c) => self
                    .clock
                    .next_with(&mut |n| c.choose(ChoicePoint::EventTieBreak, n)),
                None => self.clock.next(),
            };
            let Some((_, ev)) = next else { break };
            match ev {
                Ev::TryLaunch(g) => self.try_launch(g),
                Ev::TaskDone(t) => self.on_done(t),
            }
        }
        assert_eq!(
            self.tasks_done,
            self.graph.len(),
            "deadlock: {} of {} tasks completed",
            self.tasks_done,
            self.graph.len()
        );
        let makespan = self.trace.makespan();
        let obs = if self.obs.enabled() {
            let gpu_rows: Vec<GpuObs> = self
                .gpus
                .iter()
                .enumerate()
                .map(|(g, s)| GpuObs {
                    gpu: g,
                    kernel_busy: s
                        .kernel_streams
                        .iter()
                        .map(|&e| self.pool.busy_total(e).seconds())
                        .sum(),
                    max_queue: s.max_queue,
                    max_in_flight: s.max_in_flight,
                })
                .collect();
            let recorder = std::mem::replace(
                &mut self.obs,
                ObsRecorder::new(ObsLevel::Off, 0, 0, 0, 0),
            );
            Some(recorder.into_report(&self.trace, &self.pool, makespan, gpu_rows))
        } else {
            None
        };
        let failures: Vec<(usize, Error)> = self
            .task_failed
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e.clone())))
            .collect();
        SimOutcome {
            makespan,
            trace: self.trace,
            bytes_h2d: self.bytes_h2d,
            bytes_d2h: self.bytes_d2h,
            bytes_p2p: self.bytes_p2p,
            tasks_run: self.tasks_done,
            steals: self.steals,
            obs,
            failures,
        }
    }

    fn on_ready(&mut self, t: TaskId) {
        let task = self.graph.task(t);
        if task.kind == TaskKind::Flush {
            self.run_flush(t);
            return;
        }
        let g = {
            let mut avail = std::mem::take(&mut self.scratch_avail);
            let mut lens = std::mem::take(&mut self.scratch_lens);
            avail.clear();
            avail.extend(self.gpus.iter().map(|s| self.min_stream_free(s)));
            lens.clear();
            lens.extend(self.gpus.iter().map(|s| s.queue.len()));
            let view = SchedView {
                now: self.clock.now(),
                gpu_available: &avail,
                queue_lens: &lens,
                gpu_committed: &self.committed,
                topo: self.topo,
                cache: &self.cache,
                model: &self.cfg.gpu_model,
            };
            let g = self.scheduler.assign(task, self.graph, &view);
            self.scratch_avail = avail;
            self.scratch_lens = lens;
            g
        };
        self.assigned_to[t.0] = Some(g);
        if let Some(op) = task.op {
            self.committed[g] += self.cfg.gpu_model.kernel_time(op);
        }
        // Serial task creation/scheduling on the host.
        self.submission_cursor = self.submission_cursor.max(self.clock.now())
            + xk_sim::Duration::new(self.cfg.task_overhead);
        let submitted = self.submission_cursor;
        if !self.cfg.prefetch_at_assign {
            // StarPU-class runtimes fetch when the task nears execution:
            // the deferred (launch-time) acquire path handles it.
            self.gpus[g].queue.push_back(t);
            self.gpus[g].max_queue = self.gpus[g].max_queue.max(self.gpus[g].queue.len());
            self.clock.schedule(self.clock.now(), Ev::TryLaunch(g));
            if self.scheduler.allows_stealing() {
                for other in 0..self.gpus.len() {
                    if other != g && self.gpus[other].in_flight == 0 {
                        self.clock.schedule(self.clock.now(), Ev::TryLaunch(other));
                    }
                }
            }
            return;
        }
        // Prefetch at assignment: XKaapi initiates input transfers as soon
        // as the scheduler maps a task, long before a kernel slot frees.
        // This is what overlaps communication with computation — and what
        // creates the simultaneous duplicate host reads that the optimistic
        // heuristic removes (§III-C).
        if let Some((ready, dep, flow)) = self.acquire_inputs(t, g, false) {
            self.prefetched[t.0] = Some((g, ready.max(submitted), dep, flow));
        } else {
            // Remember the submission constraint for the deferred acquire.
            self.prefetched[t.0] = None;
        }
        self.gpus[g].queue.push_back(t);
        self.gpus[g].max_queue = self.gpus[g].max_queue.max(self.gpus[g].queue.len());
        self.clock.schedule(self.clock.now(), Ev::TryLaunch(g));
        // Under work stealing, idle peers must get a chance to pick this
        // task up if the owner is saturated.
        if self.scheduler.allows_stealing() {
            for other in 0..self.gpus.len() {
                if other != g && self.gpus[other].in_flight == 0 {
                    self.clock.schedule(self.clock.now(), Ev::TryLaunch(other));
                }
            }
        }
    }

    fn min_stream_free(&self, s: &GpuState) -> SimTime {
        s.kernel_streams
            .iter()
            .map(|&e| self.pool.free_at(e))
            .min()
            .expect("at least one stream")
    }

    fn try_launch(&mut self, g: usize) {
        loop {
            if self.gpus[g].in_flight >= self.cfg.window {
                return;
            }
            let next = if let Some(t) = self.pop_ready(g) {
                t
            } else if self.scheduler.allows_stealing() && self.gpus[g].in_flight == 0 {
                // Steal only when truly idle, one task at a time — XKaapi
                // steals on idleness, it does not hoard.
                match self.pick_steal_victim(g) {
                    Some(v) => {
                        // Steal the most recently pushed task (cold end).
                        let t = self.gpus[v].queue.pop_back().expect("victim non-empty");
                        self.steals += 1;
                        self.assigned_to[t.0] = Some(g);
                        t
                    }
                    None => return,
                }
            } else {
                return;
            };
            self.launch(next, g);
        }
    }

    /// Takes the next ready task from `g`'s queue: the front canonically, a
    /// controller-chosen entry under exploration.
    fn pop_ready(&mut self, g: usize) -> Option<TaskId> {
        let qlen = self.gpus[g].queue.len();
        if qlen == 0 {
            return None;
        }
        let idx = match self.ctrl.as_mut() {
            Some(c) if qlen >= 2 => c.choose(ChoicePoint::ReadyTaskPick, qlen).min(qlen - 1),
            _ => 0,
        };
        self.gpus[g].queue.remove(idx)
    }

    /// Picks a steal victim for idle GPU `g`: canonically the longest
    /// non-empty peer queue (lowest index on ties); under a controller, a
    /// choice among all non-empty peers presented in that canonical order
    /// (so candidate 0 is the canonical victim).
    fn pick_steal_victim(&mut self, g: usize) -> Option<usize> {
        let mut lens = std::mem::take(&mut self.scratch_lens);
        lens.clear();
        lens.extend(self.gpus.iter().map(|s| s.queue.len()));
        let victim = if self.ctrl.is_some() {
            let mut candidates: Vec<usize> = (0..lens.len())
                .filter(|&v| v != g && lens[v] > 0)
                .collect();
            candidates.sort_by_key(|&v| (std::cmp::Reverse(lens[v]), v));
            match candidates.len() {
                0 => None,
                1 => Some(candidates[0]),
                n => {
                    let c = self.ctrl.as_mut().expect("controller present");
                    Some(candidates[c.choose(ChoicePoint::StealVictim, n).min(n - 1)])
                }
            }
        } else {
            pick_victim(&lens, g)
        };
        self.scratch_lens = lens;
        victim
    }

    /// Acquires all inputs of `t` on GPU `g` (capacity, transfers, output
    /// residency) and pins its working set; returns when the last input
    /// becomes usable plus the observability node and flow chain of the
    /// *binding* input (the one whose arrival dominates), or `None` (with
    /// nothing pinned) when the working set does not fit next to the
    /// currently pinned tiles and `force` is off.
    fn acquire_inputs(
        &mut self,
        t: TaskId,
        g: usize,
        force: bool,
    ) -> Option<(SimTime, u32, FlowId)> {
        let now = self.clock.now();
        // Copy the graph reference: its borrows live for 'a, independently
        // of `&mut self`, so task accesses can be iterated without
        // collecting into fresh Vecs on every scheduling step.
        let graph = self.graph;
        let task = graph.task(t);
        let mut pins = std::mem::take(&mut self.scratch_handles);
        pins.clear();
        pins.extend(task.accesses.iter().map(|a| a.handle));
        for &h in &pins {
            self.cache.pin(h, g);
        }

        // Capacity: make room for every non-resident handle.
        let needed: u64 = pins
            .iter()
            .filter(|&&h| self.cache.replica(h, g).is_none())
            .map(|&h| graph.data().info(h).bytes)
            .sum();
        if needed > 0 {
            let evictions = match self.ctrl.as_mut() {
                Some(c) => {
                    let mut pick = |n: usize| c.choose(ChoicePoint::EvictionPick, n);
                    self.cache
                        .make_room_with(g, needed, &pins, graph.data(), Some(&mut pick))
                }
                None => self.cache.make_room(g, needed, &pins, graph.data()),
            };
            for ev in evictions {
                if let Eviction::WriteBack(h) = ev {
                    self.issue_d2h(h, g, now);
                }
            }
            if !force && self.cache.used_bytes(g) + needed > self.cache.capacity(g) {
                // Everything evictable is pinned by queued work: defer this
                // task's prefetch to launch time.
                for &h in &pins {
                    self.cache.unpin(h, g);
                }
                self.scratch_handles = pins;
                return None;
            }
        }
        self.scratch_handles = pins;

        // Input transfers. The strictly-later comparison keeps the *first*
        // dominating input on exact ties, deterministically.
        let mut input_ready = now;
        let mut dep = NO_NODE;
        let mut flow = FlowId::NONE;
        for h in task.read_handles() {
            let (ready, node, f) = self.fetch(h, g, now);
            if ready > input_ready {
                input_ready = ready;
                dep = node;
                flow = f;
            }
            self.cache.touch(h, g);
        }
        // Write-only outputs just need residency.
        for h in task.written_handles() {
            if self.cache.replica(h, g).is_none() {
                let bytes = graph.data().info(h).bytes;
                self.cache.allocate_output(h, g, bytes);
            }
        }
        Some((input_ready, dep, flow))
    }

    fn unpin_task(&mut self, t: TaskId, g: usize) {
        let graph = self.graph;
        for a in &graph.task(t).accesses {
            self.cache.unpin(a.handle, g);
        }
    }

    /// Issues the kernel of `t` on GPU `g` (inputs were prefetched at
    /// assignment; a stolen task re-acquires them on the thief).
    fn launch(&mut self, t: TaskId, g: usize) {
        let task = self.graph.task(t);
        let (input_ready, dep, flow) = match self.prefetched[t.0] {
            Some((pg, ready, dep, flow)) if pg == g => (ready, dep, flow),
            other => {
                // Stolen (prefetched elsewhere) or deferred by memory
                // pressure: acquire on this GPU now, releasing any stale
                // pins on the original target.
                if let Some((pg, ..)) = other {
                    self.unpin_task(t, pg);
                }
                let (ready, dep, flow) = self
                    .acquire_inputs(t, g, true)
                    .expect("forced acquire always succeeds");
                self.prefetched[t.0] = Some((g, ready, dep, flow));
                (ready, dep, flow)
            }
        };

        // Complete-as-failed: a task whose dependency failed, or whose
        // input replica was poisoned by a dead link, skips its kernel but
        // still schedules TaskDone (with the usual in-flight bookkeeping)
        // so the run drains instead of deadlocking a waiter on a transfer
        // that will never deliver.
        let mut failure = self.task_failed[t.0].clone();
        if failure.is_none() {
            for h in task.read_handles() {
                if let Some(e) = self.failed_replicas.get(&(h.0, g)) {
                    failure = Some(e.clone());
                    break;
                }
            }
        }
        if let Some(e) = failure {
            self.task_failed[t.0] = Some(e);
            self.gpus[g].in_flight += 1;
            self.gpus[g].max_in_flight =
                self.gpus[g].max_in_flight.max(self.gpus[g].in_flight);
            self.clock
                .schedule(self.clock.now().max(input_ready), Ev::TaskDone(t));
            return;
        }

        // Kernel execution on the least-busy stream.
        let op = task.op.expect("kernel task has an op");
        let dur = Duration::new(self.cfg.gpu_model.kernel_time(op));
        let stream_idx = self
            .gpus[g]
            .kernel_streams
            .iter()
            .enumerate()
            .min_by_key(|(_, &e)| self.pool.free_at(e))
            .map(|(i, _)| i)
            .expect("stream");
        let stream = self.gpus[g].kernel_streams[stream_idx];
        let bound = if self.obs.enabled() {
            self.pool.bottleneck(&[stream], input_ready)
        } else {
            None
        };
        let res = self.pool.reserve(&[stream], input_ready, dur);
        let idx = self.trace.len() as u32;
        self.trace.push(Span {
            place: Place::Gpu(g as u32),
            lane: (3 + stream_idx) as u8,
            kind: SpanKind::Kernel,
            start: res.start.seconds(),
            end: res.end.seconds(),
            bytes: 0,
            label: self.task_labels[t.0],
            flow,
        });
        self.obs.record(
            idx,
            &[stream],
            bound,
            res.start.seconds() - input_ready.seconds(),
            0,
            dep,
        );
        if self.obs.full() {
            // This kernel is now the op that makes its outputs valid here.
            for h in task.written_handles() {
                self.obs.set_valid_node(h.0, g, idx);
            }
        }
        if let Some(c) = self.ctrl.as_mut() {
            c.on_kernel(t.0, g, res.start.seconds(), res.end.seconds());
        }
        self.gpus[g].in_flight += 1;
        self.gpus[g].max_in_flight = self.gpus[g].max_in_flight.max(self.gpus[g].in_flight);
        self.clock.schedule(res.end, Ev::TaskDone(t));
    }

    /// Ensures `h` is (or will be) valid on `g`; returns when it is usable,
    /// the observability node that makes it so, and its flow chain.
    fn fetch(&mut self, h: HandleId, g: usize, now: SimTime) -> (SimTime, u32, FlowId) {
        let n = self.gpus.len();
        let nvlinks = &self.nvlinks;
        let pool = &self.pool;
        let gpus = &self.gpus;
        let mut ctrl = self.ctrl.as_deref_mut();
        let mut tie = |candidates: &[usize]| -> usize {
            // Prefer the candidate whose outgoing channel to us frees first.
            let canonical = candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, &c)| {
                    let engine = nvlinks[c * n + g].unwrap_or(gpus[c].pcie_out);
                    (pool.free_at(engine), c)
                })
                .map(|(i, _)| i)
                .expect("non-empty candidates");
            match ctrl.as_mut() {
                Some(c) if candidates.len() >= 2 => {
                    // Candidate 0 of the choice is the canonical pick; the
                    // rest keep ascending order with the canonical removed,
                    // so choosing 0 reproduces the default run exactly.
                    let k = c
                        .choose(ChoicePoint::SourceTieBreak, candidates.len())
                        .min(candidates.len() - 1);
                    if k == 0 {
                        canonical
                    } else {
                        (0..candidates.len())
                            .filter(|&i| i != canonical)
                            .nth(k - 1)
                            .expect("k < candidates.len()")
                    }
                }
                _ => canonical,
            }
        };
        let decision = select_source(
            h,
            g,
            now,
            &self.cache,
            self.topo,
            self.cfg.heuristics,
            &mut tie,
        );
        let info = self.graph.data().info(h);
        match decision {
            SourceDecision::AlreadyThere { ready_at } => {
                // Valid (or in flight) here already: the binding op is
                // whatever made/makes it valid, on this replica's chain.
                (ready_at, self.obs.valid_node(h.0, g), self.flow_root[h.0])
            }
            SourceDecision::FromGpu { src } => self.issue_p2p(h, src, g, now, info.bytes),
            SourceDecision::ForwardAfter { via, ready_at } => {
                self.issue_p2p(h, via, g, now.max(ready_at), info.bytes)
            }
            SourceDecision::FromHost => {
                let route = self.topo.route_ref(Device::Host, Device::Gpu(g));
                let mut bw = route.bandwidth;
                if info.pitched {
                    bw *= PITCHED_COPY_FACTOR;
                }
                let dur = Duration::new(route.latency + info.bytes as f64 / bw);
                let mut engines = std::mem::take(&mut self.scratch_engines);
                engines.clear();
                engines.push(self.gpus[g].pcie_in);
                self.push_segment_engines(&route.segments, &mut engines);
                let bound = if self.obs.enabled() {
                    self.pool.bottleneck(&engines, now)
                } else {
                    None
                };
                let res = self.pool.reserve(&engines, now, dur);
                self.cache.begin_transfer(h, g, info.bytes, res.end);
                self.bytes_h2d += info.bytes;
                let idx = self.trace.len() as u32;
                // An H2D read roots a fresh broadcast chain for this tile.
                let flow = FlowId(idx);
                self.flow_root[h.0] = flow;
                self.trace.push(Span {
                    place: Place::Gpu(g as u32),
                    lane: 0,
                    kind: SpanKind::H2D,
                    start: res.start.seconds(),
                    end: res.end.seconds(),
                    bytes: info.bytes,
                    label: self.data_labels[h.0],
                    flow,
                });
                self.obs.record(
                    idx,
                    &engines,
                    bound,
                    res.start.seconds() - now.seconds(),
                    info.bytes,
                    NO_NODE, // source is host memory: no simulated predecessor
                );
                self.scratch_engines = engines;
                self.obs.set_valid_node(h.0, g, idx);
                // A fresh host copy replaces whatever poison a dead link
                // left on this replica (host links never fail in the model).
                self.failed_replicas.remove(&(h.0, g));
                if let Some(c) = self.ctrl.as_mut() {
                    c.on_h2d(h.0, g, res.start.seconds(), res.end.seconds());
                }
                (res.end, idx, flow)
            }
        }
    }

    fn issue_p2p(
        &mut self,
        h: HandleId,
        src: usize,
        dst: usize,
        earliest: SimTime,
        bytes: u64,
    ) -> (SimTime, u32, FlowId) {
        let n = self.gpus.len();
        let route = self.topo.route_ref(Device::Gpu(src), Device::Gpu(dst));
        // Device copies are compacted tiles (§III-A): full link bandwidth.
        let dur = Duration::new(route.latency + bytes as f64 / route.bandwidth);
        // NVLink routes use the dedicated directional brick; PCIe peer
        // routes share the PCIe send/receive paths and the switch fabric.
        let mut engines = std::mem::take(&mut self.scratch_engines);
        engines.clear();
        match self.nvlinks[src * n + dst] {
            Some(link) => engines.push(link),
            None => {
                engines.push(self.gpus[src].pcie_out);
                engines.push(self.gpus[dst].pcie_in);
            }
        }
        self.push_segment_engines(&route.segments, &mut engines);
        // The forward depends on whatever put the tile on the source GPU —
        // for `ForwardAfter` that is the still-in-flight inbound H2D, i.e.
        // exactly the optimistic H2D → P2P chain of §III-C.
        let dep = self.obs.valid_node(h.0, src);
        let bound = if self.obs.enabled() {
            self.pool.bottleneck(&engines, earliest)
        } else {
            None
        };
        let res = self.pool.reserve(&engines, earliest, dur);
        self.cache.begin_transfer(h, dst, bytes, res.end);
        self.bytes_p2p += bytes;
        let idx = self.trace.len() as u32;
        let mut flow = self.flow_root[h.0];
        if flow == FlowId::NONE {
            // Data-on-device tile never read from the host: the first
            // forward roots its chain.
            flow = FlowId(idx);
            self.flow_root[h.0] = flow;
        }
        self.trace.push(Span {
            place: Place::Gpu(dst as u32),
            lane: 0,
            kind: SpanKind::P2P,
            start: res.start.seconds(),
            end: res.end.seconds(),
            bytes,
            label: self.data_labels[h.0],
            flow,
        });
        self.obs.record(
            idx,
            &engines,
            bound,
            res.start.seconds() - earliest.seconds(),
            bytes,
            dep,
        );
        self.scratch_engines = engines;
        self.obs.set_valid_node(h.0, dst, idx);
        // Fault model: a transfer sourced from a poisoned replica carries
        // the poison (an optimistic forward of a dead transfer is dead
        // too), and a transfer still on the wire when its own link dies
        // fails outright. A good transfer refreshes the destination.
        let inherited = self.failed_replicas.get(&(h.0, src)).cloned();
        let fault_hit = self
            .fault
            .is_some_and(|f| f.src == src && f.dst == dst && res.end.seconds() > f.at);
        if let Some(e) = inherited {
            self.failed_replicas.insert((h.0, dst), e);
        } else if fault_hit {
            self.failed_replicas
                .insert((h.0, dst), Error::LinkDown { src, dst });
        } else {
            self.failed_replicas.remove(&(h.0, dst));
            if let Some(c) = self.ctrl.as_mut() {
                c.on_p2p(h.0, src, dst, res.start.seconds(), res.end.seconds());
            }
        }
        (res.end, idx, flow)
    }

    fn issue_d2h(&mut self, h: HandleId, g: usize, earliest: SimTime) -> SimTime {
        let info = self.graph.data().info(h);
        let route = self.topo.route_ref(Device::Gpu(g), Device::Host);
        let mut bw = route.bandwidth;
        if info.pitched {
            bw *= PITCHED_COPY_FACTOR;
        }
        let dur = Duration::new(route.latency + info.bytes as f64 / bw);
        let mut engines = std::mem::take(&mut self.scratch_engines);
        engines.clear();
        engines.push(self.gpus[g].pcie_out);
        self.push_segment_engines(&route.segments, &mut engines);
        let dep = self.obs.valid_node(h.0, g);
        let bound = if self.obs.enabled() {
            self.pool.bottleneck(&engines, earliest)
        } else {
            None
        };
        let res = self.pool.reserve(&engines, earliest, dur);
        self.bytes_d2h += info.bytes;
        let idx = self.trace.len() as u32;
        self.trace.push(Span {
            place: Place::Gpu(g as u32),
            lane: 2,
            kind: SpanKind::D2H,
            start: res.start.seconds(),
            end: res.end.seconds(),
            bytes: info.bytes,
            label: self.data_labels[h.0],
            flow: self.flow_root[h.0],
        });
        self.obs.record(
            idx,
            &engines,
            bound,
            res.start.seconds() - earliest.seconds(),
            info.bytes,
            dep,
        );
        self.scratch_engines = engines;
        if !self.failed_replicas.contains_key(&(h.0, g)) {
            if let Some(c) = self.ctrl.as_mut() {
                c.on_d2h(h.0, g, res.start.seconds(), res.end.seconds());
            }
        }
        res.end
    }

    fn push_segment_engines(&self, segments: &[BusSegment], out: &mut Vec<EngineId>) {
        out.extend(segments.iter().map(|s| match s {
            BusSegment::HostUplink(sw) => self.uplinks[*sw],
            BusSegment::InterSocket => self.intersocket,
            BusSegment::InterNode(nd) => self.nics[*nd],
        }));
    }

    /// Executes a flush task: DtoH for every dirty read handle.
    fn run_flush(&mut self, t: TaskId) {
        let now = self.clock.now();
        let graph = self.graph;
        let mut done = now;
        for h in graph.task(t).read_handles() {
            if let Some(g) = self.cache.dirty_on(h) {
                if let Some(e) = self.failed_replicas.get(&(h.0, g)) {
                    // A poisoned replica cannot be written back: the flush
                    // surfaces the failure instead of shipping garbage.
                    if self.task_failed[t.0].is_none() {
                        self.task_failed[t.0] = Some(e.clone());
                    }
                    continue;
                }
                let end = self.issue_d2h(h, g, now);
                self.cache.mark_flushed(h);
                done = done.max(end);
            }
        }
        self.clock.schedule(done, Ev::TaskDone(t));
    }

    fn on_done(&mut self, t: TaskId) {
        let graph = self.graph;
        let task = graph.task(t);
        let failed = self.task_failed[t.0].clone();
        if task.kind == TaskKind::Kernel {
            let g = self.assigned_to[t.0].expect("kernel was assigned");
            if let Some((pg, ..)) = self.prefetched[t.0] {
                self.unpin_task(t, pg);
            }
            if failed.is_none() {
                for h in task.written_handles() {
                    let bytes = graph.data().info(h).bytes;
                    self.cache.mark_written(h, g, bytes, graph.data());
                    // A successful write produces a fresh version: stale
                    // poison on any replica of this handle is obsolete
                    // (the writer's copy is now the only valid one).
                    self.failed_replicas.retain(|&(hh, _), _| hh != h.0);
                }
                if self.cfg.eager_flush {
                    // Chameleon/StarPU behaviour: a computed tile goes
                    // straight back to the host once its *final* version is
                    // produced (the flush-back annotation on the unrolled
                    // data-flow graph, §IV-F) — intermediate k-step
                    // versions stay.
                    let now = self.clock.now();
                    for h in task.written_handles() {
                        if self.final_writer[h.0] == Some(t) {
                            self.issue_d2h(h, g, now);
                            self.cache.mark_flushed(h);
                        }
                    }
                }
            }
            if let Some(op) = task.op {
                self.committed[g] -= self.cfg.gpu_model.kernel_time(op);
            }
            if failed.is_none() && !self.cfg.cache_inputs {
                // Re-read runtimes drop clean inputs right after use.
                for h in task.read_handles() {
                    self.cache.drop_replica(h, g, graph.data());
                }
            }
            self.gpus[g].in_flight -= 1;
            self.clock.schedule(self.clock.now(), Ev::TryLaunch(g));
        }
        self.tasks_done += 1;
        for &s in graph.successors(t) {
            // A dependent of a failed task fails with the same error.
            if let Some(e) = &failed {
                if self.task_failed[s.0].is_none() {
                    self.task_failed[s.0] = Some(e.clone());
                }
            }
            self.pending[s.0] -= 1;
            if self.pending[s.0] == 0 {
                self.on_ready(s);
            }
        }
    }
}

/// Convenience: simulate `graph` on `topo` under `cfg`.
#[deprecated(
    since = "0.5.0",
    note = "use `SimSession::on(topo).config(cfg.clone()).run(graph)` — the \
            session front door also exposes observability (`Run::metrics`) \
            and trace export"
)]
pub fn simulate(graph: &TaskGraph, topo: &FabricSpec, cfg: &RuntimeConfig) -> SimOutcome {
    // The historical entry point recorded nothing beyond the trace.
    SimExecutor::new(graph, topo, cfg).observe(ObsLevel::Off).run()
}

/// Point-to-point bandwidth matrix of a topology: one `bytes`-sized
/// transfer between every device pair on an idle machine (Fig. 2).
pub(crate) fn bandwidth_matrix_of(topo: &FabricSpec, bytes: u64) -> Vec<Vec<f64>> {
    let n = topo.n_gpus();
    let mut out = vec![vec![0.0; n]; n];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            let route = topo.route(Device::Gpu(i), Device::Gpu(j));
            let t = route.transfer_time(bytes);
            *cell = bytes as f64 / t / 1e9;
        }
    }
    out
}

/// Measures the point-to-point bandwidth matrix of a topology by timing a
/// single `bytes`-sized transfer between every device pair on an idle
/// machine (regenerates the paper's Fig. 2 from the model).
#[deprecated(
    since = "0.5.0",
    note = "use `SimSession::on(topo).bandwidth_matrix(bytes)`"
)]
pub fn measure_bandwidth_matrix(topo: &FabricSpec, bytes: u64) -> Vec<Vec<f64>> {
    bandwidth_matrix_of(topo, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Heuristics, SchedulerKind};
    use crate::data::DataInfo;
    use crate::task::{Access, TaskAccess};
    use xk_kernels::perfmodel::TileOp;
    use xk_topo::dgx1;

    const MB: u64 = 1 << 20;

    fn read(h: HandleId) -> TaskAccess {
        TaskAccess { handle: h, access: Access::Read }
    }
    fn rw(h: HandleId) -> TaskAccess {
        TaskAccess { handle: h, access: Access::ReadWrite }
    }

    fn tiny_op() -> TileOp {
        TileOp::Gemm { m: 512, n: 512, k: 512 }
    }

    /// Shadows the deprecated free function: unit tests run at
    /// [`ObsLevel::Full`] so every path also exercises the recorder.
    fn simulate(graph: &TaskGraph, topo: &FabricSpec, cfg: &RuntimeConfig) -> SimOutcome {
        SimExecutor::new(graph, topo, cfg).observe(ObsLevel::Full).run()
    }

    /// A graph where every GPU reads the same host tile once.
    fn broadcast_graph(n_gpus: usize) -> TaskGraph {
        let mut g = TaskGraph::new();
        let shared = g.add_host_tile(32 * MB, true, "A");
        for i in 0..n_gpus {
            let c = g.add_data(DataInfo::host(32 * MB, true, format!("C{i}")).with_owner(i));
            g.add_task(tiny_op(), vec![read(shared), rw(c)], format!("t{i}"));
        }
        g
    }

    #[test]
    fn single_task_completes() {
        let topo = dgx1();
        let mut g = TaskGraph::new();
        let c = g.add_host_tile(MB, true, "c");
        g.add_task(tiny_op(), vec![rw(c)], "only");
        let out = simulate(&g, &topo, &RuntimeConfig::default());
        assert_eq!(out.tasks_run, 1);
        assert!(out.makespan > 0.0);
        assert!(out.bytes_h2d >= MB);
    }

    #[test]
    fn deterministic_repeat() {
        let topo = dgx1();
        let g1 = broadcast_graph(8);
        let g2 = broadcast_graph(8);
        let cfg = RuntimeConfig::default();
        let o1 = simulate(&g1, &topo, &cfg);
        let o2 = simulate(&g2, &topo, &cfg);
        assert_eq!(o1.makespan, o2.makespan);
        assert_eq!(o1.trace.len(), o2.trace.len());
        assert_eq!(o1.bytes_p2p, o2.bytes_p2p);
    }

    #[test]
    fn optimistic_heuristic_reduces_host_traffic() {
        let topo = dgx1();
        let cfg_on = RuntimeConfig::default();
        let cfg_off = RuntimeConfig::default().with_heuristics(Heuristics::no_optimistic());
        let on = simulate(&broadcast_graph(8), &topo, &cfg_on);
        let off = simulate(&broadcast_graph(8), &topo, &cfg_off);
        // With the heuristic the shared tile crosses PCIe once and fans out
        // over NVLink; without it every GPU rereads it from the host.
        assert!(
            on.bytes_h2d < off.bytes_h2d,
            "h2d on={} off={}",
            on.bytes_h2d,
            off.bytes_h2d
        );
        assert!(on.bytes_p2p > 0);
    }

    #[test]
    fn flush_moves_results_home() {
        let topo = dgx1();
        let mut g = TaskGraph::new();
        let c = g.add_host_tile(MB, true, "c");
        g.add_task(tiny_op(), vec![rw(c)], "compute");
        g.add_flush(&[c], "flush");
        let out = simulate(&g, &topo, &RuntimeConfig::default());
        assert_eq!(out.tasks_run, 2);
        assert!(out.bytes_d2h >= MB);
        let d2h = out.trace.breakdown().get(SpanKind::D2H);
        assert!(d2h > 0.0);
    }

    #[test]
    fn chain_serializes_in_time() {
        let topo = dgx1();
        let mut g = TaskGraph::new();
        let c = g.add_host_tile(MB, true, "c");
        for i in 0..4 {
            g.add_task(tiny_op(), vec![rw(c)], format!("k{i}"));
        }
        let out = simulate(&g, &topo, &RuntimeConfig::default());
        // Kernel spans on the chain must not overlap.
        let mut kernels: Vec<(f64, f64)> = out
            .trace
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Kernel)
            .map(|s| (s.start, s.end))
            .collect();
        kernels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in kernels.windows(2) {
            assert!(w[0].1 <= w[1].0 + 1e-12);
        }
    }

    #[test]
    fn stealing_engages_on_imbalance() {
        // All tasks owned by gpu0: stealing must spread them. A shallow
        // window keeps a queue backlog for the thieves to take from.
        let topo = dgx1();
        let mut g = TaskGraph::new();
        for i in 0..32 {
            let c = g.add_data(DataInfo::host(MB, true, format!("c{i}")).with_owner(0));
            g.add_task(tiny_op(), vec![rw(c)], format!("t{i}"));
        }
        let mut cfg = RuntimeConfig::default();
        cfg.window = 4;
        let out = simulate(&g, &topo, &cfg);
        assert!(out.steals > 0, "expected steals on imbalanced ownership");
        let loads = out.trace.kernel_load_per_gpu(8);
        let busy: usize = loads.iter().filter(|&&l| l > 0.0).count();
        assert!(busy >= 4, "work did not spread: {loads:?}");
    }

    #[test]
    fn static_owner_respects_distribution() {
        let topo = dgx1();
        let mut g = TaskGraph::new();
        for i in 0..16 {
            let c = g.add_data(DataInfo::host(MB, true, format!("c{i}")).with_owner(i % 8));
            g.add_task(tiny_op(), vec![rw(c)], format!("t{i}"));
        }
        let cfg = RuntimeConfig::default().with_scheduler(SchedulerKind::StaticOwner);
        let out = simulate(&g, &topo, &cfg);
        assert_eq!(out.steals, 0);
        let loads = out.trace.kernel_load_per_gpu(8);
        assert!(loads.iter().all(|&l| l > 0.0), "{loads:?}");
    }

    #[test]
    fn eviction_on_small_memory() {
        let topo = dgx1();
        let mut g = TaskGraph::new();
        // 8 tiles of 32MB on a 100MB GPU, all processed by gpu0.
        let mut handles = Vec::new();
        for i in 0..8 {
            let c = g.add_data(DataInfo::host(32 * MB, true, format!("c{i}")).with_owner(0));
            g.add_task(tiny_op(), vec![rw(c)], format!("t{i}"));
            handles.push(c);
        }
        let mut cfg = RuntimeConfig::default().with_scheduler(SchedulerKind::StaticOwner);
        cfg.gpu_memory = 100 * MB;
        cfg.window = 1;
        let out = simulate(&g, &topo, &cfg);
        assert_eq!(out.tasks_run, 8);
        // Dirty evictions force write-backs even without a flush task.
        assert!(out.bytes_d2h > 0, "expected eviction write-backs");
    }

    #[test]
    fn data_on_device_runs_without_host_traffic() {
        let topo = dgx1();
        let mut g = TaskGraph::new();
        for i in 0..8 {
            let c = g.add_data(DataInfo::on_gpu(32 * MB, i, format!("c{i}")));
            g.add_task(tiny_op(), vec![rw(c)], format!("t{i}"));
        }
        let out = simulate(&g, &topo, &RuntimeConfig::default());
        assert_eq!(out.bytes_h2d, 0, "DoD run must not touch the host");
        assert_eq!(out.bytes_d2h, 0);
    }

    #[test]
    fn bandwidth_matrix_matches_topology() {
        let topo = dgx1();
        let m = bandwidth_matrix_of(&topo, 64 * MB);
        assert!((m[0][3] - 96.4).abs() < 2.0, "{}", m[0][3]);
        assert!((m[0][1] - 48.4).abs() < 2.0, "{}", m[0][1]);
        assert!(m[0][5] < 20.0);
        assert!(m[0][0] > 500.0);
    }

    #[test]
    fn eager_flush_generates_d2h_per_write() {
        let topo = dgx1();
        let mut g = TaskGraph::new();
        for i in 0..4 {
            let c = g.add_data(DataInfo::host(MB, true, format!("c{i}")).with_owner(i));
            g.add_task(tiny_op(), vec![rw(c)], format!("t{i}"));
        }
        let mut cfg = RuntimeConfig::default();
        cfg.eager_flush = true;
        let out = simulate(&g, &topo, &cfg);
        assert!(out.bytes_d2h >= 4 * MB);
    }

    #[test]
    fn obs_off_yields_none_and_identical_trace() {
        let topo = dgx1();
        let cfg = RuntimeConfig::default();
        let off = SimExecutor::new(&broadcast_graph(8), &topo, &cfg)
            .observe(ObsLevel::Off)
            .run();
        let full = simulate(&broadcast_graph(8), &topo, &cfg);
        assert!(off.obs.is_none());
        assert!(full.obs.is_some());
        // Observability must never perturb the simulation.
        assert_eq!(off.makespan.to_bits(), full.makespan.to_bits());
        assert_eq!(off.trace.len(), full.trace.len());
        for (a, b) in off.trace.spans().iter().zip(full.trace.spans()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn obs_critical_path_length_equals_makespan() {
        let topo = dgx1();
        let out = simulate(&broadcast_graph(8), &topo, &RuntimeConfig::default());
        let report = out.obs.expect("full obs");
        assert_eq!(report.makespan.to_bits(), out.makespan.to_bits());
        let cp = report.critical_path.expect("full level records the path");
        assert_eq!(cp.length.to_bits(), out.makespan.to_bits());
        // The chain durations plus runtime gaps tile [0, makespan].
        let covered: f64 = cp.by_kind.values().sum::<f64>() + cp.runtime_gap;
        assert!(
            (covered - cp.length).abs() <= 1e-9 * cp.length.max(1.0),
            "chain covers {covered}, makespan {}",
            cp.length
        );
        assert!(cp.total_segments >= 1);
        assert!(!cp.segments.is_empty());
    }

    #[test]
    fn obs_counters_match_trace_sums() {
        let topo = dgx1();
        let out = simulate(&broadcast_graph(8), &topo, &RuntimeConfig::default());
        let report = out.obs.expect("obs");
        // Per-GPU kernel busy time == sum of that GPU's kernel spans.
        let loads = out.trace.kernel_load_per_gpu(8);
        for row in &report.gpus {
            assert!(
                (row.kernel_busy - loads[row.gpu]).abs() < 1e-12,
                "gpu{} busy {} vs spans {}",
                row.gpu,
                row.kernel_busy,
                loads[row.gpu]
            );
        }
        // Bytes through all pcie_in engines == total H2D bytes (this graph
        // has no PCIe peer traffic: P2P rides NVLink bricks on the DGX-1).
        let pcie_in_bytes: u64 = report
            .links
            .iter()
            .filter(|l| l.name.ends_with(".pcie_in"))
            .map(|l| l.bytes)
            .sum();
        assert_eq!(pcie_in_bytes, out.bytes_h2d);
        let nvlink_bytes: u64 = report
            .links
            .iter()
            .filter(|l| l.name.starts_with("nvlink"))
            .map(|l| l.bytes)
            .sum();
        assert_eq!(nvlink_bytes, out.bytes_p2p);
    }

    #[test]
    fn obs_contention_wait_on_shared_host_link() {
        // pcie_only: every GPU pulls its tile through shared switch
        // uplinks — contended reservations must charge wait somewhere.
        let topo = xk_topo::builders::pcie_only(8);
        let out = simulate(&broadcast_graph(8), &topo, &RuntimeConfig::default());
        let report = out.obs.expect("obs");
        let total_wait: f64 = report.links.iter().map(|l| l.wait).sum();
        assert!(total_wait > 0.0, "no contention wait recorded");
        assert!(report.hot_links(3).len() == 3);
    }

    #[test]
    fn canonical_controller_is_byte_identical() {
        let topo = dgx1();
        let cfg = RuntimeConfig::default();
        let base = simulate(&broadcast_graph(8), &topo, &cfg);
        let mut ctrl = crate::choice::CanonicalController;
        let controlled = SimExecutor::new(&broadcast_graph(8), &topo, &cfg)
            .observe(ObsLevel::Full)
            .control(&mut ctrl)
            .run();
        assert_eq!(base.makespan.to_bits(), controlled.makespan.to_bits());
        assert_eq!(base.trace.len(), controlled.trace.len());
        for (a, b) in base.trace.spans().iter().zip(controlled.trace.spans()) {
            assert_eq!(a, b);
        }
        assert_eq!(base.bytes_p2p, controlled.bytes_p2p);
        assert_eq!(base.bytes_h2d, controlled.bytes_h2d);
        assert!(controlled.failures.is_empty());
    }

    #[test]
    fn link_fault_fails_waiters_without_deadlock() {
        // t0 on gpu0 pulls the shared tile from the host; t1 on gpu4 gets
        // it as an optimistic forward over the 0->4 NVLink — which is dead
        // from t=0. t1 must surface LinkDown instead of hanging, t0 must
        // stay healthy, and the run must drain completely.
        let topo = dgx1();
        let mut g = TaskGraph::new();
        let shared = g.add_host_tile(32 * MB, true, "A");
        let c0 = g.add_data(DataInfo::host(32 * MB, true, "C0").with_owner(0));
        let c1 = g.add_data(DataInfo::host(32 * MB, true, "C1").with_owner(4));
        g.add_task(tiny_op(), vec![read(shared), rw(c0)], "t0");
        g.add_task(tiny_op(), vec![read(shared), rw(c1)], "t1");
        let cfg = RuntimeConfig::default().with_scheduler(SchedulerKind::StaticOwner);
        let out = SimExecutor::new(&g, &topo, &cfg)
            .observe(ObsLevel::Off)
            .with_fault(LinkFault { src: 0, dst: 4, at: 0.0 })
            .run();
        assert_eq!(out.tasks_run, 2, "run must drain, not deadlock");
        assert_eq!(
            out.failures,
            vec![(1, Error::LinkDown { src: 0, dst: 4 })],
            "t1 surfaces the dead forward, t0 stays healthy"
        );
    }

    #[test]
    fn flows_link_h2d_to_forwards_and_kernels() {
        let topo = dgx1();
        let out = simulate(&broadcast_graph(8), &topo, &RuntimeConfig::default());
        // The shared tile's H2D roots a chain that its P2P forwards join.
        let h2d_flows: Vec<FlowId> = out
            .trace
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::H2D)
            .map(|s| s.flow)
            .collect();
        assert!(h2d_flows.iter().all(|&f| f != FlowId::NONE));
        let p2p_on_chain = out
            .trace
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::P2P && h2d_flows.contains(&s.flow))
            .count();
        assert!(p2p_on_chain > 0, "no P2P joined an H2D chain");
        let kernels_on_chain = out
            .trace
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Kernel && s.flow != FlowId::NONE)
            .count();
        assert!(kernels_on_chain > 0, "no kernel joined a flow chain");
    }
}
