//! Data handles: one per matrix tile tracked by the runtime.

use xk_topo::Device;

/// Identifier of a tile known to the runtime.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct HandleId(pub usize);

/// Static description of a tile.
#[derive(Clone, Debug)]
pub struct DataInfo {
    /// Payload size in bytes (drives transfer durations and memory use).
    pub bytes: u64,
    /// True when the host-side storage is a pitched LAPACK sub-matrix
    /// (`ld != rows`): host transfers pay the `cudaMemcpy2D` derating.
    /// Device-resident copies are compacted tiles (paper §III-A), so
    /// device-to-device transfers never pay it.
    pub pitched: bool,
    /// Where the initial valid copy lives (host for data-on-host runs, a
    /// GPU for 2D-block-cyclic data-on-device runs).
    pub initial: Device,
    /// Trace label, e.g. `"A(0,3)"`.
    pub label: String,
    /// Owner GPU for owner-computes scheduling (set by the algorithm layer
    /// from the 2D block-cyclic distribution of the output matrix).
    pub owner_hint: Option<usize>,
}

impl DataInfo {
    /// A host-resident tile without an owner hint.
    pub fn host(bytes: u64, pitched: bool, label: impl Into<String>) -> Self {
        DataInfo {
            bytes,
            pitched,
            initial: Device::Host,
            label: label.into(),
            owner_hint: None,
        }
    }

    /// A tile initially resident (and dirty) on a GPU.
    pub fn on_gpu(bytes: u64, gpu: usize, label: impl Into<String>) -> Self {
        DataInfo {
            bytes,
            pitched: false,
            initial: Device::Gpu(gpu),
            label: label.into(),
            owner_hint: Some(gpu),
        }
    }

    /// Sets the owner-computes hint.
    pub fn with_owner(mut self, gpu: usize) -> Self {
        self.owner_hint = Some(gpu);
        self
    }
}

/// Registry of all handles of a task graph.
#[derive(Clone, Debug, Default)]
pub struct DataRegistry {
    infos: Vec<DataInfo>,
}

impl DataRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        DataRegistry::default()
    }

    /// Registers a tile and returns its handle.
    pub fn add(&mut self, info: DataInfo) -> HandleId {
        let id = HandleId(self.infos.len());
        self.infos.push(info);
        id
    }

    /// Tile description.
    pub fn info(&self, h: HandleId) -> &DataInfo {
        &self.infos[h.0]
    }

    /// Number of registered tiles.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// True when no tile is registered.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Total bytes over all tiles.
    pub fn total_bytes(&self) -> u64 {
        self.infos.iter().map(|i| i.bytes).sum()
    }

    /// Iterates over `(handle, info)`.
    pub fn iter(&self) -> impl Iterator<Item = (HandleId, &DataInfo)> {
        self.infos
            .iter()
            .enumerate()
            .map(|(i, info)| (HandleId(i), info))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_roundtrip() {
        let mut reg = DataRegistry::new();
        let h = reg.add(DataInfo {
            bytes: 1024,
            pitched: true,
            initial: Device::Host,
            label: "A(0,0)".into(),
            owner_hint: None,
        });
        let h2 = reg.add(DataInfo {
            bytes: 2048,
            pitched: false,
            initial: Device::Gpu(3),
            label: "B(0,0)".into(),
            owner_hint: None,
        });
        assert_ne!(h, h2);
        assert_eq!(reg.info(h).bytes, 1024);
        assert_eq!(reg.info(h2).initial, Device::Gpu(3));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.total_bytes(), 3072);
        assert_eq!(reg.iter().count(), 2);
    }
}
