//! The front-door API for simulated runs: [`SimSession`].
//!
//! Historically every caller wired the executor by hand — `simulate(graph,
//! topo, cfg)` here, `measure_bandwidth_matrix(topo, bytes)` there, ad-hoc
//! plumbing per bench binary. The session consolidates that into one
//! builder:
//!
//! ```
//! use xk_runtime::{ObsLevel, RuntimeConfig, SimSession};
//! use xk_runtime::task::{Access, TaskAccess};
//! use xk_kernels::perfmodel::TileOp;
//!
//! let mut graph = xk_runtime::TaskGraph::new();
//! let c = graph.add_host_tile(32 << 20, true, "C(0,0)");
//! graph.add_task(
//!     TileOp::Gemm { m: 2048, n: 2048, k: 2048 },
//!     vec![TaskAccess { handle: c, access: Access::ReadWrite }],
//!     "gemm C(0,0)",
//! );
//!
//! let topo = xk_topo::dgx1();
//! let run = SimSession::on(&topo)
//!     .config(RuntimeConfig::xkblas())
//!     .observe(ObsLevel::Full)
//!     .run(&graph);
//! assert_eq!(run.outcome().tasks_run, 1);
//! assert!(run.metrics().is_some()); // link occupancy, critical path, ...
//! ```

use xk_topo::FabricSpec;

use crate::attribution::{link_attribution, Attribution};
use crate::bound::{makespan_lower_bound, MakespanBound};
use crate::config::RuntimeConfig;
use crate::graph::TaskGraph;
use crate::obs::{ObsLevel, ObsReport};
use crate::choice::ScheduleController;
use crate::sim_exec::{bandwidth_matrix_of, LinkFault, SimExecutor, SimOutcome, SimPrep};
use xk_trace::Trace;

/// A configured simulation session on one topology: the single entry point
/// for running task graphs and probing the machine model.
///
/// Cheap to build and `Clone`-free by design — it borrows the topology and
/// owns only the configuration, so a session can be kept around and used
/// for many runs.
#[derive(Debug)]
pub struct SimSession<'t> {
    topo: &'t FabricSpec,
    cfg: RuntimeConfig,
    obs: ObsLevel,
    fault: Option<LinkFault>,
}

impl<'t> SimSession<'t> {
    /// Starts a session on `topo` with the XKBlas-like default
    /// configuration and [`ObsLevel::Counters`] observability.
    pub fn on(topo: &'t FabricSpec) -> Self {
        SimSession {
            topo,
            cfg: RuntimeConfig::xkblas(),
            obs: ObsLevel::default(),
            fault: None,
        }
    }

    /// Replaces the runtime configuration.
    pub fn config(mut self, cfg: RuntimeConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the observability level for subsequent runs. Observability
    /// never changes simulation results — traces are bit-identical across
    /// levels.
    pub fn observe(mut self, level: ObsLevel) -> Self {
        self.obs = level;
        self
    }

    /// The session's runtime configuration.
    pub fn cfg(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// The session's observability level.
    pub fn obs_level(&self) -> ObsLevel {
        self.obs
    }

    /// Injects a [`LinkFault`] into subsequent runs: the modelled link dies
    /// mid-simulation, and affected tasks complete as failed
    /// ([`SimOutcome::failures`]) instead of deadlocking their waiters.
    pub fn link_fault(mut self, fault: LinkFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Simulates `graph` to completion.
    pub fn run(&self, graph: &TaskGraph) -> Run {
        let mut exec = SimExecutor::new(graph, self.topo, &self.cfg).observe(self.obs);
        if let Some(fault) = self.fault {
            exec = exec.with_fault(fault);
        }
        Run { outcome: exec.run(), bound: None }
    }

    /// Simulates `graph` from shared precomputed per-graph state.
    ///
    /// `prep` must have been built from this same `graph` (see
    /// [`SimPrep::new`]); the run is byte-identical to [`SimSession::run`].
    /// Batched replica drivers build the prep once and stamp every run
    /// from it, skipping the per-run label rendering and CSR derivation.
    pub fn run_prepped(&self, graph: &TaskGraph, prep: &SimPrep) -> Run {
        let mut exec = SimExecutor::with_prep(graph, self.topo, &self.cfg, prep).observe(self.obs);
        if let Some(fault) = self.fault {
            exec = exec.with_fault(fault);
        }
        Run { outcome: exec.run(), bound: None }
    }

    /// Simulates `graph` under a [`ScheduleController`]: every
    /// nondeterministic tie is resolved by `ctrl`, and data movements are
    /// reported to its observers (see [`SimExecutor::control`]).
    pub fn run_controlled(&self, graph: &TaskGraph, ctrl: &mut dyn ScheduleController) -> Run {
        let mut exec = SimExecutor::new(graph, self.topo, &self.cfg)
            .observe(self.obs)
            .control(ctrl);
        if let Some(fault) = self.fault {
            exec = exec.with_fault(fault);
        }
        Run { outcome: exec.run(), bound: None }
    }

    /// Point-to-point bandwidth matrix of the session's topology, GB/s,
    /// from one `bytes`-sized transfer per device pair on an idle machine
    /// (regenerates the paper's Fig. 2 from the model).
    pub fn bandwidth_matrix(&self, bytes: u64) -> Vec<Vec<f64>> {
        bandwidth_matrix_of(self.topo, bytes)
    }

    /// Schedule-free makespan lower bound for `graph` on this session's
    /// topology and configuration (see [`crate::bound`]). The bound holds
    /// for *every* schedule the simulator can produce, so it never changes
    /// with heuristics, scheduler kind or controller decisions.
    pub fn lower_bound(&self, graph: &TaskGraph) -> MakespanBound {
        makespan_lower_bound(graph, self.topo, &self.cfg)
    }

    /// Like [`SimSession::run`] but also computes the makespan lower bound,
    /// so the returned [`Run`] can report its optimality gap directly.
    pub fn run_bounded(&self, graph: &TaskGraph) -> Run {
        let mut run = self.run(graph);
        run.bound = Some(self.lower_bound(graph));
        run
    }

    /// Shapley-style per-NVLink-edge value attribution of the throughput
    /// this session achieves on `graph` (see [`crate::attribution`]).
    /// `samples == 0` picks exhaustive enumeration on small meshes;
    /// `seed` makes sampled attributions reproducible.
    pub fn attribute_links(&self, graph: &TaskGraph, samples: usize, seed: u64) -> Attribution {
        link_attribution(graph, self.topo, &self.cfg, samples, seed)
    }
}

/// A completed simulated run, as returned by [`SimSession::run`].
#[derive(Clone, Debug)]
pub struct Run {
    outcome: SimOutcome,
    bound: Option<MakespanBound>,
}

impl Run {
    /// The raw outcome (makespan, byte counters, trace, observability).
    pub fn outcome(&self) -> &SimOutcome {
        &self.outcome
    }

    /// The execution trace.
    pub fn trace(&self) -> &Trace {
        &self.outcome.trace
    }

    /// The observability report; `None` when the session ran at
    /// [`ObsLevel::Off`].
    pub fn metrics(&self) -> Option<&ObsReport> {
        self.outcome.obs.as_ref()
    }

    /// The makespan lower bound; `Some` only for runs started with
    /// [`SimSession::run_bounded`].
    pub fn lower_bound(&self) -> Option<&MakespanBound> {
        self.bound.as_ref()
    }

    /// Relative optimality gap of this run's makespan against the lower
    /// bound (`0` = provably optimal). `None` unless the run came from
    /// [`SimSession::run_bounded`] (or the workload is empty).
    pub fn optimality_gap(&self) -> Option<f64> {
        self.bound.as_ref().and_then(|b| b.gap(self.outcome.makespan))
    }

    /// Unwraps into the owned [`SimOutcome`].
    pub fn into_outcome(self) -> SimOutcome {
        self.outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataInfo;
    use crate::task::{Access, TaskAccess};
    use xk_kernels::perfmodel::TileOp;
    use xk_topo::dgx1;

    fn graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        let shared = g.add_host_tile(32 << 20, true, "A");
        for i in 0..4 {
            let c = g.add_data(DataInfo::host(32 << 20, true, format!("C{i}")).with_owner(i));
            g.add_task(
                TileOp::Gemm { m: 2048, n: 2048, k: 2048 },
                vec![
                    TaskAccess { handle: shared, access: Access::Read },
                    TaskAccess { handle: c, access: Access::ReadWrite },
                ],
                format!("t{i}"),
            );
        }
        g
    }

    #[test]
    fn session_matches_legacy_entry_point() {
        let topo = dgx1();
        let cfg = RuntimeConfig::xkblas();
        let run = SimSession::on(&topo)
            .config(cfg.clone())
            .observe(ObsLevel::Full)
            .run(&graph());
        // The deprecated wrapper must stay bit-identical to the session —
        // this is the one intentional call site.
        #[allow(deprecated)]
        let legacy = crate::sim_exec::simulate(&graph(), &topo, &cfg);
        assert_eq!(run.outcome().makespan.to_bits(), legacy.makespan.to_bits());
        assert_eq!(run.trace().len(), legacy.trace.len());
        assert_eq!(run.outcome().bytes_h2d, legacy.bytes_h2d);
        assert!(legacy.obs.is_none());
        assert!(run.metrics().is_some());
    }

    #[test]
    fn observe_level_controls_metrics() {
        let topo = dgx1();
        let g = graph();
        let off = SimSession::on(&topo).observe(ObsLevel::Off).run(&g);
        assert!(off.metrics().is_none());
        let counters = SimSession::on(&topo).observe(ObsLevel::Counters).run(&g);
        let m = counters.metrics().expect("counters recorded");
        assert!(m.critical_path.is_none());
        assert!(!m.links.is_empty());
        let full = SimSession::on(&topo).observe(ObsLevel::Full).run(&g);
        assert!(full.metrics().unwrap().critical_path.is_some());
    }

    #[test]
    fn bandwidth_matrix_matches_legacy() {
        let topo = dgx1();
        let m = SimSession::on(&topo).bandwidth_matrix(64 << 20);
        #[allow(deprecated)]
        let legacy = crate::sim_exec::measure_bandwidth_matrix(&topo, 64 << 20);
        assert_eq!(m, legacy);
    }

    #[test]
    fn run_bounded_reports_a_nonnegative_gap() {
        let topo = dgx1();
        let g = graph();
        let plain = SimSession::on(&topo).run(&g);
        assert!(plain.lower_bound().is_none());
        assert!(plain.optimality_gap().is_none());
        let bounded = SimSession::on(&topo).run_bounded(&g);
        let b = bounded.lower_bound().expect("bound computed");
        assert!(b.total > 0.0);
        assert!(b.admits(bounded.outcome().makespan, 1e-9));
        assert!(bounded.optimality_gap().unwrap() >= -1e-9);
        // Bounding never perturbs the simulation itself.
        assert_eq!(
            plain.outcome().makespan.to_bits(),
            bounded.outcome().makespan.to_bits()
        );
    }

    #[test]
    fn run_into_outcome_round_trips() {
        let topo = dgx1();
        let run = SimSession::on(&topo).run(&graph());
        let makespan = run.outcome().makespan;
        let outcome = run.into_outcome();
        assert_eq!(outcome.makespan, makespan);
    }
}
