//! Dense revised simplex with Bland's rule: the solver behind the
//! makespan lower bound and the link-valuation coalitions.
//!
//! The implementation is deliberately boring: two-phase primal simplex
//! over the standard form `min cᵀx, Ax {≤,=,≥} b, x ≥ 0`, with an
//! explicitly maintained dense basis inverse (the "revised" part: pricing
//! and directions go through `B⁻¹`, the constraint matrix itself is never
//! rewritten). Bland's smallest-index rule on both the entering and the
//! leaving choice makes cycling impossible, so the iteration cap is a
//! backstop against NaN poisoning, not a convergence knob.
//!
//! Scale notes: the consumers build LPs with a few hundred rows and at
//! most a few thousand columns, where dense `O(m·n)` pricing per pivot is
//! faster than any sparse cleverness would be. Feasibility and optimality
//! use the same absolute tolerance ([`DEFAULT_TOL`], `1e-9`), chosen to
//! sit far above f64 noise for second-scale makespans and byte-fraction
//! variables in `[0, 1]` — callers are expected to scale their variables
//! into that neighbourhood (the bound builder does).

/// Default feasibility/optimality tolerance.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Iteration backstop: Bland's rule terminates finitely, so hitting this
/// means the instance is numerically poisoned (NaN/Inf coefficients).
const MAX_ITERS_BASE: usize = 50_000;

/// Constraint sense.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x ≥ rhs`
    Ge,
    /// `coeffs · x = rhs`
    Eq,
}

/// A linear program `min cᵀx` over `x ≥ 0` with row constraints.
#[derive(Clone, Debug)]
pub struct Lp {
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, Cmp, f64)>,
}

impl Lp {
    /// Starts a program minimizing `objective · x` (all variables `≥ 0`).
    pub fn minimize(objective: Vec<f64>) -> Self {
        Lp { objective, rows: Vec::new() }
    }

    /// Number of structural variables.
    pub fn n_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraint rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    fn push(&mut self, coeffs: Vec<f64>, cmp: Cmp, rhs: f64) {
        assert_eq!(coeffs.len(), self.n_vars(), "constraint arity mismatch");
        self.rows.push((coeffs, cmp, rhs));
    }

    /// Adds `coeffs · x ≤ rhs`.
    pub fn le(&mut self, coeffs: Vec<f64>, rhs: f64) {
        self.push(coeffs, Cmp::Le, rhs);
    }

    /// Adds `coeffs · x ≥ rhs`.
    pub fn ge(&mut self, coeffs: Vec<f64>, rhs: f64) {
        self.push(coeffs, Cmp::Ge, rhs);
    }

    /// Adds `coeffs · x = rhs`.
    pub fn eq(&mut self, coeffs: Vec<f64>, rhs: f64) {
        self.push(coeffs, Cmp::Eq, rhs);
    }

    /// Multiplies the objective by `k` in place (metamorphic test hook:
    /// positive scaling must scale the optimum linearly).
    pub fn scale_objective(&mut self, k: f64) {
        for c in &mut self.objective {
            *c *= k;
        }
    }
}

/// An optimal basic solution.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Structural variable values (length [`Lp::n_vars`]).
    pub x: Vec<f64>,
    /// Objective value `c · x`.
    pub value: f64,
    /// Simplex pivots across both phases.
    pub iterations: usize,
}

/// Solver outcome.
#[derive(Clone, Debug)]
pub enum LpResult {
    /// A finite optimum was found.
    Optimal(Solution),
    /// No point satisfies the constraints (phase-1 optimum above tolerance).
    Infeasible,
    /// The objective decreases without bound over the feasible region.
    Unbounded,
}

impl LpResult {
    /// The solution, if optimal.
    pub fn optimal(&self) -> Option<&Solution> {
        match self {
            LpResult::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// The sign-normalized standard form shared by the solver and the
/// brute-force vertex enumerator: `A x = b` with `b ≥ 0`, columns
/// `[structural | slack/surplus]`, one slack (`+1`) per `≤` row and one
/// surplus (`−1`) per `≥` row.
struct Standard {
    /// Row-major `m × ncols`.
    a: Vec<f64>,
    b: Vec<f64>,
    m: usize,
    /// Structural + slack/surplus columns.
    ncols: usize,
    /// Rows whose initial basic column is a slack (`≤` rows); everything
    /// else needs a phase-1 artificial.
    slack_of_row: Vec<Option<usize>>,
}

fn standard_form(lp: &Lp) -> Standard {
    let n = lp.n_vars();
    let m = lp.rows.len();
    let n_slack = lp
        .rows
        .iter()
        .filter(|(_, cmp, _)| matches!(cmp, Cmp::Le | Cmp::Ge))
        .count();
    let ncols = n + n_slack;
    let mut a = vec![0.0; m * ncols];
    let mut b = vec![0.0; m];
    let mut slack_of_row = vec![None; m];
    let mut next_slack = n;
    for (r, (coeffs, cmp, rhs)) in lp.rows.iter().enumerate() {
        // Normalize to b ≥ 0; flipping a row flips its sense.
        let flip = *rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        let cmp = match (cmp, flip) {
            (Cmp::Le, true) => Cmp::Ge,
            (Cmp::Ge, true) => Cmp::Le,
            (c, _) => *c,
        };
        for (j, &c) in coeffs.iter().enumerate() {
            assert!(c.is_finite(), "non-finite coefficient in row {r}");
            a[r * ncols + j] = sign * c;
        }
        assert!(rhs.is_finite(), "non-finite rhs in row {r}");
        b[r] = sign * rhs;
        match cmp {
            Cmp::Le => {
                a[r * ncols + next_slack] = 1.0;
                slack_of_row[r] = Some(next_slack);
                next_slack += 1;
            }
            Cmp::Ge => {
                a[r * ncols + next_slack] = -1.0;
                next_slack += 1;
            }
            Cmp::Eq => {}
        }
    }
    Standard { a, b, m, ncols, slack_of_row }
}

/// The revised-simplex working state: constraint matrix (never modified),
/// dense basis inverse, basic solution.
struct Tableau {
    a: Vec<f64>,
    m: usize,
    ncols: usize,
    /// Column index of each basic variable, one per row.
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// Dense `m × m` basis inverse, row-major.
    binv: Vec<f64>,
    /// Basic variable values `B⁻¹ b`.
    xb: Vec<f64>,
    tol: f64,
    iterations: usize,
}

enum PhaseEnd {
    Optimal,
    Unbounded,
}

impl Tableau {
    /// `u = B⁻¹ · A[:, q]`.
    fn direction(&self, q: usize, u: &mut Vec<f64>) {
        u.clear();
        u.resize(self.m, 0.0);
        for k in 0..self.m {
            let aq = self.a[k * self.ncols + q];
            if aq != 0.0 {
                for (i, ui) in u.iter_mut().enumerate() {
                    *ui += self.binv[i * self.m + k] * aq;
                }
            }
        }
    }

    /// Replaces `basis[r]` with column `q` along direction `u` and updates
    /// `B⁻¹` and `x_B` by the standard elementary row operations.
    fn pivot(&mut self, r: usize, q: usize, u: &[f64]) {
        let theta = self.xb[r] / u[r];
        for i in 0..self.m {
            if i != r {
                self.xb[i] -= theta * u[i];
                // Clamp f64 drift: Bland keeps x_B ≥ 0 in exact arithmetic.
                if self.xb[i] < 0.0 && self.xb[i] > -self.tol {
                    self.xb[i] = 0.0;
                }
            }
        }
        self.xb[r] = theta;
        let inv_ur = 1.0 / u[r];
        for k in 0..self.m {
            self.binv[r * self.m + k] *= inv_ur;
        }
        for i in 0..self.m {
            if i != r && u[i] != 0.0 {
                let f = u[i];
                for k in 0..self.m {
                    self.binv[i * self.m + k] -= f * self.binv[r * self.m + k];
                }
            }
        }
        self.in_basis[self.basis[r]] = false;
        self.in_basis[q] = true;
        self.basis[r] = q;
        self.iterations += 1;
    }

    /// Runs the simplex loop for `cost` (length `ncols`), considering only
    /// columns below `enter_below` for entry. Bland's rule on both choices.
    fn run_phase(&mut self, cost: &[f64], enter_below: usize) -> PhaseEnd {
        let max_iters = MAX_ITERS_BASE + 200 * (self.m + self.ncols);
        let mut y = vec![0.0; self.m];
        let mut u = Vec::new();
        loop {
            assert!(
                self.iterations < max_iters,
                "simplex iteration backstop hit ({} pivots): numerically poisoned instance",
                self.iterations,
            );
            // y = c_Bᵀ B⁻¹.
            for (i, yi) in y.iter_mut().enumerate() {
                *yi = 0.0;
                for k in 0..self.m {
                    let cb = cost[self.basis[k]];
                    if cb != 0.0 {
                        *yi += cb * self.binv[k * self.m + i];
                    }
                }
            }
            // Entering column: smallest index with negative reduced cost.
            let mut entering = None;
            for j in 0..enter_below {
                if self.in_basis[j] {
                    continue;
                }
                let mut rc = cost[j];
                for (i, &yi) in y.iter().enumerate() {
                    rc -= yi * self.a[i * self.ncols + j];
                }
                if rc < -self.tol {
                    entering = Some(j);
                    break;
                }
            }
            let Some(q) = entering else {
                return PhaseEnd::Optimal;
            };
            self.direction(q, &mut u);
            // Leaving row: min ratio; ties by smallest basic column index.
            let mut leave: Option<usize> = None;
            let mut best = f64::INFINITY;
            for i in 0..self.m {
                if u[i] > self.tol {
                    let ratio = self.xb[i] / u[i];
                    let better = ratio < best - self.tol
                        || (ratio < best + self.tol
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(r) = leave else {
                return PhaseEnd::Unbounded;
            };
            self.pivot(r, q, &u);
        }
    }

    /// Removes constraint row `r` (detected linearly dependent at the end
    /// of phase 1) and rebuilds the basis inverse from scratch.
    fn drop_row(&mut self, r: usize) {
        let ncols = self.ncols;
        self.in_basis[self.basis[r]] = false;
        self.basis.remove(r);
        self.xb.remove(r);
        let start = r * ncols;
        self.a.drain(start..start + ncols);
        self.m -= 1;
        let m = self.m;
        // B⁻¹ := inverse of the surviving basis columns.
        let mut aug = vec![0.0; m * 2 * m];
        for i in 0..m {
            for (k, &bk) in self.basis.iter().enumerate() {
                aug[i * 2 * m + k] = self.a[i * ncols + bk];
            }
            aug[i * 2 * m + m + i] = 1.0;
        }
        assert!(
            gauss_jordan(&mut aug, m),
            "surviving basis singular after redundant-row removal",
        );
        self.binv.truncate(m * m);
        for i in 0..m {
            for k in 0..m {
                self.binv[i * m + k] = aug[i * 2 * m + m + k];
            }
        }
    }
}

/// In-place Gauss–Jordan elimination of an `m × 2m` augmented matrix with
/// partial pivoting; returns false if the left block is singular.
fn gauss_jordan(aug: &mut [f64], m: usize) -> bool {
    let w = 2 * m;
    for col in 0..m {
        let piv = (col..m)
            .max_by(|&i, &j| {
                aug[i * w + col]
                    .abs()
                    .total_cmp(&aug[j * w + col].abs())
            })
            .unwrap();
        if aug[piv * w + col].abs() < 1e-12 {
            return false;
        }
        if piv != col {
            for k in 0..w {
                aug.swap(col * w + k, piv * w + k);
            }
        }
        let inv = 1.0 / aug[col * w + col];
        for k in 0..w {
            aug[col * w + k] *= inv;
        }
        for row in 0..m {
            if row != col && aug[row * w + col] != 0.0 {
                let f = aug[row * w + col];
                for k in 0..w {
                    aug[row * w + k] -= f * aug[col * w + k];
                }
            }
        }
    }
    true
}

/// Solves `lp` with the default tolerance.
pub fn solve(lp: &Lp) -> LpResult {
    solve_with_tol(lp, DEFAULT_TOL)
}

/// Solves `lp` with an explicit feasibility/optimality tolerance.
pub fn solve_with_tol(lp: &Lp, tol: f64) -> LpResult {
    assert!(tol > 0.0 && tol.is_finite(), "tolerance must be positive");
    for c in &lp.objective {
        assert!(c.is_finite(), "non-finite objective coefficient");
    }
    let std = standard_form(lp);
    let n = lp.n_vars();
    let m = std.m;

    // Append one artificial column per row without a natural slack basis.
    let art_rows: Vec<usize> = (0..m).filter(|&r| std.slack_of_row[r].is_none()).collect();
    let real_cols = std.ncols;
    let ncols = real_cols + art_rows.len();
    let mut a = vec![0.0; m * ncols];
    for r in 0..m {
        a[r * ncols..r * ncols + real_cols]
            .copy_from_slice(&std.a[r * real_cols..(r + 1) * real_cols]);
    }
    let mut basis = vec![usize::MAX; m];
    let mut in_basis = vec![false; ncols];
    for (k, &r) in art_rows.iter().enumerate() {
        let col = real_cols + k;
        a[r * ncols + col] = 1.0;
        basis[r] = col;
    }
    for r in 0..m {
        if basis[r] == usize::MAX {
            basis[r] = std.slack_of_row[r].expect("row has slack or artificial");
        }
        in_basis[basis[r]] = true;
    }

    let mut tab = Tableau {
        a,
        m,
        ncols,
        basis,
        in_basis,
        binv: identity(m),
        xb: std.b.clone(),
        tol,
        iterations: 0,
    };

    // Phase 1: drive the artificials to zero.
    if !art_rows.is_empty() {
        let mut cost1 = vec![0.0; ncols];
        for c in cost1.iter_mut().skip(real_cols) {
            *c = 1.0;
        }
        match tab.run_phase(&cost1, ncols) {
            // min Σ artificials ≥ 0 over a cone containing the origin of
            // the artificial block: never unbounded.
            PhaseEnd::Unbounded => unreachable!("phase 1 objective is bounded below by 0"),
            PhaseEnd::Optimal => {}
        }
        let b_scale = 1.0 + std.b.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let infeas: f64 = (0..tab.m)
            .filter(|&i| tab.basis[i] >= real_cols)
            .map(|i| tab.xb[i])
            .sum();
        if infeas > tol * b_scale {
            return LpResult::Infeasible;
        }
        // Pivot surviving (degenerate) artificials out of the basis; a row
        // where no real column can enter is linearly dependent — drop it.
        let mut r = 0;
        let mut u = Vec::new();
        while r < tab.m {
            if tab.basis[r] < real_cols {
                r += 1;
                continue;
            }
            let mut replaced = false;
            for j in 0..real_cols {
                if tab.in_basis[j] {
                    continue;
                }
                tab.direction(j, &mut u);
                if u[r].abs() > tol {
                    tab.pivot(r, j, &u);
                    replaced = true;
                    break;
                }
            }
            if !replaced {
                tab.drop_row(r);
            } else {
                r += 1;
            }
        }
    }

    // Phase 2: the real objective; artificial columns may not re-enter.
    let mut cost2 = vec![0.0; ncols];
    cost2[..n].copy_from_slice(&lp.objective);
    match tab.run_phase(&cost2, real_cols) {
        PhaseEnd::Unbounded => LpResult::Unbounded,
        PhaseEnd::Optimal => {
            let mut x = vec![0.0; n];
            for (i, &bcol) in tab.basis.iter().enumerate() {
                if bcol < n {
                    x[bcol] = tab.xb[i];
                }
            }
            let value = lp
                .objective
                .iter()
                .zip(&x)
                .map(|(c, v)| c * v)
                .sum();
            LpResult::Optimal(Solution { x, value, iterations: tab.iterations })
        }
    }
}

fn identity(m: usize) -> Vec<f64> {
    let mut id = vec![0.0; m * m];
    for i in 0..m {
        id[i * m + i] = 1.0;
    }
    id
}

/// Brute-force optimum by basic-solution enumeration: solves every
/// `m × m` basis system of the standard form and keeps the best feasible
/// one. Exponential in the column count — the cross-check oracle for
/// property tests on *small* instances, never a production path.
///
/// Returns `None` when no feasible basic solution exists. The answer is
/// the true optimum only when the feasible region is bounded (vertex
/// optimality); generate test instances with explicit box constraints.
pub fn brute_force(lp: &Lp, tol: f64) -> Option<Solution> {
    let std = standard_form(lp);
    let (m, ncols, n) = (std.m, std.ncols, lp.n_vars());
    if m == 0 {
        return Some(Solution { x: vec![0.0; n], value: 0.0, iterations: 0 });
    }
    assert!(ncols <= 24, "brute force is for small test instances");
    let mut best: Option<Solution> = None;
    let mut cols: Vec<usize> = (0..m).collect();
    loop {
        // Solve B y = b for the current column subset.
        let w = 2 * m;
        let mut aug = vec![0.0; m * w];
        for i in 0..m {
            for (k, &c) in cols.iter().enumerate() {
                aug[i * w + k] = std.a[i * ncols + c];
            }
            aug[i * w + m + i] = 1.0;
        }
        if gauss_jordan(&mut aug, m) {
            let y: Vec<f64> = (0..m)
                .map(|i| (0..m).map(|k| aug[i * w + m + k] * std.b[k]).sum())
                .collect();
            if y.iter().all(|&v| v >= -tol) {
                let mut x = vec![0.0; n];
                for (k, &c) in cols.iter().enumerate() {
                    if c < n {
                        x[c] = y[k].max(0.0);
                    }
                }
                let value: f64 = lp.objective.iter().zip(&x).map(|(c, v)| c * v).sum();
                if best.as_ref().is_none_or(|b| value < b.value) {
                    best = Some(Solution { x, value, iterations: 0 });
                }
            }
        }
        // Next m-combination of 0..ncols in lexicographic order.
        let mut i = m;
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            if cols[i] < ncols - (m - i) {
                cols[i] += 1;
                for k in i + 1..m {
                    cols[k] = cols[k - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} !~ {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), 36.
        let mut lp = Lp::minimize(vec![-3.0, -5.0]);
        lp.le(vec![1.0, 0.0], 4.0);
        lp.le(vec![0.0, 2.0], 12.0);
        lp.le(vec![3.0, 2.0], 18.0);
        let s = solve(&lp);
        let s = s.optimal().expect("optimal");
        assert_close(s.value, -36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn ge_and_eq_rows_need_phase_one() {
        // min x + y s.t. x + y ≥ 2, x − y = 0 → (1, 1), 2.
        let mut lp = Lp::minimize(vec![1.0, 1.0]);
        lp.ge(vec![1.0, 1.0], 2.0);
        lp.eq(vec![1.0, -1.0], 0.0);
        let r = solve(&lp);
        let s = r.optimal().expect("optimal");
        assert_close(s.value, 2.0);
        assert_close(s.x[0], 1.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = Lp::minimize(vec![1.0]);
        lp.le(vec![1.0], 1.0);
        lp.ge(vec![1.0], 2.0);
        assert!(matches!(solve(&lp), LpResult::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        // min −x s.t. x ≥ 1: x grows forever.
        let mut lp = Lp::minimize(vec![-1.0]);
        lp.ge(vec![1.0], 1.0);
        assert!(matches!(solve(&lp), LpResult::Unbounded));
    }

    #[test]
    fn unconstrained_program() {
        let lp = Lp::minimize(vec![2.0, 0.0]);
        let s = solve(&lp);
        assert_close(s.optimal().expect("optimal").value, 0.0);
        assert!(matches!(solve(&Lp::minimize(vec![-1.0])), LpResult::Unbounded));
    }

    #[test]
    fn redundant_equality_rows_are_dropped() {
        // The duplicated row forces a dependent phase-1 basis.
        let mut lp = Lp::minimize(vec![1.0, 1.0]);
        lp.eq(vec![1.0, 1.0], 2.0);
        lp.eq(vec![2.0, 2.0], 4.0);
        lp.ge(vec![1.0, 0.0], 0.5);
        let r = solve(&lp);
        let s = r.optimal().expect("optimal");
        assert_close(s.value, 2.0);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // −x ≤ −3 ⇔ x ≥ 3.
        let mut lp = Lp::minimize(vec![1.0]);
        lp.le(vec![-1.0], -3.0);
        let r = solve(&lp);
        assert_close(r.optimal().expect("optimal").value, 3.0);
    }

    #[test]
    fn brute_force_agrees_on_a_polytope() {
        let mut lp = Lp::minimize(vec![-1.0, -2.0, 1.0]);
        lp.le(vec![1.0, 1.0, 1.0], 10.0);
        lp.le(vec![1.0, 0.0, 0.0], 4.0);
        lp.le(vec![0.0, 1.0, 0.0], 5.0);
        lp.le(vec![0.0, 0.0, 1.0], 6.0);
        let s = solve(&lp);
        let s = s.optimal().expect("optimal");
        let bf = brute_force(&lp, DEFAULT_TOL).expect("feasible");
        assert_close(s.value, bf.value);
    }
}
