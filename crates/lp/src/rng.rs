//! SplitMix64: the deterministic generator behind coalition sampling.
//!
//! Attribution re-solves the bound over *sampled* link coalitions, and the
//! samples must be reproducible from a seed alone — no `Date::now`, no
//! thread-local state. SplitMix64 is the standard seeding generator of the
//! xoshiro family: one 64-bit word of state, equidistributed output, and
//! trivially portable (Vigna, 2015).

/// A 64-bit SplitMix64 generator.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator. Every sequence is a pure function of the seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` from the high 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, n)`. `n` must be non-zero; the modulo bias is
    /// negligible for the small ranges sampling uses (`n` ≤ player count).
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "next_below(0)");
        self.next_u64() % n
    }

    /// In-place Fisher–Yates shuffle — the permutation sampler of the
    /// Shapley estimator.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn known_vector() {
        // Reference outputs of SplitMix64 seeded with 1234567 (checked
        // against the published C implementation).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(7);
        let mut xs: Vec<u32> = (0..20).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
        assert_ne!(xs, (0..20).collect::<Vec<u32>>(), "20 elements left in place");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
