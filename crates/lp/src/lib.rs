//! # xk-lp — a dependency-free LP kernel for bounds and valuations
//!
//! A small, dense, two-phase revised-simplex solver ([`solve`]) plus the
//! deterministic sampling RNG ([`SplitMix64`]) used by the Shapley-style
//! link-valuation layer. Two consumers live in `xk-runtime`:
//!
//! * the **makespan lower bound** (`xk_runtime::bound`) builds the
//!   link-capacity relaxation of a task graph on a fabric and asks this
//!   crate for its optimum;
//! * **per-link attribution** (`xk_runtime::attribution`) samples link
//!   coalitions with [`SplitMix64`] permutations.
//!
//! The solver is intentionally minimal — `f64`, Bland's rule, explicit
//! basis inverse — because every instance it sees is a few hundred rows.
//! Correctness is pinned two ways: a plain-test regression corpus of
//! known-optimum/degenerate/unbounded/infeasible instances (so offline CI
//! keeps coverage without proptest), and property tests cross-checking
//! random small LPs against [`brute_force`] vertex enumeration.

#![warn(missing_docs)]

pub mod rng;
pub mod simplex;

pub use rng::SplitMix64;
pub use simplex::{brute_force, solve, solve_with_tol, Cmp, Lp, LpResult, Solution, DEFAULT_TOL};
