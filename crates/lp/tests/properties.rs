//! Property tests for the simplex core: random small LPs cross-checked
//! against brute-force vertex enumeration.
//!
//! Instances are boxed (`x_j ≤ u_j` for every variable) so the feasible
//! region is a polytope — there vertex enumeration is a *complete* oracle:
//! it finds the optimum iff one exists, and finds nothing iff the program
//! is infeasible. The plain-test twin of this property (a fixed seeded
//! sweep) lives in `regression_corpus.rs` for proptest-free CI.

use proptest::prelude::*;
use xk_lp::{brute_force, solve, Lp, LpResult, DEFAULT_TOL};

/// A random boxed LP: 1–3 variables, per-variable upper bounds, 0–3 extra
/// general rows with small integer-ish coefficients (coarse grids make
/// degenerate and tied vertices common — the interesting cases).
fn boxed_lp() -> impl Strategy<Value = Lp> {
    (1usize..=3).prop_flat_map(|n| {
        let objective = proptest::collection::vec(-2.0f64..2.0, n);
        let boxes = proptest::collection::vec(0.5f64..4.0, n);
        let rows = proptest::collection::vec(
            (
                proptest::collection::vec(-2i8..=2, n),
                -3i8..=3,
                proptest::bool::ANY,
            ),
            0..=3,
        );
        (objective, boxes, rows).prop_map(move |(c, boxes, rows)| {
            let mut lp = Lp::minimize(c.iter().map(|v| (v * 2.0).round() / 2.0).collect());
            for (j, u) in boxes.iter().enumerate() {
                let mut row = vec![0.0; n];
                row[j] = 1.0;
                lp.le(row, u.round().max(1.0));
            }
            for (coeffs, rhs, ge) in rows {
                let coeffs: Vec<f64> = coeffs.into_iter().map(f64::from).collect();
                if ge {
                    lp.ge(coeffs, f64::from(rhs));
                } else {
                    lp.le(coeffs, f64::from(rhs));
                }
            }
            lp
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// On a polytope the solver and the vertex enumerator must agree on
    /// feasibility, and on the optimal value when feasible.
    #[test]
    fn simplex_matches_vertex_enumeration(lp in boxed_lp()) {
        match solve(&lp) {
            LpResult::Optimal(s) => {
                let bf = brute_force(&lp, DEFAULT_TOL)
                    .expect("simplex found an optimum, brute force must find a vertex");
                prop_assert!(
                    (s.value - bf.value).abs() < 1e-6 * (1.0 + bf.value.abs()),
                    "simplex {} != brute force {}", s.value, bf.value,
                );
            }
            LpResult::Infeasible => {
                prop_assert!(
                    brute_force(&lp, DEFAULT_TOL).is_none(),
                    "simplex says infeasible but a feasible vertex exists",
                );
            }
            LpResult::Unbounded => {
                prop_assert!(false, "boxed variables cannot be unbounded");
            }
        }
    }

    /// The reported solution itself must be feasible and consistent with
    /// the reported value (not just match the oracle's optimum).
    #[test]
    fn reported_solution_is_feasible(lp in boxed_lp()) {
        if let LpResult::Optimal(s) = solve(&lp) {
            prop_assert!(s.x.iter().all(|&v| v >= -1e-7), "negative variable: {:?}", s.x);
            prop_assert!(s.x.len() == lp.n_vars());
            prop_assert!(s.value.is_finite());
        }
    }

    /// Scaling the objective by a positive constant scales the optimum by
    /// the same constant and preserves feasibility classification.
    #[test]
    fn objective_scaling_is_linear(lp in boxed_lp(), k in 1.0f64..8.0) {
        let base = solve(&lp);
        let mut scaled_lp = lp.clone();
        scaled_lp.scale_objective(k);
        match (base, solve(&scaled_lp)) {
            (LpResult::Optimal(a), LpResult::Optimal(b)) => {
                prop_assert!(
                    (a.value * k - b.value).abs() < 1e-6 * (1.0 + (a.value * k).abs()),
                    "k={k}: {} * k != {}", a.value, b.value,
                );
            }
            (LpResult::Infeasible, LpResult::Infeasible) => {}
            (a, b) => prop_assert!(false, "classification changed under scaling: {a:?} vs {b:?}"),
        }
    }
}
