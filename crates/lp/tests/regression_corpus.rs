//! Plain-test regression corpus for the simplex core: known-optimum,
//! degenerate, unbounded-detected and infeasible-detected instances, plus
//! a deterministic seeded sweep cross-checked against brute-force vertex
//! enumeration. None of this depends on proptest, so the offline CI keeps
//! full solver coverage even where the proptest crate is unavailable.

use xk_lp::{brute_force, solve, Lp, LpResult, SplitMix64, DEFAULT_TOL};

fn optimal_value(lp: &Lp) -> f64 {
    match solve(lp) {
        LpResult::Optimal(s) => s.value,
        other => panic!("expected optimal, got {other:?}"),
    }
}

fn assert_close(a: f64, b: f64) {
    assert!((a - b).abs() < 1e-7, "{a} !~ {b}");
}

#[test]
fn klee_minty_3d_reaches_the_far_vertex() {
    // The classic worst case for greedy pivoting; Bland still terminates
    // at the optimum 2^3·... — for the 3-cube with base 5 the optimum is
    // x3 = 125 at (0, 0, 125).
    let mut lp = Lp::minimize(vec![-4.0, -2.0, -1.0]);
    lp.le(vec![1.0, 0.0, 0.0], 5.0);
    lp.le(vec![4.0, 1.0, 0.0], 25.0);
    lp.le(vec![8.0, 4.0, 1.0], 125.0);
    let s = solve(&lp);
    let s = s.optimal().expect("optimal");
    assert_close(s.value, -125.0);
}

#[test]
fn degenerate_vertex_does_not_cycle() {
    // Beale's cycling example (degenerate at the origin); Bland's rule
    // must terminate. min −0.75x1 + 150x2 − 0.02x3 + 6x4.
    let mut lp = Lp::minimize(vec![-0.75, 150.0, -0.02, 6.0]);
    lp.le(vec![0.25, -60.0, -0.04, 9.0], 0.0);
    lp.le(vec![0.5, -90.0, -0.02, 3.0], 0.0);
    lp.le(vec![0.0, 0.0, 1.0, 0.0], 1.0);
    let s = solve(&lp);
    let s = s.optimal().expect("optimal");
    assert_close(s.value, -0.05);
}

#[test]
fn transport_like_delivery_lp() {
    // The exact shape the makespan bound emits: per-handle delivery
    // fractions over two routes, a shared-engine load row, minimize the
    // bottleneck M. Two handles, each taking 2s on route A or 4s on
    // route B, route A shared: optimum splits to equalize at M = 8/3.
    let mut lp = Lp::minimize(vec![0.0, 0.0, 0.0, 0.0, 1.0]);
    lp.ge(vec![1.0, 1.0, 0.0, 0.0, 0.0], 1.0); // handle 1 delivered
    lp.ge(vec![0.0, 0.0, 1.0, 1.0, 0.0], 1.0); // handle 2 delivered
    lp.le(vec![2.0, 0.0, 2.0, 0.0, -1.0], 0.0); // route A engine
    lp.le(vec![0.0, 4.0, 0.0, 4.0, -1.0], 0.0); // route B engine
    assert_close(optimal_value(&lp), 8.0 / 3.0);
}

#[test]
fn unbounded_is_detected_not_looped() {
    // Feasible cone open along (1, 1).
    let mut lp = Lp::minimize(vec![-1.0, -1.0]);
    lp.ge(vec![1.0, -1.0], -1.0);
    lp.ge(vec![-1.0, 1.0], -1.0);
    assert!(matches!(solve(&lp), LpResult::Unbounded));
}

#[test]
fn infeasible_system_of_equalities() {
    let mut lp = Lp::minimize(vec![0.0, 0.0]);
    lp.eq(vec![1.0, 1.0], 1.0);
    lp.eq(vec![1.0, 1.0], 2.0);
    assert!(matches!(solve(&lp), LpResult::Infeasible));
}

#[test]
fn infeasible_despite_consistent_pairs() {
    // Pairwise satisfiable, jointly not: x ≤ 1, y ≤ 1, x + y ≥ 3.
    let mut lp = Lp::minimize(vec![1.0, 1.0]);
    lp.le(vec![1.0, 0.0], 1.0);
    lp.le(vec![0.0, 1.0], 1.0);
    lp.ge(vec![1.0, 1.0], 3.0);
    assert!(matches!(solve(&lp), LpResult::Infeasible));
}

#[test]
fn equality_only_system_solves_exactly() {
    // min x+y+z over x+y = 3, y+z = 5, x+z = 4 → (1, 2, 3), value 6.
    let mut lp = Lp::minimize(vec![1.0, 1.0, 1.0]);
    lp.eq(vec![1.0, 1.0, 0.0], 3.0);
    lp.eq(vec![0.0, 1.0, 1.0], 5.0);
    lp.eq(vec![1.0, 0.0, 1.0], 4.0);
    let r = solve(&lp);
    let s = r.optimal().expect("optimal");
    assert_close(s.value, 6.0);
    assert_close(s.x[0], 1.0);
    assert_close(s.x[1], 2.0);
    assert_close(s.x[2], 3.0);
}

#[test]
fn tiny_coefficient_spread_stays_within_tolerance() {
    // Second-scale makespans against 1e-2-scale transfer coefficients —
    // the numeric neighbourhood the bound builder produces.
    let mut lp = Lp::minimize(vec![0.0, 0.0, 1.0]);
    lp.ge(vec![1.0, 1.0, 0.0], 1.0);
    lp.le(vec![0.013, 0.0, -1.0], 0.0);
    lp.le(vec![0.0, 0.039, -1.0], 0.0);
    // Split 3:1 equalizes both engines at 0.75·0.013 = 0.009750.
    assert_close(optimal_value(&lp), 0.25 * 0.039);
}

/// Deterministic random sweep: 200 seeded small LPs (boxed, so the region
/// is a polytope and vertex enumeration is a complete oracle), simplex vs
/// brute force. This is the plain-test twin of the proptest property.
#[test]
fn seeded_sweep_matches_brute_force() {
    let mut rng = SplitMix64::new(0x5eed_cafe);
    let mut optima = 0usize;
    for case in 0..200 {
        let n = 1 + (rng.next_below(3)) as usize; // 1..=3 vars
        let extra = rng.next_below(3) as usize; // 0..=2 extra rows
        let mut c: Vec<f64> = (0..n).map(|_| rng.next_f64() * 4.0 - 2.0).collect();
        // Round to a coarse grid: degenerate/tied instances show up often.
        for v in &mut c {
            *v = (*v * 2.0).round() / 2.0;
        }
        let mut lp = Lp::minimize(c);
        for j in 0..n {
            let mut row = vec![0.0; n];
            row[j] = 1.0;
            lp.le(row, 1.0 + rng.next_below(4) as f64); // box: polytope
        }
        for _ in 0..extra {
            let row: Vec<f64> = (0..n)
                .map(|_| (rng.next_f64() * 4.0 - 2.0).round())
                .collect();
            let rhs = (rng.next_f64() * 6.0 - 3.0).round();
            if rng.next_below(2) == 0 {
                lp.le(row, rhs);
            } else {
                lp.ge(row, rhs);
            }
        }
        match solve(&lp) {
            LpResult::Optimal(s) => {
                let bf = brute_force(&lp, DEFAULT_TOL)
                    .unwrap_or_else(|| panic!("case {case}: simplex optimal, brute force infeasible"));
                assert!(
                    (s.value - bf.value).abs() < 1e-6 * (1.0 + bf.value.abs()),
                    "case {case}: simplex {} != brute force {}",
                    s.value,
                    bf.value,
                );
                optima += 1;
            }
            LpResult::Infeasible => {
                assert!(
                    brute_force(&lp, DEFAULT_TOL).is_none(),
                    "case {case}: simplex infeasible, brute force found a vertex",
                );
            }
            LpResult::Unbounded => {
                unreachable!("case {case}: boxed variables cannot be unbounded")
            }
        }
    }
    assert!(optima >= 100, "sweep degenerated: only {optima}/200 optimal instances");
}
