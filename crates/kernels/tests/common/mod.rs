//! Shared helpers for per-ISA integration testing.
//!
//! `XK_KERNEL_ISA` is process-global, and the dispatcher re-reads it on
//! every entry call, so tests that pin an ISA must hold [`isa_lock`] for
//! the duration of the pin — otherwise libtest's worker threads could
//! observe each other's half-finished sweeps. Tests that do *not* pin the
//! variable stay correct regardless (every supported ISA computes the same
//! results within tolerance); they just might run under whichever ISA a
//! concurrent sweep has pinned.
#![allow(dead_code)]

use std::env;
use std::sync::{Mutex, MutexGuard};

use xk_kernels::simd::supported_isas;
use xk_kernels::{selected_isa, Isa, ISA_ENV};

static ISA_LOCK: Mutex<()> = Mutex::new(());

/// Serialises access to the process-global `XK_KERNEL_ISA` variable.
/// Survives a poisoned lock (a panicking test must not cascade).
pub fn isa_lock() -> MutexGuard<'static, ()> {
    ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores the previous value of `XK_KERNEL_ISA` on drop, even if the
/// guarded closure panics, so one failing case cannot leave the process
/// pinned to a surprise ISA for every later test.
pub struct EnvRestore {
    saved: Option<String>,
}

impl EnvRestore {
    pub fn capture() -> Self {
        EnvRestore {
            saved: env::var(ISA_ENV).ok(),
        }
    }
}

impl Drop for EnvRestore {
    fn drop(&mut self) {
        match self.saved.take() {
            Some(v) => env::set_var(ISA_ENV, v),
            None => env::remove_var(ISA_ENV),
        }
    }
}

/// Runs `f` once per host-supported ISA (always at least `Isa::Scalar`)
/// with `XK_KERNEL_ISA` pinned to that ISA. Holds the global env lock for
/// the whole sweep and restores the previous value afterwards.
pub fn for_each_supported_isa(mut f: impl FnMut(Isa)) {
    let _guard = isa_lock();
    let _restore = EnvRestore::capture();
    for &isa in supported_isas() {
        env::set_var(ISA_ENV, isa.name());
        assert_eq!(
            selected_isa(),
            isa,
            "pinning {ISA_ENV}={} must select that ISA",
            isa.name()
        );
        f(isa);
    }
}
