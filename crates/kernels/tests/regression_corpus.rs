//! Pinned regression cases promoted from `kernels_vs_reference.proptest-regressions`.
//!
//! The proptest corpus file is only consulted when the property tests run
//! (which requires the `proptest` dev-dependency); these plain tests pin the
//! shrunken counterexamples permanently, with no framework required, so they
//! run in every build — including minimal offline ones.

use xk_kernels::aux::max_abs_diff;
use xk_kernels::reference as r;
use xk_kernels::{gemm, MatMut, MatRef, Trans};

const TOL: f64 = 1e-10;

/// Deterministic pseudo-random values, identical to the generator in
/// `kernels_vs_reference.rs` so corpus entries reproduce byte-for-byte.
fn det_vals(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

fn check_gemm(
    (m, n, k): (usize, usize, usize),
    ta: Trans,
    tb: Trans,
    alpha: f64,
    beta: f64,
    (seed_a, seed_b, seed_c): (u64, u64, u64),
) {
    let (am, an) = match ta {
        Trans::No => (m, k),
        Trans::Yes => (k, m),
    };
    let (bm, bn) = match tb {
        Trans::No => (k, n),
        Trans::Yes => (n, k),
    };
    let a = det_vals(am * an, seed_a);
    let b = det_vals(bm * bn, seed_b);
    let c0 = det_vals(m * n, seed_c);
    let ar = MatRef::from_slice(&a, am, an, am.max(1));
    let br = MatRef::from_slice(&b, bm, bn, bm.max(1));
    let want = r::ref_gemm(ta, tb, alpha, ar, br, beta, MatRef::from_slice(&c0, m, n, m));
    let mut c = c0.clone();
    gemm(ta, tb, alpha, ar, br, beta, MatMut::from_slice(&mut c, m, n, m));
    let d = max_abs_diff(MatRef::from_slice(&c, m, n, m), want.view());
    assert!(d < TOL, "diff {d}");
}

/// Corpus entry `8f8993…`: the fully-degenerate GEMM — `k = 0` with
/// `alpha = beta = 0` must still write (zero) into C, not leave stale
/// values or read out-of-bounds from the empty A/B panels.
#[test]
fn gemm_corpus_k0_alpha0_beta0() {
    check_gemm((1, 1, 0), Trans::No, Trans::No, 0.0, 0.0, (0, 0, 0));
}

/// The same degenerate shape across all transpose variants; `k = 0` with a
/// transpose produces 0-row storage, the other boundary the shrunken case
/// sits next to.
#[test]
fn gemm_corpus_k0_all_transposes() {
    for ta in [Trans::No, Trans::Yes] {
        for tb in [Trans::No, Trans::Yes] {
            check_gemm((1, 1, 0), ta, tb, 0.0, 0.0, (0, 0, 0));
            check_gemm((3, 2, 0), ta, tb, 0.0, 1.5, (7, 8, 9));
        }
    }
}

/// `beta` scaling with an empty inner dimension: C must become `beta * C`
/// exactly (no `alpha * A * B` contribution exists).
#[test]
fn gemm_corpus_k0_beta_scales_c() {
    let c0 = det_vals(6, 42);
    let a: Vec<f64> = Vec::new();
    let b: Vec<f64> = Vec::new();
    let ar = MatRef::from_slice(&a, 2, 0, 2);
    let br = MatRef::from_slice(&b, 0, 3, 1);
    let mut c = c0.clone();
    gemm(
        Trans::No,
        Trans::No,
        1.0,
        ar,
        br,
        -0.5,
        MatMut::from_slice(&mut c, 2, 3, 2),
    );
    for (got, orig) in c.iter().zip(&c0) {
        assert!((got - (-0.5 * orig)).abs() < TOL);
    }
}
