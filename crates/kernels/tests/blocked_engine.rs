//! Deterministic grid validation of the blocked GEMM engine and every
//! routine routed through it, at sizes that cross the blocking boundaries
//! (`MR`/`NR` register tiles, `TB` triangular blocks, `MC`/`KC` cache
//! blocks) — the shapes proptest's small sizes cannot reach.

mod common;

use xk_kernels::aux::{max_abs_diff, max_abs_diff_tri};
use xk_kernels::parallel::{par_gemm, par_gemm_naive};
use xk_kernels::reference as r;
use xk_kernels::{
    gemm, kernel_shape, symm, syr2k, syrk, trmm, trsm, Diag, MatMut, MatRef, Side, Trans, Uplo,
    MR, NR, TB,
};

const TOL: f64 = 1e-9;

/// Deterministic pseudo-random values in [-1, 1) (xorshift).
fn det_vals(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

#[test]
fn gemm_grid_all_trans_boundary_shapes_every_isa() {
    // The grid runs once per host-supported ISA, with the boundary shapes
    // derived from *that* kernel's dispatched register tile and cache
    // blocks (they differ per ISA: e.g. AVX-512 uses an 8x8 tile with
    // MC=256 where scalar uses 8x4 with MC=128).
    common::for_each_supported_isa(|isa| {
        let s = kernel_shape::<f64>(isa);
        // Shapes straddling the register tile, the cache blocks, and fringes.
        let shapes = [
            (1, 1, 1),
            (s.mr, s.nr, 8),
            (s.mr + 1, s.nr + 1, 7),
            (s.mc, s.nr, s.kc),
            (s.mc + 1, 2 * s.nr + 3, s.kc + 1),
            (s.mc - 1, 67, s.kc - 1),
            (130, 132, 64),
        ];
        let scales = [(1.0, 0.0), (0.75, 1.0), (1.0, -0.5), (0.0, 2.0)];
        gemm_grid(isa, &shapes, &scales);
    });
}

/// Checks `gemm` against the naive reference for every transpose pair over
/// a shape/scale grid, under whichever ISA is currently selected.
fn gemm_grid(
    isa: xk_kernels::Isa,
    shapes: &[(usize, usize, usize)],
    scales: &[(f64, f64)],
) {
    for &(m, n, k) in shapes {
        for ta in [Trans::No, Trans::Yes] {
            for tb in [Trans::No, Trans::Yes] {
                for &(alpha, beta) in scales {
                    let (am, an) = match ta {
                        Trans::No => (m, k),
                        Trans::Yes => (k, m),
                    };
                    let (bm, bn) = match tb {
                        Trans::No => (k, n),
                        Trans::Yes => (n, k),
                    };
                    let a = det_vals(am * an, 1 + m as u64);
                    let b = det_vals(bm * bn, 2 + n as u64);
                    let c0 = det_vals(m * n, 3 + k as u64);
                    let ar = MatRef::from_slice(&a, am, an, am);
                    let br = MatRef::from_slice(&b, bm, bn, bm);
                    let want =
                        r::ref_gemm(ta, tb, alpha, ar, br, beta, MatRef::from_slice(&c0, m, n, m));
                    let mut c = c0.clone();
                    gemm(ta, tb, alpha, ar, br, beta, MatMut::from_slice(&mut c, m, n, m));
                    let d = max_abs_diff(MatRef::from_slice(&c, m, n, m), want.view());
                    assert!(
                        d < TOL,
                        "gemm[{isa}] {m}x{n}x{k} {ta:?}/{tb:?} a={alpha} b={beta}: diff {d}"
                    );
                }
            }
        }
    }
}

#[test]
fn routines_beyond_gemm_every_isa() {
    // A compact symm/syrk/syr2k/trmm/trsm sweep per supported ISA: all six
    // routines route their bulk updates through the one dispatched engine,
    // so each must hold under each kernel, not just under the default.
    let (m, n) = (TB + 13, TB + 5);
    common::for_each_supported_isa(|isa| {
        let a = det_vals(m * m, 91);
        let b = det_vals(m * n, 92);
        let c0 = det_vals(m * n, 93);
        let ar = MatRef::from_slice(&a, m, m, m);
        let br = MatRef::from_slice(&b, m, n, m);

        // symm (Left/Lower)
        let want = r::ref_symm(Side::Left, Uplo::Lower, 0.75, ar, br, -0.5,
            MatRef::from_slice(&c0, m, n, m));
        let mut c = c0.clone();
        symm(Side::Left, Uplo::Lower, 0.75, ar, br, -0.5, MatMut::from_slice(&mut c, m, n, m));
        let d = max_abs_diff(MatRef::from_slice(&c, m, n, m), want.view());
        assert!(d < TOL, "symm[{isa}]: diff {d}");

        // syrk / syr2k (Lower, No)
        let cs0 = det_vals(m * m, 94);
        let want = r::ref_syrk(Trans::No, 0.75, br, -0.5, MatRef::from_slice(&cs0, m, m, m));
        let mut cs = cs0.clone();
        syrk(Uplo::Lower, Trans::No, 0.75, br, -0.5, MatMut::from_slice(&mut cs, m, m, m));
        let d = max_abs_diff_tri(Uplo::Lower, MatRef::from_slice(&cs, m, m, m), want.view());
        assert!(d < TOL, "syrk[{isa}]: diff {d}");

        let b2 = det_vals(m * n, 95);
        let b2r = MatRef::from_slice(&b2, m, n, m);
        let want = r::ref_syr2k(Trans::No, 0.75, br, b2r, -0.5, MatRef::from_slice(&cs0, m, m, m));
        let mut cs = cs0.clone();
        syr2k(Uplo::Lower, Trans::No, 0.75, br, b2r, -0.5, MatMut::from_slice(&mut cs, m, m, m));
        let d = max_abs_diff_tri(Uplo::Lower, MatRef::from_slice(&cs, m, m, m), want.view());
        assert!(d < TOL, "syr2k[{isa}]: diff {d}");

        // trmm / trsm round-trip (Left/Lower/No/NonUnit)
        let mut tri = det_vals(m * m, 96);
        for i in 0..m {
            tri[i + i * m] = 4.0 + tri[i + i * m].abs();
        }
        let trir = MatRef::from_slice(&tri, m, m, m);
        let mut x = b.clone();
        trmm(Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, 2.0, trir,
            MatMut::from_slice(&mut x, m, n, m));
        trsm(Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, 0.5, trir,
            MatMut::from_slice(&mut x, m, n, m));
        let d = max_abs_diff(MatRef::from_slice(&x, m, n, m), br);
        assert!(d < 1e-8, "trmm/trsm[{isa}] round-trip: diff {d}");
    });
}

#[test]
fn gemm_strided_c_view() {
    // C with ld > m: the store path must respect the leading dimension.
    let (m, n, k, ld) = (37, 29, 41, 50);
    let a = det_vals(m * k, 5);
    let b = det_vals(k * n, 6);
    let mut c = det_vals(ld * n, 7);
    let c0 = c.clone();
    let want = r::ref_gemm(
        Trans::No,
        Trans::No,
        1.25,
        MatRef::from_slice(&a, m, k, m),
        MatRef::from_slice(&b, k, n, k),
        0.5,
        MatRef::from_slice(&c0, m, n, ld),
    );
    gemm(
        Trans::No,
        Trans::No,
        1.25,
        MatRef::from_slice(&a, m, k, m),
        MatRef::from_slice(&b, k, n, k),
        0.5,
        MatMut::from_slice(&mut c, m, n, ld),
    );
    let d = max_abs_diff(MatRef::from_slice(&c, m, n, ld), want.view());
    assert!(d < TOL, "strided diff {d}");
    // Padding rows between columns must be untouched.
    for j in 0..n {
        for i in m..ld {
            assert_eq!(c[i + j * ld], c0[i + j * ld], "padding clobbered at ({i},{j})");
        }
    }
}

#[test]
fn symm_crosses_tb_blocks() {
    let (m, n) = (TB + 33, TB + 5);
    for side in [Side::Left, Side::Right] {
        for uplo in [Uplo::Lower, Uplo::Upper] {
            let na = match side {
                Side::Left => m,
                Side::Right => n,
            };
            let a = det_vals(na * na, 11);
            let b = det_vals(m * n, 12);
            let c0 = det_vals(m * n, 13);
            let ar = MatRef::from_slice(&a, na, na, na);
            let br = MatRef::from_slice(&b, m, n, m);
            let want =
                r::ref_symm(side, uplo, 0.75, ar, br, -0.5, MatRef::from_slice(&c0, m, n, m));
            let mut c = c0.clone();
            symm(side, uplo, 0.75, ar, br, -0.5, MatMut::from_slice(&mut c, m, n, m));
            let d = max_abs_diff(MatRef::from_slice(&c, m, n, m), want.view());
            assert!(d < TOL, "symm {side:?}/{uplo:?}: diff {d}");
        }
    }
}

#[test]
fn syrk_syr2k_cross_tb_blocks() {
    let (n, k) = (TB + 33, 70);
    for uplo in [Uplo::Lower, Uplo::Upper] {
        for trans in [Trans::No, Trans::Yes] {
            let (am, an) = match trans {
                Trans::No => (n, k),
                Trans::Yes => (k, n),
            };
            let a = det_vals(am * an, 21);
            let b = det_vals(am * an, 22);
            let c0 = det_vals(n * n, 23);
            let ar = MatRef::from_slice(&a, am, an, am);
            let br = MatRef::from_slice(&b, am, an, am);

            let want = r::ref_syrk(trans, 0.75, ar, -0.5, MatRef::from_slice(&c0, n, n, n));
            let mut c = c0.clone();
            syrk(uplo, trans, 0.75, ar, -0.5, MatMut::from_slice(&mut c, n, n, n));
            let cr = MatRef::from_slice(&c, n, n, n);
            assert!(
                max_abs_diff_tri(uplo, cr, want.view()) < TOL,
                "syrk {uplo:?}/{trans:?} triangle mismatch"
            );
            assert_opposite_untouched(uplo, cr, MatRef::from_slice(&c0, n, n, n));

            let want2 =
                r::ref_syr2k(trans, 0.75, ar, br, -0.5, MatRef::from_slice(&c0, n, n, n));
            let mut c2 = c0.clone();
            syr2k(uplo, trans, 0.75, ar, br, -0.5, MatMut::from_slice(&mut c2, n, n, n));
            let c2r = MatRef::from_slice(&c2, n, n, n);
            assert!(
                max_abs_diff_tri(uplo, c2r, want2.view()) < TOL,
                "syr2k {uplo:?}/{trans:?} triangle mismatch"
            );
            assert_opposite_untouched(uplo, c2r, MatRef::from_slice(&c0, n, n, n));
        }
    }
}

#[test]
fn trmm_all_16_variants_cross_tb_blocks() {
    let (m, n) = (TB + 41, TB + 9);
    for side in [Side::Left, Side::Right] {
        for uplo in [Uplo::Lower, Uplo::Upper] {
            for trans in [Trans::No, Trans::Yes] {
                for diag in [Diag::NonUnit, Diag::Unit] {
                    let na = match side {
                        Side::Left => m,
                        Side::Right => n,
                    };
                    let a = det_vals(na * na, 31);
                    let b0 = det_vals(m * n, 32);
                    let ar = MatRef::from_slice(&a, na, na, na);
                    let want = r::ref_trmm(
                        side,
                        uplo,
                        trans,
                        diag,
                        1.5,
                        ar,
                        MatRef::from_slice(&b0, m, n, m),
                    );
                    let mut b = b0.clone();
                    trmm(side, uplo, trans, diag, 1.5, ar, MatMut::from_slice(&mut b, m, n, m));
                    let d = max_abs_diff(MatRef::from_slice(&b, m, n, m), want.view());
                    assert!(d < TOL, "trmm {side:?}/{uplo:?}/{trans:?}/{diag:?}: diff {d}");
                }
            }
        }
    }
}

#[test]
fn trsm_all_16_variants_cross_tb_blocks() {
    let (m, n) = (TB + 41, TB + 9);
    for side in [Side::Left, Side::Right] {
        for uplo in [Uplo::Lower, Uplo::Upper] {
            for trans in [Trans::No, Trans::Yes] {
                for diag in [Diag::NonUnit, Diag::Unit] {
                    let na = match side {
                        Side::Left => m,
                        Side::Right => n,
                    };
                    let mut a = det_vals(na * na, 41);
                    for i in 0..na {
                        a[i + i * na] = 4.0 + a[i + i * na].abs();
                    }
                    let b0 = det_vals(m * n, 42);
                    let ar = MatRef::from_slice(&a, na, na, na);
                    let mut x = b0.clone();
                    trsm(side, uplo, trans, diag, 0.5, ar, MatMut::from_slice(&mut x, m, n, m));
                    let res = r::trsm_residual(
                        side,
                        uplo,
                        trans,
                        diag,
                        0.5,
                        ar,
                        MatRef::from_slice(&x, m, n, m),
                        MatRef::from_slice(&b0, m, n, m),
                    );
                    assert!(
                        res < 1e-8,
                        "trsm {side:?}/{uplo:?}/{trans:?}/{diag:?}: residual {res}"
                    );
                }
            }
        }
    }
}

#[test]
fn trsm_inverts_trmm_at_blocked_sizes() {
    // Round-trip across the blocked paths of both routines.
    let n = TB + 17;
    let mut a = det_vals(n * n, 51);
    for i in 0..n {
        a[i + i * n] = 4.0 + a[i + i * n].abs();
    }
    let b0 = det_vals(n * n, 52);
    for side in [Side::Left, Side::Right] {
        for uplo in [Uplo::Lower, Uplo::Upper] {
            for trans in [Trans::No, Trans::Yes] {
                let mut b = b0.clone();
                trmm(
                    side,
                    uplo,
                    trans,
                    Diag::NonUnit,
                    2.0,
                    MatRef::from_slice(&a, n, n, n),
                    MatMut::from_slice(&mut b, n, n, n),
                );
                trsm(
                    side,
                    uplo,
                    trans,
                    Diag::NonUnit,
                    0.5,
                    MatRef::from_slice(&a, n, n, n),
                    MatMut::from_slice(&mut b, n, n, n),
                );
                let d = max_abs_diff(
                    MatRef::from_slice(&b, n, n, n),
                    MatRef::from_slice(&b0, n, n, n),
                );
                assert!(d < 1e-8, "round-trip {side:?}/{uplo:?}/{trans:?}: diff {d}");
            }
        }
    }
}

#[test]
fn par_gemm_shapes_match_reference() {
    // Wide (column split), tall (row split), and balanced shapes.
    for &(m, n, k) in &[(33, 400, 50), (400, 33, 50), (150, 150, 75), (MR * 3, NR * 3, 16)] {
        let a = det_vals(m * k, 61);
        let b = det_vals(k * n, 62);
        let c0 = det_vals(m * n, 63);
        let want = r::ref_gemm(
            Trans::No,
            Trans::No,
            0.75,
            MatRef::from_slice(&a, m, k, m),
            MatRef::from_slice(&b, k, n, k),
            -0.5,
            MatRef::from_slice(&c0, m, n, m),
        );
        let mut c_new = c0.clone();
        par_gemm(
            Trans::No,
            Trans::No,
            0.75,
            MatRef::from_slice(&a, m, k, m),
            MatRef::from_slice(&b, k, n, k),
            -0.5,
            MatMut::from_slice(&mut c_new, m, n, m),
        );
        let mut c_old = c0.clone();
        par_gemm_naive(
            Trans::No,
            Trans::No,
            0.75,
            MatRef::from_slice(&a, m, k, m),
            MatRef::from_slice(&b, k, n, k),
            -0.5,
            MatMut::from_slice(&mut c_old, m, n, m),
        );
        let dn = max_abs_diff(MatRef::from_slice(&c_new, m, n, m), want.view());
        let do_ = max_abs_diff(MatRef::from_slice(&c_old, m, n, m), want.view());
        assert!(dn < TOL, "par_gemm {m}x{n}x{k}: diff {dn}");
        assert!(do_ < TOL, "par_gemm_naive {m}x{n}x{k}: diff {do_}");
    }
}

#[test]
fn degenerate_inputs() {
    // k = 0 and alpha = 0 must reduce to pure beta scaling; beta = 1 must
    // leave C exactly intact (the skip-scale fast path).
    let (m, n) = (70, 40);
    let c0 = det_vals(m * n, 71);
    let a = det_vals(m * 8, 72);
    let b = det_vals(8 * n, 73);

    // k = 0, beta = 1: C unchanged, bit-exact.
    let mut c = c0.clone();
    let empty: Vec<f64> = vec![];
    gemm(
        Trans::No,
        Trans::No,
        2.0,
        MatRef::from_slice(&empty, m, 0, m),
        MatRef::from_slice(&empty, 0, n, 1),
        1.0,
        MatMut::from_slice(&mut c, m, n, m),
    );
    assert_eq!(c, c0, "k=0, beta=1 must be an exact no-op");

    // alpha = 0, beta = 0: C zeroed even if it held NaN.
    let mut c = vec![f64::NAN; m * n];
    gemm(
        Trans::No,
        Trans::No,
        0.0,
        MatRef::from_slice(&a, m, 8, m),
        MatRef::from_slice(&b, 8, n, 8),
        0.0,
        MatMut::from_slice(&mut c, m, n, m),
    );
    assert!(c.iter().all(|&x| x == 0.0), "alpha=0, beta=0 must zero C");

    // beta = 1 with real accumulation: matches reference.
    let mut c = c0.clone();
    let want = r::ref_gemm(
        Trans::No,
        Trans::No,
        1.0,
        MatRef::from_slice(&a, m, 8, m),
        MatRef::from_slice(&b, 8, n, 8),
        1.0,
        MatRef::from_slice(&c0, m, n, m),
    );
    gemm(
        Trans::No,
        Trans::No,
        1.0,
        MatRef::from_slice(&a, m, 8, m),
        MatRef::from_slice(&b, 8, n, 8),
        1.0,
        MatMut::from_slice(&mut c, m, n, m),
    );
    let d = max_abs_diff(MatRef::from_slice(&c, m, n, m), want.view());
    assert!(d < TOL, "beta=1 accumulate: diff {d}");
}

/// Panics unless the strict triangle opposite `uplo` of `c` equals `c0`.
fn assert_opposite_untouched(uplo: Uplo, c: MatRef<'_, f64>, c0: MatRef<'_, f64>) {
    let n = c.nrows();
    for j in 0..n {
        for i in 0..n {
            let strict_opposite = match uplo {
                Uplo::Lower => i < j,
                Uplo::Upper => i > j,
            };
            if strict_opposite {
                assert_eq!(c.at(i, j), c0.at(i, j), "opposite triangle touched at ({i},{j})");
            }
        }
    }
}
