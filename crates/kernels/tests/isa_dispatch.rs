//! Runtime ISA dispatch semantics, the scalar bit-for-bit contract, and the
//! cross-ISA numerical agreement contract.
//!
//! # Tolerance contract (see DESIGN.md §6d)
//!
//! The SIMD microkernels accumulate each `C` element in the same depth
//! order as the scalar kernel but with fused multiply-add, which rounds
//! once per step where the scalar kernel rounds twice. Per element the
//! kernels must therefore agree with the scalar-blocked oracle to within
//!
//! * `MAX_ULPS` = 256 ULPs, **or**
//! * `ABS_FLOOR` = 1e-12 absolute difference
//!
//! whichever is looser. The absolute floor covers catastrophic-cancellation
//! elements (results near zero, where one ULP is vanishingly small and a
//! harmless `k * eps`-scale difference spans many ULPs).
//!
//! `XK_KERNEL_ISA=scalar` is stricter: it must reproduce the pre-dispatch
//! blocked engine (PR 2) *bit for bit*, which the oracle replica below
//! pins permanently.

mod common;

use std::panic::{self, AssertUnwindSafe};

use xk_kernels::aux::ulp_distance;
use xk_kernels::simd::supported_isas;
use xk_kernels::{
    detected_isa, gemm, kernel_shape, selected_isa, Isa, MatMut, MatRef, Trans, ISA_ENV,
};

const MAX_ULPS: u64 = 256;
const ABS_FLOOR: f64 = 1e-12;

/// Deterministic pseudo-random values in [-1, 1) (xorshift), identical to
/// the generator in the sibling suites.
fn det_vals(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

// ---------------------------------------------------------------------------
// PR 2 oracle: a verbatim replica of the blocked engine as it stood before
// the microkernel trait existed (MR=8, NR=4, MC=128, KC=256, NC=2048,
// autovectorized accumulate + clipped store). `XK_KERNEL_ISA=scalar` must
// reproduce this bit for bit — it is both the portable fallback and the
// differential baseline every SIMD kernel is judged against.
// ---------------------------------------------------------------------------
mod pr2_oracle {
    use xk_kernels::MatMut;

    pub const MR: usize = 8;
    pub const NR: usize = 4;
    pub const MC: usize = 128;
    pub const KC: usize = 256;
    pub const NC: usize = 2048;

    fn pack_a(
        buf: &mut [f64],
        oa: &impl Fn(usize, usize) -> f64,
        ic: usize,
        mc: usize,
        pc: usize,
        kc: usize,
    ) {
        for ip in 0..mc.div_ceil(MR) {
            let base = ip * kc * MR;
            let i0 = ic + ip * MR;
            let rows = MR.min(mc - ip * MR);
            for p in 0..kc {
                let dst = &mut buf[base + p * MR..base + (p + 1) * MR];
                for (r, d) in dst.iter_mut().take(rows).enumerate() {
                    *d = oa(i0 + r, pc + p);
                }
                for d in dst.iter_mut().skip(rows) {
                    *d = 0.0;
                }
            }
        }
    }

    fn pack_b(
        buf: &mut [f64],
        ob: &impl Fn(usize, usize) -> f64,
        pc: usize,
        kc: usize,
        jc: usize,
        nc: usize,
    ) {
        for jp in 0..nc.div_ceil(NR) {
            let base = jp * kc * NR;
            let j0 = jc + jp * NR;
            let cols = NR.min(nc - jp * NR);
            for p in 0..kc {
                let dst = &mut buf[base + p * NR..base + (p + 1) * NR];
                for (c, d) in dst.iter_mut().take(cols).enumerate() {
                    *d = ob(pc + p, j0 + c);
                }
                for d in dst.iter_mut().skip(cols) {
                    *d = 0.0;
                }
            }
        }
    }

    #[inline]
    fn micro_tile(kc: usize, pa: &[f64], pb: &[f64]) -> [f64; MR * NR] {
        let mut acc = [0.0; MR * NR];
        for p in 0..kc {
            let a: &[f64; MR] = pa[p * MR..(p + 1) * MR].try_into().unwrap();
            let b: &[f64; NR] = pb[p * NR..(p + 1) * NR].try_into().unwrap();
            for (c, &bv) in b.iter().enumerate() {
                for (r, &av) in a.iter().enumerate() {
                    acc[c * MR + r] += av * bv;
                }
            }
        }
        acc
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn store_tile(
        acc: &[f64; MR * NR],
        alpha: f64,
        beta: f64,
        c: &mut MatMut<'_, f64>,
        i0: usize,
        j0: usize,
        mr: usize,
        nr: usize,
    ) {
        for cc in 0..nr {
            if beta == 0.0 {
                for r in 0..mr {
                    c.set(i0 + r, j0 + cc, alpha * acc[cc * MR + r]);
                }
            } else if beta == 1.0 {
                for r in 0..mr {
                    c.update(i0 + r, j0 + cc, |v| v + alpha * acc[cc * MR + r]);
                }
            } else {
                for r in 0..mr {
                    c.update(i0 + r, j0 + cc, |v| beta * v + alpha * acc[cc * MR + r]);
                }
            }
        }
    }

    /// The PR 2 `gemm_with` loop nest, verbatim (alpha != 0, k > 0 path).
    pub fn gemm_with(
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        oa: impl Fn(usize, usize) -> f64,
        ob: impl Fn(usize, usize) -> f64,
        beta: f64,
        mut c: MatMut<'_, f64>,
    ) {
        assert!(alpha != 0.0 && k > 0, "oracle covers the engine path only");
        let kc_max = KC.min(k);
        let a_elems = MC.min(m).div_ceil(MR) * MR * kc_max;
        let b_elems = NC.min(n).div_ceil(NR) * NR * kc_max;
        let mut pa = vec![0.0; a_elems];
        let mut pb = vec![0.0; b_elems];
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                let beta_eff = if pc == 0 { beta } else { 1.0 };
                pack_b(&mut pb, &ob, pc, kc, jc, nc);
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    pack_a(&mut pa, &oa, ic, mc, pc, kc);
                    for jr in (0..nc).step_by(NR) {
                        let nr = NR.min(nc - jr);
                        let pb_panel = &pb[(jr / NR) * kc * NR..][..kc * NR];
                        for ir in (0..mc).step_by(MR) {
                            let mr = MR.min(mc - ir);
                            let pa_panel = &pa[(ir / MR) * kc * MR..][..kc * MR];
                            let acc = micro_tile(kc, pa_panel, pb_panel);
                            store_tile(&acc, alpha, beta_eff, &mut c, ic + ir, jc + jr, mr, nr);
                        }
                    }
                }
            }
        }
    }
}

/// `XK_KERNEL_ISA=scalar` reproduces the PR 2 engine bit for bit: the
/// trait refactor moved the scalar kernel behind `MicroKernel` but must not
/// have changed a single rounding.
#[test]
fn scalar_pin_is_bit_for_bit_pr2() {
    let shapes = [
        (1usize, 1usize, 1usize),
        (8, 4, 8),
        (9, 5, 7),
        (64, 64, 64),
        (129, 67, 300), // crosses MC=128 and KC=256
        (130, 132, 64),
    ];
    let scales = [(1.0, 0.0), (0.75, 1.0), (1.25, -0.5)];
    let _guard = common::isa_lock();
    let _restore = common::EnvRestore::capture();
    std::env::set_var(ISA_ENV, "scalar");
    for &(m, n, k) in &shapes {
        for trans in [Trans::No, Trans::Yes] {
            for &(alpha, beta) in &scales {
                let (am, an) = match trans {
                    Trans::No => (m, k),
                    Trans::Yes => (k, m),
                };
                let (bm, bn) = match trans {
                    Trans::No => (k, n),
                    Trans::Yes => (n, k),
                };
                let a = det_vals(am * an, 1 + m as u64);
                let b = det_vals(bm * bn, 2 + n as u64);
                let c0 = det_vals(m * n, 3 + k as u64);
                let ar = MatRef::from_slice(&a, am, an, am);
                let br = MatRef::from_slice(&b, bm, bn, bm);

                let mut want = c0.clone();
                match trans {
                    Trans::No => pr2_oracle::gemm_with(
                        m,
                        n,
                        k,
                        alpha,
                        |i, p| ar.at(i, p),
                        |p, j| br.at(p, j),
                        beta,
                        MatMut::from_slice(&mut want, m, n, m),
                    ),
                    Trans::Yes => pr2_oracle::gemm_with(
                        m,
                        n,
                        k,
                        alpha,
                        |i, p| ar.at(p, i),
                        |p, j| br.at(j, p),
                        beta,
                        MatMut::from_slice(&mut want, m, n, m),
                    ),
                }

                let mut c = c0.clone();
                gemm(trans, trans, alpha, ar, br, beta, MatMut::from_slice(&mut c, m, n, m));
                for (idx, (&got, &exp)) in c.iter().zip(&want).enumerate() {
                    assert!(
                        got.to_bits() == exp.to_bits(),
                        "scalar pin not bit-exact at flat index {idx} \
                         ({m}x{n}x{k} {trans:?} a={alpha} b={beta}): \
                         got {got:?} ({:#x}), oracle {exp:?} ({:#x})",
                        got.to_bits(),
                        exp.to_bits()
                    );
                }
            }
        }
    }
}

/// Every host-supported SIMD ISA agrees with the scalar-blocked baseline
/// within the documented ULP/absolute tolerance, on shapes that cross each
/// kernel's own cache-block boundaries.
#[test]
fn simd_isas_match_scalar_within_tolerance() {
    let shapes = [
        (61usize, 37usize, 41usize),
        (129, 67, 300),  // crosses every kernel's KC=256
        (257, 19, 64),   // crosses the widest MC (avx512 uses MC=256)
        (64, 64, 64),
    ];
    let scales = [(1.0, 0.0), (0.75, 1.0), (1.25, -0.5)];
    common::for_each_supported_isa(|isa| {
        if isa == Isa::Scalar {
            return; // the baseline itself
        }
        for &(m, n, k) in &shapes {
            for &(alpha, beta) in &scales {
                let a = det_vals(m * k, 81 + m as u64);
                let b = det_vals(k * n, 82 + n as u64);
                let c0 = det_vals(m * n, 83 + k as u64);
                let ar = MatRef::from_slice(&a, m, k, m);
                let br = MatRef::from_slice(&b, k, n, k);

                let mut c_simd = c0.clone();
                gemm(
                    Trans::No,
                    Trans::No,
                    alpha,
                    ar,
                    br,
                    beta,
                    MatMut::from_slice(&mut c_simd, m, n, m),
                );
                // The sweep holds the env lock, so repin inside it.
                std::env::set_var(ISA_ENV, "scalar");
                let mut c_scalar = c0.clone();
                gemm(
                    Trans::No,
                    Trans::No,
                    alpha,
                    ar,
                    br,
                    beta,
                    MatMut::from_slice(&mut c_scalar, m, n, m),
                );
                std::env::set_var(ISA_ENV, isa.name());

                for (idx, (&x, &y)) in c_simd.iter().zip(&c_scalar).enumerate() {
                    let ulps = ulp_distance(x, y);
                    let abs = (x - y).abs();
                    assert!(
                        ulps <= MAX_ULPS || abs <= ABS_FLOOR,
                        "{isa} vs scalar at flat index {idx} \
                         ({m}x{n}x{k} a={alpha} b={beta}): {ulps} ULPs, abs {abs:e}"
                    );
                }
            }
        }
    });
}

/// Selection semantics: unset/empty/`auto` follow detection, `scalar`
/// always pins, a valid-but-unsupported name falls back to scalar (never a
/// *different* SIMD kernel — pinned CI legs must stay pinned), and garbage
/// panics loudly.
#[test]
fn env_selection_semantics() {
    let _guard = common::isa_lock();
    let _restore = common::EnvRestore::capture();

    std::env::remove_var(ISA_ENV);
    assert_eq!(selected_isa(), detected_isa(), "unset follows detection");
    std::env::set_var(ISA_ENV, "auto");
    assert_eq!(selected_isa(), detected_isa(), "auto follows detection");
    std::env::set_var(ISA_ENV, "");
    assert_eq!(selected_isa(), detected_isa(), "empty follows detection");

    std::env::set_var(ISA_ENV, "scalar");
    assert_eq!(selected_isa(), Isa::Scalar, "scalar always pins");

    for isa in Isa::ALL {
        if supported_isas().contains(&isa) {
            continue;
        }
        std::env::set_var(ISA_ENV, isa.name());
        assert_eq!(
            selected_isa(),
            Isa::Scalar,
            "unsupported {} must fall back to scalar",
            isa.name()
        );
    }

    std::env::set_var(ISA_ENV, "sse9");
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(selected_isa));
    panic::set_hook(prev_hook);
    assert!(result.is_err(), "garbage ISA name must panic");
}

/// `kernel_shape` reports the shape that will actually be dispatched:
/// supported ISAs report themselves, and f32 (which has no SIMD kernels)
/// always reports the scalar shape.
#[test]
fn kernel_shape_reports_dispatch() {
    for &isa in supported_isas() {
        let s = kernel_shape::<f64>(isa);
        assert_eq!(s.isa, isa);
        assert!(s.mr > 0 && s.nr > 0);
        assert_eq!(s.mc % s.mr, 0, "{}: MC must be a multiple of MR", s.name);
        assert_eq!(s.nc % s.nr, 0, "{}: NC must be a multiple of NR", s.name);

        let s32 = kernel_shape::<f32>(isa);
        assert_eq!(s32.isa, Isa::Scalar, "f32 always dispatches scalar");
        assert_eq!(s32.name, "scalar_8x4");
    }
}
