//! Property-based validation: every kernel, every parameter variant,
//! random shapes and values, against the independent reference path.
//!
//! The GEMM properties additionally sweep every host-supported SIMD ISA
//! per case (`common::for_each_supported_isa`), so random-shape coverage
//! reaches each microkernel's fringe paths, not just the default dispatch.

mod common;

use proptest::prelude::*;
use xk_kernels::aux::{max_abs_diff, max_abs_diff_tri};
use xk_kernels::parallel::par_gemm;
use xk_kernels::reference as r;
use xk_kernels::{
    gemm, symm, syr2k, syrk, trmm, trsm, Diag, MatMut, MatRef, Side, Trans, Uplo, MR, NR, TB,
};

fn vals(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-2.0f64..2.0, n)
}

fn any_trans() -> impl Strategy<Value = Trans> {
    prop_oneof![Just(Trans::No), Just(Trans::Yes)]
}
fn any_uplo() -> impl Strategy<Value = Uplo> {
    prop_oneof![Just(Uplo::Lower), Just(Uplo::Upper)]
}
fn any_side() -> impl Strategy<Value = Side> {
    prop_oneof![Just(Side::Left), Just(Side::Right)]
}
fn any_diag() -> impl Strategy<Value = Diag> {
    prop_oneof![Just(Diag::NonUnit), Just(Diag::Unit)]
}

const TOL: f64 = 1e-10;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_all_variants(
        (m, n, k) in (1usize..12, 1usize..12, 0usize..12),
        ta in any_trans(), tb in any_trans(),
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        seed_a in 0u64..1000, seed_b in 0u64..1000, seed_c in 0u64..1000,
    ) {
        let (am, an) = match ta { Trans::No => (m, k), Trans::Yes => (k, m) };
        let (bm, bn) = match tb { Trans::No => (k, n), Trans::Yes => (n, k) };
        let a = det_vals(am * an, seed_a);
        let b = det_vals(bm * bn, seed_b);
        let c0 = det_vals(m * n, seed_c);
        let ar = MatRef::from_slice(&a, am, an, am.max(1));
        let br = MatRef::from_slice(&b, bm, bn, bm.max(1));
        // Reference needs non-degenerate views; skip k=0 with transposes that
        // create 0-row storage (still exercised below with No/No).
        let want = r::ref_gemm(ta, tb, alpha, ar, br, beta, MatRef::from_slice(&c0, m, n, m));
        // Panics inside the closure are still shrunk by proptest; the
        // per-ISA sweep cannot return `Err` through `prop_assert!`.
        common::for_each_supported_isa(|isa| {
            let mut c = c0.clone();
            gemm(ta, tb, alpha, ar, br, beta, MatMut::from_slice(&mut c, m, n, m));
            let d = max_abs_diff(MatRef::from_slice(&c, m, n, m), want.view());
            assert!(d < TOL, "gemm[{isa}]: diff {d}");
        });
    }

    #[test]
    fn symm_all_variants(
        (m, n) in (1usize..10, 1usize..10),
        side in any_side(), uplo in any_uplo(),
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let na = match side { Side::Left => m, Side::Right => n };
        let a = det_vals(na * na, seed);
        let b = det_vals(m * n, seed + 1);
        let c0 = det_vals(m * n, seed + 2);
        let ar = MatRef::from_slice(&a, na, na, na);
        let br = MatRef::from_slice(&b, m, n, m);
        let want = r::ref_symm(side, uplo, alpha, ar, br, beta, MatRef::from_slice(&c0, m, n, m));
        let mut c = c0.clone();
        symm(side, uplo, alpha, ar, br, beta, MatMut::from_slice(&mut c, m, n, m));
        let d = max_abs_diff(MatRef::from_slice(&c, m, n, m), want.view());
        prop_assert!(d < TOL, "diff {d}");
    }

    #[test]
    fn syrk_all_variants(
        (n, k) in (1usize..10, 1usize..10),
        uplo in any_uplo(), trans in any_trans(),
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let (am, an) = match trans { Trans::No => (n, k), Trans::Yes => (k, n) };
        let a = det_vals(am * an, seed);
        let c0 = det_vals(n * n, seed + 1);
        let ar = MatRef::from_slice(&a, am, an, am);
        let want = r::ref_syrk(trans, alpha, ar, beta, MatRef::from_slice(&c0, n, n, n));
        let mut c = c0.clone();
        syrk(uplo, trans, alpha, ar, beta, MatMut::from_slice(&mut c, n, n, n));
        let cr = MatRef::from_slice(&c, n, n, n);
        // Updated triangle matches the full reference...
        prop_assert!(max_abs_diff_tri(uplo, cr, want.view()) < TOL);
        // ...and the opposite strict triangle is untouched.
        let c0r = MatRef::from_slice(&c0, n, n, n);
        prop_assert!(strict_opposite_untouched(uplo, cr, c0r));
    }

    #[test]
    fn syr2k_all_variants(
        (n, k) in (1usize..10, 1usize..10),
        uplo in any_uplo(), trans in any_trans(),
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let (am, an) = match trans { Trans::No => (n, k), Trans::Yes => (k, n) };
        let a = det_vals(am * an, seed);
        let b = det_vals(am * an, seed + 1);
        let c0 = det_vals(n * n, seed + 2);
        let ar = MatRef::from_slice(&a, am, an, am);
        let br = MatRef::from_slice(&b, am, an, am);
        let want = r::ref_syr2k(trans, alpha, ar, br, beta, MatRef::from_slice(&c0, n, n, n));
        let mut c = c0.clone();
        syr2k(uplo, trans, alpha, ar, br, beta, MatMut::from_slice(&mut c, n, n, n));
        let cr = MatRef::from_slice(&c, n, n, n);
        prop_assert!(max_abs_diff_tri(uplo, cr, want.view()) < TOL);
        let c0r = MatRef::from_slice(&c0, n, n, n);
        prop_assert!(strict_opposite_untouched(uplo, cr, c0r));
    }

    #[test]
    fn trmm_all_variants(
        (m, n) in (1usize..10, 1usize..10),
        side in any_side(), uplo in any_uplo(),
        trans in any_trans(), diag in any_diag(),
        alpha in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let na = match side { Side::Left => m, Side::Right => n };
        let a = det_vals(na * na, seed);
        let b0 = det_vals(m * n, seed + 1);
        let ar = MatRef::from_slice(&a, na, na, na);
        let want = r::ref_trmm(side, uplo, trans, diag, alpha, ar, MatRef::from_slice(&b0, m, n, m));
        let mut b = b0.clone();
        trmm(side, uplo, trans, diag, alpha, ar, MatMut::from_slice(&mut b, m, n, m));
        let d = max_abs_diff(MatRef::from_slice(&b, m, n, m), want.view());
        prop_assert!(d < TOL, "diff {d}");
    }

    #[test]
    fn trsm_all_variants_satisfy_equation(
        (m, n) in (1usize..10, 1usize..10),
        side in any_side(), uplo in any_uplo(),
        trans in any_trans(), diag in any_diag(),
        alpha in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let na = match side { Side::Left => m, Side::Right => n };
        // Well-conditioned triangular factor: dominant diagonal.
        let mut a = det_vals(na * na, seed);
        for i in 0..na {
            a[i + i * na] = 3.0 + a[i + i * na].abs();
        }
        let b0 = det_vals(m * n, seed + 1);
        let ar = MatRef::from_slice(&a, na, na, na);
        let mut x = b0.clone();
        trsm(side, uplo, trans, diag, alpha, ar, MatMut::from_slice(&mut x, m, n, m));
        let res = r::trsm_residual(
            side, uplo, trans, diag, alpha, ar,
            MatRef::from_slice(&x, m, n, m),
            MatRef::from_slice(&b0, m, n, m),
        );
        prop_assert!(res < 1e-9, "residual {res}");
    }

    /// f32 kernels agree with f64 within single precision.
    #[test]
    fn f32_tracks_f64(
        (m, n, k) in (1usize..8, 1usize..8, 1usize..8),
        seed in 0u64..1000,
    ) {
        let a64 = det_vals(m * k, seed);
        let b64 = det_vals(k * n, seed + 1);
        let a32: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
        let b32: Vec<f32> = b64.iter().map(|&x| x as f32).collect();
        let mut c64 = vec![0.0f64; m * n];
        let mut c32 = vec![0.0f32; m * n];
        gemm(Trans::No, Trans::No, 1.0f64,
             MatRef::from_slice(&a64, m, k, m), MatRef::from_slice(&b64, k, n, k),
             0.0, MatMut::from_slice(&mut c64, m, n, m));
        gemm(Trans::No, Trans::No, 1.0f32,
             MatRef::from_slice(&a32, m, k, m), MatRef::from_slice(&b32, k, n, k),
             0.0, MatMut::from_slice(&mut c32, m, n, m));
        for (x, y) in c32.iter().zip(&c64) {
            prop_assert!((f64::from(*x) - y).abs() < 1e-4);
        }
    }
}

/// A dimension strategy biased toward the blocked engine's tile and block
/// boundaries (`MR`/`NR` register tiles, `TB` triangular blocks) where
/// fringe handling lives, plus ordinary in-between values.
fn boundary_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1),
        Just(MR - 1),
        Just(MR),
        Just(MR + 1),
        Just(NR + 1),
        Just(3 * MR + 2),
        Just(TB - 1),
        Just(TB),
        Just(TB + 1),
        Just(TB + NR + 3),
        1usize..(2 * TB),
    ]
}

/// Degenerate-prone scaling factors: the alpha/beta fast paths (`0`, `1`)
/// plus a generic value.
fn edge_scale() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(1.0), Just(-0.5), Just(0.75)]
}

proptest! {
    // Larger shapes are costlier per case; the boundary strategies make
    // each case count.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The blocked engine at fringe/boundary shapes, including `k = 0` and
    /// the alpha/beta fast paths, against the reference path.
    #[test]
    fn gemm_blocked_boundaries(
        m in boundary_dim(), n in boundary_dim(),
        k in prop_oneof![Just(0usize), Just(1), Just(MR), Just(TB), 1usize..96],
        ta in any_trans(), tb in any_trans(),
        alpha in edge_scale(), beta in edge_scale(),
        seed in 0u64..1000,
    ) {
        let (am, an) = match ta { Trans::No => (m, k), Trans::Yes => (k, m) };
        let (bm, bn) = match tb { Trans::No => (k, n), Trans::Yes => (n, k) };
        let a = det_vals(am * an, seed);
        let b = det_vals(bm * bn, seed + 1);
        let c0 = det_vals(m * n, seed + 2);
        let ar = MatRef::from_slice(&a, am, an, am.max(1));
        let br = MatRef::from_slice(&b, bm, bn, bm.max(1));
        let want = r::ref_gemm(ta, tb, alpha, ar, br, beta, MatRef::from_slice(&c0, m, n, m));
        common::for_each_supported_isa(|isa| {
            let mut c = c0.clone();
            gemm(ta, tb, alpha, ar, br, beta, MatMut::from_slice(&mut c, m, n, m));
            let d = max_abs_diff(MatRef::from_slice(&c, m, n, m), want.view());
            assert!(d < TOL, "gemm[{isa}]: diff {d}");
        });
    }

    /// par_gemm (shape-adaptive panel split) agrees with sequential gemm on
    /// shapes that exercise both the row- and column-split paths.
    #[test]
    fn par_gemm_boundaries(
        m in boundary_dim(), n in boundary_dim(), k in 1usize..64,
        ta in any_trans(), tb in any_trans(),
        alpha in edge_scale(), beta in edge_scale(),
        seed in 0u64..1000,
    ) {
        let (am, an) = match ta { Trans::No => (m, k), Trans::Yes => (k, m) };
        let (bm, bn) = match tb { Trans::No => (k, n), Trans::Yes => (n, k) };
        let a = det_vals(am * an, seed);
        let b = det_vals(bm * bn, seed + 1);
        let c0 = det_vals(m * n, seed + 2);
        let ar = MatRef::from_slice(&a, am, an, am.max(1));
        let br = MatRef::from_slice(&b, bm, bn, bm.max(1));
        let mut c_seq = c0.clone();
        gemm(ta, tb, alpha, ar, br, beta, MatMut::from_slice(&mut c_seq, m, n, m));
        let mut c_par = c0.clone();
        par_gemm(ta, tb, alpha, ar, br, beta, MatMut::from_slice(&mut c_par, m, n, m));
        let d = max_abs_diff(
            MatRef::from_slice(&c_par, m, n, m),
            MatRef::from_slice(&c_seq, m, n, m),
        );
        prop_assert!(d < TOL, "par/seq diff {d}");
    }

    /// trmm/trsm at sizes crossing the `TB` block boundary, where the
    /// blocked substitution path (diag block + GEMM strip) is active.
    #[test]
    fn tr_routines_blocked_boundaries(
        m in prop_oneof![Just(TB - 1), Just(TB), Just(TB + 1), Just(TB + NR + 3)],
        n in 1usize..24,
        side in any_side(), uplo in any_uplo(),
        trans in any_trans(), diag in any_diag(),
        seed in 0u64..1000,
    ) {
        let na = match side { Side::Left => m, Side::Right => n };
        let mut a = det_vals(na * na, seed);
        for i in 0..na {
            a[i + i * na] = 3.0 + a[i + i * na].abs();
        }
        let b0 = det_vals(m * n, seed + 1);
        let ar = MatRef::from_slice(&a, na, na, na);

        let want = r::ref_trmm(side, uplo, trans, diag, 1.5, ar, MatRef::from_slice(&b0, m, n, m));
        let mut b = b0.clone();
        trmm(side, uplo, trans, diag, 1.5, ar, MatMut::from_slice(&mut b, m, n, m));
        let d = max_abs_diff(MatRef::from_slice(&b, m, n, m), want.view());
        prop_assert!(d < TOL, "trmm diff {d}");

        let mut x = b0.clone();
        trsm(side, uplo, trans, diag, 1.5, ar, MatMut::from_slice(&mut x, m, n, m));
        let res = r::trsm_residual(
            side, uplo, trans, diag, 1.5, ar,
            MatRef::from_slice(&x, m, n, m),
            MatRef::from_slice(&b0, m, n, m),
        );
        prop_assert!(res < 1e-8, "trsm residual {res}");
    }
}

/// Deterministic pseudo-random values (decoupled from proptest shrinking).
fn det_vals(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

#[allow(dead_code)]
fn unused_vals_strategy_keepalive() {
    let _ = vals(1);
}

/// True when the strict triangle opposite `uplo` of `c` equals `c0`.
fn strict_opposite_untouched(uplo: Uplo, c: MatRef<'_, f64>, c0: MatRef<'_, f64>) -> bool {
    let n = c.nrows();
    for j in 0..n {
        for i in 0..n {
            let in_strict_opposite = match uplo {
                Uplo::Lower => i < j,
                Uplo::Upper => i > j,
            };
            if in_strict_opposite && c.at(i, j) != c0.at(i, j) {
                return false;
            }
        }
    }
    true
}
