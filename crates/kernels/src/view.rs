//! Column-major (LAPACK layout) matrix views.
//!
//! A view is the `(A, m, n, ld)` "memory view" tuple of the paper's §III-A:
//! element `(i, j)` lives at offset `i + j*ld`. Sub-matrix views keep the
//! parent's leading dimension, exactly like LAPACK sub-matrices, so a tiled
//! algorithm never copies or re-layouts data on the host.
//!
//! # Safety model
//!
//! [`MatRef`]/[`MatMut`] are raw-pointer views. The task runtime hands out
//! mutable views to *disjoint* tiles of one allocation and executes tasks
//! respecting read/write dependencies, which upholds Rust's aliasing rules
//! at the region level (two tiles with distinct row/column ranges never
//! touch the same element even though their memory interleaves with stride
//! `ld`). The `unsafe impl Send/Sync` encode exactly that contract.

use std::marker::PhantomData;

use crate::scalar::Scalar;

/// Immutable column-major matrix view.
#[derive(Clone, Copy)]
pub struct MatRef<'a, T> {
    ptr: *const T,
    m: usize,
    n: usize,
    ld: usize,
    _life: PhantomData<&'a T>,
}

/// Mutable column-major matrix view.
pub struct MatMut<'a, T> {
    ptr: *mut T,
    m: usize,
    n: usize,
    ld: usize,
    _life: PhantomData<&'a mut T>,
}

// SAFETY: views to disjoint regions may cross threads; the task graph (or
// the caller of a split) guarantees disjointness of concurrently used views.
unsafe impl<T: Send> Send for MatRef<'_, T> {}
unsafe impl<T: Sync> Sync for MatRef<'_, T> {}
unsafe impl<T: Send> Send for MatMut<'_, T> {}
unsafe impl<T: Sync> Sync for MatMut<'_, T> {}

impl<'a, T: Scalar> MatRef<'a, T> {
    /// Views an `m × n` matrix with leading dimension `ld` over `data`.
    ///
    /// # Panics
    /// Panics if `ld < m` or if `data` is too short to hold the last column.
    pub fn from_slice(data: &'a [T], m: usize, n: usize, ld: usize) -> Self {
        assert!(ld >= m.max(1), "ld ({ld}) must be >= m ({m})");
        let needed = if n == 0 || m == 0 { 0 } else { ld * (n - 1) + m };
        assert!(
            data.len() >= needed,
            "slice of len {} too short for {m}x{n} ld {ld}",
            data.len()
        );
        MatRef {
            ptr: data.as_ptr(),
            m,
            n,
            ld,
            _life: PhantomData,
        }
    }

    /// Creates a view from a raw pointer.
    ///
    /// # Safety
    /// `ptr` must be valid for reads of the `m × n` region with stride `ld`
    /// for the lifetime `'a`, and no mutable view may overlap it while alive.
    pub unsafe fn from_raw(ptr: *const T, m: usize, n: usize, ld: usize) -> Self {
        MatRef {
            ptr,
            m,
            n,
            ld,
            _life: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.m
    }
    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.n
    }
    /// Leading dimension.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }
    /// True when the view stores its columns contiguously (`ld == m`).
    #[inline]
    pub fn is_contiguous(&self) -> bool {
        self.ld == self.m
    }
    /// Payload size in bytes (excludes the inter-column padding).
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.m * self.n * T::WORD) as u64
    }

    /// Element access.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.m && j < self.n, "({i},{j}) out of {}x{}", self.m, self.n);
        // SAFETY: bounds checked above (debug) / guaranteed by callers in the
        // kernels, pointer valid per construction contract.
        unsafe { *self.ptr.add(i + j * self.ld) }
    }

    /// Column `j` as a slice of `m` elements.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [T] {
        debug_assert!(j < self.n);
        // SAFETY: column j spans [j*ld, j*ld + m) which is in bounds.
        unsafe { std::slice::from_raw_parts(self.ptr.add(j * self.ld), self.m) }
    }

    /// Sub-matrix view of size `mm × nn` starting at `(i, j)`.
    pub fn submatrix(&self, i: usize, j: usize, mm: usize, nn: usize) -> MatRef<'a, T> {
        assert!(i + mm <= self.m && j + nn <= self.n, "submatrix out of bounds");
        MatRef {
            // SAFETY: offset stays within the parent region.
            ptr: unsafe { self.ptr.add(i + j * self.ld) },
            m: mm,
            n: nn,
            ld: self.ld,
            _life: PhantomData,
        }
    }

    /// Copies the view into a dense `Vec` in column-major order (compacted:
    /// the result has `ld == m`, like a tile landed on a GPU in the paper).
    pub fn to_compact_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.m * self.n);
        for j in 0..self.n {
            out.extend_from_slice(self.col(j));
        }
        out
    }
}

impl<'a, T: Scalar> MatMut<'a, T> {
    /// Views an `m × n` mutable matrix with leading dimension `ld`.
    ///
    /// # Panics
    /// Panics if `ld < m` or if `data` is too short.
    pub fn from_slice(data: &'a mut [T], m: usize, n: usize, ld: usize) -> Self {
        assert!(ld >= m.max(1), "ld ({ld}) must be >= m ({m})");
        let needed = if n == 0 || m == 0 { 0 } else { ld * (n - 1) + m };
        assert!(
            data.len() >= needed,
            "slice of len {} too short for {m}x{n} ld {ld}",
            data.len()
        );
        MatMut {
            ptr: data.as_mut_ptr(),
            m,
            n,
            ld,
            _life: PhantomData,
        }
    }

    /// Creates a mutable view from a raw pointer.
    ///
    /// # Safety
    /// `ptr` must be valid for reads and writes of the region for `'a`, and
    /// no other view may overlap it while this one is alive.
    pub unsafe fn from_raw(ptr: *mut T, m: usize, n: usize, ld: usize) -> Self {
        MatMut {
            ptr,
            m,
            n,
            ld,
            _life: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.m
    }
    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.n
    }
    /// Leading dimension.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element read.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.m && j < self.n);
        unsafe { *self.ptr.add(i + j * self.ld) }
    }

    /// Element write.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.m && j < self.n);
        // SAFETY: in bounds; exclusive access per view contract.
        unsafe { *self.ptr.add(i + j * self.ld) = v }
    }

    /// In-place update of one element.
    #[inline]
    pub fn update(&mut self, i: usize, j: usize, f: impl FnOnce(T) -> T) {
        let v = self.at(i, j);
        self.set(i, j, f(v));
    }

    /// Raw pointer to element `(i, j)` — the microkernel's store target.
    /// Writes through it must stay within the view's `m × n` region.
    #[inline]
    pub(crate) fn ptr_at_mut(&mut self, i: usize, j: usize) -> *mut T {
        debug_assert!(i < self.m && j < self.n);
        // SAFETY: (i, j) is in bounds (debug-asserted / guaranteed by the
        // engine's loop clips), so the offset stays inside the viewed region.
        unsafe { self.ptr.add(i + j * self.ld) }
    }

    /// Mutable column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        debug_assert!(j < self.n);
        // SAFETY: column in bounds; exclusive borrow of self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(j * self.ld), self.m) }
    }

    /// Immutable re-borrow.
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef {
            ptr: self.ptr,
            m: self.m,
            n: self.n,
            ld: self.ld,
            _life: PhantomData,
        }
    }

    /// Mutable re-borrow with a shorter lifetime.
    pub fn rb_mut(&mut self) -> MatMut<'_, T> {
        MatMut {
            ptr: self.ptr,
            m: self.m,
            n: self.n,
            ld: self.ld,
            _life: PhantomData,
        }
    }

    /// Mutable sub-matrix view (consumes the borrow's exclusivity; use
    /// [`MatMut::split_cols_at`]/[`MatMut::split_rows_at`] to get several
    /// disjoint mutable views at once).
    pub fn submatrix_mut(&mut self, i: usize, j: usize, mm: usize, nn: usize) -> MatMut<'_, T> {
        assert!(i + mm <= self.m && j + nn <= self.n, "submatrix out of bounds");
        MatMut {
            ptr: unsafe { self.ptr.add(i + j * self.ld) },
            m: mm,
            n: nn,
            ld: self.ld,
            _life: PhantomData,
        }
    }

    /// Splits into `(left, right)` disjoint mutable views at column `j`.
    pub fn split_cols_at(self, j: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(j <= self.n);
        let left = MatMut {
            ptr: self.ptr,
            m: self.m,
            n: j,
            ld: self.ld,
            _life: PhantomData,
        };
        let right = MatMut {
            ptr: unsafe { self.ptr.add(j * self.ld) },
            m: self.m,
            n: self.n - j,
            ld: self.ld,
            _life: PhantomData,
        };
        (left, right)
    }

    /// Splits into `(top, bottom)` disjoint mutable views at row `i`.
    pub fn split_rows_at(self, i: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(i <= self.m);
        let top = MatMut {
            ptr: self.ptr,
            m: i,
            n: self.n,
            ld: self.ld,
            _life: PhantomData,
        };
        let bottom = MatMut {
            ptr: unsafe { self.ptr.add(i) },
            m: self.m - i,
            n: self.n,
            ld: self.ld,
            _life: PhantomData,
        };
        (top, bottom)
    }

    /// Fills the whole view with `v`.
    pub fn fill(&mut self, v: T) {
        for j in 0..self.n {
            self.col_mut(j).fill(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbered(m: usize, n: usize) -> Vec<f64> {
        (0..m * n).map(|x| x as f64).collect()
    }

    #[test]
    fn indexing_is_column_major() {
        let data = numbered(3, 2); // columns [0,1,2], [3,4,5]
        let a = MatRef::from_slice(&data, 3, 2, 3);
        assert_eq!(a.at(0, 0), 0.0);
        assert_eq!(a.at(2, 0), 2.0);
        assert_eq!(a.at(0, 1), 3.0);
        assert_eq!(a.at(2, 1), 5.0);
        assert_eq!(a.col(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn submatrix_keeps_parent_ld() {
        let data = numbered(4, 4);
        let a = MatRef::from_slice(&data, 4, 4, 4);
        let s = a.submatrix(1, 2, 2, 2);
        assert_eq!(s.ld(), 4);
        assert_eq!(s.at(0, 0), a.at(1, 2));
        assert_eq!(s.at(1, 1), a.at(2, 3));
        assert!(!s.is_contiguous());
    }

    #[test]
    fn compact_vec_compacts() {
        let data = numbered(4, 3);
        let a = MatRef::from_slice(&data, 4, 3, 4);
        let s = a.submatrix(1, 0, 2, 3);
        let c = s.to_compact_vec();
        assert_eq!(c, vec![1.0, 2.0, 5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn mutation_visible_through_parent() {
        let mut data = numbered(3, 3);
        {
            let mut a = MatMut::from_slice(&mut data, 3, 3, 3);
            let mut s = a.submatrix_mut(1, 1, 2, 2);
            s.set(0, 0, 100.0);
            s.update(1, 1, |v| v + 0.5);
        }
        assert_eq!(data[1 + 3], 100.0); // (1,1)
        assert_eq!(data[2 + 2 * 3], 8.5); // (2,2)
    }

    #[test]
    fn splits_are_disjoint_and_complete() {
        let mut data = numbered(4, 4);
        let a = MatMut::from_slice(&mut data, 4, 4, 4);
        let (mut l, mut r) = a.split_cols_at(1);
        assert_eq!((l.nrows(), l.ncols()), (4, 1));
        assert_eq!((r.nrows(), r.ncols()), (4, 3));
        l.fill(-1.0);
        r.fill(-2.0);
        assert!(data[..4].iter().all(|&x| x == -1.0));
        assert!(data[4..].iter().all(|&x| x == -2.0));
    }

    #[test]
    fn split_rows() {
        let mut data = numbered(4, 2);
        let a = MatMut::from_slice(&mut data, 4, 2, 4);
        let (mut t, mut b) = a.split_rows_at(2);
        t.fill(1.0);
        b.fill(2.0);
        assert_eq!(data, vec![1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "must be >= m")]
    fn bad_ld_rejected() {
        let data = numbered(4, 1);
        let _ = MatRef::from_slice(&data, 4, 1, 2);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_slice_rejected() {
        let data = numbered(2, 2);
        let _ = MatRef::from_slice(&data, 3, 2, 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_submatrix_rejected() {
        let data = numbered(3, 3);
        let a = MatRef::from_slice(&data, 3, 3, 3);
        let _ = a.submatrix(2, 2, 2, 2);
    }

    #[test]
    fn zero_sized_views_ok() {
        let data: Vec<f64> = vec![];
        let a = MatRef::<f64>::from_slice(&data, 0, 0, 1);
        assert_eq!(a.nrows(), 0);
        assert_eq!(a.bytes(), 0);
    }
}
