//! Symmetric matrix-matrix multiply:
//! `C = alpha * A * B + beta * C` (left) or `C = alpha * B * A + beta * C`
//! (right), with `A` symmetric and only its `uplo` triangle stored.

use crate::blocked::gemm_with;
use crate::helpers::sym_at;
use crate::scalar::Scalar;
use crate::types::{Side, Uplo};
use crate::view::{MatMut, MatRef};

/// Sequential tile SYMM, routed through the blocked GEMM engine.
///
/// `C` is `m × n`; `A` is `m × m` (left) or `n × n` (right). The symmetric
/// operand is read through [`sym_at`] during packing, so the mirrored
/// triangle never has to be materialized and the hot loop is the same
/// register-tiled microkernel as [`crate::gemm`].
///
/// # Panics
/// Panics on inconsistent dimensions.
pub fn symm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
) {
    let (m, n) = (c.nrows(), c.ncols());
    match side {
        Side::Left => {
            assert_eq!(a.nrows(), m, "A must be m x m for Side::Left");
            assert_eq!(a.ncols(), m);
            assert_eq!(b.nrows(), m);
            assert_eq!(b.ncols(), n);
        }
        Side::Right => {
            assert_eq!(a.nrows(), n, "A must be n x n for Side::Right");
            assert_eq!(a.ncols(), n);
            assert_eq!(b.nrows(), m);
            assert_eq!(b.ncols(), n);
        }
    }

    match side {
        Side::Left => gemm_with(
            m,
            n,
            m,
            alpha,
            |i, l| sym_at(&a, uplo, i, l),
            |l, j| b.at(l, j),
            beta,
            c,
        ),
        Side::Right => gemm_with(
            m,
            n,
            n,
            alpha,
            |i, l| b.at(i, l),
            |l, j| sym_at(&a, uplo, l, j),
            beta,
            c,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_lower_matches_manual() {
        // A = [1 2; 2 5] stored lower ([1,2,*,5]), B = [1 0; 0 1].
        let a = vec![1.0, 2.0, -77.0, 5.0];
        let b = vec![1.0, 0.0, 0.0, 1.0];
        let mut c = vec![0.0; 4];
        symm(
            Side::Left,
            Uplo::Lower,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatRef::from_slice(&b, 2, 2, 2),
            0.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert_eq!(c, vec![1.0, 2.0, 2.0, 5.0]);
    }

    #[test]
    fn right_upper_matches_manual() {
        // A = [1 2; 2 5] stored upper ([1,*,2,5]); B = [1 1] (1x2 row).
        // B*A = [1+2, 2+5] = [3, 7].
        let a = vec![1.0, -77.0, 2.0, 5.0];
        let b = vec![1.0, 1.0];
        let mut c = vec![0.0; 2];
        symm(
            Side::Right,
            Uplo::Upper,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatRef::from_slice(&b, 1, 2, 1),
            0.0,
            MatMut::from_slice(&mut c, 1, 2, 1),
        );
        assert_eq!(c, vec![3.0, 7.0]);
    }

    #[test]
    fn beta_scaling() {
        let a = vec![0.0; 4];
        let b = vec![0.0; 4];
        let mut c = vec![2.0; 4];
        symm(
            Side::Left,
            Uplo::Lower,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatRef::from_slice(&b, 2, 2, 2),
            3.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert!(c.iter().all(|&x| x == 6.0));
    }

    #[test]
    fn lower_and_upper_storage_agree() {
        // Same symmetric matrix stored both ways must give identical results.
        let lo = vec![1.0, 4.0, 2.0, f64::NAN, 3.0, 5.0, f64::NAN, f64::NAN, 6.0];
        let up = vec![1.0, f64::NAN, f64::NAN, 4.0, 3.0, f64::NAN, 2.0, 5.0, 6.0];
        let b: Vec<f64> = (0..9).map(|x| x as f64).collect();
        let mut c1 = vec![0.0; 9];
        let mut c2 = vec![0.0; 9];
        symm(
            Side::Left,
            Uplo::Lower,
            1.0,
            MatRef::from_slice(&lo, 3, 3, 3),
            MatRef::from_slice(&b, 3, 3, 3),
            0.0,
            MatMut::from_slice(&mut c1, 3, 3, 3),
        );
        symm(
            Side::Left,
            Uplo::Upper,
            1.0,
            MatRef::from_slice(&up, 3, 3, 3),
            MatRef::from_slice(&b, 3, 3, 3),
            0.0,
            MatMut::from_slice(&mut c2, 3, 3, 3),
        );
        assert_eq!(c1, c2);
    }
}
