//! Triangular solve with multiple right-hand sides (in place):
//! `B = alpha * inv(op(A)) * B` (left) or `B = alpha * B * inv(op(A))`
//! (right), with `A` triangular.

use crate::blocked::TB;
use crate::gemm::gemm;
use crate::helpers::tri_at;
use crate::scalar::Scalar;
use crate::types::{Diag, Side, Trans, Uplo};
use crate::view::{MatMut, MatRef};

/// Sequential tile TRSM, updating `B` in place.
///
/// Solves `op(A) * X = alpha * B` (left) or `X * op(A) = alpha * B` (right)
/// and stores `X` in `B`.
///
/// Classic blocked substitution: the triangular dimension is split into
/// [`TB`]-order blocks; each block of `B` is first updated with a blocked-GEMM
/// accumulation of the already-solved blocks (`B_i ← alpha B_i − strip · X`,
/// with `alpha` folded in as the GEMM `beta`), then finished with an
/// unblocked substitution against the diagonal block. The GEMM-update half
/// of the flops therefore runs on the packed register-tiled engine.
///
/// # Panics
/// Panics on inconsistent dimensions. Dividing by an (exactly) zero diagonal
/// produces infinities, like BLAS.
pub fn trsm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: T,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
) {
    let (m, n) = (b.nrows(), b.ncols());
    match side {
        Side::Left => {
            assert_eq!(a.nrows(), m, "A must be m x m for Side::Left");
            assert_eq!(a.ncols(), m);
        }
        Side::Right => {
            assert_eq!(a.nrows(), n, "A must be n x n for Side::Right");
            assert_eq!(a.ncols(), n);
        }
    }
    if alpha == T::ZERO {
        b.fill(T::ZERO);
        return;
    }
    if m == 0 || n == 0 {
        return;
    }

    // Is op(A) lower-triangular? (trans flips the triangle.)
    let op_lower = matches!((uplo, trans), (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes));
    let ld = b.ld();
    let bptr = b.rb_mut().col_mut(0).as_mut_ptr();

    match side {
        Side::Left => {
            // Row-block substitution: op(A)_ii X_i = alpha B_i − sum of
            // op(A)'s off-diagonal strip against already-solved X blocks.
            // Lower op(A) solves top-down, upper bottom-up, so the strip
            // always references finished blocks.
            let nblocks = m.div_ceil(TB);
            for step in 0..nblocks {
                let ib = if op_lower { step } else { nblocks - 1 - step };
                let i0 = ib * TB;
                let mb = TB.min(m - i0);
                // SAFETY: the mutable row block and the solved strip are
                // disjoint row ranges of B.
                let mut b_i = unsafe { MatMut::from_raw(bptr.add(i0), mb, n, ld) };
                let (lo, hi) = if op_lower { (0, i0) } else { (i0 + mb, m) };
                let eff_alpha = if hi > lo {
                    let lw = hi - lo;
                    let x_solved =
                        unsafe { MatRef::from_raw(bptr.add(lo).cast_const(), lw, n, ld) };
                    // Strictly off-diagonal strip of op(A): stored densely.
                    let a_strip = match trans {
                        Trans::No => a.submatrix(i0, lo, mb, lw),
                        Trans::Yes => a.submatrix(lo, i0, lw, mb),
                    };
                    gemm(trans, Trans::No, -T::ONE, a_strip, x_solved, alpha, b_i.rb_mut());
                    T::ONE
                } else {
                    alpha
                };
                trsm_unblocked(
                    Side::Left,
                    uplo,
                    trans,
                    diag,
                    eff_alpha,
                    a.submatrix(i0, i0, mb, mb),
                    b_i,
                );
            }
        }
        Side::Right => {
            // Column-block substitution: X_j op(A)_jj = alpha B_j − solved X
            // blocks against op(A)'s column block j. Lower op(A) solves
            // right-to-left, upper left-to-right.
            let nblocks = n.div_ceil(TB);
            for step in 0..nblocks {
                let jb = if op_lower { nblocks - 1 - step } else { step };
                let j0 = jb * TB;
                let nb = TB.min(n - j0);
                // SAFETY: disjoint column ranges of B.
                let mut b_j = unsafe { MatMut::from_raw(bptr.add(j0 * ld), m, nb, ld) };
                let (lo, hi) = if op_lower { (j0 + nb, n) } else { (0, j0) };
                let eff_alpha = if hi > lo {
                    let lw = hi - lo;
                    let x_solved =
                        unsafe { MatRef::from_raw(bptr.add(lo * ld).cast_const(), m, lw, ld) };
                    let a_strip = match trans {
                        Trans::No => a.submatrix(lo, j0, lw, nb),
                        Trans::Yes => a.submatrix(j0, lo, nb, lw),
                    };
                    gemm(Trans::No, trans, -T::ONE, x_solved, a_strip, alpha, b_j.rb_mut());
                    T::ONE
                } else {
                    alpha
                };
                trsm_unblocked(
                    Side::Right,
                    uplo,
                    trans,
                    diag,
                    eff_alpha,
                    a.submatrix(j0, j0, nb, nb),
                    b_j,
                );
            }
        }
    }
}

/// Unblocked TRSM used for the diagonal blocks of the blocked algorithm.
fn trsm_unblocked<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: T,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
) {
    let (m, n) = (b.nrows(), b.ncols());

    // Effective triangular element of op(A).
    let op_a = |i: usize, l: usize| -> T {
        match trans {
            Trans::No => tri_at(&a, uplo, diag, i, l),
            Trans::Yes => tri_at(&a, uplo, diag, l, i),
        }
    };
    // Is op(A) lower-triangular? (trans flips the triangle.)
    let op_lower = match (uplo, trans) {
        (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes) => true,
        (Uplo::Upper, Trans::No) | (Uplo::Lower, Trans::Yes) => false,
    };

    match side {
        Side::Left => {
            // Solve op(A) x = alpha b column by column.
            for j in 0..n {
                if op_lower {
                    // Forward substitution.
                    for i in 0..m {
                        let mut acc = alpha * b.at(i, j);
                        for l in 0..i {
                            acc -= op_a(i, l) * b.at(l, j);
                        }
                        let d = op_a(i, i);
                        b.set(i, j, if diag == Diag::Unit { acc } else { acc / d });
                    }
                } else {
                    // Backward substitution.
                    for i in (0..m).rev() {
                        let mut acc = alpha * b.at(i, j);
                        for l in i + 1..m {
                            acc -= op_a(i, l) * b.at(l, j);
                        }
                        let d = op_a(i, i);
                        b.set(i, j, if diag == Diag::Unit { acc } else { acc / d });
                    }
                }
            }
        }
        Side::Right => {
            // Solve x op(A) = alpha b row by row: x_j = (alpha b_j -
            // sum_{l != j} x_l op(A)(l, j)) / op(A)(j, j), ordered so solved
            // entries are the only ones referenced.
            for i in 0..m {
                if op_lower {
                    // x B = b with lower op(A): solve j from n-1 down to 0,
                    // using x_l for l > j.
                    for j in (0..n).rev() {
                        let mut acc = alpha * b.at(i, j);
                        for l in j + 1..n {
                            acc -= b.at(i, l) * op_a(l, j);
                        }
                        let d = op_a(j, j);
                        b.set(i, j, if diag == Diag::Unit { acc } else { acc / d });
                    }
                } else {
                    for j in 0..n {
                        let mut acc = alpha * b.at(i, j);
                        for l in 0..j {
                            acc -= b.at(i, l) * op_a(l, j);
                        }
                        let d = op_a(j, j);
                        b.set(i, j, if diag == Diag::Unit { acc } else { acc / d });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trmm::trmm;

    #[test]
    fn left_lower_forward_substitution() {
        // A = [2 0; 1 4], solve A x = [2; 9] -> x = [1; 2].
        let a = vec![2.0, 1.0, -9.0, 4.0];
        let mut b = vec![2.0, 9.0];
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatMut::from_slice(&mut b, 2, 1, 2),
        );
        assert_eq!(b, vec![1.0, 2.0]);
    }

    #[test]
    fn left_upper_backward_substitution() {
        // A = [2 1; 0 4], solve A x = [4; 8] -> x2 = 2, x1 = (4-2)/2 = 1.
        let a = vec![2.0, -9.0, 1.0, 4.0];
        let mut b = vec![4.0, 8.0];
        trsm(
            Side::Left,
            Uplo::Upper,
            Trans::No,
            Diag::NonUnit,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatMut::from_slice(&mut b, 2, 1, 2),
        );
        assert_eq!(b, vec![1.0, 2.0]);
    }

    #[test]
    fn trsm_inverts_trmm_all_variants() {
        // For every (side, uplo, trans, diag): trsm(trmm(B)) == B.
        let a = vec![2.0, 0.5, 0.25, 3.0, 1.5, -0.5, 0.75, -0.25, 4.0]; // 3x3 full
        let b0: Vec<f64> = (1..=9).map(f64::from).collect();
        for side in [Side::Left, Side::Right] {
            for uplo in [Uplo::Lower, Uplo::Upper] {
                for trans in [Trans::No, Trans::Yes] {
                    for diag in [Diag::NonUnit, Diag::Unit] {
                        let mut b = b0.clone();
                        {
                            let bm = MatMut::from_slice(&mut b, 3, 3, 3);
                            trmm(side, uplo, trans, diag, 2.0, MatRef::from_slice(&a, 3, 3, 3), bm);
                        }
                        {
                            let bm = MatMut::from_slice(&mut b, 3, 3, 3);
                            trsm(side, uplo, trans, diag, 0.5, MatRef::from_slice(&a, 3, 3, 3), bm);
                        }
                        for (x, y) in b.iter().zip(&b0) {
                            assert!(
                                (x - y).abs() < 1e-10,
                                "{side:?} {uplo:?} {trans:?} {diag:?}: {x} != {y}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn right_side_manual() {
        // Solve X * A = B with A = [2 0; 1 1] lower, B = [4 1].
        // x1*2 + x2*1 = 4, x2*1 = 1 -> x2 = 1, x1 = 1.5.
        let a = vec![2.0, 1.0, -9.0, 1.0];
        let mut b = vec![4.0, 1.0];
        trsm(
            Side::Right,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatMut::from_slice(&mut b, 1, 2, 1),
        );
        assert_eq!(b, vec![1.5, 1.0]);
    }

    #[test]
    fn alpha_zero_clears() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let mut b = vec![5.0, 5.0];
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            0.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatMut::from_slice(&mut b, 2, 1, 2),
        );
        assert_eq!(b, vec![0.0, 0.0]);
    }
}
