//! Triangular solve with multiple right-hand sides (in place):
//! `B = alpha * inv(op(A)) * B` (left) or `B = alpha * B * inv(op(A))`
//! (right), with `A` triangular.

use crate::helpers::tri_at;
use crate::scalar::Scalar;
use crate::types::{Diag, Side, Trans, Uplo};
use crate::view::{MatMut, MatRef};

/// Sequential tile TRSM, updating `B` in place.
///
/// Solves `op(A) * X = alpha * B` (left) or `X * op(A) = alpha * B` (right)
/// and stores `X` in `B`.
///
/// # Panics
/// Panics on inconsistent dimensions. Dividing by an (exactly) zero diagonal
/// produces infinities, like BLAS.
pub fn trsm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: T,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
) {
    let (m, n) = (b.nrows(), b.ncols());
    match side {
        Side::Left => {
            assert_eq!(a.nrows(), m, "A must be m x m for Side::Left");
            assert_eq!(a.ncols(), m);
        }
        Side::Right => {
            assert_eq!(a.nrows(), n, "A must be n x n for Side::Right");
            assert_eq!(a.ncols(), n);
        }
    }
    if alpha == T::ZERO {
        b.fill(T::ZERO);
        return;
    }

    // Effective triangular element of op(A).
    let op_a = |i: usize, l: usize| -> T {
        match trans {
            Trans::No => tri_at(&a, uplo, diag, i, l),
            Trans::Yes => tri_at(&a, uplo, diag, l, i),
        }
    };
    // Is op(A) lower-triangular? (trans flips the triangle.)
    let op_lower = match (uplo, trans) {
        (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes) => true,
        (Uplo::Upper, Trans::No) | (Uplo::Lower, Trans::Yes) => false,
    };

    match side {
        Side::Left => {
            // Solve op(A) x = alpha b column by column.
            for j in 0..n {
                if op_lower {
                    // Forward substitution.
                    for i in 0..m {
                        let mut acc = alpha * b.at(i, j);
                        for l in 0..i {
                            acc -= op_a(i, l) * b.at(l, j);
                        }
                        let d = op_a(i, i);
                        b.set(i, j, if diag == Diag::Unit { acc } else { acc / d });
                    }
                } else {
                    // Backward substitution.
                    for i in (0..m).rev() {
                        let mut acc = alpha * b.at(i, j);
                        for l in i + 1..m {
                            acc -= op_a(i, l) * b.at(l, j);
                        }
                        let d = op_a(i, i);
                        b.set(i, j, if diag == Diag::Unit { acc } else { acc / d });
                    }
                }
            }
        }
        Side::Right => {
            // Solve x op(A) = alpha b row by row: x_j = (alpha b_j -
            // sum_{l != j} x_l op(A)(l, j)) / op(A)(j, j), ordered so solved
            // entries are the only ones referenced.
            for i in 0..m {
                if op_lower {
                    // x B = b with lower op(A): solve j from n-1 down to 0,
                    // using x_l for l > j.
                    for j in (0..n).rev() {
                        let mut acc = alpha * b.at(i, j);
                        for l in j + 1..n {
                            acc -= b.at(i, l) * op_a(l, j);
                        }
                        let d = op_a(j, j);
                        b.set(i, j, if diag == Diag::Unit { acc } else { acc / d });
                    }
                } else {
                    for j in 0..n {
                        let mut acc = alpha * b.at(i, j);
                        for l in 0..j {
                            acc -= b.at(i, l) * op_a(l, j);
                        }
                        let d = op_a(j, j);
                        b.set(i, j, if diag == Diag::Unit { acc } else { acc / d });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trmm::trmm;

    #[test]
    fn left_lower_forward_substitution() {
        // A = [2 0; 1 4], solve A x = [2; 9] -> x = [1; 2].
        let a = vec![2.0, 1.0, -9.0, 4.0];
        let mut b = vec![2.0, 9.0];
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatMut::from_slice(&mut b, 2, 1, 2),
        );
        assert_eq!(b, vec![1.0, 2.0]);
    }

    #[test]
    fn left_upper_backward_substitution() {
        // A = [2 1; 0 4], solve A x = [4; 8] -> x2 = 2, x1 = (4-2)/2 = 1.
        let a = vec![2.0, -9.0, 1.0, 4.0];
        let mut b = vec![4.0, 8.0];
        trsm(
            Side::Left,
            Uplo::Upper,
            Trans::No,
            Diag::NonUnit,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatMut::from_slice(&mut b, 2, 1, 2),
        );
        assert_eq!(b, vec![1.0, 2.0]);
    }

    #[test]
    fn trsm_inverts_trmm_all_variants() {
        // For every (side, uplo, trans, diag): trsm(trmm(B)) == B.
        let a = vec![2.0, 0.5, 0.25, 3.0, 1.5, -0.5, 0.75, -0.25, 4.0]; // 3x3 full
        let b0: Vec<f64> = (1..=9).map(f64::from).collect();
        for side in [Side::Left, Side::Right] {
            for uplo in [Uplo::Lower, Uplo::Upper] {
                for trans in [Trans::No, Trans::Yes] {
                    for diag in [Diag::NonUnit, Diag::Unit] {
                        let mut b = b0.clone();
                        {
                            let bm = MatMut::from_slice(&mut b, 3, 3, 3);
                            trmm(side, uplo, trans, diag, 2.0, MatRef::from_slice(&a, 3, 3, 3), bm);
                        }
                        {
                            let bm = MatMut::from_slice(&mut b, 3, 3, 3);
                            trsm(side, uplo, trans, diag, 0.5, MatRef::from_slice(&a, 3, 3, 3), bm);
                        }
                        for (x, y) in b.iter().zip(&b0) {
                            assert!(
                                (x - y).abs() < 1e-10,
                                "{side:?} {uplo:?} {trans:?} {diag:?}: {x} != {y}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn right_side_manual() {
        // Solve X * A = B with A = [2 0; 1 1] lower, B = [4 1].
        // x1*2 + x2*1 = 4, x2*1 = 1 -> x2 = 1, x1 = 1.5.
        let a = vec![2.0, 1.0, -9.0, 1.0];
        let mut b = vec![4.0, 1.0];
        trsm(
            Side::Right,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatMut::from_slice(&mut b, 1, 2, 1),
        );
        assert_eq!(b, vec![1.5, 1.0]);
    }

    #[test]
    fn alpha_zero_clears() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let mut b = vec![5.0, 5.0];
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            0.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatMut::from_slice(&mut b, 2, 1, 2),
        );
        assert_eq!(b, vec![0.0, 0.0]);
    }
}
