//! General matrix-matrix multiply: `C = alpha * op(A) * op(B) + beta * C`.

use crate::scalar::Scalar;
use crate::types::Trans;
use crate::view::{MatMut, MatRef};

/// Sequential tile GEMM, routed through the blocked/packed engine
/// ([`crate::blocked`]).
///
/// `C` is `m × n`, `op(A)` is `m × k`, `op(B)` is `k × n`. When
/// `beta == 1` the engine never re-reads `C` for scaling; for other betas
/// the scale is folded into the first depth-block update, so `C` is
/// streamed exactly once either way.
///
/// # Panics
/// Panics if the operand dimensions are inconsistent.
pub fn gemm<T: Scalar>(
    trans_a: Trans,
    trans_b: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
) {
    let (m, n) = (c.nrows(), c.ncols());
    let (am, ak) = trans_a.apply_dims(a.nrows(), a.ncols());
    let (bk, bn) = trans_b.apply_dims(b.nrows(), b.ncols());
    assert_eq!(am, m, "op(A) rows {am} != C rows {m}");
    assert_eq!(bn, n, "op(B) cols {bn} != C cols {n}");
    assert_eq!(ak, bk, "op(A) cols {ak} != op(B) rows {bk}");
    crate::blocked::gemm_views(trans_a, trans_b, alpha, a, b, beta, c);
}

/// Scales a matrix in place: `C = beta * C` (handles `beta == 0` by writing
/// zeros, so uninitialized-NaN inputs behave like BLAS).
pub fn scale_in_place<T: Scalar>(beta: T, mut c: MatMut<'_, T>) {
    if beta == T::ONE {
        return;
    }
    let n = c.ncols();
    for j in 0..n {
        let col = c.col_mut(j);
        if beta == T::ZERO {
            col.fill(T::ZERO);
        } else {
            for v in col {
                *v *= beta;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(data: &[f64], m: usize, n: usize) -> Vec<f64> {
        assert_eq!(data.len(), m * n);
        data.to_vec()
    }

    #[test]
    fn identity_times_identity() {
        let a = mat(&[1.0, 0.0, 0.0, 1.0], 2, 2);
        let b = a.clone();
        let mut c = vec![0.0; 4];
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatRef::from_slice(&b, 2, 2, 2),
            0.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert_eq!(c, a);
    }

    #[test]
    fn known_product_2x2() {
        // A = [1 2; 3 4] col-major [1,3,2,4]; B = [5 6; 7 8] -> AB = [19 22; 43 50]
        let a = vec![1.0, 3.0, 2.0, 4.0];
        let b = vec![5.0, 7.0, 6.0, 8.0];
        let mut c = vec![1.0; 4];
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatRef::from_slice(&b, 2, 2, 2),
            0.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert_eq!(c, vec![19.0, 43.0, 22.0, 50.0]);
    }

    #[test]
    fn beta_accumulates() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![1.0, 1.0, 1.0, 1.0];
        let mut c = vec![10.0, 20.0, 30.0, 40.0];
        gemm(
            Trans::No,
            Trans::No,
            2.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatRef::from_slice(&b, 2, 2, 2),
            0.5,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert_eq!(c, vec![7.0, 12.0, 17.0, 22.0]);
    }

    #[test]
    fn transposes_agree_with_manual() {
        // A = [1 2; 3 4], A^T B with B = I: expect A^T.
        let a = vec![1.0, 3.0, 2.0, 4.0];
        let b = vec![1.0, 0.0, 0.0, 1.0];
        let mut c = vec![0.0; 4];
        gemm(
            Trans::Yes,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatRef::from_slice(&b, 2, 2, 2),
            0.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert_eq!(c, vec![1.0, 2.0, 3.0, 4.0]);

        let mut c2 = vec![0.0; 4];
        gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            MatRef::from_slice(&b, 2, 2, 2),
            MatRef::from_slice(&a, 2, 2, 2),
            0.0,
            MatMut::from_slice(&mut c2, 2, 2, 2),
        );
        assert_eq!(c2, vec![1.0, 2.0, 3.0, 4.0]); // I * A^T = A^T
    }

    #[test]
    fn double_transpose() {
        // A^T B^T = (BA)^T. A=[1 2;3 4], B=[5 6;7 8]. BA = [23 34; 31 46].
        let a = vec![1.0, 3.0, 2.0, 4.0];
        let b = vec![5.0, 7.0, 6.0, 8.0];
        let mut c = vec![0.0; 4];
        gemm(
            Trans::Yes,
            Trans::Yes,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatRef::from_slice(&b, 2, 2, 2),
            0.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        // (BA)^T col-major: [23, 34, 31, 46]
        assert_eq!(c, vec![23.0, 34.0, 31.0, 46.0]);
    }

    #[test]
    fn rectangular_shapes() {
        // (3x2) * (2x4) = 3x4 of all 2s when entries are 1 and alpha=1.
        let a = vec![1.0; 6];
        let b = vec![1.0; 8];
        let mut c = vec![0.0; 12];
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, 3, 2, 3),
            MatRef::from_slice(&b, 2, 4, 2),
            0.0,
            MatMut::from_slice(&mut c, 3, 4, 3),
        );
        assert!(c.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = vec![0.0; 4];
        let b = vec![0.0; 4];
        let mut c = vec![f64::NAN; 4];
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatRef::from_slice(&b, 2, 2, 2),
            0.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert!(c.iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "op(B) cols")]
    fn dimension_mismatch_panics() {
        let a = vec![0.0; 6];
        let b = vec![0.0; 6];
        let mut c = vec![0.0; 9];
        gemm(
            Trans::No,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, 3, 2, 3),
            MatRef::from_slice(&b, 3, 2, 3),
            0.0,
            MatMut::from_slice(&mut c, 3, 3, 3),
        );
    }
}
