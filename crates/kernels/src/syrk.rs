//! Symmetric rank-k update:
//! `C = alpha * op(A) * op(A)^T + beta * C`, updating only the `uplo`
//! triangle of the symmetric `n × n` matrix `C`.

use crate::blocked::{gemm_with, TB};
use crate::scalar::Scalar;
use crate::types::{Trans, Uplo};
use crate::view::{MatMut, MatRef};

/// Sequential tile SYRK, routed through the blocked GEMM engine.
///
/// With `trans == No`, `A` is `n × k`; with `trans == Yes`, `A` is `k × n`
/// and `op(A) = A^T`. Only the `uplo` triangle of `C` is referenced and
/// updated. The triangle is partitioned into [`TB`]-order block columns:
/// the rectangular part of each block column is one blocked GEMM panel
/// update, and each diagonal block is computed into a dense scratch tile
/// (also by the engine) whose stored triangle is then merged, so the
/// opposite triangle of `C` is never touched.
///
/// # Panics
/// Panics on inconsistent dimensions or non-square `C`.
pub fn syrk<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let n = c.nrows();
    assert_eq!(c.ncols(), n, "C must be square");
    let k = match trans {
        Trans::No => {
            assert_eq!(a.nrows(), n, "A rows must equal C order");
            a.ncols()
        }
        Trans::Yes => {
            assert_eq!(a.ncols(), n, "A cols must equal C order");
            a.nrows()
        }
    };

    if alpha == T::ZERO || k == 0 {
        scale_triangle(beta, uplo, c.rb_mut());
        return;
    }

    let op_a = |i: usize, l: usize| -> T {
        match trans {
            Trans::No => a.at(i, l),
            Trans::Yes => a.at(l, i),
        }
    };

    let mut tmp = vec![T::ZERO; TB * TB];
    for jb in (0..n).step_by(TB) {
        let nb = TB.min(n - jb);
        // Diagonal block: dense product into scratch, merge stored triangle.
        gemm_with(
            nb,
            nb,
            k,
            T::ONE,
            |i, p| op_a(jb + i, p),
            |p, j| op_a(jb + j, p),
            T::ZERO,
            MatMut::from_slice(&mut tmp, nb, nb, nb),
        );
        merge_triangle(uplo, alpha, &tmp, nb, beta, &mut c, jb);
        // Rectangular remainder of the block column: one engine panel.
        match uplo {
            Uplo::Lower => {
                if jb + nb < n {
                    let i0 = jb + nb;
                    let mb = n - i0;
                    gemm_with(
                        mb,
                        nb,
                        k,
                        alpha,
                        |i, p| op_a(i0 + i, p),
                        |p, j| op_a(jb + j, p),
                        beta,
                        c.submatrix_mut(i0, jb, mb, nb),
                    );
                }
            }
            Uplo::Upper => {
                if jb > 0 {
                    gemm_with(
                        jb,
                        nb,
                        k,
                        alpha,
                        op_a,
                        |p, j| op_a(jb + j, p),
                        beta,
                        c.submatrix_mut(0, jb, jb, nb),
                    );
                }
            }
        }
    }
}

/// Merges the `uplo` triangle of a dense `nb × nb` scratch tile into `C` at
/// diagonal offset `jb`: `C = beta * C + alpha * tmp` (triangle only;
/// `beta == 0` overwrites without reading).
pub(crate) fn merge_triangle<T: Scalar>(
    uplo: Uplo,
    alpha: T,
    tmp: &[T],
    nb: usize,
    beta: T,
    c: &mut MatMut<'_, T>,
    jb: usize,
) {
    for j in 0..nb {
        let (lo, hi) = match uplo {
            Uplo::Lower => (j, nb),
            Uplo::Upper => (0, j + 1),
        };
        for i in lo..hi {
            let add = alpha * tmp[i + j * nb];
            if beta == T::ZERO {
                c.set(jb + i, jb + j, add);
            } else {
                c.update(jb + i, jb + j, |v| beta * v + add);
            }
        }
    }
}

/// Scales only the `uplo` triangle of `C` by `beta` (writing zeros when
/// `beta == 0`).
pub fn scale_triangle<T: Scalar>(beta: T, uplo: Uplo, mut c: MatMut<'_, T>) {
    if beta == T::ONE {
        return;
    }
    let n = c.nrows();
    for j in 0..n {
        let (lo, hi) = match uplo {
            Uplo::Lower => (j, n),
            Uplo::Upper => (0, j + 1),
        };
        for i in lo..hi {
            if beta == T::ZERO {
                c.set(i, j, T::ZERO);
            } else {
                c.update(i, j, |v| v * beta);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank1_lower() {
        // A = [1; 2] (2x1). A*A^T = [1 2; 2 4]; lower triangle stored.
        let a = vec![1.0, 2.0];
        let mut c = vec![0.0; 4];
        syrk(
            Uplo::Lower,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, 2, 1, 2),
            0.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert_eq!(c[0], 1.0); // (0,0)
        assert_eq!(c[1], 2.0); // (1,0)
        assert_eq!(c[3], 4.0); // (1,1)
        assert_eq!(c[2], 0.0); // upper part untouched (was 0)
    }

    #[test]
    fn upper_part_not_touched() {
        let a = vec![1.0, 2.0];
        let mut c = vec![9.0; 4];
        syrk(
            Uplo::Lower,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, 2, 1, 2),
            0.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert_eq!(c[2], 9.0, "strict upper triangle must be untouched");
    }

    #[test]
    fn trans_yes_equals_atta() {
        // trans=Yes with A (1x2) = [1 2]: C = A^T A = [1 2; 2 4].
        let a = vec![1.0, 2.0];
        let mut c = vec![0.0; 4];
        syrk(
            Uplo::Upper,
            Trans::Yes,
            1.0,
            MatRef::from_slice(&a, 1, 2, 1),
            0.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert_eq!(c[0], 1.0);
        assert_eq!(c[2], 2.0); // (0,1)
        assert_eq!(c[3], 4.0);
        assert_eq!(c[1], 0.0); // strict lower untouched
    }

    #[test]
    fn beta_only_scales_triangle() {
        let a: Vec<f64> = vec![];
        let mut c = vec![1.0; 4];
        syrk(
            Uplo::Lower,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, 2, 0, 2),
            2.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert_eq!(c, vec![2.0, 2.0, 1.0, 2.0]);
    }
}
