//! Shared element accessors for symmetric/triangular storage.

use crate::scalar::Scalar;
use crate::types::{Diag, Uplo};
use crate::view::MatRef;

/// Reads element `(i, j)` of a symmetric matrix of which only the `uplo`
/// triangle is stored (the other triangle mirrors it).
#[inline]
pub fn sym_at<T: Scalar>(a: &MatRef<'_, T>, uplo: Uplo, i: usize, j: usize) -> T {
    let stored = match uplo {
        Uplo::Lower => i >= j,
        Uplo::Upper => i <= j,
    };
    if stored {
        a.at(i, j)
    } else {
        a.at(j, i)
    }
}

/// Reads element `(i, j)` of a triangular matrix: zero outside the `uplo`
/// triangle, one on the diagonal when `diag` is [`Diag::Unit`].
#[inline]
pub fn tri_at<T: Scalar>(a: &MatRef<'_, T>, uplo: Uplo, diag: Diag, i: usize, j: usize) -> T {
    if i == j {
        return match diag {
            Diag::Unit => T::ONE,
            Diag::NonUnit => a.at(i, j),
        };
    }
    let stored = match uplo {
        Uplo::Lower => i > j,
        Uplo::Upper => i < j,
    };
    if stored {
        a.at(i, j)
    } else {
        T::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym_mirrors_opposite_triangle() {
        // Lower-stored 2x2: [1 .; 2 3] (col-major [1,2,*,3])
        let data = vec![1.0, 2.0, -99.0, 3.0];
        let a = MatRef::from_slice(&data, 2, 2, 2);
        assert_eq!(sym_at(&a, Uplo::Lower, 0, 1), 2.0);
        assert_eq!(sym_at(&a, Uplo::Lower, 1, 0), 2.0);
        assert_eq!(sym_at(&a, Uplo::Lower, 1, 1), 3.0);
        // Upper-stored: garbage is in the lower part instead.
        let data_u = vec![1.0, -99.0, 2.0, 3.0];
        let u = MatRef::from_slice(&data_u, 2, 2, 2);
        assert_eq!(sym_at(&u, Uplo::Upper, 1, 0), 2.0);
    }

    #[test]
    fn tri_zeroes_and_unit_diag() {
        let data = vec![5.0, 2.0, -99.0, 7.0];
        let a = MatRef::from_slice(&data, 2, 2, 2);
        assert_eq!(tri_at(&a, Uplo::Lower, Diag::NonUnit, 0, 1), 0.0);
        assert_eq!(tri_at(&a, Uplo::Lower, Diag::NonUnit, 1, 0), 2.0);
        assert_eq!(tri_at(&a, Uplo::Lower, Diag::NonUnit, 0, 0), 5.0);
        assert_eq!(tri_at(&a, Uplo::Lower, Diag::Unit, 0, 0), 1.0);
        assert_eq!(tri_at(&a, Uplo::Upper, Diag::NonUnit, 1, 0), 0.0);
    }
}
