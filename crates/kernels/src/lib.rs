//! # xk-kernels — BLAS-3 tile kernels and the GPU performance model
//!
//! Two faces of the same coin:
//!
//! * **Numerics** — real tile kernels over column-major (LAPACK-layout)
//!   views: [`gemm`], [`symm`], [`syrk`], [`syr2k`], [`trmm`], [`trsm`],
//!   plus the `la*` auxiliaries and rayon-parallel whole-matrix helpers in
//!   [`parallel`]. Every routine's bulk update runs on a BLIS-style
//!   blocked, packed, register-tiled GEMM engine (MC/KC/NC cache blocking,
//!   thread-local pack buffers, an `MR × NR` microkernel); triangular and
//!   symmetric structure is handled by block partitioning around that
//!   engine. The microkernel is picked per machine by the runtime ISA
//!   dispatcher in [`simd`] (AVX-512 / AVX2 / NEON `std::arch` kernels
//!   with a portable scalar fallback, overridable via `XK_KERNEL_ISA`).
//!   The pre-blocking scalar GEMM survives as [`naive::gemm_naive`]
//!   for baseline benchmarking.
//! * **Timing** — [`GpuModel`], a calibrated V100 kernel-time model used by
//!   the simulated executors: the same tile task that *computes* on the CPU
//!   is *charged* the time cuBLAS would take on the paper's GPU.
//!
//! ```
//! use xk_kernels::{gemm, MatMut, MatRef, Trans};
//!
//! let a = [1.0f64, 3.0, 2.0, 4.0]; // [1 2; 3 4] column-major
//! let b = [1.0f64, 0.0, 0.0, 1.0];
//! let mut c = [0.0f64; 4];
//! gemm(Trans::No, Trans::No, 1.0,
//!      MatRef::from_slice(&a, 2, 2, 2),
//!      MatRef::from_slice(&b, 2, 2, 2),
//!      0.0, MatMut::from_slice(&mut c, 2, 2, 2));
//! assert_eq!(c, a);
//! ```

#![warn(missing_docs)]

pub mod aux;
mod blocked;
mod gemm;
mod helpers;
pub mod naive;
pub mod parallel;
pub mod perfmodel;
pub mod reference;
mod scalar;
pub mod simd;
mod symm;
mod syr2k;
mod syrk;
mod trmm;
mod trsm;
mod types;
mod view;

pub use blocked::{KC, MC, MR, NC, NR, TB};
pub use gemm::{gemm, scale_in_place};
pub use simd::{detected_isa, kernel_shape, selected_isa, Isa, KernelShape, ISA_ENV};
pub use helpers::{sym_at, tri_at};
pub use perfmodel::{GpuModel, TileOp, PITCHED_COPY_FACTOR};
pub use scalar::Scalar;
pub use symm::symm;
pub use syr2k::syr2k;
pub use syrk::{scale_triangle, syrk};
pub use trmm::trmm;
pub use trsm::trsm;
pub use types::{Diag, Routine, Side, Trans, Uplo};
pub use view::{MatMut, MatRef};
