//! # xk-kernels — BLAS-3 tile kernels and the GPU performance model
//!
//! Two faces of the same coin:
//!
//! * **Numerics** — real, sequential tile kernels over column-major
//!   (LAPACK-layout) views: [`gemm`], [`symm`], [`syrk`], [`syr2k`],
//!   [`trmm`], [`trsm`], plus the `la*` auxiliaries and rayon-parallel
//!   whole-matrix helpers in [`parallel`]. These execute the tiled
//!   algorithms for correctness testing and real CPU use.
//! * **Timing** — [`GpuModel`], a calibrated V100 kernel-time model used by
//!   the simulated executors: the same tile task that *computes* on the CPU
//!   is *charged* the time cuBLAS would take on the paper's GPU.
//!
//! ```
//! use xk_kernels::{gemm, MatMut, MatRef, Trans};
//!
//! let a = [1.0f64, 3.0, 2.0, 4.0]; // [1 2; 3 4] column-major
//! let b = [1.0f64, 0.0, 0.0, 1.0];
//! let mut c = [0.0f64; 4];
//! gemm(Trans::No, Trans::No, 1.0,
//!      MatRef::from_slice(&a, 2, 2, 2),
//!      MatRef::from_slice(&b, 2, 2, 2),
//!      0.0, MatMut::from_slice(&mut c, 2, 2, 2));
//! assert_eq!(c, a);
//! ```

#![warn(missing_docs)]

pub mod aux;
mod gemm;
mod helpers;
pub mod parallel;
pub mod perfmodel;
pub mod reference;
mod scalar;
mod symm;
mod syr2k;
mod syrk;
mod trmm;
mod trsm;
mod types;
mod view;

pub use gemm::{gemm, scale_in_place};
pub use helpers::{sym_at, tri_at};
pub use perfmodel::{GpuModel, TileOp, PITCHED_COPY_FACTOR};
pub use scalar::Scalar;
pub use symm::symm;
pub use syr2k::syr2k;
pub use syrk::{scale_triangle, syrk};
pub use trmm::trmm;
pub use trsm::trsm;
pub use types::{Diag, Routine, Side, Trans, Uplo};
pub use view::{MatMut, MatRef};
