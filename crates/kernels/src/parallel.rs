//! Rayon-parallel whole-matrix operations.
//!
//! The task runtime parallelizes *across* tiles, so the tile kernels stay
//! sequential. These helpers parallelize a single large operation instead —
//! used by the examples, by tests that need fast reference results, and as
//! the host-side compute path of the parallel executor.

use rayon::prelude::*;

use crate::gemm::gemm;
use crate::naive::gemm_naive;
use crate::scalar::Scalar;
use crate::types::Trans;
use crate::view::{MatMut, MatRef};

/// Copyable wrapper making a raw pointer Send + Sync for disjoint-column
/// parallelism (each rayon task touches a distinct column range).
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Sync> Sync for SendPtr<T> {}

/// Parallel GEMM: `C = alpha * op(A) * op(B) + beta * C`, parallelized over
/// macro-panels of `C` that feed the blocked engine.
///
/// The split dimension is chosen from the shape: when `m > n` the work is
/// divided into row panels (each pairing with a row panel of `op(A)`),
/// otherwise into column panels (pairing with column panels of `op(B)`).
/// Panel widths are derived from the matrix — about two panels per rayon
/// thread, rounded up to a multiple of the *dispatched* microkernel tile
/// ([`crate::simd::kernel_shape`] rows/columns, so wide SIMD tiles don't
/// fringe on every panel boundary) and no worker inherits a fringe-only
/// panel. Matrices too small
/// to split run the sequential engine directly; in particular a tall-skinny
/// product (`n < 128`, large `m`) still uses every thread instead of
/// serializing on a single 64-column panel.
pub fn par_gemm<T: Scalar>(
    trans_a: Trans,
    trans_b: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let (m, n) = (c.nrows(), c.ncols());
    if n == 0 || m == 0 {
        return;
    }
    let tasks = 2 * rayon::current_num_threads().max(1);
    let split_rows = m > n;
    let shape = crate::simd::kernel_shape::<T>(crate::simd::selected_isa());
    let (dim, unit) = if split_rows { (m, shape.mr) } else { (n, shape.nr) };
    let panel = dim.div_ceil(tasks).next_multiple_of(unit);
    if panel >= dim {
        gemm(trans_a, trans_b, alpha, a, b, beta, c);
        return;
    }
    let ptr = SendPtr(c.rb_mut().col_mut(0).as_mut_ptr());
    let ld = c.ld();
    let n_panels = dim.div_ceil(panel);
    (0..n_panels).into_par_iter().for_each(move |p| {
        let ptr = ptr; // capture the whole Send wrapper, not its field
        let x0 = p * panel;
        let w = panel.min(dim - x0);
        if split_rows {
            // SAFETY: panels [x0, x0+w) are disjoint row ranges of C.
            let c_panel = unsafe { MatMut::from_raw(ptr.0.add(x0), w, n, ld) };
            let a_panel = match trans_a {
                Trans::No => a.submatrix(x0, 0, w, a.ncols()),
                Trans::Yes => a.submatrix(0, x0, a.nrows(), w),
            };
            gemm(trans_a, trans_b, alpha, a_panel, b, beta, c_panel);
        } else {
            // SAFETY: panels [x0, x0+w) are disjoint column ranges of C.
            let c_panel = unsafe { MatMut::from_raw(ptr.0.add(x0 * ld), m, w, ld) };
            let b_panel = match trans_b {
                Trans::No => b.submatrix(0, x0, b.nrows(), w),
                Trans::Yes => b.submatrix(x0, 0, w, b.ncols()),
            };
            gemm(trans_a, trans_b, alpha, a, b_panel, beta, c_panel);
        }
    });
}

/// The pre-blocking parallel GEMM: fixed-width column panels (64-column
/// floor) over the scalar [`gemm_naive`] kernel. Kept as the benchmark
/// baseline for the blocked engine speedup measurement.
pub fn par_gemm_naive<T: Scalar>(
    trans_a: Trans,
    trans_b: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let (m, n) = (c.nrows(), c.ncols());
    if n == 0 || m == 0 {
        return;
    }
    let panel = 64.max(n / (4 * rayon::current_num_threads().max(1))).min(n.max(1));
    let ptr = SendPtr(c.rb_mut().col_mut(0).as_mut_ptr());
    let ld = c.ld();
    let n_panels = n.div_ceil(panel);
    (0..n_panels).into_par_iter().for_each(move |p| {
        let ptr = ptr; // capture the whole Send wrapper, not its field
        let j0 = p * panel;
        let nn = panel.min(n - j0);
        // SAFETY: panels [j0, j0+nn) are disjoint column ranges of C.
        let c_panel = unsafe { MatMut::from_raw(ptr.0.add(j0 * ld), m, nn, ld) };
        let b_panel = match trans_b {
            Trans::No => b.submatrix(0, j0, b.nrows(), nn),
            Trans::Yes => b.submatrix(j0, 0, nn, b.ncols()),
        };
        gemm_naive(trans_a, trans_b, alpha, a, b_panel, beta, c_panel);
    });
}

/// Parallel elementwise fill with a deterministic pseudo-random pattern —
/// handy for building large reproducible test matrices quickly.
/// `seed` selects the pattern; values are in `[-0.5, 0.5)`.
pub fn par_fill_pattern<T: Scalar>(mut a: MatMut<'_, T>, seed: u64) {
    let (m, ld) = (a.nrows(), a.ld());
    let n = a.ncols();
    if m == 0 || n == 0 {
        return;
    }
    let ptr = SendPtr(a.rb_mut().col_mut(0).as_mut_ptr());
    (0..n).into_par_iter().for_each(move |j| {
        let ptr = ptr; // capture the whole Send wrapper, not its field
        // SAFETY: each iteration touches only column j.
        let col = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(j * ld), m) };
        for (i, v) in col.iter_mut().enumerate() {
            *v = T::from_f64(hash01(seed, i as u64, j as u64) - 0.5);
        }
    });
}

/// SplitMix64-style hash to a uniform `[0,1)` value.
fn hash01(seed: u64, i: u64, j: u64) -> f64 {
    let mut z = seed
        .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(j.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aux::max_abs_diff;

    #[test]
    fn par_gemm_matches_sequential() {
        let (m, n, k) = (67, 129, 43);
        let mut a = vec![0.0f64; m * k];
        let mut b = vec![0.0f64; k * n];
        par_fill_pattern(MatMut::from_slice(&mut a, m, k, m), 1);
        par_fill_pattern(MatMut::from_slice(&mut b, k, n, k), 2);
        let mut c_par = vec![1.0f64; m * n];
        let mut c_seq = vec![1.0f64; m * n];
        par_gemm(
            Trans::No,
            Trans::No,
            2.0,
            MatRef::from_slice(&a, m, k, m),
            MatRef::from_slice(&b, k, n, k),
            0.5,
            MatMut::from_slice(&mut c_par, m, n, m),
        );
        gemm(
            Trans::No,
            Trans::No,
            2.0,
            MatRef::from_slice(&a, m, k, m),
            MatRef::from_slice(&b, k, n, k),
            0.5,
            MatMut::from_slice(&mut c_seq, m, n, m),
        );
        let d = max_abs_diff(
            MatRef::from_slice(&c_par, m, n, m),
            MatRef::from_slice(&c_seq, m, n, m),
        );
        assert!(d < 1e-12, "par/seq diverged by {d}");
    }

    #[test]
    fn par_gemm_trans_b_matches_sequential() {
        let (m, n, k) = (31, 57, 23);
        let mut a = vec![0.0f64; m * k];
        let mut b = vec![0.0f64; n * k]; // stored n x k for trans_b = Yes
        par_fill_pattern(MatMut::from_slice(&mut a, m, k, m), 3);
        par_fill_pattern(MatMut::from_slice(&mut b, n, k, n), 4);
        let mut c_par = vec![0.0f64; m * n];
        let mut c_seq = vec![0.0f64; m * n];
        par_gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            MatRef::from_slice(&a, m, k, m),
            MatRef::from_slice(&b, n, k, n),
            0.0,
            MatMut::from_slice(&mut c_par, m, n, m),
        );
        gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            MatRef::from_slice(&a, m, k, m),
            MatRef::from_slice(&b, n, k, n),
            0.0,
            MatMut::from_slice(&mut c_seq, m, n, m),
        );
        let d = max_abs_diff(
            MatRef::from_slice(&c_par, m, n, m),
            MatRef::from_slice(&c_seq, m, n, m),
        );
        assert!(d < 1e-12);
    }

    #[test]
    fn par_gemm_row_split_matches_sequential() {
        // Tall-skinny: m >> n triggers the row-panel split (the old
        // column-only panelling serialized this shape).
        let (m, n, k) = (301, 9, 37);
        let mut a = vec![0.0f64; m * k];
        let mut b = vec![0.0f64; k * n];
        par_fill_pattern(MatMut::from_slice(&mut a, m, k, m), 11);
        par_fill_pattern(MatMut::from_slice(&mut b, k, n, k), 12);
        let mut c_par = vec![0.5f64; m * n];
        let mut c_seq = vec![0.5f64; m * n];
        par_gemm(
            Trans::No,
            Trans::No,
            1.5,
            MatRef::from_slice(&a, m, k, m),
            MatRef::from_slice(&b, k, n, k),
            -1.0,
            MatMut::from_slice(&mut c_par, m, n, m),
        );
        gemm(
            Trans::No,
            Trans::No,
            1.5,
            MatRef::from_slice(&a, m, k, m),
            MatRef::from_slice(&b, k, n, k),
            -1.0,
            MatMut::from_slice(&mut c_seq, m, n, m),
        );
        let d = max_abs_diff(
            MatRef::from_slice(&c_par, m, n, m),
            MatRef::from_slice(&c_seq, m, n, m),
        );
        assert!(d < 1e-12, "row-split par/seq diverged by {d}");
    }

    #[test]
    fn par_gemm_row_split_trans_a_matches_sequential() {
        // trans_a = Yes with m > n: the row panel pairs with a column
        // range of the stored A.
        let (m, n, k) = (129, 17, 31);
        let mut a = vec![0.0f64; k * m]; // stored k x m for trans_a = Yes
        let mut b = vec![0.0f64; k * n];
        par_fill_pattern(MatMut::from_slice(&mut a, k, m, k), 13);
        par_fill_pattern(MatMut::from_slice(&mut b, k, n, k), 14);
        let mut c_par = vec![0.0f64; m * n];
        let mut c_seq = vec![0.0f64; m * n];
        par_gemm(
            Trans::Yes,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, k, m, k),
            MatRef::from_slice(&b, k, n, k),
            0.0,
            MatMut::from_slice(&mut c_par, m, n, m),
        );
        gemm(
            Trans::Yes,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, k, m, k),
            MatRef::from_slice(&b, k, n, k),
            0.0,
            MatMut::from_slice(&mut c_seq, m, n, m),
        );
        let d = max_abs_diff(
            MatRef::from_slice(&c_par, m, n, m),
            MatRef::from_slice(&c_seq, m, n, m),
        );
        assert!(d < 1e-12);
    }

    #[test]
    fn par_gemm_naive_matches_blocked_par_gemm() {
        let (m, n, k) = (83, 140, 29);
        let mut a = vec![0.0f64; m * k];
        let mut b = vec![0.0f64; k * n];
        par_fill_pattern(MatMut::from_slice(&mut a, m, k, m), 21);
        par_fill_pattern(MatMut::from_slice(&mut b, k, n, k), 22);
        let mut c_new = vec![0.25f64; m * n];
        let mut c_old = vec![0.25f64; m * n];
        par_gemm(
            Trans::No,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, m, k, m),
            MatRef::from_slice(&b, k, n, k),
            2.0,
            MatMut::from_slice(&mut c_new, m, n, m),
        );
        par_gemm_naive(
            Trans::No,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, m, k, m),
            MatRef::from_slice(&b, k, n, k),
            2.0,
            MatMut::from_slice(&mut c_old, m, n, m),
        );
        let d = max_abs_diff(
            MatRef::from_slice(&c_new, m, n, m),
            MatRef::from_slice(&c_old, m, n, m),
        );
        assert!(d < 1e-10, "blocked and naive parallel paths diverged by {d}");
    }

    #[test]
    fn fill_pattern_is_deterministic_and_seed_sensitive() {
        let mut x1 = vec![0.0f64; 12];
        let mut x2 = vec![0.0f64; 12];
        let mut y = vec![0.0f64; 12];
        par_fill_pattern(MatMut::from_slice(&mut x1, 3, 4, 3), 7);
        par_fill_pattern(MatMut::from_slice(&mut x2, 3, 4, 3), 7);
        par_fill_pattern(MatMut::from_slice(&mut y, 3, 4, 3), 8);
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
        assert!(x1.iter().all(|v| (-0.5..0.5).contains(v)));
    }
}
