//! Rayon-parallel whole-matrix operations.
//!
//! The task runtime parallelizes *across* tiles, so the tile kernels stay
//! sequential. These helpers parallelize a single large operation instead —
//! used by the examples, by tests that need fast reference results, and as
//! the host-side compute path of the parallel executor.

use rayon::prelude::*;

use crate::gemm::gemm;
use crate::scalar::Scalar;
use crate::types::Trans;
use crate::view::{MatMut, MatRef};

/// Copyable wrapper making a raw pointer Send + Sync for disjoint-column
/// parallelism (each rayon task touches a distinct column range).
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Sync> Sync for SendPtr<T> {}

/// Parallel GEMM: `C = alpha * op(A) * op(B) + beta * C`, parallelized
/// over column panels of `C` (each panel pairs with a column panel of
/// `op(B)`, so panels are fully independent).
pub fn par_gemm<T: Scalar>(
    trans_a: Trans,
    trans_b: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let (m, n) = (c.nrows(), c.ncols());
    let panel = 64.max(n / (4 * rayon::current_num_threads().max(1))).min(n.max(1));
    if n == 0 || m == 0 {
        return;
    }
    let ptr = SendPtr(c.rb_mut().col_mut(0).as_mut_ptr());
    let ld = c.ld();
    let n_panels = n.div_ceil(panel);
    (0..n_panels).into_par_iter().for_each(move |p| {
        let ptr = ptr; // capture the whole Send wrapper, not its field
        let j0 = p * panel;
        let nn = panel.min(n - j0);
        // SAFETY: panels [j0, j0+nn) are disjoint column ranges of C.
        let c_panel = unsafe { MatMut::from_raw(ptr.0.add(j0 * ld), m, nn, ld) };
        let b_panel = match trans_b {
            Trans::No => b.submatrix(0, j0, b.nrows(), nn),
            Trans::Yes => b.submatrix(j0, 0, nn, b.ncols()),
        };
        gemm(trans_a, trans_b, alpha, a, b_panel, beta, c_panel);
    });
}

/// Parallel elementwise fill with a deterministic pseudo-random pattern —
/// handy for building large reproducible test matrices quickly.
/// `seed` selects the pattern; values are in `[-0.5, 0.5)`.
pub fn par_fill_pattern<T: Scalar>(mut a: MatMut<'_, T>, seed: u64) {
    let (m, ld) = (a.nrows(), a.ld());
    let n = a.ncols();
    if m == 0 || n == 0 {
        return;
    }
    let ptr = SendPtr(a.rb_mut().col_mut(0).as_mut_ptr());
    (0..n).into_par_iter().for_each(move |j| {
        let ptr = ptr; // capture the whole Send wrapper, not its field
        // SAFETY: each iteration touches only column j.
        let col = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(j * ld), m) };
        for (i, v) in col.iter_mut().enumerate() {
            *v = T::from_f64(hash01(seed, i as u64, j as u64) - 0.5);
        }
    });
}

/// SplitMix64-style hash to a uniform `[0,1)` value.
fn hash01(seed: u64, i: u64, j: u64) -> f64 {
    let mut z = seed
        .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(j.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aux::max_abs_diff;

    #[test]
    fn par_gemm_matches_sequential() {
        let (m, n, k) = (67, 129, 43);
        let mut a = vec![0.0f64; m * k];
        let mut b = vec![0.0f64; k * n];
        par_fill_pattern(MatMut::from_slice(&mut a, m, k, m), 1);
        par_fill_pattern(MatMut::from_slice(&mut b, k, n, k), 2);
        let mut c_par = vec![1.0f64; m * n];
        let mut c_seq = vec![1.0f64; m * n];
        par_gemm(
            Trans::No,
            Trans::No,
            2.0,
            MatRef::from_slice(&a, m, k, m),
            MatRef::from_slice(&b, k, n, k),
            0.5,
            MatMut::from_slice(&mut c_par, m, n, m),
        );
        gemm(
            Trans::No,
            Trans::No,
            2.0,
            MatRef::from_slice(&a, m, k, m),
            MatRef::from_slice(&b, k, n, k),
            0.5,
            MatMut::from_slice(&mut c_seq, m, n, m),
        );
        let d = max_abs_diff(
            MatRef::from_slice(&c_par, m, n, m),
            MatRef::from_slice(&c_seq, m, n, m),
        );
        assert!(d < 1e-12, "par/seq diverged by {d}");
    }

    #[test]
    fn par_gemm_trans_b_matches_sequential() {
        let (m, n, k) = (31, 57, 23);
        let mut a = vec![0.0f64; m * k];
        let mut b = vec![0.0f64; n * k]; // stored n x k for trans_b = Yes
        par_fill_pattern(MatMut::from_slice(&mut a, m, k, m), 3);
        par_fill_pattern(MatMut::from_slice(&mut b, n, k, n), 4);
        let mut c_par = vec![0.0f64; m * n];
        let mut c_seq = vec![0.0f64; m * n];
        par_gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            MatRef::from_slice(&a, m, k, m),
            MatRef::from_slice(&b, n, k, n),
            0.0,
            MatMut::from_slice(&mut c_par, m, n, m),
        );
        gemm(
            Trans::No,
            Trans::Yes,
            1.0,
            MatRef::from_slice(&a, m, k, m),
            MatRef::from_slice(&b, n, k, n),
            0.0,
            MatMut::from_slice(&mut c_seq, m, n, m),
        );
        let d = max_abs_diff(
            MatRef::from_slice(&c_par, m, n, m),
            MatRef::from_slice(&c_seq, m, n, m),
        );
        assert!(d < 1e-12);
    }

    #[test]
    fn fill_pattern_is_deterministic_and_seed_sensitive() {
        let mut x1 = vec![0.0f64; 12];
        let mut x2 = vec![0.0f64; 12];
        let mut y = vec![0.0f64; 12];
        par_fill_pattern(MatMut::from_slice(&mut x1, 3, 4, 3), 7);
        par_fill_pattern(MatMut::from_slice(&mut x2, 3, 4, 3), 7);
        par_fill_pattern(MatMut::from_slice(&mut y, 3, 4, 3), 8);
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
        assert!(x1.iter().all(|v| (-0.5..0.5).contains(v)));
    }
}
