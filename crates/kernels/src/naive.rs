//! The pre-blocking scalar GEMM, kept as a benchmark baseline.
//!
//! This was the crate's production GEMM before the blocked/packed engine
//! ([`crate::blocked`]) replaced it. It remains exported for two reasons:
//! the Criterion benches and `bench_snapshot` measure the blocked engine's
//! speedup against it, and it is a structurally different second
//! implementation the tests can cross-check (besides `reference.rs`).

use crate::gemm::scale_in_place;
use crate::scalar::Scalar;
use crate::types::Trans;
use crate::view::{MatMut, MatRef};

/// Naive (unblocked, unpacked) GEMM:
/// `C = alpha * op(A) * op(B) + beta * C` via column-axpy / dot loops.
///
/// # Panics
/// Panics if the operand dimensions are inconsistent.
pub fn gemm_naive<T: Scalar>(
    trans_a: Trans,
    trans_b: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let (m, n) = (c.nrows(), c.ncols());
    let (am, ak) = trans_a.apply_dims(a.nrows(), a.ncols());
    let (bk, bn) = trans_b.apply_dims(b.nrows(), b.ncols());
    assert_eq!(am, m, "op(A) rows {am} != C rows {m}");
    assert_eq!(bn, n, "op(B) cols {bn} != C cols {n}");
    assert_eq!(ak, bk, "op(A) cols {ak} != op(B) rows {bk}");
    let k = ak;

    scale_in_place(beta, c.rb_mut());
    if alpha == T::ZERO || k == 0 {
        return;
    }

    match (trans_a, trans_b) {
        (Trans::No, Trans::No) => {
            // Column-axpy formulation: C(:,j) += alpha * B(l,j) * A(:,l).
            for j in 0..n {
                for l in 0..k {
                    let blj = alpha * b.at(l, j);
                    if blj == T::ZERO {
                        continue;
                    }
                    let acol = a.col(l);
                    let ccol = c.col_mut(j);
                    for (ci, &ai) in ccol.iter_mut().zip(acol) {
                        *ci += blj * ai;
                    }
                }
            }
        }
        (Trans::Yes, Trans::No) => {
            // C(i,j) += alpha * dot(A(:,i), B(:,j)) — both columns contiguous.
            for j in 0..n {
                for i in 0..m {
                    let mut acc = T::ZERO;
                    for (&x, &y) in a.col(i).iter().zip(b.col(j)) {
                        acc += x * y;
                    }
                    c.update(i, j, |v| v + alpha * acc);
                }
            }
        }
        (Trans::No, Trans::Yes) => {
            // C(:,j) += alpha * B(j,l) * A(:,l).
            for j in 0..n {
                for l in 0..k {
                    let bjl = alpha * b.at(j, l);
                    if bjl == T::ZERO {
                        continue;
                    }
                    let acol = a.col(l);
                    let ccol = c.col_mut(j);
                    for (ci, &ai) in ccol.iter_mut().zip(acol) {
                        *ci += bjl * ai;
                    }
                }
            }
        }
        (Trans::Yes, Trans::Yes) => {
            for j in 0..n {
                for i in 0..m {
                    let mut acc = T::ZERO;
                    for l in 0..k {
                        acc += a.at(l, i) * b.at(j, l);
                    }
                    c.update(i, j, |v| v + alpha * acc);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_and_blocked_agree() {
        let m = 23;
        let n = 17;
        let k = 31;
        let a: Vec<f64> = (0..m * k).map(|x| (x as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..k * n).map(|x| (x as f64 * 0.11).cos()).collect();
        let c0: Vec<f64> = (0..m * n).map(|x| x as f64 * 0.01 - 1.0).collect();
        for ta in [Trans::No, Trans::Yes] {
            for tb in [Trans::No, Trans::Yes] {
                let (am, an) = match ta {
                    Trans::No => (m, k),
                    Trans::Yes => (k, m),
                };
                let (bm, bn) = match tb {
                    Trans::No => (k, n),
                    Trans::Yes => (n, k),
                };
                let ar = MatRef::from_slice(&a, am, an, am);
                let br = MatRef::from_slice(&b, bm, bn, bm);
                let mut c1 = c0.clone();
                let mut c2 = c0.clone();
                gemm_naive(ta, tb, 1.5, ar, br, -0.5, MatMut::from_slice(&mut c1, m, n, m));
                crate::gemm::gemm(ta, tb, 1.5, ar, br, -0.5, MatMut::from_slice(&mut c2, m, n, m));
                for (x, y) in c1.iter().zip(&c2) {
                    assert!((x - y).abs() < 1e-12, "{ta:?}/{tb:?}: {x} vs {y}");
                }
            }
        }
    }
}
