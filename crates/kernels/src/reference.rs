//! Independent reference implementations used to validate the kernels and
//! the tiled algorithms.
//!
//! These deliberately take a different route from the production kernels:
//! symmetric/triangular operands are *materialized* into full dense
//! matrices, then a plain `i, j, l` triple loop computes the product. Slow,
//! obviously correct, and structurally unrelated to the code under test.

use crate::scalar::Scalar;
use crate::types::{Diag, Side, Trans, Uplo};
use crate::view::MatRef;

/// Dense column-major owned matrix used by the reference path.
#[derive(Clone, Debug, PartialEq)]
pub struct Dense<T> {
    /// Rows.
    pub m: usize,
    /// Columns.
    pub n: usize,
    /// Column-major data, `ld == m`.
    pub data: Vec<T>,
}

impl<T: Scalar> Dense<T> {
    /// Zero matrix.
    pub fn zeros(m: usize, n: usize) -> Self {
        Dense {
            m,
            n,
            data: vec![T::ZERO; m * n],
        }
    }

    /// Copies a view into an owned dense matrix.
    pub fn from_view(v: MatRef<'_, T>) -> Self {
        Dense {
            m: v.nrows(),
            n: v.ncols(),
            data: v.to_compact_vec(),
        }
    }

    /// Element access.
    pub fn at(&self, i: usize, j: usize) -> T {
        self.data[i + j * self.m]
    }

    /// Element write.
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        self.data[i + j * self.m] = v;
    }

    /// Borrowed view of the matrix.
    pub fn view(&self) -> MatRef<'_, T> {
        MatRef::from_slice(&self.data, self.m, self.n, self.m)
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Dense<T> {
        let mut t = Dense::zeros(self.n, self.m);
        for j in 0..self.n {
            for i in 0..self.m {
                t.set(j, i, self.at(i, j));
            }
        }
        t
    }
}

/// Materializes `op(A)` as a dense matrix.
pub fn materialize_op<T: Scalar>(a: MatRef<'_, T>, trans: Trans) -> Dense<T> {
    let d = Dense::from_view(a);
    match trans {
        Trans::No => d,
        Trans::Yes => d.transpose(),
    }
}

/// Materializes a symmetric matrix stored in one triangle into a full one.
pub fn materialize_sym<T: Scalar>(a: MatRef<'_, T>, uplo: Uplo) -> Dense<T> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    let mut d = Dense::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            let v = crate::helpers::sym_at(&a, uplo, i, j);
            d.set(i, j, v);
        }
    }
    d
}

/// Materializes a triangular matrix (with optional unit diagonal) into a
/// full dense matrix with explicit zeros.
pub fn materialize_tri<T: Scalar>(a: MatRef<'_, T>, uplo: Uplo, diag: Diag) -> Dense<T> {
    let n = a.nrows();
    assert_eq!(a.ncols(), n);
    let mut d = Dense::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            d.set(i, j, crate::helpers::tri_at(&a, uplo, diag, i, j));
        }
    }
    d
}

/// Plain triple-loop GEMM on dense matrices:
/// `C = alpha * A * B + beta * C`.
pub fn ref_gemm_dense<T: Scalar>(alpha: T, a: &Dense<T>, b: &Dense<T>, beta: T, c: &mut Dense<T>) {
    assert_eq!(a.n, b.m);
    assert_eq!(c.m, a.m);
    assert_eq!(c.n, b.n);
    for i in 0..c.m {
        for j in 0..c.n {
            let mut acc = T::ZERO;
            for l in 0..a.n {
                acc += a.at(i, l) * b.at(l, j);
            }
            let old = c.at(i, j);
            c.set(i, j, alpha * acc + beta * old);
        }
    }
}

/// Reference GEMM with transposes, against views.
pub fn ref_gemm<T: Scalar>(
    trans_a: Trans,
    trans_b: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: MatRef<'_, T>,
) -> Dense<T> {
    let fa = materialize_op(a, trans_a);
    let fb = materialize_op(b, trans_b);
    let mut fc = Dense::from_view(c);
    ref_gemm_dense(alpha, &fa, &fb, beta, &mut fc);
    fc
}

/// Reference SYMM.
pub fn ref_symm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: MatRef<'_, T>,
) -> Dense<T> {
    let fa = materialize_sym(a, uplo);
    let fb = Dense::from_view(b);
    let mut fc = Dense::from_view(c);
    match side {
        Side::Left => ref_gemm_dense(alpha, &fa, &fb, beta, &mut fc),
        Side::Right => ref_gemm_dense(alpha, &fb, &fa, beta, &mut fc),
    }
    fc
}

/// Reference SYRK. The returned matrix is fully formed (both triangles);
/// compare only the `uplo` triangle against the kernel output.
pub fn ref_syrk<T: Scalar>(
    trans: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    beta: T,
    c: MatRef<'_, T>,
) -> Dense<T> {
    let fa = materialize_op(a, trans);
    let fat = fa.transpose();
    let mut fc = Dense::from_view(c);
    ref_gemm_dense(alpha, &fa, &fat, beta, &mut fc);
    fc
}

/// Reference SYR2K (both triangles formed).
pub fn ref_syr2k<T: Scalar>(
    trans: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: MatRef<'_, T>,
) -> Dense<T> {
    let fa = materialize_op(a, trans);
    let fb = materialize_op(b, trans);
    let fbt = fb.transpose();
    let fat = fa.transpose();
    let mut fc = Dense::from_view(c);
    ref_gemm_dense(alpha, &fa, &fbt, beta, &mut fc);
    ref_gemm_dense(alpha, &fb, &fat, T::ONE, &mut fc);
    fc
}

/// Reference TRMM: returns `alpha * op(A) * B` (left) or
/// `alpha * B * op(A)` (right).
pub fn ref_trmm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
) -> Dense<T> {
    let tri = materialize_tri(a, uplo, diag);
    let op = match trans {
        Trans::No => tri,
        Trans::Yes => tri.transpose(),
    };
    let fb = Dense::from_view(b);
    let mut out = Dense::zeros(fb.m, fb.n);
    match side {
        Side::Left => ref_gemm_dense(alpha, &op, &fb, T::ZERO, &mut out),
        Side::Right => ref_gemm_dense(alpha, &fb, &op, T::ZERO, &mut out),
    }
    out
}

/// Residual of a TRSM solution: `max|op(A) * X - alpha * B|` (left) or
/// `max|X * op(A) - alpha * B|` (right), normalized by `max(1, |B|_max)`.
/// A correct solve has a residual near machine epsilon times the problem
/// size.
pub fn trsm_residual<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: T,
    a: MatRef<'_, T>,
    x: MatRef<'_, T>,
    b: MatRef<'_, T>,
) -> f64 {
    let recomposed = ref_trmm(side, uplo, trans, diag, T::ONE, a, x);
    let mut worst = 0.0f64;
    let mut bmax = 1.0f64;
    for j in 0..b.ncols() {
        for i in 0..b.nrows() {
            let want = alpha.to_f64() * b.at(i, j).to_f64();
            let got = recomposed.at(i, j).to_f64();
            worst = worst.max((want - got).abs());
            bmax = bmax.max(want.abs());
        }
    }
    worst / bmax
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_transpose() {
        let d = Dense {
            m: 2,
            n: 3,
            data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        };
        let t = d.transpose();
        assert_eq!((t.m, t.n), (3, 2));
        assert_eq!(t.at(0, 1), d.at(1, 0));
        assert_eq!(t.at(2, 0), d.at(0, 2));
    }

    #[test]
    fn ref_gemm_identity() {
        let i2 = Dense {
            m: 2,
            n: 2,
            data: vec![1.0, 0.0, 0.0, 1.0],
        };
        let b = Dense {
            m: 2,
            n: 2,
            data: vec![5.0, 6.0, 7.0, 8.0],
        };
        let mut c = Dense::zeros(2, 2);
        ref_gemm_dense(1.0, &i2, &b, 0.0, &mut c);
        assert_eq!(c.data, b.data);
    }

    #[test]
    fn kernel_gemm_matches_reference() {
        let a: Vec<f64> = (0..12).map(|x| x as f64 * 0.5).collect(); // 3x4
        let b: Vec<f64> = (0..20).map(|x| x as f64 - 7.0).collect(); // 4x5
        let c0: Vec<f64> = (0..15).map(|x| x as f64 * 0.1).collect(); // 3x5
        let ar = MatRef::from_slice(&a, 3, 4, 3);
        let br = MatRef::from_slice(&b, 4, 5, 4);
        let want = ref_gemm(
            Trans::No,
            Trans::No,
            1.5,
            ar,
            br,
            -0.5,
            MatRef::from_slice(&c0, 3, 5, 3),
        );
        let mut c = c0.clone();
        crate::gemm::gemm(
            Trans::No,
            Trans::No,
            1.5,
            ar,
            br,
            -0.5,
            crate::view::MatMut::from_slice(&mut c, 3, 5, 3),
        );
        for (x, y) in c.iter().zip(&want.data) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn trsm_residual_detects_wrong_solution() {
        let a = vec![2.0, 1.0, 0.0, 4.0];
        let b = vec![2.0, 9.0];
        let wrong = vec![1.0, 1.0]; // correct is [1, 2]
        let r = trsm_residual(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatRef::from_slice(&wrong, 2, 1, 2),
            MatRef::from_slice(&b, 2, 1, 2),
        );
        assert!(r > 0.1);
    }
}
