//! Floating-point scalar abstraction.
//!
//! The BLAS layer is generic over [`Scalar`] so that the same tiled
//! algorithms serve `f32` and `f64`. The paper's evaluation is FP64; `f32`
//! comes for free and is exercised by the test-suite.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real floating-point element type usable by the kernels.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + Debug
    + Display
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Size of one element in bytes (drives transfer volumes).
    const WORD: usize;
    /// Machine epsilon, used by accuracy checks.
    const EPSILON: Self;

    /// Lossy conversion from `f64` (exact for representable values).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// `max` that propagates the larger value (inputs must not be NaN).
    fn max(self, other: Self) -> Self;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const WORD: usize = 8;
    const EPSILON: Self = f64::EPSILON;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const WORD: usize = 4;
    const EPSILON: Self = f32::EPSILON;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>() {
        assert_eq!(T::from_f64(2.5).to_f64(), 2.5);
        assert_eq!(T::ZERO + T::ONE, T::ONE);
        assert_eq!(T::from_f64(-3.0).abs().to_f64(), 3.0);
        assert_eq!(T::from_f64(9.0).sqrt().to_f64(), 3.0);
        assert_eq!(T::from_f64(1.0).max(T::from_f64(2.0)).to_f64(), 2.0);
    }

    #[test]
    fn f64_impl() {
        roundtrip::<f64>();
        assert_eq!(f64::WORD, 8);
    }

    #[test]
    fn f32_impl() {
        roundtrip::<f32>();
        assert_eq!(f32::WORD, 4);
    }
}
