//! Floating-point scalar abstraction.
//!
//! The BLAS layer is generic over [`Scalar`] so that the same tiled
//! algorithms serve `f32` and `f64`. The paper's evaluation is FP64; `f32`
//! comes for free and is exercised by the test-suite.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::simd::{Isa, KernelShape};
use crate::view::MatMut;

/// Expands `$body` with `$MK` bound to the `f64` microkernel type for
/// `$isa`. Variants whose kernel is not compiled for this target (or that
/// have no SIMD kernel at all) bind the scalar fallback.
macro_rules! with_f64_kernel {
    ($isa:expr, $MK:ident, $body:block) => {
        match $isa {
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => {
                type $MK = crate::simd::avx512::Avx512Mk;
                $body
            }
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => {
                type $MK = crate::simd::avx2::Avx2Mk;
                $body
            }
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => {
                type $MK = crate::simd::neon::NeonMk;
                $body
            }
            _ => {
                type $MK = crate::simd::scalar_mk::ScalarMk;
                $body
            }
        }
    };
}

/// A real floating-point element type usable by the kernels.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + Debug
    + Display
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Size of one element in bytes (drives transfer volumes).
    const WORD: usize;
    /// Machine epsilon, used by accuracy checks.
    const EPSILON: Self;

    /// Lossy conversion from `f64` (exact for representable values).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// `max` that propagates the larger value (inputs must not be NaN).
    fn max(self, other: Self) -> Self;

    /// The microkernel geometry `isa` dispatches to for this scalar type
    /// (requests with no kernel for this type/target report the scalar
    /// fallback actually used). Prefer [`crate::simd::kernel_shape`].
    #[doc(hidden)]
    fn kernel_shape(isa: Isa) -> KernelShape;

    /// Runs the blocked engine with `isa`'s microkernel. An unsupported
    /// `isa` is demoted to the scalar kernel, so this is safe to call with
    /// any value; [`crate::blocked::gemm_with`] is the only intended
    /// caller and always passes [`crate::simd::selected_isa`].
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    fn gemm_engine<OA, OB>(
        isa: Isa,
        m: usize,
        n: usize,
        k: usize,
        alpha: Self,
        oa: OA,
        ob: OB,
        beta: Self,
        c: MatMut<'_, Self>,
    ) where
        OA: Fn(usize, usize) -> Self,
        OB: Fn(usize, usize) -> Self;

    /// One bare full-tile microkernel invocation of `isa`'s kernel — the
    /// hook behind [`crate::simd::run_tile`].
    ///
    /// # Safety
    /// Same contract as `MicroKernel::tile` with `mr`/`nr` at the kernel's
    /// full `MR`/`NR` (see [`crate::simd::kernel_shape`]), and the host
    /// must support `isa`.
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    unsafe fn tile_raw(
        isa: Isa,
        kc: usize,
        pa: *const Self,
        pb: *const Self,
        alpha: Self,
        beta: Self,
        c: *mut Self,
        ld: usize,
    );
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const WORD: usize = 8;
    const EPSILON: Self = f64::EPSILON;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }

    fn kernel_shape(isa: Isa) -> KernelShape {
        with_f64_kernel!(isa, MK, { crate::simd::shape_of::<f64, MK>() })
    }

    fn gemm_engine<OA, OB>(
        isa: Isa,
        m: usize,
        n: usize,
        k: usize,
        alpha: Self,
        oa: OA,
        ob: OB,
        beta: Self,
        c: MatMut<'_, Self>,
    ) where
        OA: Fn(usize, usize) -> Self,
        OB: Fn(usize, usize) -> Self,
    {
        // Demote ISAs the host cannot execute (selected_isa never produces
        // one, but this method is reachable with arbitrary values).
        let isa = if crate::simd::supported_isas().contains(&isa) {
            isa
        } else {
            Isa::Scalar
        };
        with_f64_kernel!(isa, MK, {
            crate::blocked::engine::<f64, MK, OA, OB>(m, n, k, alpha, oa, ob, beta, c)
        })
    }

    unsafe fn tile_raw(
        isa: Isa,
        kc: usize,
        pa: *const Self,
        pb: *const Self,
        alpha: Self,
        beta: Self,
        c: *mut Self,
        ld: usize,
    ) {
        use crate::simd::MicroKernel;
        with_f64_kernel!(isa, MK, {
            <MK as MicroKernel<f64>>::tile(
                kc,
                pa,
                pb,
                alpha,
                beta,
                c,
                ld,
                <MK as MicroKernel<f64>>::MR,
                <MK as MicroKernel<f64>>::NR,
            )
        })
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const WORD: usize = 4;
    const EPSILON: Self = f32::EPSILON;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }

    // The explicit SIMD kernels are f64-only (the paper's evaluation is
    // FP64); f32 always rides the portable scalar kernel, whatever the
    // requested ISA.
    fn kernel_shape(_isa: Isa) -> KernelShape {
        crate::simd::shape_of::<f32, crate::simd::scalar_mk::ScalarMk>()
    }

    fn gemm_engine<OA, OB>(
        _isa: Isa,
        m: usize,
        n: usize,
        k: usize,
        alpha: Self,
        oa: OA,
        ob: OB,
        beta: Self,
        c: MatMut<'_, Self>,
    ) where
        OA: Fn(usize, usize) -> Self,
        OB: Fn(usize, usize) -> Self,
    {
        crate::blocked::engine::<f32, crate::simd::scalar_mk::ScalarMk, OA, OB>(
            m, n, k, alpha, oa, ob, beta, c,
        )
    }

    unsafe fn tile_raw(
        _isa: Isa,
        kc: usize,
        pa: *const Self,
        pb: *const Self,
        alpha: Self,
        beta: Self,
        c: *mut Self,
        ld: usize,
    ) {
        use crate::simd::MicroKernel;
        type MK = crate::simd::scalar_mk::ScalarMk;
        MK::tile(kc, pa, pb, alpha, beta, c, ld, <MK as MicroKernel<f32>>::MR, <MK as MicroKernel<f32>>::NR)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>() {
        assert_eq!(T::from_f64(2.5).to_f64(), 2.5);
        assert_eq!(T::ZERO + T::ONE, T::ONE);
        assert_eq!(T::from_f64(-3.0).abs().to_f64(), 3.0);
        assert_eq!(T::from_f64(9.0).sqrt().to_f64(), 3.0);
        assert_eq!(T::from_f64(1.0).max(T::from_f64(2.0)).to_f64(), 2.0);
    }

    #[test]
    fn f64_impl() {
        roundtrip::<f64>();
        assert_eq!(f64::WORD, 8);
    }

    #[test]
    fn f32_impl() {
        roundtrip::<f32>();
        assert_eq!(f32::WORD, 4);
    }
}
