//! Auxiliary kernels: copies, initialization, additions and norms
//! (the LAPACK `la*` helpers the tiled algorithms and tests rely on).

use crate::scalar::Scalar;
use crate::types::Uplo;
use crate::view::{MatMut, MatRef};

/// Which part of a matrix an operation touches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Part {
    /// The full rectangle.
    All,
    /// Only the given triangle (including the diagonal).
    Triangle(Uplo),
}

/// Copies `A` into `B` (`dlacpy`): the full rectangle or one triangle.
pub fn lacpy<T: Scalar>(part: Part, a: MatRef<'_, T>, mut b: MatMut<'_, T>) {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let (m, n) = (a.nrows(), a.ncols());
    match part {
        Part::All => {
            for j in 0..n {
                b.col_mut(j).copy_from_slice(a.col(j));
            }
        }
        Part::Triangle(Uplo::Lower) => {
            for j in 0..n {
                for i in j..m {
                    b.set(i, j, a.at(i, j));
                }
            }
        }
        Part::Triangle(Uplo::Upper) => {
            for j in 0..n {
                for i in 0..=j.min(m.saturating_sub(1)) {
                    b.set(i, j, a.at(i, j));
                }
            }
        }
    }
}

/// Sets off-diagonal elements to `off` and diagonal elements to `diag`
/// (`dlaset` over the full rectangle).
pub fn laset<T: Scalar>(off: T, diag: T, mut a: MatMut<'_, T>) {
    let (m, n) = (a.nrows(), a.ncols());
    for j in 0..n {
        for i in 0..m {
            a.set(i, j, if i == j { diag } else { off });
        }
    }
}

/// `B = alpha * A + beta * B` elementwise (`dgeadd`).
pub fn geadd<T: Scalar>(alpha: T, a: MatRef<'_, T>, beta: T, mut b: MatMut<'_, T>) {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let n = a.ncols();
    for j in 0..n {
        let acol = a.col(j);
        for (bv, &av) in b.col_mut(j).iter_mut().zip(acol) {
            *bv = alpha * av + beta * *bv;
        }
    }
}

/// Frobenius norm of a general matrix (`dlange('F', ...)`).
pub fn norm_fro<T: Scalar>(a: MatRef<'_, T>) -> f64 {
    let mut acc = 0.0f64;
    for j in 0..a.ncols() {
        for &v in a.col(j) {
            let x = v.to_f64();
            acc += x * x;
        }
    }
    acc.sqrt()
}

/// Max-absolute-value norm of a general matrix (`dlange('M', ...)`).
pub fn norm_max<T: Scalar>(a: MatRef<'_, T>) -> f64 {
    let mut acc = 0.0f64;
    for j in 0..a.ncols() {
        for &v in a.col(j) {
            acc = acc.max(v.to_f64().abs());
        }
    }
    acc
}

/// Max-absolute difference between two equally sized matrices.
pub fn max_abs_diff<T: Scalar>(a: MatRef<'_, T>, b: MatRef<'_, T>) -> f64 {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let mut acc = 0.0f64;
    for j in 0..a.ncols() {
        for (x, y) in a.col(j).iter().zip(b.col(j)) {
            acc = acc.max((x.to_f64() - y.to_f64()).abs());
        }
    }
    acc
}

/// Max-absolute difference restricted to one triangle (for SYRK-style
/// results whose opposite triangle is unspecified).
pub fn max_abs_diff_tri<T: Scalar>(uplo: Uplo, a: MatRef<'_, T>, b: MatRef<'_, T>) -> f64 {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let n = a.ncols();
    let m = a.nrows();
    let mut acc = 0.0f64;
    for j in 0..n {
        let (lo, hi) = match uplo {
            Uplo::Lower => (j, m),
            Uplo::Upper => (0, (j + 1).min(m)),
        };
        for i in lo..hi {
            acc = acc.max((a.at(i, j).to_f64() - b.at(i, j).to_f64()).abs());
        }
    }
    acc
}

/// Relative error `|x - y|_max / max(1, |y|_max)` suitable for comparing a
/// computed result against a reference.
pub fn rel_error<T: Scalar>(computed: MatRef<'_, T>, reference: MatRef<'_, T>) -> f64 {
    let denom = norm_max(reference).max(1.0);
    max_abs_diff(computed, reference) / denom
}

/// ULP distance between two `f64` values: the number of representable
/// doubles between them (0 when bitwise equal, 1 for adjacent values).
/// Uses the total-order bit trick, so it is well-defined across signs and
/// at zero (`-0.0` and `+0.0` are 0 apart). NaN anywhere returns
/// `u64::MAX` so comparisons fail loudly.
pub fn ulp_distance(x: f64, y: f64) -> u64 {
    if x.is_nan() || y.is_nan() {
        return u64::MAX;
    }
    // Map the sign-magnitude bit pattern onto a monotone integer line
    // (negative floats fold below zero, with -0.0 and +0.0 coinciding).
    fn key(v: f64) -> i64 {
        let b = v.to_bits() as i64;
        if b < 0 {
            i64::MIN - b
        } else {
            b
        }
    }
    key(x).abs_diff(key(y))
}

/// Max ULP distance between two equally sized `f64` matrices — the metric
/// the per-ISA kernel tests use: FMA contraction and the different
/// summation shapes of the SIMD microkernels move results by a few ULPs
/// relative to the scalar oracle, a bound that (unlike an absolute
/// tolerance) is independent of the magnitude of `C`.
pub fn max_ulp_diff(a: MatRef<'_, f64>, b: MatRef<'_, f64>) -> u64 {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let mut acc = 0u64;
    for j in 0..a.ncols() {
        for (x, y) in a.col(j).iter().zip(b.col(j)) {
            acc = acc.max(ulp_distance(*x, *y));
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lacpy_all_and_triangles() {
        let a: Vec<f64> = (1..=9).map(f64::from).collect();
        let ar = MatRef::from_slice(&a, 3, 3, 3);
        let mut b = vec![0.0; 9];
        lacpy(Part::All, ar, MatMut::from_slice(&mut b, 3, 3, 3));
        assert_eq!(a, b);

        let mut lo = vec![0.0; 9];
        lacpy(
            Part::Triangle(Uplo::Lower),
            ar,
            MatMut::from_slice(&mut lo, 3, 3, 3),
        );
        assert_eq!(lo, vec![1.0, 2.0, 3.0, 0.0, 5.0, 6.0, 0.0, 0.0, 9.0]);

        let mut up = vec![0.0; 9];
        lacpy(
            Part::Triangle(Uplo::Upper),
            ar,
            MatMut::from_slice(&mut up, 3, 3, 3),
        );
        assert_eq!(up, vec![1.0, 0.0, 0.0, 4.0, 5.0, 0.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn laset_writes_diag_and_off() {
        let mut a = vec![9.0; 6];
        laset(0.5, 2.0, MatMut::from_slice(&mut a, 2, 3, 2));
        assert_eq!(a, vec![2.0, 0.5, 0.5, 2.0, 0.5, 0.5]);
    }

    #[test]
    fn geadd_combines() {
        let a = vec![1.0, 2.0];
        let mut b = vec![10.0, 20.0];
        geadd(
            2.0,
            MatRef::from_slice(&a, 2, 1, 2),
            0.5,
            MatMut::from_slice(&mut b, 2, 1, 2),
        );
        assert_eq!(b, vec![7.0, 14.0]);
    }

    #[test]
    fn norms() {
        let a = vec![3.0, -4.0];
        let ar = MatRef::from_slice(&a, 2, 1, 2);
        assert!((norm_fro(ar) - 5.0).abs() < 1e-12);
        assert!((norm_max(ar) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn diffs_and_rel_error() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![1.0, 2.5, 3.0, 4.0];
        let ar = MatRef::from_slice(&a, 2, 2, 2);
        let br = MatRef::from_slice(&b, 2, 2, 2);
        assert!((max_abs_diff(ar, br) - 0.5).abs() < 1e-12);
        assert!((rel_error(ar, br) - 0.5 / 4.0).abs() < 1e-12);
        // (1,0) differs but is outside the Upper triangle.
        assert_eq!(max_abs_diff_tri(Uplo::Upper, ar, br), 0.0);
        assert!((max_abs_diff_tri(Uplo::Lower, ar, br) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ulp_distance_counts_representable_steps() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(1.0, f64::from_bits(1.0f64.to_bits() + 7)), 7);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        // Crossing zero: one step on each side of +/-0.
        assert_eq!(ulp_distance(f64::from_bits(1), -f64::from_bits(1)), 2);
        assert_eq!(ulp_distance(-1.0, f64::from_bits(1.0f64.to_bits() + 1).copysign(-1.0)), 1);
        assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);

        let a = vec![1.0f64, -2.0, 3.0, 4.0];
        let mut b = a.clone();
        b[2] = f64::from_bits(b[2].to_bits() + 3);
        let d = max_ulp_diff(
            MatRef::from_slice(&a, 2, 2, 2),
            MatRef::from_slice(&b, 2, 2, 2),
        );
        assert_eq!(d, 3);
    }
}
