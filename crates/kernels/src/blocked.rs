//! BLIS-style blocked, packed, register-tiled GEMM engine.
//!
//! One engine computes `C = alpha * OA * OB + beta * C` for every BLAS-3
//! routine in the crate. The three classic loops around a register-tiled
//! microkernel:
//!
//! * **`NC`** — column panels of `OB`/`C`, sized so a packed `KC × NC` B
//!   panel stays resident in the last-level cache;
//! * **`KC`** — depth blocking; one `KC`-deep panel pair is packed per
//!   iteration and `beta` is folded into the *first* depth block so `C`
//!   is streamed exactly once (no separate scaling pass);
//! * **`MC`** — row panels of `OA`/`C`, sized so the packed `MC × KC` A
//!   panel fits in L2.
//!
//! Operand elements are read through *accessor closures* `OA(i, p)` /
//! `OB(p, j)` during packing, which is how the four `Trans` combinations,
//! symmetric mirroring (`sym_at`) and sub-block offsets all share this one
//! engine: packing materializes whatever the accessor describes into the
//! fixed micro-panel layout the microkernel expects, and the hot loop never
//! branches on storage format.
//!
//! The microkernel accumulates a full `MR × NR` register tile over fixed
//! arrays so the compiler unrolls and autovectorizes it for `f32`/`f64`
//! (fringe tiles are zero-padded in the packed panels and clipped at the
//! store). Pack buffers are reused thread-locally across calls, so steady
//! state performs no allocation — important because `par_gemm` and the
//! parallel executor invoke this engine from many rayon/crossbeam workers.

use std::cell::RefCell;

use crate::scalar::Scalar;
use crate::types::Trans;
use crate::view::{MatMut, MatRef};

/// Microkernel register-tile rows (height of one packed `OA` micro-panel).
pub const MR: usize = 8;
/// Microkernel register-tile columns (width of one packed `OB` micro-panel).
pub const NR: usize = 4;
/// Rows per packed `OA` macro-panel (`MC × KC` elements target L2).
pub const MC: usize = 128;
/// Depth of one packed panel pair (the k-dimension block).
pub const KC: usize = 256;
/// Columns per packed `OB` macro-panel (`KC × NC` elements target L3).
pub const NC: usize = 2048;
/// Diagonal-block order used by the blocked triangular routines
/// (trmm/trsm substitution blocks, syrk/syr2k diagonal tiles).
pub const TB: usize = 64;

thread_local! {
    /// Reusable pack storage. Backed by `u64` words so one pair of buffers
    /// serves both `f32` and `f64` with correct alignment.
    static PACK_BUFS: RefCell<(Vec<u64>, Vec<u64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Runs `f` with this thread's reusable pack buffers viewed as `a_elems` /
/// `b_elems` scalars (growing them on first use or when a larger problem
/// arrives; never shrinking).
fn with_pack_buffers<T: Scalar, R>(
    a_elems: usize,
    b_elems: usize,
    f: impl FnOnce(&mut [T], &mut [T]) -> R,
) -> R {
    assert!(
        std::mem::size_of::<T>() == T::WORD
            && std::mem::align_of::<T>() <= std::mem::align_of::<u64>(),
        "Scalar impls must be plain floats no more aligned than u64"
    );
    PACK_BUFS.with(|cell| {
        let mut bufs = cell.borrow_mut();
        let words = |elems: usize| (elems * T::WORD).div_ceil(std::mem::size_of::<u64>());
        let (need_a, need_b) = (words(a_elems), words(b_elems));
        if bufs.0.len() < need_a {
            bufs.0.resize(need_a, 0);
        }
        if bufs.1.len() < need_b {
            bufs.1.resize(need_b, 0);
        }
        let (wa, wb) = &mut *bufs;
        // SAFETY: both Vecs hold at least `*_elems * T::WORD` bytes, u64
        // storage is aligned at least as strictly as T (asserted above), any
        // bit pattern is a valid T, and the two slices come from distinct
        // allocations so they never alias.
        let pa = unsafe { std::slice::from_raw_parts_mut(wa.as_mut_ptr().cast::<T>(), a_elems) };
        let pb = unsafe { std::slice::from_raw_parts_mut(wb.as_mut_ptr().cast::<T>(), b_elems) };
        f(pa, pb)
    })
}

/// Packs `OA[ic..ic+mc, pc..pc+kc]` into micro-panels of `MR` rows.
///
/// Layout: panel `ip` holds rows `[ip*MR, ip*MR+MR)` as `kc` contiguous
/// `MR`-element column slices; rows past `mc` are zero-padded so the
/// microkernel always runs a full register tile.
fn pack_a<T: Scalar>(
    buf: &mut [T],
    oa: &impl Fn(usize, usize) -> T,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    for ip in 0..mc.div_ceil(MR) {
        let base = ip * kc * MR;
        let i0 = ic + ip * MR;
        let rows = MR.min(mc - ip * MR);
        for p in 0..kc {
            let dst = &mut buf[base + p * MR..base + (p + 1) * MR];
            for (r, d) in dst.iter_mut().take(rows).enumerate() {
                *d = oa(i0 + r, pc + p);
            }
            for d in dst.iter_mut().skip(rows) {
                *d = T::ZERO;
            }
        }
    }
}

/// Packs `OB[pc..pc+kc, jc..jc+nc]` into micro-panels of `NR` columns
/// (columns past `nc` zero-padded), mirroring [`pack_a`].
fn pack_b<T: Scalar>(
    buf: &mut [T],
    ob: &impl Fn(usize, usize) -> T,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    for jp in 0..nc.div_ceil(NR) {
        let base = jp * kc * NR;
        let j0 = jc + jp * NR;
        let cols = NR.min(nc - jp * NR);
        for p in 0..kc {
            let dst = &mut buf[base + p * NR..base + (p + 1) * NR];
            for (c, d) in dst.iter_mut().take(cols).enumerate() {
                *d = ob(pc + p, j0 + c);
            }
            for d in dst.iter_mut().skip(cols) {
                *d = T::ZERO;
            }
        }
    }
}

/// The register-tiled microkernel: a full `MR × NR` rank-`kc` update over
/// one packed A micro-panel and one packed B micro-panel.
///
/// `acc[c * MR + r]` accumulates element `(r, c)`; the fixed-size array and
/// constant trip counts let the compiler keep the tile in registers and
/// vectorize the row dimension.
#[inline]
fn micro_tile<T: Scalar>(kc: usize, pa: &[T], pb: &[T]) -> [T; MR * NR] {
    let mut acc = [T::ZERO; MR * NR];
    for p in 0..kc {
        let a: &[T; MR] = pa[p * MR..(p + 1) * MR].try_into().unwrap();
        let b: &[T; NR] = pb[p * NR..(p + 1) * NR].try_into().unwrap();
        for (c, &bv) in b.iter().enumerate() {
            for (r, &av) in a.iter().enumerate() {
                acc[c * MR + r] += av * bv;
            }
        }
    }
    acc
}

/// Writes an accumulated register tile back to `C`, clipped to the
/// `mr × nr` valid fringe: `C = alpha * acc + beta * C`. `beta == 0`
/// overwrites without reading (NaN-safe, like BLAS).
#[inline]
#[allow(clippy::too_many_arguments)]
fn store_tile<T: Scalar>(
    acc: &[T; MR * NR],
    alpha: T,
    beta: T,
    c: &mut MatMut<'_, T>,
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
) {
    for cc in 0..nr {
        if beta == T::ZERO {
            for r in 0..mr {
                c.set(i0 + r, j0 + cc, alpha * acc[cc * MR + r]);
            }
        } else if beta == T::ONE {
            for r in 0..mr {
                c.update(i0 + r, j0 + cc, |v| v + alpha * acc[cc * MR + r]);
            }
        } else {
            for r in 0..mr {
                c.update(i0 + r, j0 + cc, |v| beta * v + alpha * acc[cc * MR + r]);
            }
        }
    }
}

/// Blocked GEMM over element accessors:
/// `C = alpha * OA * OB + beta * C` with `OA` logically `m × k` and `OB`
/// logically `k × n`.
///
/// This is the engine every routine in the crate routes its bulk updates
/// through. `beta` is applied by the first depth block's store (skipped
/// entirely when `beta == 1`), so `C` is read and written exactly once.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_with<T, OA, OB>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    oa: OA,
    ob: OB,
    beta: T,
    mut c: MatMut<'_, T>,
) where
    T: Scalar,
    OA: Fn(usize, usize) -> T,
    OB: Fn(usize, usize) -> T,
{
    debug_assert_eq!(c.nrows(), m);
    debug_assert_eq!(c.ncols(), n);
    if m == 0 || n == 0 {
        return;
    }
    if alpha == T::ZERO || k == 0 {
        crate::gemm::scale_in_place(beta, c);
        return;
    }
    let kc_max = KC.min(k);
    let a_elems = MC.min(m).div_ceil(MR) * MR * kc_max;
    let b_elems = NC.min(n).div_ceil(NR) * NR * kc_max;
    with_pack_buffers(a_elems, b_elems, |pa, pb| {
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                // Fold beta into the first depth block: every C element is
                // touched exactly once per pc iteration.
                let beta_eff = if pc == 0 { beta } else { T::ONE };
                pack_b(pb, &ob, pc, kc, jc, nc);
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    pack_a(pa, &oa, ic, mc, pc, kc);
                    for jr in (0..nc).step_by(NR) {
                        let nr = NR.min(nc - jr);
                        let pb_panel = &pb[(jr / NR) * kc * NR..][..kc * NR];
                        for ir in (0..mc).step_by(MR) {
                            let mr = MR.min(mc - ir);
                            let pa_panel = &pa[(ir / MR) * kc * MR..][..kc * MR];
                            let acc = micro_tile(kc, pa_panel, pb_panel);
                            store_tile(&acc, alpha, beta_eff, &mut c, ic + ir, jc + jr, mr, nr);
                        }
                    }
                }
            }
        }
    });
}

/// Blocked GEMM over matrix views: dispatches the four `Trans` combinations
/// to concrete accessor instantiations of [`gemm_with`].
pub(crate) fn gemm_views<T: Scalar>(
    trans_a: Trans,
    trans_b: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
) {
    let (m, n) = (c.nrows(), c.ncols());
    let k = match trans_a {
        Trans::No => a.ncols(),
        Trans::Yes => a.nrows(),
    };
    match (trans_a, trans_b) {
        (Trans::No, Trans::No) => {
            gemm_with(m, n, k, alpha, |i, p| a.at(i, p), |p, j| b.at(p, j), beta, c)
        }
        (Trans::No, Trans::Yes) => {
            gemm_with(m, n, k, alpha, |i, p| a.at(i, p), |p, j| b.at(j, p), beta, c)
        }
        (Trans::Yes, Trans::No) => {
            gemm_with(m, n, k, alpha, |i, p| a.at(p, i), |p, j| b.at(p, j), beta, c)
        }
        (Trans::Yes, Trans::Yes) => {
            gemm_with(m, n, k, alpha, |i, p| a.at(p, i), |p, j| b.at(j, p), beta, c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_vals(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            })
            .collect()
    }

    /// Engine vs the independent reference for one shape/parameter set.
    fn check(m: usize, n: usize, k: usize, alpha: f64, beta: f64) {
        let a = det_vals(m * k, 1);
        let b = det_vals(k * n, 2);
        let c0 = det_vals(m * n, 3);
        let want = crate::reference::ref_gemm(
            Trans::No,
            Trans::No,
            alpha,
            MatRef::from_slice(&a, m, k, m.max(1)),
            MatRef::from_slice(&b, k, n, k.max(1)),
            beta,
            MatRef::from_slice(&c0, m, n, m),
        );
        let mut c = c0.clone();
        gemm_with(
            m,
            n,
            k,
            alpha,
            |i, p| a[i + p * m],
            |p, j| b[p + j * k],
            beta,
            MatMut::from_slice(&mut c, m, n, m),
        );
        let d = crate::aux::max_abs_diff(MatRef::from_slice(&c, m, n, m), want.view());
        assert!(d < 1e-10, "({m},{n},{k}) alpha={alpha} beta={beta}: diff {d}");
    }

    #[test]
    fn fringe_shapes_and_kc_boundary() {
        for &(m, n) in &[(1, 1), (MR - 1, NR + 1), (MR, NR), (MR + 1, NR - 1), (19, 13)] {
            for &k in &[1, 7, KC - 1, KC, KC + 1] {
                check(m, n, k, 1.0, 0.5);
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = vec![1.0f64; 9];
        let b = vec![1.0f64; 9];
        let mut c = vec![f64::NAN; 9];
        gemm_with(
            3,
            3,
            3,
            1.0,
            |i, p| a[i + p * 3],
            |p, j| b[p + j * 3],
            0.0,
            MatMut::from_slice(&mut c, 3, 3, 3),
        );
        assert!(c.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn degenerate_k_and_alpha_scale_only() {
        let mut c = vec![2.0f64; 4];
        gemm_with::<f64, _, _>(
            2,
            2,
            0,
            1.0,
            |_, _| unreachable!(),
            |_, _| unreachable!(),
            0.5,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert!(c.iter().all(|&x| x == 1.0));
        gemm_with(
            2,
            2,
            5,
            0.0,
            |_, _| 1.0f64,
            |_, _| 1.0f64,
            2.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert!(c.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn pack_buffers_are_reused() {
        // Two calls on the same thread must not corrupt each other.
        check(MC + 3, NR * 3 + 1, KC + 5, 0.75, 1.0);
        check(5, 5, 5, -1.0, 0.0);
    }
}
