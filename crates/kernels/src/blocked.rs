//! BLIS-style blocked, packed, register-tiled GEMM engine.
//!
//! One engine computes `C = alpha * OA * OB + beta * C` for every BLAS-3
//! routine in the crate. The three classic loops around a register-tiled
//! microkernel:
//!
//! * **`NC`** — column panels of `OB`/`C`, sized so a packed `KC × NC` B
//!   panel stays resident in the last-level cache;
//! * **`KC`** — depth blocking; one `KC`-deep panel pair is packed per
//!   iteration and `beta` is folded into the *first* depth block so `C`
//!   is streamed exactly once (no separate scaling pass);
//! * **`MC`** — row panels of `OA`/`C`, sized so the packed `MC × KC` A
//!   panel fits in L2.
//!
//! Operand elements are read through *accessor closures* `OA(i, p)` /
//! `OB(p, j)` during packing, which is how the four `Trans` combinations,
//! symmetric mirroring (`sym_at`) and sub-block offsets all share this one
//! engine: packing materializes whatever the accessor describes into the
//! fixed micro-panel layout the microkernel expects, and the hot loop never
//! branches on storage format.
//!
//! Since PR 6 the engine is **generic over the microkernel**
//! ([`crate::simd::MicroKernel`]): the register-tile shape `MR × NR` and
//! the `KC`/`MC`/`NC` blocking are associated constants of the dispatched
//! kernel, the packers produce micro-panels of whatever width that kernel
//! wants, and [`gemm_with`] routes through the runtime ISA dispatcher
//! ([`crate::simd::selected_isa`]) so an AVX-512, AVX2, NEON or scalar
//! kernel is chosen per machine (override with `XK_KERNEL_ISA`). Fringe
//! tiles are zero-padded in the packed panels and clipped at the store,
//! so boundary shapes stay exact on every path. Pack buffers are reused
//! thread-locally across calls, so steady state performs no allocation —
//! important because `par_gemm` and the parallel executor invoke this
//! engine from many rayon/crossbeam workers.

use std::cell::RefCell;

use crate::scalar::Scalar;
use crate::simd::MicroKernel;
use crate::types::Trans;
use crate::view::{MatMut, MatRef};

/// Scalar-kernel register-tile rows. The portable kernel's geometry is
/// re-exported as crate-level constants because sizing heuristics and the
/// boundary-grid tests reference a fixed shape; the *dispatched* kernel's
/// geometry is [`crate::simd::kernel_shape`].
pub const MR: usize = 8;
/// Scalar-kernel register-tile columns (see [`MR`]).
pub const NR: usize = 4;
/// Scalar-kernel rows per packed `OA` macro-panel (`MC × KC` targets L2).
pub const MC: usize = 128;
/// Scalar-kernel depth of one packed panel pair (the k-dimension block).
pub const KC: usize = 256;
/// Scalar-kernel columns per packed `OB` macro-panel (`KC × NC` targets L3).
pub const NC: usize = 2048;
/// Diagonal-block order used by the blocked triangular routines
/// (trmm/trsm substitution blocks, syrk/syr2k diagonal tiles).
pub const TB: usize = 64;

thread_local! {
    /// Reusable pack storage. Backed by `u64` words so one pair of buffers
    /// serves both `f32` and `f64` with correct alignment.
    static PACK_BUFS: RefCell<(Vec<u64>, Vec<u64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Runs `f` with this thread's reusable pack buffers viewed as `a_elems` /
/// `b_elems` scalars (growing them on first use or when a larger problem
/// arrives; never shrinking).
fn with_pack_buffers<T: Scalar, R>(
    a_elems: usize,
    b_elems: usize,
    f: impl FnOnce(&mut [T], &mut [T]) -> R,
) -> R {
    assert!(
        std::mem::size_of::<T>() == T::WORD
            && std::mem::align_of::<T>() <= std::mem::align_of::<u64>(),
        "Scalar impls must be plain floats no more aligned than u64"
    );
    PACK_BUFS.with(|cell| {
        let mut bufs = cell.borrow_mut();
        let words = |elems: usize| (elems * T::WORD).div_ceil(std::mem::size_of::<u64>());
        let (need_a, need_b) = (words(a_elems), words(b_elems));
        if bufs.0.len() < need_a {
            bufs.0.resize(need_a, 0);
        }
        if bufs.1.len() < need_b {
            bufs.1.resize(need_b, 0);
        }
        let (wa, wb) = &mut *bufs;
        // SAFETY: both Vecs hold at least `*_elems * T::WORD` bytes, u64
        // storage is aligned at least as strictly as T (asserted above), any
        // bit pattern is a valid T, and the two slices come from distinct
        // allocations so they never alias.
        let pa = unsafe { std::slice::from_raw_parts_mut(wa.as_mut_ptr().cast::<T>(), a_elems) };
        let pb = unsafe { std::slice::from_raw_parts_mut(wb.as_mut_ptr().cast::<T>(), b_elems) };
        f(pa, pb)
    })
}

/// Packs `OA[ic..ic+mc, pc..pc+kc]` into micro-panels of `mr_k` rows.
///
/// Layout: panel `ip` holds rows `[ip*mr_k, ip*mr_k + mr_k)` as `kc`
/// contiguous `mr_k`-element column slices; rows past `mc` are zero-padded
/// so the microkernel always runs a full register tile.
fn pack_a<T: Scalar>(
    buf: &mut [T],
    oa: &impl Fn(usize, usize) -> T,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    mr_k: usize,
) {
    for ip in 0..mc.div_ceil(mr_k) {
        let base = ip * kc * mr_k;
        let i0 = ic + ip * mr_k;
        let rows = mr_k.min(mc - ip * mr_k);
        for p in 0..kc {
            let dst = &mut buf[base + p * mr_k..base + (p + 1) * mr_k];
            for (r, d) in dst.iter_mut().take(rows).enumerate() {
                *d = oa(i0 + r, pc + p);
            }
            for d in dst.iter_mut().skip(rows) {
                *d = T::ZERO;
            }
        }
    }
}

/// Packs `OB[pc..pc+kc, jc..jc+nc]` into micro-panels of `nr_k` columns
/// (columns past `nc` zero-padded), mirroring [`pack_a`].
fn pack_b<T: Scalar>(
    buf: &mut [T],
    ob: &impl Fn(usize, usize) -> T,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    nr_k: usize,
) {
    for jp in 0..nc.div_ceil(nr_k) {
        let base = jp * kc * nr_k;
        let j0 = jc + jp * nr_k;
        let cols = nr_k.min(nc - jp * nr_k);
        for p in 0..kc {
            let dst = &mut buf[base + p * nr_k..base + (p + 1) * nr_k];
            for (c, d) in dst.iter_mut().take(cols).enumerate() {
                *d = ob(pc + p, j0 + c);
            }
            for d in dst.iter_mut().skip(cols) {
                *d = T::ZERO;
            }
        }
    }
}

/// The blocked loop nest, monomorphized per microkernel: every blocking
/// constant comes from `MK`, so the compiler sees fixed trip counts and
/// panel strides for each ISA variant.
///
/// Only the dispatchers in `scalar.rs` may call this, and only with a
/// kernel whose ISA the host supports ([`crate::simd::supported_isas`]) —
/// that invariant is what makes the `MK::tile` call below sound.
#[allow(clippy::too_many_arguments)]
pub(crate) fn engine<T, MK, OA, OB>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    oa: OA,
    ob: OB,
    beta: T,
    mut c: MatMut<'_, T>,
) where
    T: Scalar,
    MK: MicroKernel<T>,
    OA: Fn(usize, usize) -> T,
    OB: Fn(usize, usize) -> T,
{
    debug_assert_eq!(c.nrows(), m);
    debug_assert_eq!(c.ncols(), n);
    if m == 0 || n == 0 {
        return;
    }
    if alpha == T::ZERO || k == 0 {
        crate::gemm::scale_in_place(beta, c);
        return;
    }
    let kc_max = MK::KC.min(k);
    let a_elems = MK::MC.min(m).div_ceil(MK::MR) * MK::MR * kc_max;
    let b_elems = MK::NC.min(n).div_ceil(MK::NR) * MK::NR * kc_max;
    let ld = c.ld();
    with_pack_buffers(a_elems, b_elems, |pa, pb| {
        for jc in (0..n).step_by(MK::NC) {
            let nc = MK::NC.min(n - jc);
            for pc in (0..k).step_by(MK::KC) {
                let kc = MK::KC.min(k - pc);
                // Fold beta into the first depth block: every C element is
                // touched exactly once per pc iteration.
                let beta_eff = if pc == 0 { beta } else { T::ONE };
                pack_b(pb, &ob, pc, kc, jc, nc, MK::NR);
                for ic in (0..m).step_by(MK::MC) {
                    let mc = MK::MC.min(m - ic);
                    pack_a(pa, &oa, ic, mc, pc, kc, MK::MR);
                    for jr in (0..nc).step_by(MK::NR) {
                        let nr = MK::NR.min(nc - jr);
                        let pb_panel = &pb[(jr / MK::NR) * kc * MK::NR..][..kc * MK::NR];
                        for ir in (0..mc).step_by(MK::MR) {
                            let mr = MK::MR.min(mc - ir);
                            let pa_panel = &pa[(ir / MK::MR) * kc * MK::MR..][..kc * MK::MR];
                            // SAFETY: the packed panels hold kc full
                            // micro-panels (zero-padded), the C pointer
                            // addresses an in-bounds mr × nr region with
                            // leading dimension ld, 0 < mr <= MK::MR and
                            // 0 < nr <= MK::NR by the min() clips, and the
                            // dispatcher only selects host-supported MKs.
                            unsafe {
                                MK::tile(
                                    kc,
                                    pa_panel.as_ptr(),
                                    pb_panel.as_ptr(),
                                    alpha,
                                    beta_eff,
                                    c.ptr_at_mut(ic + ir, jc + jr),
                                    ld,
                                    mr,
                                    nr,
                                );
                            }
                        }
                    }
                }
            }
        }
    });
}

/// Blocked GEMM over element accessors:
/// `C = alpha * OA * OB + beta * C` with `OA` logically `m × k` and `OB`
/// logically `k × n`.
///
/// This is the engine every routine in the crate routes its bulk updates
/// through — and the single dispatch point: it reads
/// [`crate::simd::selected_isa`] and runs the matching monomorphized
/// [`engine`], so all six routines inherit the best kernel for the host
/// with zero call-site changes. `beta` is applied by the first depth
/// block's store (skipped entirely when `beta == 1`), so `C` is read and
/// written exactly once.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_with<T, OA, OB>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    oa: OA,
    ob: OB,
    beta: T,
    c: MatMut<'_, T>,
) where
    T: Scalar,
    OA: Fn(usize, usize) -> T,
    OB: Fn(usize, usize) -> T,
{
    T::gemm_engine(crate::simd::selected_isa(), m, n, k, alpha, oa, ob, beta, c)
}

/// Blocked GEMM over matrix views: dispatches the four `Trans` combinations
/// to concrete accessor instantiations of [`gemm_with`].
pub(crate) fn gemm_views<T: Scalar>(
    trans_a: Trans,
    trans_b: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: MatMut<'_, T>,
) {
    let (m, n) = (c.nrows(), c.ncols());
    let k = match trans_a {
        Trans::No => a.ncols(),
        Trans::Yes => a.nrows(),
    };
    match (trans_a, trans_b) {
        (Trans::No, Trans::No) => {
            gemm_with(m, n, k, alpha, |i, p| a.at(i, p), |p, j| b.at(p, j), beta, c)
        }
        (Trans::No, Trans::Yes) => {
            gemm_with(m, n, k, alpha, |i, p| a.at(i, p), |p, j| b.at(j, p), beta, c)
        }
        (Trans::Yes, Trans::No) => {
            gemm_with(m, n, k, alpha, |i, p| a.at(p, i), |p, j| b.at(p, j), beta, c)
        }
        (Trans::Yes, Trans::Yes) => {
            gemm_with(m, n, k, alpha, |i, p| a.at(p, i), |p, j| b.at(j, p), beta, c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_vals(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            })
            .collect()
    }

    /// Engine vs the independent reference for one shape/parameter set.
    fn check(m: usize, n: usize, k: usize, alpha: f64, beta: f64) {
        let a = det_vals(m * k, 1);
        let b = det_vals(k * n, 2);
        let c0 = det_vals(m * n, 3);
        let want = crate::reference::ref_gemm(
            Trans::No,
            Trans::No,
            alpha,
            MatRef::from_slice(&a, m, k, m.max(1)),
            MatRef::from_slice(&b, k, n, k.max(1)),
            beta,
            MatRef::from_slice(&c0, m, n, m),
        );
        let mut c = c0.clone();
        gemm_with(
            m,
            n,
            k,
            alpha,
            |i, p| a[i + p * m],
            |p, j| b[p + j * k],
            beta,
            MatMut::from_slice(&mut c, m, n, m),
        );
        let d = crate::aux::max_abs_diff(MatRef::from_slice(&c, m, n, m), want.view());
        assert!(d < 1e-10, "({m},{n},{k}) alpha={alpha} beta={beta}: diff {d}");
    }

    #[test]
    fn fringe_shapes_and_kc_boundary() {
        for &(m, n) in &[(1, 1), (MR - 1, NR + 1), (MR, NR), (MR + 1, NR - 1), (19, 13)] {
            for &k in &[1, 7, KC - 1, KC, KC + 1] {
                check(m, n, k, 1.0, 0.5);
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = vec![1.0f64; 9];
        let b = vec![1.0f64; 9];
        let mut c = vec![f64::NAN; 9];
        gemm_with(
            3,
            3,
            3,
            1.0,
            |i, p| a[i + p * 3],
            |p, j| b[p + j * 3],
            0.0,
            MatMut::from_slice(&mut c, 3, 3, 3),
        );
        assert!(c.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn degenerate_k_and_alpha_scale_only() {
        let mut c = vec![2.0f64; 4];
        gemm_with::<f64, _, _>(
            2,
            2,
            0,
            1.0,
            |_, _| unreachable!(),
            |_, _| unreachable!(),
            0.5,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert!(c.iter().all(|&x| x == 1.0));
        gemm_with(
            2,
            2,
            5,
            0.0,
            |_, _| 1.0f64,
            |_, _| 1.0f64,
            2.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert!(c.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn pack_buffers_are_reused() {
        // Two calls on the same thread must not corrupt each other.
        check(MC + 3, NR * 3 + 1, KC + 5, 0.75, 1.0);
        check(5, 5, 5, -1.0, 0.0);
    }
}
