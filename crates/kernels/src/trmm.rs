//! Triangular matrix-matrix multiply (in place):
//! `B = alpha * op(A) * B` (left) or `B = alpha * B * op(A)` (right),
//! with `A` triangular.

use crate::blocked::TB;
use crate::gemm::gemm;
use crate::helpers::tri_at;
use crate::scalar::Scalar;
use crate::types::{Diag, Side, Trans, Uplo};
use crate::view::{MatMut, MatRef};

/// Sequential tile TRMM, updating `B` in place.
///
/// `A` is `m × m` (left) or `n × n` (right) with only its `uplo` triangle
/// referenced; `diag == Unit` treats the diagonal as ones.
///
/// The triangular dimension is partitioned into [`TB`]-order blocks
/// processed in an order where every cross-block contribution reads rows
/// (columns) of `B` that still hold their *old* values: each block of `B`
/// takes one unblocked triangular multiply against the diagonal block of
/// `op(A)` plus one blocked-GEMM accumulation of the entire off-diagonal
/// strip, so the bulk of the flops run on the packed engine.
///
/// # Panics
/// Panics on inconsistent dimensions.
pub fn trmm<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: T,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
) {
    let (m, n) = (b.nrows(), b.ncols());
    match side {
        Side::Left => {
            assert_eq!(a.nrows(), m, "A must be m x m for Side::Left");
            assert_eq!(a.ncols(), m);
        }
        Side::Right => {
            assert_eq!(a.nrows(), n, "A must be n x n for Side::Right");
            assert_eq!(a.ncols(), n);
        }
    }
    if alpha == T::ZERO {
        b.fill(T::ZERO);
        return;
    }
    if m == 0 || n == 0 {
        return;
    }

    // Is op(A) lower-triangular? (trans flips the triangle.)
    let op_lower = matches!((uplo, trans), (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes));
    let ld = b.ld();
    let bptr = b.rb_mut().col_mut(0).as_mut_ptr();

    match side {
        Side::Left => {
            // new B_i = op(A)_ii B_i + sum over the off-diagonal strip of
            // op(A)'s row block i, which reads B rows on the `op_lower` side
            // of the diagonal — processing blocks away from that side leaves
            // those rows untouched (old) until they are themselves updated.
            let nblocks = m.div_ceil(TB);
            for step in 0..nblocks {
                let ib = if op_lower { nblocks - 1 - step } else { step };
                let i0 = ib * TB;
                let mb = TB.min(m - i0);
                // SAFETY: the mutable row block [i0, i0+mb) and the read
                // strip (strictly before/after it) are disjoint row ranges
                // of B.
                let mut b_i = unsafe { MatMut::from_raw(bptr.add(i0), mb, n, ld) };
                trmm_unblocked(
                    Side::Left,
                    uplo,
                    trans,
                    diag,
                    alpha,
                    a.submatrix(i0, i0, mb, mb),
                    b_i.rb_mut(),
                );
                let (lo, hi) = if op_lower { (0, i0) } else { (i0 + mb, m) };
                if hi > lo {
                    let lw = hi - lo;
                    let b_old =
                        unsafe { MatRef::from_raw(bptr.add(lo).cast_const(), lw, n, ld) };
                    // op(A)[i0.., lo..] lies strictly off the diagonal, i.e.
                    // entirely inside the stored triangle: read it densely.
                    let a_strip = match trans {
                        Trans::No => a.submatrix(i0, lo, mb, lw),
                        Trans::Yes => a.submatrix(lo, i0, lw, mb),
                    };
                    gemm(trans, Trans::No, alpha, a_strip, b_old, T::ONE, b_i);
                }
            }
        }
        Side::Right => {
            // new B_j = B_j op(A)_jj + sum of old B column blocks against
            // op(A)'s column block j.
            let nblocks = n.div_ceil(TB);
            for step in 0..nblocks {
                let jb = if op_lower { step } else { nblocks - 1 - step };
                let j0 = jb * TB;
                let nb = TB.min(n - j0);
                // SAFETY: disjoint column ranges of B.
                let mut b_j = unsafe { MatMut::from_raw(bptr.add(j0 * ld), m, nb, ld) };
                trmm_unblocked(
                    Side::Right,
                    uplo,
                    trans,
                    diag,
                    alpha,
                    a.submatrix(j0, j0, nb, nb),
                    b_j.rb_mut(),
                );
                let (lo, hi) = if op_lower { (j0 + nb, n) } else { (0, j0) };
                if hi > lo {
                    let lw = hi - lo;
                    let b_old =
                        unsafe { MatRef::from_raw(bptr.add(lo * ld).cast_const(), m, lw, ld) };
                    let a_strip = match trans {
                        Trans::No => a.submatrix(lo, j0, lw, nb),
                        Trans::Yes => a.submatrix(j0, lo, nb, lw),
                    };
                    gemm(Trans::No, trans, alpha, b_old, a_strip, T::ONE, b_j);
                }
            }
        }
    }
}

/// Unblocked TRMM used for the diagonal blocks of the blocked algorithm.
fn trmm_unblocked<T: Scalar>(
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: T,
    a: MatRef<'_, T>,
    mut b: MatMut<'_, T>,
) {
    let (m, n) = (b.nrows(), b.ncols());

    // op(A)(i, l): a triangular read honoring trans/uplo/diag.
    let op_a = |i: usize, l: usize| -> T {
        match trans {
            Trans::No => tri_at(&a, uplo, diag, i, l),
            Trans::Yes => tri_at(&a, uplo, diag, l, i),
        }
    };

    match side {
        Side::Left => {
            // newB(:,j) = alpha * op(A) * oldB(:,j); use a column scratch so
            // every read sees the old values regardless of traversal order.
            let mut scratch = vec![T::ZERO; m];
            for j in 0..n {
                scratch.copy_from_slice(b.col_mut(j));
                for i in 0..m {
                    let mut acc = T::ZERO;
                    for (l, &s) in scratch.iter().enumerate() {
                        let v = op_a(i, l);
                        if v != T::ZERO {
                            acc += v * s;
                        }
                    }
                    b.set(i, j, alpha * acc);
                }
            }
        }
        Side::Right => {
            // newB(i,:) = alpha * oldB(i,:) * op(A); row scratch.
            let mut scratch = vec![T::ZERO; n];
            for i in 0..m {
                for (l, s) in scratch.iter_mut().enumerate() {
                    *s = b.at(i, l);
                }
                for j in 0..n {
                    let mut acc = T::ZERO;
                    for (l, &s) in scratch.iter().enumerate() {
                        let v = op_a(l, j);
                        if v != T::ZERO {
                            acc += s * v;
                        }
                    }
                    b.set(i, j, alpha * acc);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_lower_manual() {
        // A = [1 0; 2 3] lower (col-major [1,2,*,3]); B = [1; 1].
        // A*B = [1; 5].
        let a = vec![1.0, 2.0, -9.0, 3.0];
        let mut b = vec![1.0, 1.0];
        trmm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatMut::from_slice(&mut b, 2, 1, 2),
        );
        assert_eq!(b, vec![1.0, 5.0]);
    }

    #[test]
    fn unit_diag_ignores_stored_diagonal() {
        // Same A but unit diagonal: effective A = [1 0; 2 1]; A*B = [1; 3].
        let a = vec![42.0, 2.0, -9.0, 42.0];
        let mut b = vec![1.0, 1.0];
        trmm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::Unit,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatMut::from_slice(&mut b, 2, 1, 2),
        );
        assert_eq!(b, vec![1.0, 3.0]);
    }

    #[test]
    fn left_trans_equals_upper_of_transpose() {
        // (lower A)^T is upper; A = [1 0; 2 3], A^T = [1 2; 0 3], A^T*[1;1] = [3;3].
        let a = vec![1.0, 2.0, -9.0, 3.0];
        let mut b = vec![1.0, 1.0];
        trmm(
            Side::Left,
            Uplo::Lower,
            Trans::Yes,
            Diag::NonUnit,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatMut::from_slice(&mut b, 2, 1, 2),
        );
        assert_eq!(b, vec![3.0, 3.0]);
    }

    #[test]
    fn right_side_manual() {
        // B = [1 1] (1x2), A upper = [1 2; 0 3] ([1,*,2,3]).
        // B*A = [1, 5].
        let a = vec![1.0, -9.0, 2.0, 3.0];
        let mut b = vec![1.0, 1.0];
        trmm(
            Side::Right,
            Uplo::Upper,
            Trans::No,
            Diag::NonUnit,
            1.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatMut::from_slice(&mut b, 1, 2, 1),
        );
        assert_eq!(b, vec![1.0, 5.0]);
    }

    #[test]
    fn alpha_zero_clears() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let mut b = vec![5.0, 5.0];
        trmm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            0.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatMut::from_slice(&mut b, 2, 1, 2),
        );
        assert_eq!(b, vec![0.0, 0.0]);
    }

    #[test]
    fn alpha_scales() {
        let a = vec![1.0, 0.0, 0.0, 1.0]; // identity
        let mut b = vec![3.0, 4.0];
        trmm(
            Side::Left,
            Uplo::Lower,
            Trans::No,
            Diag::NonUnit,
            2.0,
            MatRef::from_slice(&a, 2, 2, 2),
            MatMut::from_slice(&mut b, 2, 1, 2),
        );
        assert_eq!(b, vec![6.0, 8.0]);
    }
}
