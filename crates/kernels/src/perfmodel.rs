//! GPU kernel performance model (calibrated to a Tesla V100-SXM2).
//!
//! The simulated executors charge each tile task a duration from this model
//! instead of running cuBLAS. The model is deliberately simple — a peak
//! FLOP rate scaled by an efficiency curve over the tile's effective size,
//! with a per-routine factor — because the paper's phenomena come from the
//! *communication* side; compute only needs to saturate at the right level
//! (≈ 7 TFlop/s DP per GPU at large tiles, much less at small ones).

use crate::types::Routine;

/// Per-task kernel shapes produced by the tiled algorithms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TileOp {
    /// `C(m,n) += op(A)(m,k) op(B)(k,n)`
    Gemm {
        /// Rows of C.
        m: usize,
        /// Columns of C.
        n: usize,
        /// Inner dimension.
        k: usize,
    },
    /// Symmetric diagonal-block multiply, `C(m,n)` with `A(m,m)` (left).
    Symm {
        /// Rows of C.
        m: usize,
        /// Columns of C.
        n: usize,
    },
    /// Rank-k update of a diagonal tile `C(n,n)` with inner dimension `k`.
    Syrk {
        /// Order of C.
        n: usize,
        /// Inner dimension.
        k: usize,
    },
    /// Rank-2k update of a diagonal tile.
    Syr2k {
        /// Order of C.
        n: usize,
        /// Inner dimension.
        k: usize,
    },
    /// Triangular multiply of a `m × n` block by a triangular tile.
    Trmm {
        /// Rows of B.
        m: usize,
        /// Columns of B.
        n: usize,
    },
    /// Triangular solve of a `m × n` block against a diagonal tile.
    Trsm {
        /// Rows of B.
        m: usize,
        /// Columns of B.
        n: usize,
    },
}

impl TileOp {
    /// Floating-point operations of this tile kernel (LAPACK counts).
    pub fn flops(self) -> f64 {
        match self {
            TileOp::Gemm { m, n, k } => 2.0 * m as f64 * n as f64 * k as f64,
            TileOp::Symm { m, n } => 2.0 * m as f64 * m as f64 * n as f64,
            TileOp::Syrk { n, k } => n as f64 * (n as f64 + 1.0) * k as f64,
            TileOp::Syr2k { n, k } => 2.0 * n as f64 * (n as f64 + 1.0) * k as f64,
            TileOp::Trmm { m, n } => m as f64 * m as f64 * n as f64,
            TileOp::Trsm { m, n } => m as f64 * m as f64 * n as f64,
        }
    }

    /// Effective cubic dimension: side of the cube with the same flop
    /// volume as this kernel (drives the efficiency lookup).
    pub fn effective_dim(self) -> f64 {
        (self.flops() / 2.0).cbrt()
    }

    /// Which routine family the kernel belongs to (for the per-routine
    /// efficiency factor).
    pub fn family(self) -> Routine {
        match self {
            TileOp::Gemm { .. } => Routine::Gemm,
            TileOp::Symm { .. } => Routine::Symm,
            TileOp::Syrk { .. } => Routine::Syrk,
            TileOp::Syr2k { .. } => Routine::Syr2k,
            TileOp::Trmm { .. } => Routine::Trmm,
            TileOp::Trsm { .. } => Routine::Trsm,
        }
    }
}

/// Measured-shape efficiency of cuBLAS DGEMM on V100 vs (square) tile side.
/// Piecewise log-linear interpolation between these anchors.
const GEMM_EFFICIENCY: [(f64, f64); 9] = [
    (32.0, 0.01),
    (64.0, 0.05),
    (128.0, 0.14),
    (256.0, 0.35),
    (512.0, 0.62),
    (1024.0, 0.84),
    (2048.0, 0.945),
    (4096.0, 0.975),
    (16384.0, 0.99),
];

/// Efficiency factor of each routine's tile kernels relative to DGEMM
/// (diagonal-block kernels of TRSM in particular run far from peak).
fn family_factor(family: Routine) -> f64 {
    match family {
        Routine::Gemm => 1.0,
        Routine::Symm => 0.93,
        Routine::Syrk => 0.90,
        Routine::Syr2k => 0.93,
        Routine::Trmm => 0.80,
        Routine::Trsm => 0.50,
    }
}

/// The GPU compute model: peak rate plus launch overhead.
#[derive(Clone, Copy, Debug)]
pub struct GpuModel {
    /// Peak double-precision rate, FLOP/s.
    pub peak_flops: f64,
    /// Fixed kernel launch overhead, seconds.
    pub launch_overhead: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel::v100()
    }
}

impl GpuModel {
    /// The V100-SXM2 of the paper's DGX-1 (7.8 TFlop/s DP peak).
    pub fn v100() -> Self {
        GpuModel {
            peak_flops: 7.8e12,
            launch_overhead: 5.0e-6,
        }
    }

    /// DGEMM efficiency at a given effective tile side.
    pub fn gemm_efficiency(dim: f64) -> f64 {
        let pts = &GEMM_EFFICIENCY;
        if dim <= pts[0].0 {
            return pts[0].1;
        }
        if dim >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for w in pts.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if dim <= x1 {
                let t = (dim.ln() - x0.ln()) / (x1.ln() - x0.ln());
                return y0 + t * (y1 - y0);
            }
        }
        unreachable!("interpolation anchors are exhaustive")
    }

    /// Sustained FLOP rate of a tile kernel.
    pub fn rate(&self, op: TileOp) -> f64 {
        let eff = Self::gemm_efficiency(op.effective_dim()) * family_factor(op.family());
        self.peak_flops * eff
    }

    /// Simulated execution time of a tile kernel, seconds.
    pub fn kernel_time(&self, op: TileOp) -> f64 {
        let flops = op.flops();
        if flops <= 0.0 {
            return self.launch_overhead;
        }
        self.launch_overhead + flops / self.rate(op)
    }
}

/// Bandwidth derating of a pitched (`ld != rows`) `cudaMemcpy2D` transfer
/// relative to a contiguous copy. LAPACK-layout sub-matrices pay this on
/// every host transfer; compacted tiles on devices do not.
pub const PITCHED_COPY_FACTOR: f64 = 0.88;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_is_monotone_in_tile_size() {
        let mut last = 0.0;
        for d in [32.0, 64.0, 200.0, 512.0, 1000.0, 2048.0, 5000.0, 20000.0] {
            let e = GpuModel::gemm_efficiency(d);
            assert!(e >= last, "eff({d}) = {e} < {last}");
            assert!((0.0..=1.0).contains(&e));
            last = e;
        }
    }

    #[test]
    fn anchors_reproduced() {
        assert!((GpuModel::gemm_efficiency(2048.0) - 0.945).abs() < 1e-9);
        assert!((GpuModel::gemm_efficiency(1024.0) - 0.84).abs() < 1e-9);
    }

    #[test]
    fn big_tile_gemm_near_peak() {
        let m = GpuModel::v100();
        let op = TileOp::Gemm {
            m: 4096,
            n: 4096,
            k: 4096,
        };
        let t = m.kernel_time(op);
        let achieved = op.flops() / t;
        assert!(achieved > 0.9 * m.peak_flops, "{achieved:.3e}");
    }

    #[test]
    fn small_tile_gemm_far_from_peak() {
        let m = GpuModel::v100();
        let op = TileOp::Gemm {
            m: 128,
            n: 128,
            k: 128,
        };
        let achieved = op.flops() / m.kernel_time(op);
        assert!(achieved < 0.2 * m.peak_flops);
    }

    #[test]
    fn trsm_kernels_slower_than_gemm() {
        let m = GpuModel::v100();
        let g = TileOp::Gemm {
            m: 2048,
            n: 2048,
            k: 2048,
        };
        let t = TileOp::Trsm { m: 2048, n: 2048 };
        assert!(m.rate(t) < m.rate(g));
    }

    #[test]
    fn flop_counts() {
        assert_eq!(TileOp::Gemm { m: 2, n: 3, k: 4 }.flops(), 48.0);
        assert_eq!(TileOp::Trsm { m: 2, n: 3 }.flops(), 12.0);
        let syrk = TileOp::Syrk { n: 10, k: 5 };
        assert_eq!(syrk.flops(), 10.0 * 11.0 * 5.0);
    }

    #[test]
    fn empty_kernel_costs_launch_overhead() {
        let m = GpuModel::v100();
        let t = m.kernel_time(TileOp::Gemm { m: 0, n: 0, k: 0 });
        assert_eq!(t, m.launch_overhead);
    }
}
