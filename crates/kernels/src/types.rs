//! BLAS parameter enums shared across the workspace.

/// Transposition of an operand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Trans {
    /// Dimensions of `op(A)` given the stored dimensions of `A`.
    pub fn apply_dims(self, m: usize, n: usize) -> (usize, usize) {
        match self {
            Trans::No => (m, n),
            Trans::Yes => (n, m),
        }
    }

    /// Flips the transposition.
    pub fn flip(self) -> Trans {
        match self {
            Trans::No => Trans::Yes,
            Trans::Yes => Trans::No,
        }
    }
}

/// Which triangle of a symmetric/triangular matrix is stored.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Uplo {
    /// Lower triangle.
    Lower,
    /// Upper triangle.
    Upper,
}

impl Uplo {
    /// The opposite triangle.
    pub fn flip(self) -> Uplo {
        match self {
            Uplo::Lower => Uplo::Upper,
            Uplo::Upper => Uplo::Lower,
        }
    }
}

/// Side of a symmetric/triangular multiplication.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Side {
    /// `op(A)` multiplies from the left.
    Left,
    /// `op(A)` multiplies from the right.
    Right,
}

/// Whether a triangular matrix has an implicit unit diagonal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Diag {
    /// Diagonal elements are stored and used.
    NonUnit,
    /// Diagonal elements are assumed to be one.
    Unit,
}

/// The six level-3 BLAS routines evaluated by the paper (Fig. 5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Routine {
    /// General matrix-matrix multiply.
    Gemm,
    /// Symmetric matrix-matrix multiply.
    Symm,
    /// Symmetric rank-k update.
    Syrk,
    /// Symmetric rank-2k update.
    Syr2k,
    /// Triangular matrix-matrix multiply.
    Trmm,
    /// Triangular solve with multiple right-hand sides.
    Trsm,
}

impl Routine {
    /// All six routines in the paper's figure order.
    pub const ALL: [Routine; 6] = [
        Routine::Gemm,
        Routine::Symm,
        Routine::Syr2k,
        Routine::Syrk,
        Routine::Trmm,
        Routine::Trsm,
    ];

    /// Uppercase name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Routine::Gemm => "GEMM",
            Routine::Symm => "SYMM",
            Routine::Syrk => "SYRK",
            Routine::Syr2k => "SYR2K",
            Routine::Trmm => "TRMM",
            Routine::Trsm => "TRSM",
        }
    }

    /// Total floating-point operations for square problems of dimension `n`
    /// (LAPACK working-note flop counts; used to convert simulated times
    /// into the TFlop/s axes of Fig. 3–5, 8).
    pub fn flops_square(self, n: u64) -> f64 {
        let nf = n as f64;
        match self {
            Routine::Gemm => 2.0 * nf * nf * nf,
            Routine::Symm => 2.0 * nf * nf * nf,
            Routine::Syrk => nf * nf * (nf + 1.0),
            Routine::Syr2k => 2.0 * nf * nf * (nf + 1.0),
            Routine::Trmm => nf * nf * nf,
            Routine::Trsm => nf * nf * nf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trans_dims() {
        assert_eq!(Trans::No.apply_dims(3, 5), (3, 5));
        assert_eq!(Trans::Yes.apply_dims(3, 5), (5, 3));
        assert_eq!(Trans::No.flip(), Trans::Yes);
    }

    #[test]
    fn uplo_flip() {
        assert_eq!(Uplo::Lower.flip(), Uplo::Upper);
        assert_eq!(Uplo::Upper.flip(), Uplo::Lower);
    }

    #[test]
    fn routine_names_and_flops() {
        assert_eq!(Routine::Gemm.name(), "GEMM");
        assert_eq!(Routine::ALL.len(), 6);
        let n = 1000u64;
        assert!((Routine::Gemm.flops_square(n) - 2e9).abs() < 1.0);
        assert!(Routine::Syr2k.flops_square(n) > Routine::Syrk.flops_square(n));
        assert!((Routine::Trsm.flops_square(n) - 1e9).abs() < 1.0);
    }
}
