//! Symmetric rank-2k update:
//! `C = alpha * (op(A) * op(B)^T + op(B) * op(A)^T) + beta * C`,
//! updating only the `uplo` triangle of `C`.

use crate::blocked::{gemm_with, TB};
use crate::scalar::Scalar;
use crate::syrk::{merge_triangle, scale_triangle};
use crate::types::{Trans, Uplo};
use crate::view::{MatMut, MatRef};

/// Sequential tile SYR2K, routed through the blocked GEMM engine.
///
/// With `trans == No`, `A` and `B` are `n × k`; with `trans == Yes` they
/// are `k × n` and the update is `A^T B + B^T A`. Like [`crate::syrk`],
/// the stored triangle is partitioned into [`TB`]-order block columns whose
/// rectangular parts are engine panel updates (two per block: the
/// `op(A) op(B)^T` term with `beta`, the `op(B) op(A)^T` term
/// accumulating) and whose diagonal blocks go through a dense scratch tile.
///
/// # Panics
/// Panics on inconsistent dimensions or non-square `C`.
pub fn syr2k<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let n = c.nrows();
    assert_eq!(c.ncols(), n, "C must be square");
    let k = match trans {
        Trans::No => {
            assert_eq!(a.nrows(), n);
            assert_eq!(b.nrows(), n);
            assert_eq!(a.ncols(), b.ncols());
            a.ncols()
        }
        Trans::Yes => {
            assert_eq!(a.ncols(), n);
            assert_eq!(b.ncols(), n);
            assert_eq!(a.nrows(), b.nrows());
            a.nrows()
        }
    };

    if alpha == T::ZERO || k == 0 {
        scale_triangle(beta, uplo, c.rb_mut());
        return;
    }

    let op_a = |i: usize, l: usize| -> T {
        match trans {
            Trans::No => a.at(i, l),
            Trans::Yes => a.at(l, i),
        }
    };
    let op_b = |i: usize, l: usize| -> T {
        match trans {
            Trans::No => b.at(i, l),
            Trans::Yes => b.at(l, i),
        }
    };

    let mut tmp = vec![T::ZERO; TB * TB];
    for jb in (0..n).step_by(TB) {
        let nb = TB.min(n - jb);
        // Diagonal block: op(A) op(B)^T + op(B) op(A)^T into scratch.
        gemm_with(
            nb,
            nb,
            k,
            T::ONE,
            |i, p| op_a(jb + i, p),
            |p, j| op_b(jb + j, p),
            T::ZERO,
            MatMut::from_slice(&mut tmp, nb, nb, nb),
        );
        gemm_with(
            nb,
            nb,
            k,
            T::ONE,
            |i, p| op_b(jb + i, p),
            |p, j| op_a(jb + j, p),
            T::ONE,
            MatMut::from_slice(&mut tmp, nb, nb, nb),
        );
        merge_triangle(uplo, alpha, &tmp, nb, beta, &mut c, jb);
        // Rectangular remainder of the block column: two engine panels.
        let (i0, mb) = match uplo {
            Uplo::Lower => (jb + nb, n.saturating_sub(jb + nb)),
            Uplo::Upper => (0, jb),
        };
        if mb > 0 {
            gemm_with(
                mb,
                nb,
                k,
                alpha,
                |i, p| op_a(i0 + i, p),
                |p, j| op_b(jb + j, p),
                beta,
                c.submatrix_mut(i0, jb, mb, nb),
            );
            gemm_with(
                mb,
                nb,
                k,
                alpha,
                |i, p| op_b(i0 + i, p),
                |p, j| op_a(jb + j, p),
                T::ONE,
                c.submatrix_mut(i0, jb, mb, nb),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank2_lower_manual() {
        // A = [1; 0], B = [0; 1] (2x1 each).
        // A B^T + B A^T = [0 1; 1 0].
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        let mut c = vec![0.0; 4];
        syr2k(
            Uplo::Lower,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, 2, 1, 2),
            MatRef::from_slice(&b, 2, 1, 2),
            0.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert_eq!(c[0], 0.0);
        assert_eq!(c[1], 1.0); // (1,0)
        assert_eq!(c[3], 0.0);
    }

    #[test]
    fn symmetric_in_exact_arithmetic() {
        // With A == B, syr2k == 2 * syrk.
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3x2
        let mut c2k = vec![0.0; 9];
        syr2k(
            Uplo::Lower,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, 3, 2, 3),
            MatRef::from_slice(&a, 3, 2, 3),
            0.0,
            MatMut::from_slice(&mut c2k, 3, 3, 3),
        );
        let mut ck = vec![0.0; 9];
        crate::syrk::syrk(
            Uplo::Lower,
            Trans::No,
            2.0,
            MatRef::from_slice(&a, 3, 2, 3),
            0.0,
            MatMut::from_slice(&mut ck, 3, 3, 3),
        );
        for (x, y) in c2k.iter().zip(&ck) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn trans_variant_matches_manual() {
        // trans=Yes, A = B = [1 2] (1x2): C = 2 * A^T A = [2 4; 4 8].
        let a = vec![1.0, 2.0];
        let mut c = vec![0.0; 4];
        syr2k(
            Uplo::Upper,
            Trans::Yes,
            1.0,
            MatRef::from_slice(&a, 1, 2, 1),
            MatRef::from_slice(&a, 1, 2, 1),
            0.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert_eq!(c[0], 2.0);
        assert_eq!(c[2], 4.0);
        assert_eq!(c[3], 8.0);
        assert_eq!(c[1], 0.0);
    }

    #[test]
    fn untouched_triangle_preserved() {
        let a = vec![1.0, 1.0];
        let mut c = vec![7.0; 4];
        syr2k(
            Uplo::Upper,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, 2, 1, 2),
            MatRef::from_slice(&a, 2, 1, 2),
            0.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert_eq!(c[1], 7.0, "strict lower must be untouched for Upper");
    }
}
