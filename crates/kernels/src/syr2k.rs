//! Symmetric rank-2k update:
//! `C = alpha * (op(A) * op(B)^T + op(B) * op(A)^T) + beta * C`,
//! updating only the `uplo` triangle of `C`.

use crate::scalar::Scalar;
use crate::syrk::scale_triangle;
use crate::types::{Trans, Uplo};
use crate::view::{MatMut, MatRef};

/// Sequential tile SYR2K.
///
/// With `trans == No`, `A` and `B` are `n × k`; with `trans == Yes` they
/// are `k × n` and the update is `A^T B + B^T A`.
///
/// # Panics
/// Panics on inconsistent dimensions or non-square `C`.
pub fn syr2k<T: Scalar>(
    uplo: Uplo,
    trans: Trans,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    mut c: MatMut<'_, T>,
) {
    let n = c.nrows();
    assert_eq!(c.ncols(), n, "C must be square");
    let k = match trans {
        Trans::No => {
            assert_eq!(a.nrows(), n);
            assert_eq!(b.nrows(), n);
            assert_eq!(a.ncols(), b.ncols());
            a.ncols()
        }
        Trans::Yes => {
            assert_eq!(a.ncols(), n);
            assert_eq!(b.ncols(), n);
            assert_eq!(a.nrows(), b.nrows());
            a.nrows()
        }
    };

    scale_triangle(beta, uplo, c.rb_mut());
    if alpha == T::ZERO || k == 0 {
        return;
    }

    let op = |m: &MatRef<'_, T>, i: usize, l: usize| -> T {
        match trans {
            Trans::No => m.at(i, l),
            Trans::Yes => m.at(l, i),
        }
    };

    for j in 0..n {
        let (lo, hi) = match uplo {
            Uplo::Lower => (j, n),
            Uplo::Upper => (0, j + 1),
        };
        for i in lo..hi {
            let mut acc = T::ZERO;
            for l in 0..k {
                acc += op(&a, i, l) * op(&b, j, l) + op(&b, i, l) * op(&a, j, l);
            }
            c.update(i, j, |v| v + alpha * acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank2_lower_manual() {
        // A = [1; 0], B = [0; 1] (2x1 each).
        // A B^T + B A^T = [0 1; 1 0].
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        let mut c = vec![0.0; 4];
        syr2k(
            Uplo::Lower,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, 2, 1, 2),
            MatRef::from_slice(&b, 2, 1, 2),
            0.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert_eq!(c[0], 0.0);
        assert_eq!(c[1], 1.0); // (1,0)
        assert_eq!(c[3], 0.0);
    }

    #[test]
    fn symmetric_in_exact_arithmetic() {
        // With A == B, syr2k == 2 * syrk.
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3x2
        let mut c2k = vec![0.0; 9];
        syr2k(
            Uplo::Lower,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, 3, 2, 3),
            MatRef::from_slice(&a, 3, 2, 3),
            0.0,
            MatMut::from_slice(&mut c2k, 3, 3, 3),
        );
        let mut ck = vec![0.0; 9];
        crate::syrk::syrk(
            Uplo::Lower,
            Trans::No,
            2.0,
            MatRef::from_slice(&a, 3, 2, 3),
            0.0,
            MatMut::from_slice(&mut ck, 3, 3, 3),
        );
        for (x, y) in c2k.iter().zip(&ck) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn trans_variant_matches_manual() {
        // trans=Yes, A = B = [1 2] (1x2): C = 2 * A^T A = [2 4; 4 8].
        let a = vec![1.0, 2.0];
        let mut c = vec![0.0; 4];
        syr2k(
            Uplo::Upper,
            Trans::Yes,
            1.0,
            MatRef::from_slice(&a, 1, 2, 1),
            MatRef::from_slice(&a, 1, 2, 1),
            0.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert_eq!(c[0], 2.0);
        assert_eq!(c[2], 4.0);
        assert_eq!(c[3], 8.0);
        assert_eq!(c[1], 0.0);
    }

    #[test]
    fn untouched_triangle_preserved() {
        let a = vec![1.0, 1.0];
        let mut c = vec![7.0; 4];
        syr2k(
            Uplo::Upper,
            Trans::No,
            1.0,
            MatRef::from_slice(&a, 2, 1, 2),
            MatRef::from_slice(&a, 2, 1, 2),
            0.0,
            MatMut::from_slice(&mut c, 2, 2, 2),
        );
        assert_eq!(c[1], 7.0, "strict lower must be untouched for Upper");
    }
}
