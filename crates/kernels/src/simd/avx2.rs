//! AVX2+FMA f64 microkernel: 4 × 8 register tile, one ymm accumulator
//! per column, depth loop unrolled ×4.
//!
//! Mirrors the AVX-512 kernel at half the vector width: one 4-lane A
//! load plus eight broadcast-FMAs per depth step fills both 256-bit FMA
//! ports with eight independent chains. Row fringes use
//! `_mm256_maskload_pd` / `_mm256_maskstore_pd` with a per-lane sign
//! mask, so partial tiles never touch memory past `mr` rows.

use std::arch::x86_64::*;

use crate::simd::{Isa, MicroKernel};

/// The AVX2+FMA 4×8 f64 kernel. `KC = 256` (8KB A panel slice in L1),
/// `MC = 128` (256KB packed A block, sized for the 512KB L2 of common
/// CI hosts), `NC = 4096`.
pub(crate) struct Avx2Mk;

impl MicroKernel<f64> for Avx2Mk {
    const ISA: Isa = Isa::Avx2;
    const MR: usize = 4;
    const NR: usize = 8;
    const KC: usize = 256;
    const MC: usize = 128;
    const NC: usize = 4096;
    const NAME: &'static str = "avx2_4x8";

    #[inline]
    unsafe fn tile(
        kc: usize,
        pa: *const f64,
        pb: *const f64,
        alpha: f64,
        beta: f64,
        c: *mut f64,
        ld: usize,
        mr: usize,
        nr: usize,
    ) {
        tile_4x8(kc, pa, pb, alpha, beta, c, ld, mr, nr);
    }
}

#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_4x8(
    kc: usize,
    pa: *const f64,
    pb: *const f64,
    alpha: f64,
    beta: f64,
    c: *mut f64,
    ld: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut acc2 = _mm256_setzero_pd();
    let mut acc3 = _mm256_setzero_pd();
    let mut acc4 = _mm256_setzero_pd();
    let mut acc5 = _mm256_setzero_pd();
    let mut acc6 = _mm256_setzero_pd();
    let mut acc7 = _mm256_setzero_pd();
    let mut ap = pa;
    let mut bp = pb;
    let mut p = 0;
    while p + 4 <= kc {
        for u in 0..4 {
            let av = _mm256_loadu_pd(ap.add(u * 4));
            let bq = bp.add(u * 8);
            acc0 = _mm256_fmadd_pd(av, _mm256_set1_pd(*bq), acc0);
            acc1 = _mm256_fmadd_pd(av, _mm256_set1_pd(*bq.add(1)), acc1);
            acc2 = _mm256_fmadd_pd(av, _mm256_set1_pd(*bq.add(2)), acc2);
            acc3 = _mm256_fmadd_pd(av, _mm256_set1_pd(*bq.add(3)), acc3);
            acc4 = _mm256_fmadd_pd(av, _mm256_set1_pd(*bq.add(4)), acc4);
            acc5 = _mm256_fmadd_pd(av, _mm256_set1_pd(*bq.add(5)), acc5);
            acc6 = _mm256_fmadd_pd(av, _mm256_set1_pd(*bq.add(6)), acc6);
            acc7 = _mm256_fmadd_pd(av, _mm256_set1_pd(*bq.add(7)), acc7);
        }
        ap = ap.add(16);
        bp = bp.add(32);
        p += 4;
    }
    while p < kc {
        let av = _mm256_loadu_pd(ap);
        acc0 = _mm256_fmadd_pd(av, _mm256_set1_pd(*bp), acc0);
        acc1 = _mm256_fmadd_pd(av, _mm256_set1_pd(*bp.add(1)), acc1);
        acc2 = _mm256_fmadd_pd(av, _mm256_set1_pd(*bp.add(2)), acc2);
        acc3 = _mm256_fmadd_pd(av, _mm256_set1_pd(*bp.add(3)), acc3);
        acc4 = _mm256_fmadd_pd(av, _mm256_set1_pd(*bp.add(4)), acc4);
        acc5 = _mm256_fmadd_pd(av, _mm256_set1_pd(*bp.add(5)), acc5);
        acc6 = _mm256_fmadd_pd(av, _mm256_set1_pd(*bp.add(6)), acc6);
        acc7 = _mm256_fmadd_pd(av, _mm256_set1_pd(*bp.add(7)), acc7);
        ap = ap.add(4);
        bp = bp.add(8);
        p += 1;
    }
    let acc = [acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7];
    let va = _mm256_set1_pd(alpha);
    let lane = |r: usize| if r < mr { -1i64 } else { 0 };
    let mask = _mm256_setr_epi64x(lane(0), lane(1), lane(2), lane(3));
    if beta == 0.0 {
        // NaN-safe overwrite: C is never read.
        for (j, &a) in acc.iter().enumerate().take(nr) {
            _mm256_maskstore_pd(c.add(j * ld), mask, _mm256_mul_pd(va, a));
        }
    } else {
        let vb = _mm256_set1_pd(beta);
        for (j, &a) in acc.iter().enumerate().take(nr) {
            let cv = _mm256_maskload_pd(c.add(j * ld), mask);
            let r = _mm256_fmadd_pd(vb, cv, _mm256_mul_pd(va, a));
            _mm256_maskstore_pd(c.add(j * ld), mask, r);
        }
    }
}
