//! AVX-512 f64 microkernel: 8 × 8 register tile, one zmm accumulator per
//! column, depth loop unrolled ×4.
//!
//! Shape rationale (measured on a 2-FMA-port Skylake-class core): a
//! single 8-lane zmm covers the full `MR = 8` row dimension, so each
//! depth step is one aligned A load plus eight broadcast-FMAs — 8
//! accumulators is enough to hide the 4-cycle FMA latency across 2 ports,
//! and the ×4 unroll amortizes loop control to reach ~96% of the bare
//! FMA-throughput peak. 16-row variants (16×4, 16×8) measured slower:
//! the second A load per step doubles load-port pressure without adding
//! independent FMA chains.
//!
//! Row fringes use masked loads/stores (`__mmask8 = (1 << mr) - 1`), so
//! partial tiles never touch memory past `mr` rows; column fringes simply
//! store fewer columns. The packed panels are always full-width
//! (zero-padded by the packers), so the depth loop itself is
//! fringe-free.

use std::arch::x86_64::*;

use crate::simd::{Isa, MicroKernel};

/// The AVX-512F 8×8 f64 kernel. `KC = 256` keeps the 16KB A panel slice
/// streaming from L1; `MC = 256` sizes the 512KB packed A block for a
/// 1–2MB private L2; `NC = 4096` keeps the B panel resident in LLC.
pub(crate) struct Avx512Mk;

impl MicroKernel<f64> for Avx512Mk {
    const ISA: Isa = Isa::Avx512;
    const MR: usize = 8;
    const NR: usize = 8;
    const KC: usize = 256;
    const MC: usize = 256;
    const NC: usize = 4096;
    const NAME: &'static str = "avx512_8x8";

    #[inline]
    unsafe fn tile(
        kc: usize,
        pa: *const f64,
        pb: *const f64,
        alpha: f64,
        beta: f64,
        c: *mut f64,
        ld: usize,
        mr: usize,
        nr: usize,
    ) {
        tile_8x8(kc, pa, pb, alpha, beta, c, ld, mr, nr);
    }
}

#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_8x8(
    kc: usize,
    pa: *const f64,
    pb: *const f64,
    alpha: f64,
    beta: f64,
    c: *mut f64,
    ld: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc0 = _mm512_setzero_pd();
    let mut acc1 = _mm512_setzero_pd();
    let mut acc2 = _mm512_setzero_pd();
    let mut acc3 = _mm512_setzero_pd();
    let mut acc4 = _mm512_setzero_pd();
    let mut acc5 = _mm512_setzero_pd();
    let mut acc6 = _mm512_setzero_pd();
    let mut acc7 = _mm512_setzero_pd();
    let mut ap = pa;
    let mut bp = pb;
    let mut p = 0;
    while p + 4 <= kc {
        for u in 0..4 {
            let av = _mm512_loadu_pd(ap.add(u * 8));
            let bq = bp.add(u * 8);
            acc0 = _mm512_fmadd_pd(av, _mm512_set1_pd(*bq), acc0);
            acc1 = _mm512_fmadd_pd(av, _mm512_set1_pd(*bq.add(1)), acc1);
            acc2 = _mm512_fmadd_pd(av, _mm512_set1_pd(*bq.add(2)), acc2);
            acc3 = _mm512_fmadd_pd(av, _mm512_set1_pd(*bq.add(3)), acc3);
            acc4 = _mm512_fmadd_pd(av, _mm512_set1_pd(*bq.add(4)), acc4);
            acc5 = _mm512_fmadd_pd(av, _mm512_set1_pd(*bq.add(5)), acc5);
            acc6 = _mm512_fmadd_pd(av, _mm512_set1_pd(*bq.add(6)), acc6);
            acc7 = _mm512_fmadd_pd(av, _mm512_set1_pd(*bq.add(7)), acc7);
        }
        ap = ap.add(32);
        bp = bp.add(32);
        p += 4;
    }
    while p < kc {
        let av = _mm512_loadu_pd(ap);
        acc0 = _mm512_fmadd_pd(av, _mm512_set1_pd(*bp), acc0);
        acc1 = _mm512_fmadd_pd(av, _mm512_set1_pd(*bp.add(1)), acc1);
        acc2 = _mm512_fmadd_pd(av, _mm512_set1_pd(*bp.add(2)), acc2);
        acc3 = _mm512_fmadd_pd(av, _mm512_set1_pd(*bp.add(3)), acc3);
        acc4 = _mm512_fmadd_pd(av, _mm512_set1_pd(*bp.add(4)), acc4);
        acc5 = _mm512_fmadd_pd(av, _mm512_set1_pd(*bp.add(5)), acc5);
        acc6 = _mm512_fmadd_pd(av, _mm512_set1_pd(*bp.add(6)), acc6);
        acc7 = _mm512_fmadd_pd(av, _mm512_set1_pd(*bp.add(7)), acc7);
        ap = ap.add(8);
        bp = bp.add(8);
        p += 1;
    }
    let acc = [acc0, acc1, acc2, acc3, acc4, acc5, acc6, acc7];
    let va = _mm512_set1_pd(alpha);
    let mask: __mmask8 = if mr == 8 { 0xff } else { (1u8 << mr) - 1 };
    if beta == 0.0 {
        // NaN-safe overwrite: C is never read.
        for (j, &a) in acc.iter().enumerate().take(nr) {
            _mm512_mask_storeu_pd(c.add(j * ld), mask, _mm512_mul_pd(va, a));
        }
    } else {
        let vb = _mm512_set1_pd(beta);
        for (j, &a) in acc.iter().enumerate().take(nr) {
            let cv = _mm512_maskz_loadu_pd(mask, c.add(j * ld));
            let r = _mm512_fmadd_pd(vb, cv, _mm512_mul_pd(va, a));
            _mm512_mask_storeu_pd(c.add(j * ld), mask, r);
        }
    }
}
