//! Portable scalar microkernel — the fallback every target has and the
//! differential oracle the SIMD kernels are tested against.
//!
//! This kernel and its blocking constants reproduce the pre-dispatch
//! engine exactly: same 8×4 register tile, same `KC`/`MC`/`NC`, same
//! accumulation order (depth-outer, column-middle, row-inner) and the
//! same `alpha`/`beta` store expressions. `XK_KERNEL_ISA=scalar` is
//! therefore bit-for-bit identical to the engine as of PR 2 — a property
//! `tests/isa_dispatch.rs` pins.

use crate::scalar::Scalar;
use crate::simd::{Isa, MicroKernel};

/// The portable 8×4 kernel (autovectorized by the compiler, no
/// `std::arch`). Blocking matches the pre-dispatch engine: `KC = 256`,
/// `MC = 128`, `NC = 2048`.
pub(crate) struct ScalarMk;

impl<T: Scalar> MicroKernel<T> for ScalarMk {
    const ISA: Isa = Isa::Scalar;
    const MR: usize = 8;
    const NR: usize = 4;
    const KC: usize = 256;
    const MC: usize = 128;
    const NC: usize = 2048;
    const NAME: &'static str = "scalar_8x4";

    #[inline]
    unsafe fn tile(
        kc: usize,
        pa: *const T,
        pb: *const T,
        alpha: T,
        beta: T,
        c: *mut T,
        ld: usize,
        mr: usize,
        nr: usize,
    ) {
        const MR: usize = 8;
        const NR: usize = 4;
        // Full-tile accumulation over the zero-padded panels; fixed-size
        // arrays and constant trip counts keep the tile in registers and
        // let the compiler vectorize the row dimension.
        let mut acc = [T::ZERO; MR * NR];
        for p in 0..kc {
            let a: &[T; MR] = &*(pa.add(p * MR) as *const [T; MR]);
            let b: &[T; NR] = &*(pb.add(p * NR) as *const [T; NR]);
            for (cc, &bv) in b.iter().enumerate() {
                for (r, &av) in a.iter().enumerate() {
                    acc[cc * MR + r] += av * bv;
                }
            }
        }
        // Clipped store with the exact expression forms of the original
        // `store_tile` (bit-for-bit compatibility contract).
        for cc in 0..nr {
            let dst = c.add(cc * ld);
            if beta == T::ZERO {
                for r in 0..mr {
                    *dst.add(r) = alpha * acc[cc * MR + r];
                }
            } else if beta == T::ONE {
                for r in 0..mr {
                    let v = *dst.add(r);
                    *dst.add(r) = v + alpha * acc[cc * MR + r];
                }
            } else {
                for r in 0..mr {
                    let v = *dst.add(r);
                    *dst.add(r) = beta * v + alpha * acc[cc * MR + r];
                }
            }
        }
    }
}
