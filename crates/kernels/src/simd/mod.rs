//! Explicit SIMD microkernels with runtime ISA dispatch.
//!
//! The blocked engine ([`crate::blocked`]) is generic over a
//! [`MicroKernel`]: a register-tile update (`MR × NR` accumulator over a
//! `kc`-deep packed panel pair, fringe-clipped `alpha`/`beta` store) plus
//! the cache-blocking parameters (`KC`/`MC`/`NC`) tuned for that tile.
//! Four kernels exist today, all for `f64` (the paper's evaluation is
//! FP64; `f32` always rides the portable scalar kernel):
//!
//! | ISA | register tile | intrinsics |
//! |---|---|---|
//! | AVX-512 | 8 × 8 (one zmm per column, unrolled ×4) | `_mm512_fmadd_pd`, masked fringe stores |
//! | AVX2+FMA | 4 × 8 (one ymm per column, unrolled ×4) | `_mm256_fmadd_pd` |
//! | NEON | 4 × 4 (two d-regs per column) | `vfmaq_f64` |
//! | scalar | 8 × 4 autovectorized | none (portable fallback + differential oracle) |
//!
//! # Selection
//!
//! [`selected_isa`] picks the kernel for every engine invocation: the best
//! ISA the host supports (cached CPUID probe via
//! `is_x86_feature_detected!` / `is_aarch64_feature_detected!`), unless
//! the `XK_KERNEL_ISA` environment variable overrides it. The override is
//! re-read on every call so test suites can iterate ISAs in-process:
//!
//! * unset or `auto` — best supported ISA;
//! * `avx512` / `avx2` / `neon` / `scalar` — that kernel, **if** the host
//!   supports it; a valid-but-unsupported request falls back to `scalar`
//!   (never to a different SIMD path, so a pinned CI leg stays pinned);
//! * anything else — panic (a silently misread knob would quietly bench
//!   the wrong kernel).
//!
//! The scalar kernel is bit-for-bit identical to the pre-dispatch engine:
//! same pack layout, same accumulation order, same store expressions. The
//! SIMD kernels contract multiply-adds into FMAs and change the summation
//! shape, so results differ from scalar by a few ULPs (see
//! `max_ulp_diff` in [`crate::aux`] and DESIGN.md §6d for the tolerance
//! model the test suites use).

use std::sync::OnceLock;

use crate::scalar::Scalar;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx512;
#[cfg(target_arch = "aarch64")]
pub(crate) mod neon;
pub(crate) mod scalar_mk;

/// Environment variable that overrides the dispatched ISA
/// (`auto`/`avx512`/`avx2`/`neon`/`scalar`).
pub const ISA_ENV: &str = "XK_KERNEL_ISA";

/// An instruction-set architecture a microkernel may target.
///
/// Every variant exists on every build target so the name is always
/// parseable and reportable; dispatch falls back to [`Isa::Scalar`] when
/// the variant's kernel is not compiled in or not supported by the host.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Isa {
    /// Portable autovectorized kernel — every host, and the differential
    /// oracle for the explicit SIMD paths.
    Scalar,
    /// AVX2 + FMA (256-bit) on x86-64.
    Avx2,
    /// AVX-512F (512-bit, masked fringe stores) on x86-64.
    Avx512,
    /// NEON/ASIMD (128-bit) on aarch64.
    Neon,
}

impl Isa {
    /// All variants, best-first in the order detection prefers them.
    pub const ALL: [Isa; 4] = [Isa::Avx512, Isa::Avx2, Isa::Neon, Isa::Scalar];

    /// Lower-case name, as accepted by [`ISA_ENV`] and reported by the
    /// benches.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
            Isa::Neon => "neon",
        }
    }

    /// Parses an [`ISA_ENV`] value; `None` for unknown names. `auto` is
    /// not an ISA and parses to `None` (callers handle it first).
    pub fn parse(s: &str) -> Option<Isa> {
        Isa::ALL.into_iter().find(|isa| isa.name() == s)
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// ISAs the host can execute, best-first. Always non-empty and always
/// ends with [`Isa::Scalar`]. The probe runs once per process.
pub fn supported_isas() -> &'static [Isa] {
    static SUPPORTED: OnceLock<Vec<Isa>> = OnceLock::new();
    SUPPORTED.get_or_init(|| {
        #[allow(unused_mut)]
        let mut isas = Vec::with_capacity(3);
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                isas.push(Isa::Avx512);
            }
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                isas.push(Isa::Avx2);
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                isas.push(Isa::Neon);
            }
        }
        isas.push(Isa::Scalar);
        isas
    })
}

/// The best ISA the host supports (ignores the override).
pub fn detected_isa() -> Isa {
    supported_isas()[0]
}

/// The ISA the next kernel invocation will dispatch to: [`detected_isa`]
/// unless [`ISA_ENV`] overrides it (see the module docs for the exact
/// semantics). Re-reads the environment on every call — intentionally, so
/// tests can iterate ISAs in one process; the cost is noise next to any
/// real kernel invocation.
///
/// # Panics
/// Panics if [`ISA_ENV`] is set to an unrecognized value.
pub fn selected_isa() -> Isa {
    match std::env::var(ISA_ENV) {
        Err(_) => detected_isa(),
        Ok(v) if v.is_empty() || v == "auto" => detected_isa(),
        Ok(v) => {
            let isa = Isa::parse(&v).unwrap_or_else(|| {
                panic!("{ISA_ENV}={v:?}: expected auto, avx512, avx2, neon or scalar")
            });
            if supported_isas().contains(&isa) {
                isa
            } else {
                Isa::Scalar
            }
        }
    }
}

/// Geometry and blocking parameters of one dispatched microkernel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KernelShape {
    /// The ISA that was asked for (shapes of unsupported requests report
    /// the scalar fallback actually dispatched).
    pub isa: Isa,
    /// Kernel name, e.g. `"avx512_8x8"`.
    pub name: &'static str,
    /// Register-tile rows (micro-panel height of packed A).
    pub mr: usize,
    /// Register-tile columns (micro-panel width of packed B).
    pub nr: usize,
    /// Depth block (k dimension) packed per panel pair.
    pub kc: usize,
    /// Row block of packed A (`mc × kc` targets L2).
    pub mc: usize,
    /// Column block of packed B (`kc × nc` targets L3).
    pub nc: usize,
}

/// The microkernel geometry `isa` dispatches to for scalar type `T`.
pub fn kernel_shape<T: Scalar>(isa: Isa) -> KernelShape {
    T::kernel_shape(isa)
}

/// [`KernelShape`] of one concrete [`MicroKernel`] implementation.
pub(crate) fn shape_of<T: Scalar, MK: MicroKernel<T>>() -> KernelShape {
    KernelShape {
        isa: MK::ISA,
        name: MK::NAME,
        mr: MK::MR,
        nr: MK::NR,
        kc: MK::KC,
        mc: MK::MC,
        nc: MK::NC,
    }
}

/// The blocked, packed, register-tiled microkernel contract the engine
/// drives. Implementations pair one register-tile update with the cache
/// blocking tuned for it; `blocked::engine` is monomorphized per kernel
/// so every constant below folds into the generated loops.
pub(crate) trait MicroKernel<T: Scalar> {
    /// The ISA this kernel targets (what [`KernelShape::isa`] reports).
    const ISA: Isa;
    /// Register-tile rows; micro-panels of packed A are `MR` tall.
    const MR: usize;
    /// Register-tile columns; micro-panels of packed B are `NR` wide.
    const NR: usize;
    /// Depth of one packed panel pair.
    const KC: usize;
    /// Rows per packed A macro-panel (`MC × KC` elements target L2).
    const MC: usize;
    /// Columns per packed B macro-panel (`KC × NC` elements target L3).
    const NC: usize;
    /// Reported kernel name.
    const NAME: &'static str;

    /// Rank-`kc` update of one register tile plus the fringe-clipped
    /// store: `C[..mr, ..nr] = alpha * (PA × PB) + beta * C[..mr, ..nr]`,
    /// where `PA`/`PB` are one packed micro-panel each. `beta == 0` must
    /// overwrite without reading `C` (NaN-safe, like BLAS).
    ///
    /// # Safety
    /// `pa` must hold `kc * MR` elements, `pb` `kc * NR` (fringes already
    /// zero-padded by packing); `c` must be valid for reads and writes of
    /// the `mr × nr` column-major region with leading dimension `ld`;
    /// `0 < mr <= MR`, `0 < nr <= NR`, and the host must support the
    /// kernel's ISA.
    unsafe fn tile(
        kc: usize,
        pa: *const T,
        pb: *const T,
        alpha: T,
        beta: T,
        c: *mut T,
        ld: usize,
        mr: usize,
        nr: usize,
    );
}

/// Scalar store of a full accumulator spill buffer (column-major with
/// stride `buf_mr`), clipped to the `mr × nr` fringe — shared by the SIMD
/// kernels whose ISA lacks cheap masked stores. Uses the exact same
/// `alpha`/`beta` expression forms as the scalar kernel.
///
/// # Safety
/// `buf` must hold at least `nr` columns of `buf_mr` rows; `c` must be
/// valid for the `mr × nr` region with leading dimension `ld`; `mr` must
/// not exceed `buf_mr`.
#[allow(dead_code)] // unused on targets with no SIMD kernel compiled in
#[inline]
pub(crate) unsafe fn store_spill_clipped<T: Scalar>(
    buf: *const T,
    buf_mr: usize,
    alpha: T,
    beta: T,
    c: *mut T,
    ld: usize,
    mr: usize,
    nr: usize,
) {
    for j in 0..nr {
        let col = buf.add(j * buf_mr);
        let dst = c.add(j * ld);
        if beta == T::ZERO {
            for r in 0..mr {
                *dst.add(r) = alpha * *col.add(r);
            }
        } else if beta == T::ONE {
            for r in 0..mr {
                *dst.add(r) += alpha * *col.add(r);
            }
        } else {
            for r in 0..mr {
                *dst.add(r) = beta * *dst.add(r) + alpha * *col.add(r);
            }
        }
    }
}

/// Runs one bare full-tile microkernel invocation of `isa`'s kernel for
/// `T` — no packing, no cache blocking. This is the bench hook that
/// isolates register-tile throughput from blocking effects.
///
/// `pa`/`pb` must hold `kc * mr` / `kc * nr` elements of packed panels
/// and `c` an `mr × nr` column-major tile with leading dimension `ld`
/// (`mr`/`nr` from [`kernel_shape`]).
///
/// # Panics
/// Panics if a slice is too short or the host does not support `isa`.
pub fn run_tile<T: Scalar>(
    isa: Isa,
    kc: usize,
    pa: &[T],
    pb: &[T],
    alpha: T,
    beta: T,
    c: &mut [T],
    ld: usize,
) {
    let shape = kernel_shape::<T>(isa);
    assert!(
        supported_isas().contains(&isa),
        "host does not support {isa}"
    );
    assert!(pa.len() >= kc * shape.mr, "packed A panel too short");
    assert!(pb.len() >= kc * shape.nr, "packed B panel too short");
    assert!(ld >= shape.mr && c.len() >= ld * (shape.nr - 1) + shape.mr, "C tile too short");
    // SAFETY: panel/tile sizes asserted above, ISA support asserted above.
    unsafe {
        T::tile_raw(isa, kc, pa.as_ptr(), pb.as_ptr(), alpha, beta, c.as_mut_ptr(), ld);
    }
}

/// Measured throughput of `isa`'s bare microkernel for `T`, in GFLOP/s:
/// repeated full-tile rank-`KC` updates over L1-resident packed panels.
/// This is the "machine peak" proxy `BENCH_kernels.json` reports
/// fractions against — it prices in loop overhead and the C-tile store,
/// but no packing or cache misses.
///
/// `budget_ms` is the measurement budget; the best batch wins.
pub fn microkernel_peak_gflops<T: Scalar>(isa: Isa, budget_ms: u64) -> f64 {
    let shape = kernel_shape::<T>(isa);
    let kc = shape.kc;
    let pa: Vec<T> = (0..kc * shape.mr)
        .map(|i| T::from_f64((i % 23) as f64 * 0.05 - 0.5))
        .collect();
    let pb: Vec<T> = (0..kc * shape.nr)
        .map(|i| T::from_f64((i % 19) as f64 * 0.05 - 0.4))
        .collect();
    let mut c = vec![T::ZERO; shape.mr * shape.nr];
    let flops_per_call = (2 * shape.mr * shape.nr * kc) as f64;
    // Calibrate a batch to ~1ms, then take the best of the budget.
    let mut batch = 1u32;
    loop {
        let t0 = std::time::Instant::now();
        for _ in 0..batch {
            run_tile(isa, kc, &pa, &pb, T::ONE, T::ONE, &mut c, shape.mr);
        }
        if t0.elapsed().as_secs_f64() > 1e-3 || batch >= 1 << 20 {
            break;
        }
        batch *= 2;
    }
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(budget_ms);
    let mut best = f64::INFINITY;
    while std::time::Instant::now() < deadline {
        let t0 = std::time::Instant::now();
        for _ in 0..batch {
            run_tile(isa, kc, &pa, &pb, T::ONE, T::ONE, &mut c, shape.mr);
        }
        best = best.min(t0.elapsed().as_secs_f64() / batch as f64);
    }
    flops_per_call / best / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supported_always_ends_with_scalar() {
        let isas = supported_isas();
        assert!(!isas.is_empty());
        assert_eq!(*isas.last().unwrap(), Isa::Scalar);
        // Best-first: the detected ISA is the head.
        assert_eq!(detected_isa(), isas[0]);
    }

    #[test]
    fn names_round_trip() {
        for isa in Isa::ALL {
            assert_eq!(Isa::parse(isa.name()), Some(isa));
            assert_eq!(format!("{isa}"), isa.name());
        }
        assert_eq!(Isa::parse("auto"), None);
        assert_eq!(Isa::parse("AVX2"), None, "names are case-sensitive");
    }

    #[test]
    fn shapes_are_consistent() {
        for isa in supported_isas() {
            for shape in [kernel_shape::<f64>(*isa), kernel_shape::<f32>(*isa)] {
                assert!(shape.mr > 0 && shape.nr > 0, "{shape:?}");
                assert_eq!(shape.mc % shape.mr, 0, "{shape:?}: MC must be MR-granular");
                assert_eq!(shape.nc % shape.nr, 0, "{shape:?}: NC must be NR-granular");
                assert!(shape.kc > 0, "{shape:?}");
            }
        }
        // f32 always rides the scalar kernel, whatever the ISA.
        assert_eq!(kernel_shape::<f32>(detected_isa()).name, "scalar_8x4");
    }

    #[test]
    fn run_tile_matches_reference_dot_products() {
        for &isa in supported_isas() {
            let shape = kernel_shape::<f64>(isa);
            let kc = 37; // not a multiple of the unroll factor
            let pa: Vec<f64> = (0..kc * shape.mr).map(|i| (i % 7) as f64 - 3.0).collect();
            let pb: Vec<f64> = (0..kc * shape.nr).map(|i| (i % 5) as f64 - 2.0).collect();
            let ld = shape.mr + 3;
            let mut c = vec![1.0f64; ld * shape.nr];
            run_tile(isa, kc, &pa, &pb, 2.0, -1.0, &mut c, ld);
            for j in 0..shape.nr {
                for r in 0..shape.mr {
                    let dot: f64 = (0..kc)
                        .map(|p| pa[p * shape.mr + r] * pb[p * shape.nr + j])
                        .sum();
                    let got = c[r + j * ld];
                    let want = 2.0 * dot - 1.0;
                    assert!(
                        (got - want).abs() < 1e-9,
                        "{isa} ({r},{j}): got {got}, want {want}"
                    );
                }
                for r in shape.mr..ld {
                    assert_eq!(c[r + j * ld], 1.0, "{isa}: padding clobbered");
                }
            }
        }
    }

    #[test]
    fn peak_measurement_is_positive() {
        let g = microkernel_peak_gflops::<f64>(Isa::Scalar, 10);
        assert!(g.is_finite() && g > 0.0);
    }
}
