//! NEON/ASIMD f64 microkernel: 4 × 4 register tile, two 2-lane q-regs
//! per column, depth loop unrolled ×2.
//!
//! Eight independent `vfmaq_f64` chains per depth step cover the typical
//! 2 × 128-bit FMA pipes of aarch64 cores. NEON has no masked stores, so
//! partial tiles spill the full accumulator to a stack buffer and the
//! shared scalar clipped store ([`crate::simd::store_spill_clipped`])
//! writes the `mr × nr` fringe; full tiles store directly.

use std::arch::aarch64::*;

use crate::simd::{store_spill_clipped, Isa, MicroKernel};

/// The NEON 4×4 f64 kernel. `KC = 256` (8KB A panel slice in L1),
/// `MC = 128`, `NC = 4096`.
pub(crate) struct NeonMk;

impl MicroKernel<f64> for NeonMk {
    const ISA: Isa = Isa::Neon;
    const MR: usize = 4;
    const NR: usize = 4;
    const KC: usize = 256;
    const MC: usize = 128;
    const NC: usize = 4096;
    const NAME: &'static str = "neon_4x4";

    #[inline]
    unsafe fn tile(
        kc: usize,
        pa: *const f64,
        pb: *const f64,
        alpha: f64,
        beta: f64,
        c: *mut f64,
        ld: usize,
        mr: usize,
        nr: usize,
    ) {
        tile_4x4(kc, pa, pb, alpha, beta, c, ld, mr, nr);
    }
}

#[target_feature(enable = "neon")]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_4x4(
    kc: usize,
    pa: *const f64,
    pb: *const f64,
    alpha: f64,
    beta: f64,
    c: *mut f64,
    ld: usize,
    mr: usize,
    nr: usize,
) {
    let mut a0l = vdupq_n_f64(0.0);
    let mut a0h = vdupq_n_f64(0.0);
    let mut a1l = vdupq_n_f64(0.0);
    let mut a1h = vdupq_n_f64(0.0);
    let mut a2l = vdupq_n_f64(0.0);
    let mut a2h = vdupq_n_f64(0.0);
    let mut a3l = vdupq_n_f64(0.0);
    let mut a3h = vdupq_n_f64(0.0);
    let mut ap = pa;
    let mut bp = pb;
    let mut p = 0;
    while p + 2 <= kc {
        for u in 0..2 {
            let avl = vld1q_f64(ap.add(u * 4));
            let avh = vld1q_f64(ap.add(u * 4 + 2));
            let bq = bp.add(u * 4);
            let b0 = vdupq_n_f64(*bq);
            a0l = vfmaq_f64(a0l, avl, b0);
            a0h = vfmaq_f64(a0h, avh, b0);
            let b1 = vdupq_n_f64(*bq.add(1));
            a1l = vfmaq_f64(a1l, avl, b1);
            a1h = vfmaq_f64(a1h, avh, b1);
            let b2 = vdupq_n_f64(*bq.add(2));
            a2l = vfmaq_f64(a2l, avl, b2);
            a2h = vfmaq_f64(a2h, avh, b2);
            let b3 = vdupq_n_f64(*bq.add(3));
            a3l = vfmaq_f64(a3l, avl, b3);
            a3h = vfmaq_f64(a3h, avh, b3);
        }
        ap = ap.add(8);
        bp = bp.add(8);
        p += 2;
    }
    if p < kc {
        let avl = vld1q_f64(ap);
        let avh = vld1q_f64(ap.add(2));
        let b0 = vdupq_n_f64(*bp);
        a0l = vfmaq_f64(a0l, avl, b0);
        a0h = vfmaq_f64(a0h, avh, b0);
        let b1 = vdupq_n_f64(*bp.add(1));
        a1l = vfmaq_f64(a1l, avl, b1);
        a1h = vfmaq_f64(a1h, avh, b1);
        let b2 = vdupq_n_f64(*bp.add(2));
        a2l = vfmaq_f64(a2l, avl, b2);
        a2h = vfmaq_f64(a2h, avh, b2);
        let b3 = vdupq_n_f64(*bp.add(3));
        a3l = vfmaq_f64(a3l, avl, b3);
        a3h = vfmaq_f64(a3h, avh, b3);
    }
    let lo = [a0l, a1l, a2l, a3l];
    let hi = [a0h, a1h, a2h, a3h];
    if mr == 4 {
        let va = vdupq_n_f64(alpha);
        if beta == 0.0 {
            // NaN-safe overwrite: C is never read.
            for j in 0..nr {
                let cp = c.add(j * ld);
                vst1q_f64(cp, vmulq_f64(va, lo[j]));
                vst1q_f64(cp.add(2), vmulq_f64(va, hi[j]));
            }
        } else {
            let vb = vdupq_n_f64(beta);
            for j in 0..nr {
                let cp = c.add(j * ld);
                vst1q_f64(cp, vfmaq_f64(vmulq_f64(va, lo[j]), vb, vld1q_f64(cp)));
                vst1q_f64(
                    cp.add(2),
                    vfmaq_f64(vmulq_f64(va, hi[j]), vb, vld1q_f64(cp.add(2))),
                );
            }
        }
    } else {
        let mut spill = [0.0f64; 16];
        for j in 0..4 {
            vst1q_f64(spill.as_mut_ptr().add(j * 4), lo[j]);
            vst1q_f64(spill.as_mut_ptr().add(j * 4 + 2), hi[j]);
        }
        store_spill_clipped(spill.as_ptr(), 4, alpha, beta, c, ld, mr, nr);
    }
}
