//! The XKBlas context: asynchronous call composition over one task graph.
//!
//! Every `*_async` routine appends tasks to the context's graph; nothing
//! executes until [`Context::run_numeric`] (real multicore execution) or
//! [`Context::run_simulated`] (DGX-1 model) — mirroring XKBlas' extended
//! LAPACK API with asynchronous semantics. Successive calls compose: a
//! routine reading tiles written by a previous one picks up point-to-point
//! dependencies instead of a barrier (paper §IV-F).

use std::collections::{HashMap, HashSet};
use std::marker::PhantomData;

use xk_kernels::perfmodel::TileOp;
use xk_kernels::Scalar;
use xk_runtime::task::TaskBody;
use xk_runtime::{
    run_parallel, DataInfo, HandleId, ObsLevel, ParOutcome, RuntimeConfig, SimOutcome, SimSession,
    TaskAccess, TaskGraph, TaskLabel,
};
use xk_topo::{Device, FabricSpec};

use crate::matrix::{block_cyclic_owner, Matrix, TileMap};

/// Where a matrix's tiles start out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Placement {
    /// Valid in host memory (data-on-host methodology).
    Host,
    /// Distributed 2D block-cyclic over the GPUs (data-on-device).
    BlockCyclic,
}

/// The asynchronous BLAS context.
pub struct Context<T: Scalar> {
    topo: FabricSpec,
    cfg: RuntimeConfig,
    tile: usize,
    grid: (usize, usize),
    graph: TaskGraph,
    handles: HashMap<(u64, usize, usize), HandleId>,
    placements: HashMap<u64, Placement>,
    registered_mats: HashSet<u64>,
    calls: usize,
    sim_only: bool,
    tile_layout: bool,
    obs: ObsLevel,
    _scalar: PhantomData<T>,
}

impl<T: Scalar> Context<T> {
    /// Creates a context for `topo` under `cfg`, decomposing matrices into
    /// square tiles of side `tile`.
    ///
    /// The owner grid defaults to `(n_gpus/2, 2)` — the paper's `(4, 2)`
    /// grid on 8 GPUs.
    pub fn new(topo: FabricSpec, cfg: RuntimeConfig, tile: usize) -> Self {
        assert!(tile > 0);
        let p = (topo.n_gpus() / 2).max(1);
        let q = if topo.n_gpus() >= 2 { 2 } else { 1 };
        Context {
            topo,
            cfg,
            tile,
            grid: (p, q),
            graph: TaskGraph::new(),
            handles: HashMap::new(),
            placements: HashMap::new(),
            registered_mats: HashSet::new(),
            calls: 0,
            sim_only: false,
            tile_layout: false,
            obs: ObsLevel::default(),
            _scalar: PhantomData,
        }
    }

    /// Tile side used by the tiled algorithms.
    pub fn tile_size(&self) -> usize {
        self.tile
    }

    /// Switches the context to *simulation-only* mode: `*_async` calls
    /// record tasks with timing shapes but drop the numeric bodies, so
    /// [`Matrix::phantom`] operands work and nothing touches real memory.
    /// `run_numeric` on such a graph is a dependency-ordered no-op.
    pub fn set_simulation_only(&mut self, on: bool) {
        self.sim_only = on;
    }

    /// True when the context drops numeric bodies.
    pub fn simulation_only(&self) -> bool {
        self.sim_only
    }

    /// Sets the observability level for simulated runs. Counters and the
    /// critical path never perturb the simulation — traces stay
    /// bit-identical across levels.
    pub fn set_observability(&mut self, level: ObsLevel) {
        self.obs = level;
    }

    /// The observability level simulated runs execute under.
    pub fn observability(&self) -> ObsLevel {
        self.obs
    }

    /// Pretends matrices are stored in *tile layout* (contiguous tiles, as
    /// Chameleon/PLASMA allocate them): host transfers stop paying the
    /// pitched `cudaMemcpy2D` penalty. Used by the baseline models; XKBlas
    /// itself always uses the LAPACK layout (§III).
    pub fn set_tile_layout(&mut self, on: bool) {
        self.tile_layout = on;
    }

    /// Owner grid `(p, q)`.
    pub fn grid(&self) -> (usize, usize) {
        self.grid
    }

    /// Overrides the owner grid.
    pub fn set_grid(&mut self, p: usize, q: usize) {
        assert!(p * q >= 1);
        self.grid = (p, q);
    }

    /// The platform topology.
    pub fn topology(&self) -> &FabricSpec {
        &self.topo
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// The tile partition a matrix gets in this context.
    pub fn tile_map(&self, mat: &Matrix<T>) -> TileMap {
        TileMap::new(mat.nrows(), mat.ncols(), self.tile)
    }

    /// Number of `*_async` routine calls composed so far.
    pub fn calls(&self) -> usize {
        self.calls
    }

    /// Number of tasks currently in the graph.
    pub fn pending_tasks(&self) -> usize {
        self.graph.len()
    }

    /// Total kernel flops recorded in the pending graph.
    pub fn pending_flops(&self) -> f64 {
        self.graph.total_flops()
    }

    /// Read-only access to the pending graph (tests, diagnostics).
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    pub(crate) fn bump_calls(&mut self) {
        self.calls += 1;
    }

    /// Registers (or retrieves) the runtime handle of tile `(i, j)`.
    pub(crate) fn handle(&mut self, mat: &Matrix<T>, i: usize, j: usize) -> HandleId {
        let key = (mat.id(), i, j);
        if let Some(&h) = self.handles.get(&key) {
            return h;
        }
        let map = self.tile_map(mat);
        let (mb, nb) = (map.tile_rows(i), map.tile_cols(j));
        let bytes = (mb * nb * T::WORD) as u64;
        // A tile is pitched on the host whenever its rows don't span the
        // full leading dimension (cudaMemcpy2D path). Tile-layout libraries
        // store tiles contiguously instead.
        let pitched = !self.tile_layout && mb != mat.ld();
        let owner = block_cyclic_owner(i, j, self.grid.0, self.grid.1) % self.topo.n_gpus();
        let placement = self
            .placements
            .get(&mat.id())
            .copied()
            .unwrap_or(Placement::Host);
        let initial = match placement {
            Placement::Host => Device::Host,
            Placement::BlockCyclic => Device::Gpu(owner),
        };
        let info = DataInfo {
            bytes,
            pitched,
            initial,
            label: format!("M{}({i},{j})", mat.id()),
            owner_hint: Some(owner),
        };
        let h = self.graph.add_data(info);
        self.handles.insert(key, h);
        self.registered_mats.insert(mat.id());
        h
    }

    /// Emits one tile task. The body is built lazily so simulation-only
    /// contexts (the sweep harness's steady state) never box a closure.
    pub(crate) fn emit(
        &mut self,
        op: TileOp,
        accesses: &[TaskAccess],
        label: TaskLabel,
        make_body: impl FnOnce() -> TaskBody,
    ) {
        if self.sim_only {
            self.graph.add_task(op, accesses, label);
        } else {
            self.graph.add_task_with_body(op, accesses, label, make_body());
        }
    }

    /// `xkblas_distribute_2Dblock_cyclic_async`: marks the matrix as
    /// initially distributed over the GPUs in 2D block-cyclic order
    /// (paper §IV-C). Must be called before the matrix is first touched by
    /// a routine in this graph.
    ///
    /// # Panics
    /// Panics if tiles of the matrix were already registered host-resident.
    pub fn distribute_2d_block_cyclic_async(&mut self, mat: &Matrix<T>) {
        assert!(
            !self.registered_mats.contains(&mat.id()),
            "distribute must precede the first use of the matrix"
        );
        self.placements.insert(mat.id(), Placement::BlockCyclic);
    }

    /// `xkblas_memory_coherent_async`: enqueues a host-coherency task for
    /// every registered tile of `mat`. After the sync, host memory holds
    /// the results (the data-on-host methodology of §IV-A).
    pub fn memory_coherent_async(&mut self, mat: &Matrix<T>) {
        // One flush task per tile: each depends only on that tile's last
        // writer, so write-backs stream out while other tiles still
        // compute (XKBlas makes memory coherence a per-tile data-flow
        // task, not a barrier).
        let map = self.tile_map(mat);
        for i in 0..map.mt {
            for j in 0..map.nt {
                if let Some(&h) = self.handles.get(&(mat.id(), i, j)) {
                    self.graph
                        .add_flush(&[h], TaskLabel::mat_tile("coherent", mat.id(), i, j));
                }
            }
        }
    }

    /// Executes the composed graph numerically on host threads
    /// (0 = one per core) and resets the context for the next composition.
    pub fn run_numeric(&mut self, threads: usize) -> ParOutcome {
        let mut graph = self.take_graph();
        run_parallel(&mut graph, threads)
    }

    /// Executes the composed graph on the simulated platform and resets
    /// the context.
    pub fn run_simulated(&mut self) -> SimOutcome {
        let graph = self.take_graph();
        self.session().run(&graph).into_outcome()
    }

    /// Detaches the composed graph without running it and resets the
    /// context, exactly as the `run_*` entry points do before executing.
    ///
    /// Batched callers (the xk-serve miss driver) use this to build one
    /// graph and simulate it under several runtime configurations via
    /// [`xk_runtime::SimSession::run_prepped`], sharing the hoisted
    /// [`xk_runtime::SimPrep`] instead of re-deriving it per run.
    pub fn finish_graph(&mut self) -> TaskGraph {
        self.take_graph()
    }

    /// Executes the composed graph both ways: numerically (for values) and
    /// simulated (for timing); returns the simulation outcome.
    pub fn run_both(&mut self, threads: usize) -> SimOutcome {
        let mut graph = self.take_graph();
        let sim = self.session().run(&graph).into_outcome();
        run_parallel(&mut graph, threads);
        sim
    }

    fn session(&self) -> SimSession<'_> {
        SimSession::on(&self.topo)
            .config(self.cfg.clone())
            .observe(self.obs)
    }

    fn take_graph(&mut self) -> TaskGraph {
        self.handles.clear();
        self.placements.clear();
        self.registered_mats.clear();
        self.calls = 0;
        std::mem::take(&mut self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xk_topo::dgx1;

    #[test]
    fn handles_are_cached_per_tile() {
        let mut ctx = Context::<f64>::new(dgx1(), RuntimeConfig::default(), 4);
        let a = Matrix::<f64>::zeros(8, 8);
        let h1 = ctx.handle(&a, 0, 1);
        let h2 = ctx.handle(&a, 0, 1);
        let h3 = ctx.handle(&a, 1, 1);
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
    }

    #[test]
    fn grid_defaults_to_paper_42() {
        let ctx = Context::<f64>::new(dgx1(), RuntimeConfig::default(), 4);
        assert_eq!(ctx.grid(), (4, 2));
    }

    #[test]
    fn distribute_before_use_is_enforced() {
        let mut ctx = Context::<f64>::new(dgx1(), RuntimeConfig::default(), 4);
        let a = Matrix::<f64>::zeros(8, 8);
        ctx.distribute_2d_block_cyclic_async(&a);
        let _ = ctx.handle(&a, 0, 0);
        // Re-distributing after use must panic.
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ctx.distribute_2d_block_cyclic_async(&a);
        }));
        assert!(res.is_err());
    }

    #[test]
    fn coherent_without_registered_tiles_is_noop() {
        let mut ctx = Context::<f64>::new(dgx1(), RuntimeConfig::default(), 4);
        let a = Matrix::<f64>::zeros(8, 8);
        ctx.memory_coherent_async(&a);
        assert_eq!(ctx.pending_tasks(), 0);
    }

    #[test]
    fn run_resets_state() {
        let mut ctx = Context::<f64>::new(dgx1(), RuntimeConfig::default(), 4);
        let a = Matrix::<f64>::zeros(8, 8);
        let _ = ctx.handle(&a, 0, 0);
        let out = ctx.run_simulated();
        assert_eq!(out.tasks_run, 0);
        assert_eq!(ctx.pending_tasks(), 0);
        // Distribution allowed again after reset.
        ctx.distribute_2d_block_cyclic_async(&a);
    }
}
