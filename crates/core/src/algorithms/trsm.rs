//! Tiled TRSM (in place): solve `op(A) * X = alpha * B` or
//! `X * op(A) = alpha * B`, storing `X` over `B`.

use xk_kernels::{Diag, Scalar, Side, Trans, Uplo};

use super::{t_gemm, t_trsm};
use crate::ctx::Context;
use crate::matrix::Matrix;

/// Asynchronous tiled TRSM (PLASMA-style forward/backward block
/// substitution).
///
/// For each pivot block `k`: a TRSM kernel solves the pivot row/column of
/// `B`, then GEMM updates fold the solved block into the remaining ones
/// (`B -= opA * X`). `alpha` is applied exactly once per B tile, by the
/// first task that touches it.
///
/// # Panics
/// Panics on inconsistent dimensions.
#[allow(clippy::too_many_arguments)]
pub fn trsm_async<T: Scalar>(
    ctx: &mut Context<T>,
    side: Side,
    uplo: Uplo,
    transa: Trans,
    diag: Diag,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
) {
    let (m, n) = (b.nrows(), b.ncols());
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert_eq!(a.nrows(), na, "triangular operand order mismatch");
    assert_eq!(a.ncols(), na);

    let bmap = ctx.tile_map(b);
    let op_lower = matches!(
        (uplo, transa),
        (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes)
    );

    match side {
        Side::Left => {
            // Forward (op lower) or backward (op upper) block substitution
            // down the block rows of B.
            let pivots: Vec<usize> = if op_lower {
                (0..bmap.mt).collect()
            } else {
                (0..bmap.mt).rev().collect()
            };
            for (step, &k) in pivots.iter().enumerate() {
                let alpha_k = if step == 0 { alpha } else { T::ONE };
                for j in 0..bmap.nt {
                    t_trsm(ctx, side, uplo, transa, diag, alpha_k, (a, k, k), (b, k, j));
                }
                let rest: Vec<usize> = if op_lower {
                    (k + 1..bmap.mt).collect()
                } else {
                    (0..k).collect()
                };
                for i in rest {
                    for j in 0..bmap.nt {
                        // B(i,j) = -opA(i,k) * X(k,j) + beta * B(i,j),
                        // beta applies alpha on the first touch of row i.
                        let beta = if step == 0 { alpha } else { T::ONE };
                        match transa {
                            Trans::No => t_gemm(
                                ctx, Trans::No, Trans::No, -T::ONE,
                                (a, i, k), (b, k, j), beta, (b, i, j),
                            ),
                            Trans::Yes => t_gemm(
                                ctx, Trans::Yes, Trans::No, -T::ONE,
                                (a, k, i), (b, k, j), beta, (b, i, j),
                            ),
                        }
                    }
                }
            }
        }
        Side::Right => {
            // op lower: solve the right-most block column first; op upper:
            // the left-most.
            let pivots: Vec<usize> = if op_lower {
                (0..bmap.nt).rev().collect()
            } else {
                (0..bmap.nt).collect()
            };
            for (step, &k) in pivots.iter().enumerate() {
                let alpha_k = if step == 0 { alpha } else { T::ONE };
                for i in 0..bmap.mt {
                    t_trsm(ctx, side, uplo, transa, diag, alpha_k, (a, k, k), (b, i, k));
                }
                let rest: Vec<usize> = if op_lower {
                    (0..k).collect()
                } else {
                    (k + 1..bmap.nt).collect()
                };
                for j in rest {
                    for i in 0..bmap.mt {
                        let beta = if step == 0 { alpha } else { T::ONE };
                        // B(i,j) = -X(i,k) * opA(k,j) + beta * B(i,j).
                        match transa {
                            Trans::No => t_gemm(
                                ctx, Trans::No, Trans::No, -T::ONE,
                                (b, i, k), (a, k, j), beta, (b, i, j),
                            ),
                            Trans::Yes => t_gemm(
                                ctx, Trans::No, Trans::Yes, -T::ONE,
                                (b, i, k), (a, j, k), beta, (b, i, j),
                            ),
                        }
                    }
                }
            }
        }
    }
    ctx.bump_calls();
}
