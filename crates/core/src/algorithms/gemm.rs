//! Tiled GEMM: `C = alpha * op(A) * op(B) + beta * C`.

use xk_kernels::{Scalar, Trans};

use super::t_gemm;
use crate::ctx::Context;
use crate::matrix::Matrix;

/// Asynchronous tiled GEMM (the model of `xkblas_dgemm_async`).
///
/// `C` is `m × n`; `op(A)` is `m × k` and `op(B)` is `k × n`. Tasks are
/// appended to the context; nothing runs until a `run_*` call.
///
/// # Panics
/// Panics on inconsistent matrix dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_async<T: Scalar>(
    ctx: &mut Context<T>,
    transa: Trans,
    transb: Trans,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &Matrix<T>,
) {
    let (m, n) = (c.nrows(), c.ncols());
    let (oam, oak) = transa.apply_dims(a.nrows(), a.ncols());
    let (obk, obn) = transb.apply_dims(b.nrows(), b.ncols());
    assert_eq!(oam, m, "op(A) rows must match C rows");
    assert_eq!(obn, n, "op(B) cols must match C cols");
    assert_eq!(oak, obk, "inner dimensions must match");

    let cmap = ctx.tile_map(c);
    let kt = {
        let amap = ctx.tile_map(a);
        match transa {
            Trans::No => amap.nt,
            Trans::Yes => amap.mt,
        }
    };

    for i in 0..cmap.mt {
        for j in 0..cmap.nt {
            for l in 0..kt {
                let beta_l = if l == 0 { beta } else { T::ONE };
                let at = match transa {
                    Trans::No => (a, i, l),
                    Trans::Yes => (a, l, i),
                };
                let bt = match transb {
                    Trans::No => (b, l, j),
                    Trans::Yes => (b, j, l),
                };
                t_gemm(ctx, transa, transb, alpha, at, bt, beta_l, (c, i, j));
            }
        }
    }
    ctx.bump_calls();
}
