//! Tiled SYMM: `C = alpha * A * B + beta * C` (left) or
//! `C = alpha * B * A + beta * C` (right), `A` symmetric in one triangle.

use xk_kernels::{Scalar, Side, Trans, Uplo};

use super::{t_gemm, t_symm};
use crate::ctx::Context;
use crate::matrix::Matrix;

/// Asynchronous tiled SYMM.
///
/// Off-diagonal blocks of the symmetric operand are read from the stored
/// triangle, transposing when the block lives on the other side.
///
/// # Panics
/// Panics on inconsistent dimensions.
#[allow(clippy::too_many_arguments)]
pub fn symm_async<T: Scalar>(
    ctx: &mut Context<T>,
    side: Side,
    uplo: Uplo,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &Matrix<T>,
) {
    let (m, n) = (c.nrows(), c.ncols());
    assert_eq!(b.nrows(), m);
    assert_eq!(b.ncols(), n);
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert_eq!(a.nrows(), na, "symmetric operand order mismatch");
    assert_eq!(a.ncols(), na);

    let cmap = ctx.tile_map(c);
    match side {
        Side::Left => {
            // C(i,j) = beta C(i,j) + alpha * sum_k Asym(i,k) B(k,j)
            for i in 0..cmap.mt {
                for j in 0..cmap.nt {
                    for k in 0..cmap.mt {
                        let beta_k = if k == 0 { beta } else { T::ONE };
                        if k == i {
                            t_symm(ctx, Side::Left, uplo, alpha, (a, i, i), (b, k, j), beta_k, (c, i, j));
                        } else {
                            let stored_direct = match uplo {
                                Uplo::Lower => k < i,
                                Uplo::Upper => k > i,
                            };
                            if stored_direct {
                                t_gemm(ctx, Trans::No, Trans::No, alpha, (a, i, k), (b, k, j), beta_k, (c, i, j));
                            } else {
                                // Mirror: Asym(i,k) = A(k,i)^T.
                                t_gemm(ctx, Trans::Yes, Trans::No, alpha, (a, k, i), (b, k, j), beta_k, (c, i, j));
                            }
                        }
                    }
                }
            }
        }
        Side::Right => {
            // C(i,j) = beta C(i,j) + alpha * sum_k B(i,k) Asym(k,j)
            for i in 0..cmap.mt {
                for j in 0..cmap.nt {
                    for k in 0..cmap.nt {
                        let beta_k = if k == 0 { beta } else { T::ONE };
                        if k == j {
                            t_symm(ctx, Side::Right, uplo, alpha, (a, j, j), (b, i, k), beta_k, (c, i, j));
                        } else {
                            let stored_direct = match uplo {
                                Uplo::Lower => k > j,
                                Uplo::Upper => k < j,
                            };
                            if stored_direct {
                                t_gemm(ctx, Trans::No, Trans::No, alpha, (b, i, k), (a, k, j), beta_k, (c, i, j));
                            } else {
                                // Asym(k,j) = A(j,k)^T.
                                t_gemm(ctx, Trans::No, Trans::Yes, alpha, (b, i, k), (a, j, k), beta_k, (c, i, j));
                            }
                        }
                    }
                }
            }
        }
    }
    ctx.bump_calls();
}
