//! Tiled SYRK: `C = alpha * op(A) * op(A)^T + beta * C`, `C` symmetric.

use xk_kernels::{Scalar, Trans, Uplo};

use super::{t_gemm, t_syrk};
use crate::ctx::Context;
use crate::matrix::Matrix;

/// Asynchronous tiled SYRK.
///
/// Only the `uplo` triangle of `C` is written: diagonal tiles get SYRK
/// kernels, off-diagonal tiles of the stored triangle get GEMMs.
///
/// # Panics
/// Panics on inconsistent dimensions or non-square `C`.
pub fn syrk_async<T: Scalar>(
    ctx: &mut Context<T>,
    uplo: Uplo,
    trans: Trans,
    alpha: T,
    a: &Matrix<T>,
    beta: T,
    c: &Matrix<T>,
) {
    let n = c.nrows();
    assert_eq!(c.ncols(), n, "C must be square");
    match trans {
        Trans::No => assert_eq!(a.nrows(), n, "A rows must equal C order"),
        Trans::Yes => assert_eq!(a.ncols(), n, "A cols must equal C order"),
    }

    let cmap = ctx.tile_map(c);
    let amap = ctx.tile_map(a);
    let kt = match trans {
        Trans::No => amap.nt,
        Trans::Yes => amap.mt,
    };

    for j in 0..cmap.nt {
        for i in 0..cmap.mt {
            let in_triangle = match uplo {
                Uplo::Lower => i >= j,
                Uplo::Upper => i <= j,
            };
            if !in_triangle {
                continue;
            }
            for l in 0..kt {
                let beta_l = if l == 0 { beta } else { T::ONE };
                if i == j {
                    let at = match trans {
                        Trans::No => (a, i, l),
                        Trans::Yes => (a, l, i),
                    };
                    t_syrk(ctx, uplo, trans, alpha, at, beta_l, (c, i, i));
                } else {
                    // C(i,j) += alpha * opA(i,l) * opA(j,l)^T
                    match trans {
                        Trans::No => t_gemm(
                            ctx,
                            Trans::No,
                            Trans::Yes,
                            alpha,
                            (a, i, l),
                            (a, j, l),
                            beta_l,
                            (c, i, j),
                        ),
                        Trans::Yes => t_gemm(
                            ctx,
                            Trans::Yes,
                            Trans::No,
                            alpha,
                            (a, l, i),
                            (a, l, j),
                            beta_l,
                            (c, i, j),
                        ),
                    }
                }
            }
        }
    }
    ctx.bump_calls();
}
