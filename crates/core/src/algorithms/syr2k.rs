//! Tiled SYR2K:
//! `C = alpha * (op(A) op(B)^T + op(B) op(A)^T) + beta * C`, `C` symmetric.

use xk_kernels::{Scalar, Trans, Uplo};

use super::{t_gemm, t_syr2k};
use crate::ctx::Context;
use crate::matrix::Matrix;

/// Asynchronous tiled SYR2K.
///
/// Diagonal tiles get SYR2K kernels; each off-diagonal tile of the stored
/// triangle gets the two GEMM halves of the rank-2k update.
///
/// # Panics
/// Panics on inconsistent dimensions or non-square `C`.
#[allow(clippy::too_many_arguments)]
pub fn syr2k_async<T: Scalar>(
    ctx: &mut Context<T>,
    uplo: Uplo,
    trans: Trans,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &Matrix<T>,
) {
    let n = c.nrows();
    assert_eq!(c.ncols(), n, "C must be square");
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    match trans {
        Trans::No => assert_eq!(a.nrows(), n),
        Trans::Yes => assert_eq!(a.ncols(), n),
    }

    let cmap = ctx.tile_map(c);
    let amap = ctx.tile_map(a);
    let kt = match trans {
        Trans::No => amap.nt,
        Trans::Yes => amap.mt,
    };

    for j in 0..cmap.nt {
        for i in 0..cmap.mt {
            let in_triangle = match uplo {
                Uplo::Lower => i >= j,
                Uplo::Upper => i <= j,
            };
            if !in_triangle {
                continue;
            }
            for l in 0..kt {
                let beta_l = if l == 0 { beta } else { T::ONE };
                if i == j {
                    let (at, bt) = match trans {
                        Trans::No => ((a, i, l), (b, i, l)),
                        Trans::Yes => ((a, l, i), (b, l, i)),
                    };
                    t_syr2k(ctx, uplo, trans, alpha, at, bt, beta_l, (c, i, i));
                } else {
                    // C(i,j) += alpha * opA(i,l) opB(j,l)^T
                    //         + alpha * opB(i,l) opA(j,l)^T
                    match trans {
                        Trans::No => {
                            t_gemm(ctx, Trans::No, Trans::Yes, alpha, (a, i, l), (b, j, l), beta_l, (c, i, j));
                            t_gemm(ctx, Trans::No, Trans::Yes, alpha, (b, i, l), (a, j, l), T::ONE, (c, i, j));
                        }
                        Trans::Yes => {
                            t_gemm(ctx, Trans::Yes, Trans::No, alpha, (a, l, i), (b, l, j), beta_l, (c, i, j));
                            t_gemm(ctx, Trans::Yes, Trans::No, alpha, (b, l, i), (a, l, j), T::ONE, (c, i, j));
                        }
                    }
                }
            }
        }
    }
    ctx.bump_calls();
}
