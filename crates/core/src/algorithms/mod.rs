//! Tiled BLAS-3 algorithms.
//!
//! Each routine decomposes LAPACK-layout matrices into square tiles and
//! emits one task per tile kernel into the context's graph. The numerical
//! algorithms follow the asynchronous tile algorithms of PLASMA/Chameleon,
//! with the XKBlas differences of §III: sub-matrix (LAPACK) representation
//! instead of tile copies, and no implicit copy-back instructions.
//!
//! Every `t_*` emitter below is on the submission fast path: accesses live
//! in stack arrays (inlined into the task), labels are lazy
//! [`TaskLabel`] patterns, and the numeric closure is only boxed when the
//! context actually executes numerically — a simulation-only sweep
//! submits each task without any per-task heap allocation.

mod gemm;
mod symm;
mod syr2k;
mod syrk;
mod trmm;
mod trsm;

pub use gemm::gemm_async;
pub use symm::symm_async;
pub use syr2k::syr2k_async;
pub use syrk::syrk_async;
pub use trmm::trmm_async;
pub use trsm::trsm_async;

use xk_kernels::perfmodel::TileOp;
use xk_kernels::{Diag, Scalar, Side, Trans, Uplo};
use xk_runtime::{Access, TaskAccess, TaskLabel};

use crate::ctx::Context;
use crate::matrix::Matrix;

/// A tile coordinate within a matrix.
pub(crate) type TileAt<'m, T> = (&'m Matrix<T>, usize, usize);

/// Resolves the view geometry of one tile: `(row0, col0, rows, cols)`.
fn geom<T: Scalar>(ctx: &Context<T>, t: TileAt<'_, T>) -> (usize, usize, usize, usize) {
    let map = ctx.tile_map(t.0);
    let (i0, j0) = map.origin(t.1, t.2);
    (i0, j0, map.tile_rows(t.1), map.tile_cols(t.2))
}

/// Emits `C_tile = alpha * op(A_tile) * op(B_tile) + beta * C_tile`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn t_gemm<T: Scalar>(
    ctx: &mut Context<T>,
    ta: Trans,
    tb: Trans,
    alpha: T,
    a: TileAt<'_, T>,
    b: TileAt<'_, T>,
    beta: T,
    c: TileAt<'_, T>,
) {
    let (ai0, aj0, am, an) = geom(ctx, a);
    let (bi0, bj0, bm, bn) = geom(ctx, b);
    let (ci0, cj0, m, n) = geom(ctx, c);
    let (oam, oan) = ta.apply_dims(am, an);
    let (obm, obn) = tb.apply_dims(bm, bn);
    assert_eq!(oam, m, "gemm tile: op(A) rows mismatch");
    assert_eq!(obn, n, "gemm tile: op(B) cols mismatch");
    assert_eq!(oan, obm, "gemm tile: inner dims mismatch");
    let k = oan;

    let ha = ctx.handle(a.0, a.1, a.2);
    let hb = ctx.handle(b.0, b.1, b.2);
    let hc = ctx.handle(c.0, c.1, c.2);
    let full = [
        TaskAccess { handle: ha, access: Access::Read },
        TaskAccess { handle: hb, access: Access::Read },
        TaskAccess { handle: hc, access: Access::ReadWrite },
    ];
    // Same tile read twice (e.g. SYRK's A(i,l) pair): declare it once.
    let dedup = [full[0], full[2]];
    let accesses: &[TaskAccess] = if hb == ha { &dedup } else { &full };

    ctx.emit(
        TileOp::Gemm { m, n, k },
        accesses,
        TaskLabel::tile("gemm", 'C', c.1, c.2),
        || {
            let (ma, mb_, mc) = (a.0.clone(), b.0.clone(), c.0.clone());
            Box::new(move || {
                xk_kernels::gemm(
                    ta,
                    tb,
                    alpha,
                    ma.tile_view(ai0, aj0, am, an),
                    mb_.tile_view(bi0, bj0, bm, bn),
                    beta,
                    mc.tile_view_mut(ci0, cj0, m, n),
                );
            })
        },
    );
}

/// Emits `C_tile = alpha * A_sym_tile * B_tile + beta * C_tile` for a
/// *diagonal* tile of the symmetric matrix.
#[allow(clippy::too_many_arguments)]
pub(crate) fn t_symm<T: Scalar>(
    ctx: &mut Context<T>,
    side: Side,
    uplo: Uplo,
    alpha: T,
    a: TileAt<'_, T>,
    b: TileAt<'_, T>,
    beta: T,
    c: TileAt<'_, T>,
) {
    let (ai0, aj0, am, an) = geom(ctx, a);
    let (bi0, bj0, bm, bn) = geom(ctx, b);
    let (ci0, cj0, m, n) = geom(ctx, c);
    assert_eq!(am, an, "symm tile: diagonal block must be square");
    let ha = ctx.handle(a.0, a.1, a.2);
    let hb = ctx.handle(b.0, b.1, b.2);
    let hc = ctx.handle(c.0, c.1, c.2);
    let accesses = [
        TaskAccess { handle: ha, access: Access::Read },
        TaskAccess { handle: hb, access: Access::Read },
        TaskAccess { handle: hc, access: Access::ReadWrite },
    ];
    ctx.emit(
        TileOp::Symm { m, n },
        &accesses,
        TaskLabel::tile("symm", 'C', c.1, c.2),
        || {
            let (ma, mb_, mc) = (a.0.clone(), b.0.clone(), c.0.clone());
            Box::new(move || {
                xk_kernels::symm(
                    side,
                    uplo,
                    alpha,
                    ma.tile_view(ai0, aj0, am, an),
                    mb_.tile_view(bi0, bj0, bm, bn),
                    beta,
                    mc.tile_view_mut(ci0, cj0, m, n),
                );
            })
        },
    );
}

/// Emits a SYRK update of a diagonal tile of C.
pub(crate) fn t_syrk<T: Scalar>(
    ctx: &mut Context<T>,
    uplo: Uplo,
    trans: Trans,
    alpha: T,
    a: TileAt<'_, T>,
    beta: T,
    c: TileAt<'_, T>,
) {
    let (ai0, aj0, am, an) = geom(ctx, a);
    let (ci0, cj0, m, n) = geom(ctx, c);
    assert_eq!(m, n, "syrk tile: C diagonal block must be square");
    let k = match trans {
        Trans::No => an,
        Trans::Yes => am,
    };
    let ha = ctx.handle(a.0, a.1, a.2);
    let hc = ctx.handle(c.0, c.1, c.2);
    let accesses = [
        TaskAccess { handle: ha, access: Access::Read },
        TaskAccess { handle: hc, access: Access::ReadWrite },
    ];
    ctx.emit(
        TileOp::Syrk { n, k },
        &accesses,
        TaskLabel::tile("syrk", 'C', c.1, c.2),
        || {
            let (ma, mc) = (a.0.clone(), c.0.clone());
            Box::new(move || {
                xk_kernels::syrk(
                    uplo,
                    trans,
                    alpha,
                    ma.tile_view(ai0, aj0, am, an),
                    beta,
                    mc.tile_view_mut(ci0, cj0, m, n),
                );
            })
        },
    );
}

/// Emits a SYR2K update of a diagonal tile of C.
#[allow(clippy::too_many_arguments)]
pub(crate) fn t_syr2k<T: Scalar>(
    ctx: &mut Context<T>,
    uplo: Uplo,
    trans: Trans,
    alpha: T,
    a: TileAt<'_, T>,
    b: TileAt<'_, T>,
    beta: T,
    c: TileAt<'_, T>,
) {
    let (ai0, aj0, am, an) = geom(ctx, a);
    let (bi0, bj0, bm, bn) = geom(ctx, b);
    let (ci0, cj0, m, n) = geom(ctx, c);
    assert_eq!(m, n);
    assert_eq!((am, an), (bm, bn), "syr2k tile: A and B blocks must agree");
    let k = match trans {
        Trans::No => an,
        Trans::Yes => am,
    };
    let ha = ctx.handle(a.0, a.1, a.2);
    let hb = ctx.handle(b.0, b.1, b.2);
    let hc = ctx.handle(c.0, c.1, c.2);
    let accesses = [
        TaskAccess { handle: ha, access: Access::Read },
        TaskAccess { handle: hb, access: Access::Read },
        TaskAccess { handle: hc, access: Access::ReadWrite },
    ];
    ctx.emit(
        TileOp::Syr2k { n, k },
        &accesses,
        TaskLabel::tile("syr2k", 'C', c.1, c.2),
        || {
            let (ma, mb_, mc) = (a.0.clone(), b.0.clone(), c.0.clone());
            Box::new(move || {
                xk_kernels::syr2k(
                    uplo,
                    trans,
                    alpha,
                    ma.tile_view(ai0, aj0, am, an),
                    mb_.tile_view(bi0, bj0, bm, bn),
                    beta,
                    mc.tile_view_mut(ci0, cj0, m, n),
                );
            })
        },
    );
}

/// Emits an in-place triangular multiply of a B tile by a diagonal A tile.
#[allow(clippy::too_many_arguments)]
pub(crate) fn t_trmm<T: Scalar>(
    ctx: &mut Context<T>,
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: T,
    a: TileAt<'_, T>,
    b: TileAt<'_, T>,
) {
    let (ai0, aj0, am, an) = geom(ctx, a);
    let (bi0, bj0, m, n) = geom(ctx, b);
    assert_eq!(am, an, "trmm tile: diagonal block must be square");
    let ha = ctx.handle(a.0, a.1, a.2);
    let hb = ctx.handle(b.0, b.1, b.2);
    let accesses = [
        TaskAccess { handle: ha, access: Access::Read },
        TaskAccess { handle: hb, access: Access::ReadWrite },
    ];
    ctx.emit(
        TileOp::Trmm { m, n },
        &accesses,
        TaskLabel::tile("trmm", 'B', b.1, b.2),
        || {
            let (ma, mb_) = (a.0.clone(), b.0.clone());
            Box::new(move || {
                xk_kernels::trmm(
                    side,
                    uplo,
                    trans,
                    diag,
                    alpha,
                    ma.tile_view(ai0, aj0, am, an),
                    mb_.tile_view_mut(bi0, bj0, m, n),
                );
            })
        },
    );
}

/// Emits an in-place triangular solve of a B tile against a diagonal A tile.
#[allow(clippy::too_many_arguments)]
pub(crate) fn t_trsm<T: Scalar>(
    ctx: &mut Context<T>,
    side: Side,
    uplo: Uplo,
    trans: Trans,
    diag: Diag,
    alpha: T,
    a: TileAt<'_, T>,
    b: TileAt<'_, T>,
) {
    let (ai0, aj0, am, an) = geom(ctx, a);
    let (bi0, bj0, m, n) = geom(ctx, b);
    assert_eq!(am, an, "trsm tile: diagonal block must be square");
    let ha = ctx.handle(a.0, a.1, a.2);
    let hb = ctx.handle(b.0, b.1, b.2);
    let accesses = [
        TaskAccess { handle: ha, access: Access::Read },
        TaskAccess { handle: hb, access: Access::ReadWrite },
    ];
    ctx.emit(
        TileOp::Trsm { m, n },
        &accesses,
        TaskLabel::tile("trsm", 'B', b.1, b.2),
        || {
            let (ma, mb_) = (a.0.clone(), b.0.clone());
            Box::new(move || {
                xk_kernels::trsm(
                    side,
                    uplo,
                    trans,
                    diag,
                    alpha,
                    ma.tile_view(ai0, aj0, am, an),
                    mb_.tile_view_mut(bi0, bj0, m, n),
                );
            })
        },
    );
}
