//! Tiled TRMM (in place): `B = alpha * op(A) * B` or `B = alpha * B * op(A)`.

use xk_kernels::{Diag, Scalar, Side, Trans, Uplo};

use super::{t_gemm, t_trmm};
use crate::ctx::Context;
use crate::matrix::Matrix;

/// Asynchronous tiled TRMM.
///
/// Each B tile gets a diagonal TRMM kernel plus GEMM contributions from the
/// strictly triangular blocks, traversed in the order that keeps not-yet-
/// multiplied tiles intact (descending for an effectively-lower `op(A)` on
/// the left, etc.). The emission order makes the graph's read/anti
/// dependencies enforce exactly that traversal at runtime.
///
/// # Panics
/// Panics on inconsistent dimensions.
#[allow(clippy::too_many_arguments)]
pub fn trmm_async<T: Scalar>(
    ctx: &mut Context<T>,
    side: Side,
    uplo: Uplo,
    transa: Trans,
    diag: Diag,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
) {
    let (m, n) = (b.nrows(), b.ncols());
    let na = match side {
        Side::Left => m,
        Side::Right => n,
    };
    assert_eq!(a.nrows(), na, "triangular operand order mismatch");
    assert_eq!(a.ncols(), na);

    let bmap = ctx.tile_map(b);
    // Is op(A) effectively lower-triangular?
    let op_lower = matches!(
        (uplo, transa),
        (Uplo::Lower, Trans::No) | (Uplo::Upper, Trans::Yes)
    );

    match side {
        Side::Left => {
            // newB(i,j) = alpha * sum_{k in tri(i)} opA(i,k) * oldB(k,j)
            for j in 0..bmap.nt {
                let rows: Vec<usize> = if op_lower {
                    (0..bmap.mt).rev().collect()
                } else {
                    (0..bmap.mt).collect()
                };
                for &i in &rows {
                    // Diagonal contribution first: overwrites B(i,j).
                    t_trmm(ctx, side, uplo, transa, diag, alpha, (a, i, i), (b, i, j));
                    // Emit the off-diagonal reads of B(k,j) so that the row
                    // processed *next* is read by the FIRST task of this
                    // row's chain: its in-place TRMM then unblocks after one
                    // task instead of the whole chain (wavefront pipeline).
                    let ks: Vec<usize> = if op_lower {
                        (0..i).rev().collect()
                    } else {
                        (i + 1..bmap.mt).collect()
                    };
                    for k in ks {
                        // opA(i,k): stored directly when (i,k) lies in the
                        // stored triangle, else the mirror transposed.
                        match transa {
                            Trans::No => t_gemm(
                                ctx, Trans::No, Trans::No, alpha,
                                (a, i, k), (b, k, j), T::ONE, (b, i, j),
                            ),
                            Trans::Yes => t_gemm(
                                ctx, Trans::Yes, Trans::No, alpha,
                                (a, k, i), (b, k, j), T::ONE, (b, i, j),
                            ),
                        }
                    }
                }
            }
        }
        Side::Right => {
            // newB(i,j) = alpha * sum_{k in tri(j)} oldB(i,k) * opA(k,j)
            for i in 0..bmap.mt {
                let cols: Vec<usize> = if op_lower {
                    (0..bmap.nt).collect()
                } else {
                    (0..bmap.nt).rev().collect()
                };
                for &j in &cols {
                    t_trmm(ctx, side, uplo, transa, diag, alpha, (a, j, j), (b, i, j));
                    // Same pipelining argument as Side::Left: read the
                    // next-processed column first.
                    let ks: Vec<usize> = if op_lower {
                        (j + 1..bmap.nt).collect()
                    } else {
                        (0..j).rev().collect()
                    };
                    for k in ks {
                        match transa {
                            Trans::No => t_gemm(
                                ctx, Trans::No, Trans::No, alpha,
                                (b, i, k), (a, k, j), T::ONE, (b, i, j),
                            ),
                            Trans::Yes => t_gemm(
                                ctx, Trans::No, Trans::Yes, alpha,
                                (b, i, k), (a, j, k), T::ONE, (b, i, j),
                            ),
                        }
                    }
                }
            }
        }
    }
    ctx.bump_calls();
}
