//! # xkblas-core — the asynchronous tiled BLAS-3 library
//!
//! The reproduction of XKBlas itself (paper §III): LAPACK-layout host
//! matrices, tiled algorithms for the six level-3 routines of the paper's
//! evaluation (GEMM, SYMM, SYRK, SYR2K, TRMM, TRSM) with the full
//! `side/uplo/trans/diag` parameter space, and the asynchronous API —
//! `*_async` calls compose into one task graph,
//! [`Context::memory_coherent_async`] brings results back to the host, and
//! a `run_*` call executes everything:
//!
//! * [`Context::run_numeric`] — real multicore execution (values),
//! * [`Context::run_simulated`] — the DGX-1 model (timing + traces).
//!
//! ```
//! use xkblas_core::{Context, Matrix, Trans};
//! use xk_runtime::RuntimeConfig;
//!
//! let mut ctx = Context::<f64>::new(xk_topo::dgx1(), RuntimeConfig::xkblas(), 64);
//! let a = Matrix::random(128, 128, 1);
//! let b = Matrix::random(128, 128, 2);
//! let c = Matrix::zeros(128, 128);
//! xkblas_core::gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &c);
//! ctx.memory_coherent_async(&c);
//! ctx.run_numeric(0); // really computes C = A*B on host threads
//! assert!(c.at(0, 0).is_finite());
//! ```

#![warn(missing_docs)]

pub mod algorithms;
mod ctx;
mod matrix;

pub use algorithms::{gemm_async, symm_async, syr2k_async, syrk_async, trmm_async, trsm_async};
pub use ctx::Context;
pub use matrix::{block_cyclic_owner, Matrix, TileMap};

// Re-export the parameter enums so users need only this crate.
pub use xk_kernels::{Diag, Routine, Scalar, Side, Trans, Uplo};
