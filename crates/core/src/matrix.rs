//! Host matrices in LAPACK (column-major) layout with tile partitions.
//!
//! A [`Matrix`] owns its storage behind an `Arc`, so asynchronous tasks can
//! capture cheap clones and operate on disjoint tile views while the user
//! keeps the handle. Like the real XKBlas API, the contents of a matrix
//! touched by asynchronous calls are only defined after the context's
//! `sync` — reading earlier returns whatever has been computed so far.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use xk_kernels::{MatMut, MatRef, Scalar};

static NEXT_MATRIX_ID: AtomicU64 = AtomicU64::new(1);

struct Storage<T> {
    data: UnsafeCell<Vec<T>>,
    m: usize,
    n: usize,
    ld: usize,
    phantom: bool,
}

// SAFETY: concurrent access is coordinated by the task graph: tasks get
// views of disjoint tiles, and read/write dependencies serialize conflicting
// accesses. The UnsafeCell only says "the runtime, not the borrow checker,
// proves exclusivity".
unsafe impl<T: Send> Send for Storage<T> {}
unsafe impl<T: Sync> Sync for Storage<T> {}

/// An `m × n` host matrix in LAPACK column-major layout.
pub struct Matrix<T> {
    storage: Arc<Storage<T>>,
    id: u64,
}

impl<T> Clone for Matrix<T> {
    fn clone(&self) -> Self {
        Matrix {
            storage: self.storage.clone(),
            id: self.id,
        }
    }
}

impl<T: Scalar> Matrix<T> {
    /// Allocates an `m × n` zero matrix (`ld == m`).
    pub fn zeros(m: usize, n: usize) -> Self {
        Matrix {
            storage: Arc::new(Storage {
                data: UnsafeCell::new(vec![T::ZERO; m * n]),
                m,
                n,
                ld: m.max(1),
                phantom: false,
            }),
            id: NEXT_MATRIX_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// A *phantom* matrix: carries shape but no storage. Usable only with
    /// simulation-only contexts (the performance harness sweeps matrices up
    /// to N = 49152 — 19 GB each — that never need real values).
    ///
    /// Calling [`Matrix::view`]/[`Matrix::tile_view`] on a phantom panics.
    pub fn phantom(m: usize, n: usize) -> Self {
        Matrix {
            storage: Arc::new(Storage {
                data: UnsafeCell::new(Vec::new()),
                m,
                n,
                ld: m.max(1),
                phantom: true,
            }),
            id: NEXT_MATRIX_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// True for storage-less matrices created by [`Matrix::phantom`].
    pub fn is_phantom(&self) -> bool {
        self.storage.phantom
    }

    /// Allocates and fills with `f(i, j)`.
    pub fn from_fn(m: usize, n: usize, f: impl Fn(usize, usize) -> T) -> Self {
        let mat = Matrix::zeros(m, n);
        {
            let mut v = mat.view_mut();
            for j in 0..n {
                for i in 0..m {
                    v.set(i, j, f(i, j));
                }
            }
        }
        mat
    }

    /// Allocates and fills with a reproducible pseudo-random pattern in
    /// `[-0.5, 0.5)` (parallel fill).
    pub fn random(m: usize, n: usize, seed: u64) -> Self {
        let mat = Matrix::zeros(m, n);
        xk_kernels::parallel::par_fill_pattern(mat.view_mut(), seed);
        mat
    }

    /// A random symmetric-friendly matrix: pattern plus a dominant diagonal
    /// (well-conditioned for TRSM/TRMM tests).
    pub fn random_diag_dominant(n: usize, seed: u64) -> Self {
        let mat = Matrix::random(n, n, seed);
        {
            let mut v = mat.view_mut();
            for i in 0..n {
                let d = v.at(i, i);
                v.set(i, i, d + T::from_f64(4.0));
            }
        }
        mat
    }

    /// Unique identity of this allocation (tile handles key off it).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Rows.
    pub fn nrows(&self) -> usize {
        self.storage.m
    }

    /// Columns.
    pub fn ncols(&self) -> usize {
        self.storage.n
    }

    /// Leading dimension.
    pub fn ld(&self) -> usize {
        self.storage.ld
    }

    /// Immutable view of the whole matrix.
    ///
    /// Values read through the view are only defined once every
    /// asynchronous operation touching this matrix has been synced.
    pub fn view(&self) -> MatRef<'_, T> {
        assert!(!self.storage.phantom, "phantom matrices have no values");
        // SAFETY: pointer valid for the storage lifetime; synchronization
        // contract documented on the type.
        unsafe {
            MatRef::from_raw(
                (*self.storage.data.get()).as_ptr(),
                self.storage.m,
                self.storage.n,
                self.storage.ld,
            )
        }
    }

    /// Mutable view of the whole matrix (same synchronization contract).
    #[allow(clippy::mut_from_ref)]
    pub fn view_mut(&self) -> MatMut<'_, T> {
        assert!(!self.storage.phantom, "phantom matrices have no values");
        // SAFETY: as above; disjointness across concurrent users is the
        // runtime's responsibility.
        unsafe {
            MatMut::from_raw(
                (*self.storage.data.get()).as_mut_ptr(),
                self.storage.m,
                self.storage.n,
                self.storage.ld,
            )
        }
    }

    /// Immutable view of the tile starting at `(i0, j0)` of size `mb × nb`.
    pub fn tile_view(&self, i0: usize, j0: usize, mb: usize, nb: usize) -> MatRef<'_, T> {
        assert!(!self.storage.phantom, "phantom matrices have no values");
        assert!(i0 + mb <= self.nrows() && j0 + nb <= self.ncols());
        // SAFETY: in-bounds offset of the storage.
        unsafe {
            MatRef::from_raw(
                (*self.storage.data.get()).as_ptr().add(i0 + j0 * self.ld()),
                mb,
                nb,
                self.ld(),
            )
        }
    }

    /// Mutable view of a tile.
    pub fn tile_view_mut(&self, i0: usize, j0: usize, mb: usize, nb: usize) -> MatMut<'_, T> {
        assert!(!self.storage.phantom, "phantom matrices have no values");
        assert!(i0 + mb <= self.nrows() && j0 + nb <= self.ncols());
        // SAFETY: as above.
        unsafe {
            MatMut::from_raw(
                (*self.storage.data.get())
                    .as_mut_ptr()
                    .add(i0 + j0 * self.ld()),
                mb,
                nb,
                self.ld(),
            )
        }
    }

    /// Copies the contents into a plain `Vec` (column-compacted).
    pub fn to_vec(&self) -> Vec<T> {
        self.view().to_compact_vec()
    }

    /// Element read (defined after sync).
    pub fn at(&self, i: usize, j: usize) -> T {
        self.view().at(i, j)
    }

    /// Total payload bytes.
    pub fn bytes(&self) -> u64 {
        (self.nrows() * self.ncols() * T::WORD) as u64
    }
}

/// A tile partition of an `m × n` matrix with square tiles of side `tile`
/// (edge tiles are smaller).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileMap {
    /// Matrix rows.
    pub m: usize,
    /// Matrix columns.
    pub n: usize,
    /// Tile side.
    pub tile: usize,
    /// Number of tile rows.
    pub mt: usize,
    /// Number of tile columns.
    pub nt: usize,
}

impl TileMap {
    /// Builds the partition.
    ///
    /// # Panics
    /// Panics on a zero tile size.
    pub fn new(m: usize, n: usize, tile: usize) -> Self {
        assert!(tile > 0, "tile size must be positive");
        TileMap {
            m,
            n,
            tile,
            mt: m.div_ceil(tile).max(1),
            nt: n.div_ceil(tile).max(1),
        }
    }

    /// Rows of tile row `i`.
    pub fn tile_rows(&self, i: usize) -> usize {
        debug_assert!(i < self.mt);
        if i + 1 == self.mt {
            self.m - i * self.tile
        } else {
            self.tile
        }
    }

    /// Columns of tile column `j`.
    pub fn tile_cols(&self, j: usize) -> usize {
        debug_assert!(j < self.nt);
        if j + 1 == self.nt {
            self.n - j * self.tile
        } else {
            self.tile
        }
    }

    /// Element origin of tile `(i, j)`.
    pub fn origin(&self, i: usize, j: usize) -> (usize, usize) {
        (i * self.tile, j * self.tile)
    }

    /// Payload bytes of tile `(i, j)` for scalar word size `word`.
    pub fn tile_bytes(&self, i: usize, j: usize, word: usize) -> u64 {
        (self.tile_rows(i) * self.tile_cols(j) * word) as u64
    }
}

/// The 2D block-cyclic owner of tile `(i, j)` on a `(p, q)` GPU grid with
/// cyclic block size (1,1) — the distribution of the paper's data-on-device
/// experiments (§IV-C, "(4,2)-grid ... block sizes of the distribution set
/// to (1,1)").
pub fn block_cyclic_owner(i: usize, j: usize, p: usize, q: usize) -> usize {
    (i % p) * q + (j % q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_fill() {
        let a = Matrix::<f64>::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(a.at(2, 1), 21.0);
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.bytes(), 48);
    }

    #[test]
    fn clone_shares_storage() {
        let a = Matrix::<f64>::zeros(2, 2);
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        a.view_mut().set(0, 0, 7.0);
        assert_eq!(b.at(0, 0), 7.0);
    }

    #[test]
    fn distinct_matrices_distinct_ids() {
        let a = Matrix::<f64>::zeros(2, 2);
        let b = Matrix::<f64>::zeros(2, 2);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn tile_views_alias_parent() {
        let a = Matrix::<f64>::from_fn(4, 4, |i, j| (i + 4 * j) as f64);
        let t = a.tile_view(2, 2, 2, 2);
        assert_eq!(t.at(0, 0), a.at(2, 2));
        let mut tm = a.tile_view_mut(0, 0, 2, 2);
        tm.set(1, 1, -1.0);
        assert_eq!(a.at(1, 1), -1.0);
    }

    #[test]
    fn random_is_reproducible() {
        let a = Matrix::<f64>::random(5, 5, 42);
        let b = Matrix::<f64>::random(5, 5, 42);
        assert_eq!(a.to_vec(), b.to_vec());
        let c = Matrix::<f64>::random(5, 5, 43);
        assert_ne!(a.to_vec(), c.to_vec());
    }

    #[test]
    fn tilemap_edges() {
        let t = TileMap::new(10, 7, 4);
        assert_eq!((t.mt, t.nt), (3, 2));
        assert_eq!(t.tile_rows(0), 4);
        assert_eq!(t.tile_rows(2), 2);
        assert_eq!(t.tile_cols(1), 3);
        assert_eq!(t.origin(2, 1), (8, 4));
        assert_eq!(t.tile_bytes(2, 1, 8), (2 * 3 * 8) as u64);
    }

    #[test]
    fn tilemap_single_tile() {
        let t = TileMap::new(5, 5, 100);
        assert_eq!((t.mt, t.nt), (1, 1));
        assert_eq!(t.tile_rows(0), 5);
    }

    #[test]
    fn block_cyclic_grid_42() {
        // The paper's (4,2) grid over 8 GPUs: adjacent tiles map to
        // different GPUs.
        assert_eq!(block_cyclic_owner(0, 0, 4, 2), 0);
        assert_eq!(block_cyclic_owner(0, 1, 4, 2), 1);
        assert_eq!(block_cyclic_owner(1, 0, 4, 2), 2);
        assert_eq!(block_cyclic_owner(3, 1, 4, 2), 7);
        assert_eq!(block_cyclic_owner(4, 0, 4, 2), 0);
        // All 8 owners hit over a 4x2 tile block.
        let mut owners: Vec<usize> = (0..4)
            .flat_map(|i| (0..2).map(move |j| block_cyclic_owner(i, j, 4, 2)))
            .collect();
        owners.sort_unstable();
        assert_eq!(owners, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn diag_dominant_has_big_diagonal() {
        let a = Matrix::<f64>::random_diag_dominant(6, 1);
        for i in 0..6 {
            assert!(a.at(i, i).abs() > 3.0);
        }
    }
}
