//! End-to-end numeric validation: every tiled algorithm, run through the
//! full asynchronous pipeline (graph construction → dependency inference →
//! parallel work-stealing execution), must reproduce the reference BLAS.

use proptest::prelude::*;
use xk_kernels::aux::{max_abs_diff, max_abs_diff_tri};
use xk_kernels::reference as r;
use xk_kernels::MatRef;
use xk_runtime::RuntimeConfig;
use xk_topo::dgx1;
use xkblas_core::{
    gemm_async, symm_async, syr2k_async, syrk_async, trmm_async, trsm_async, Context, Diag,
    Matrix, Side, Trans, Uplo,
};

const TOL: f64 = 1e-9;

fn ctx(tile: usize) -> Context<f64> {
    Context::new(dgx1(), RuntimeConfig::xkblas(), tile)
}

fn view(m: &Matrix<f64>) -> MatRef<'_, f64> {
    m.view()
}

fn any_trans() -> impl Strategy<Value = Trans> {
    prop_oneof![Just(Trans::No), Just(Trans::Yes)]
}
fn any_uplo() -> impl Strategy<Value = Uplo> {
    prop_oneof![Just(Uplo::Lower), Just(Uplo::Upper)]
}
fn any_side() -> impl Strategy<Value = Side> {
    prop_oneof![Just(Side::Left), Just(Side::Right)]
}
fn any_diag() -> impl Strategy<Value = Diag> {
    prop_oneof![Just(Diag::NonUnit), Just(Diag::Unit)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn tiled_gemm_matches_reference(
        (m, n, k) in (1usize..40, 1usize..40, 1usize..40),
        tile in 3usize..17,
        ta in any_trans(), tb in any_trans(),
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        seed in 0u64..500,
    ) {
        let (am, an) = match ta { Trans::No => (m, k), Trans::Yes => (k, m) };
        let (bm, bn) = match tb { Trans::No => (k, n), Trans::Yes => (n, k) };
        let a = Matrix::random(am, an, seed);
        let b = Matrix::random(bm, bn, seed + 1);
        let c = Matrix::random(m, n, seed + 2);
        let want = r::ref_gemm(ta, tb, alpha, view(&a), view(&b), beta, view(&c));
        let mut cx = ctx(tile);
        gemm_async(&mut cx, ta, tb, alpha, &a, &b, beta, &c);
        cx.run_numeric(0);
        let d = max_abs_diff(view(&c), want.view());
        prop_assert!(d < TOL, "gemm diff {d} (tile {tile})");
    }

    #[test]
    fn tiled_symm_matches_reference(
        (m, n) in (1usize..30, 1usize..30),
        tile in 3usize..13,
        side in any_side(), uplo in any_uplo(),
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        seed in 0u64..500,
    ) {
        let na = match side { Side::Left => m, Side::Right => n };
        let a = Matrix::random(na, na, seed);
        let b = Matrix::random(m, n, seed + 1);
        let c = Matrix::random(m, n, seed + 2);
        let want = r::ref_symm(side, uplo, alpha, view(&a), view(&b), beta, view(&c));
        let mut cx = ctx(tile);
        symm_async(&mut cx, side, uplo, alpha, &a, &b, beta, &c);
        cx.run_numeric(0);
        let d = max_abs_diff(view(&c), want.view());
        prop_assert!(d < TOL, "symm diff {d}");
    }

    #[test]
    fn tiled_syrk_matches_reference(
        (n, k) in (1usize..30, 1usize..30),
        tile in 3usize..13,
        uplo in any_uplo(), trans in any_trans(),
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        seed in 0u64..500,
    ) {
        let (am, an) = match trans { Trans::No => (n, k), Trans::Yes => (k, n) };
        let a = Matrix::random(am, an, seed);
        let c = Matrix::random(n, n, seed + 1);
        let c0 = c.to_vec();
        let want = r::ref_syrk(trans, alpha, view(&a), beta, view(&c));
        let mut cx = ctx(tile);
        syrk_async(&mut cx, uplo, trans, alpha, &a, beta, &c);
        cx.run_numeric(0);
        let d = max_abs_diff_tri(uplo, view(&c), want.view());
        prop_assert!(d < TOL, "syrk diff {d}");
        // Opposite strict triangle untouched.
        let c0r = MatRef::from_slice(&c0, n, n, n);
        for j in 0..n {
            for i in 0..n {
                let strict_opposite = match uplo {
                    Uplo::Lower => i < j,
                    Uplo::Upper => i > j,
                };
                if strict_opposite {
                    prop_assert_eq!(c.at(i, j), c0r.at(i, j));
                }
            }
        }
    }

    #[test]
    fn tiled_syr2k_matches_reference(
        (n, k) in (1usize..26, 1usize..26),
        tile in 3usize..13,
        uplo in any_uplo(), trans in any_trans(),
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0,
        seed in 0u64..500,
    ) {
        let (am, an) = match trans { Trans::No => (n, k), Trans::Yes => (k, n) };
        let a = Matrix::random(am, an, seed);
        let b = Matrix::random(am, an, seed + 1);
        let c = Matrix::random(n, n, seed + 2);
        let want = r::ref_syr2k(trans, alpha, view(&a), view(&b), beta, view(&c));
        let mut cx = ctx(tile);
        syr2k_async(&mut cx, uplo, trans, alpha, &a, &b, beta, &c);
        cx.run_numeric(0);
        let d = max_abs_diff_tri(uplo, view(&c), want.view());
        prop_assert!(d < TOL, "syr2k diff {d}");
    }

    #[test]
    fn tiled_trmm_matches_reference(
        (m, n) in (1usize..26, 1usize..26),
        tile in 3usize..13,
        side in any_side(), uplo in any_uplo(),
        transa in any_trans(), diag in any_diag(),
        alpha in -2.0f64..2.0,
        seed in 0u64..500,
    ) {
        let na = match side { Side::Left => m, Side::Right => n };
        let a = Matrix::random(na, na, seed);
        let b = Matrix::random(m, n, seed + 1);
        let want = r::ref_trmm(side, uplo, transa, diag, alpha, view(&a), view(&b));
        let mut cx = ctx(tile);
        trmm_async(&mut cx, side, uplo, transa, diag, alpha, &a, &b);
        cx.run_numeric(0);
        let d = max_abs_diff(view(&b), want.view());
        prop_assert!(d < TOL, "trmm diff {d} ({side:?} {uplo:?} {transa:?} {diag:?} tile {tile})");
    }

    #[test]
    fn tiled_trsm_solves_the_system(
        (m, n) in (1usize..26, 1usize..26),
        tile in 3usize..13,
        side in any_side(), uplo in any_uplo(),
        transa in any_trans(), diag in any_diag(),
        alpha in -2.0f64..2.0,
        seed in 0u64..500,
    ) {
        let na = match side { Side::Left => m, Side::Right => n };
        let a = Matrix::random_diag_dominant(na, seed);
        let b = Matrix::random(m, n, seed + 1);
        let b0 = b.to_vec();
        let mut cx = ctx(tile);
        trsm_async(&mut cx, side, uplo, transa, diag, alpha, &a, &b);
        cx.run_numeric(0);
        let res = r::trsm_residual(
            side, uplo, transa, diag, alpha,
            view(&a), view(&b),
            MatRef::from_slice(&b0, m, n, m),
        );
        prop_assert!(res < 1e-8,
            "trsm residual {res} ({side:?} {uplo:?} {transa:?} {diag:?} tile {tile})");
    }

    /// Composition (paper §IV-F): TRSM followed by GEMM reading the TRSM
    /// result, without an intermediate sync, must produce exactly the
    /// sequential composition.
    #[test]
    fn composition_trsm_gemm(
        n in 4usize..24,
        tile in 3usize..9,
        seed in 0u64..200,
    ) {
        let a = Matrix::random_diag_dominant(n, seed);
        let b = Matrix::random(n, n, seed + 1);
        let c = Matrix::random(n, n, seed + 2);
        let d = Matrix::random(n, n, seed + 3);

        // Reference: X = inv(A) B; D = X * C.
        let mut bx = b.to_vec();
        xk_kernels::trsm(
            Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, 1.0,
            view(&a), xk_kernels::MatMut::from_slice(&mut bx, n, n, n),
        );
        let want = r::ref_gemm(
            Trans::No, Trans::No, 1.0,
            MatRef::from_slice(&bx, n, n, n), view(&c),
            0.0, view(&d),
        );

        let mut cx = ctx(tile);
        trsm_async(&mut cx, Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, 1.0, &a, &b);
        gemm_async(&mut cx, Trans::No, Trans::No, 1.0, &b, &c, 0.0, &d);
        cx.memory_coherent_async(&d);
        cx.run_numeric(0);
        let diff = max_abs_diff(view(&d), want.view());
        prop_assert!(diff < 1e-8, "composition diff {diff}");
    }
}

/// The same graph produces identical numeric results under the simulated
/// and parallel executors' shared dependency semantics — run_both runs
/// sim then numeric on one graph.
#[test]
fn run_both_times_and_computes() {
    let a = Matrix::random(64, 64, 11);
    let b = Matrix::random(64, 64, 12);
    let c = Matrix::zeros(64, 64);
    let want = r::ref_gemm(
        Trans::No,
        Trans::No,
        1.0,
        a.view(),
        b.view(),
        0.0,
        c.view(),
    );
    let mut cx = ctx(16);
    gemm_async(&mut cx, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &c);
    cx.memory_coherent_async(&c);
    let sim = cx.run_both(0);
    assert!(sim.makespan > 0.0);
    assert!(sim.bytes_h2d > 0);
    assert!(max_abs_diff(c.view(), want.view()) < TOL);
}

/// f32 path works end to end.
#[test]
fn f32_gemm_end_to_end() {
    let a = Matrix::<f32>::random(32, 32, 1);
    let b = Matrix::<f32>::random(32, 32, 2);
    let c = Matrix::<f32>::zeros(32, 32);
    let mut cx = Context::<f32>::new(dgx1(), RuntimeConfig::xkblas(), 8);
    gemm_async(&mut cx, Trans::No, Trans::No, 1.0f32, &a, &b, 0.0, &c);
    cx.run_numeric(0);
    // Spot check one element against a direct dot product.
    let mut want = 0.0f64;
    for l in 0..32 {
        want += f64::from(a.at(3, l)) * f64::from(b.at(l, 5));
    }
    assert!((f64::from(c.at(3, 5)) - want).abs() < 1e-4);
}
