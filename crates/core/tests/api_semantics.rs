//! Semantics of the asynchronous API: composition, distribution, phantom
//! matrices, and the simulation/numeric duality.

use xk_runtime::RuntimeConfig;
use xk_topo::dgx1;
use xkblas_core::{gemm_async, syrk_async, Context, Matrix, Trans, Uplo};

fn sim_ctx(tile: usize) -> Context<f64> {
    let mut ctx = Context::<f64>::new(dgx1(), RuntimeConfig::xkblas(), tile);
    ctx.set_simulation_only(true);
    ctx
}

#[test]
fn composition_adds_cross_call_dependencies() {
    // Two composed calls where the second reads the first's output must
    // produce more edges than two independent calls.
    let n = 4096;
    let mut ctx = sim_ctx(1024);
    let a = Matrix::<f64>::phantom(n, n);
    let b = Matrix::<f64>::phantom(n, n);
    let c = Matrix::<f64>::phantom(n, n);
    let d = Matrix::<f64>::phantom(n, n);
    gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &c);
    let edges_one = ctx.graph().n_edges();
    gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &c, &b, 0.0, &d);
    let edges_two = ctx.graph().n_edges();
    // The second call depends on the first's C tiles: cross-call edges.
    let first_call_tasks = 4 * 4 * 4;
    assert_eq!(ctx.calls(), 2);
    assert!(ctx.pending_tasks() >= 2 * first_call_tasks);
    assert!(
        edges_two > 2 * edges_one,
        "expected cross-call dependencies: {edges_one} then {edges_two}"
    );
}

#[test]
fn composition_is_faster_than_two_syncs() {
    // One composed graph vs two synced graphs of the same work.
    let n = 8192;
    let composed = {
        let mut ctx = sim_ctx(2048);
        let a = Matrix::<f64>::phantom(n, n);
        let b = Matrix::<f64>::phantom(n, n);
        let c = Matrix::<f64>::phantom(n, n);
        let d = Matrix::<f64>::phantom(n, n);
        gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &c);
        gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &c, &b, 0.0, &d);
        ctx.memory_coherent_async(&d);
        ctx.run_simulated().makespan
    };
    let synced = {
        let mut total = 0.0;
        let mut prev: Option<Matrix<f64>> = None;
        for _ in 0..2 {
            let mut ctx = sim_ctx(2048);
            let a = prev.take().unwrap_or_else(|| Matrix::<f64>::phantom(n, n));
            let b = Matrix::<f64>::phantom(n, n);
            let c = Matrix::<f64>::phantom(n, n);
            gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &a, &b, 0.0, &c);
            ctx.memory_coherent_async(&c);
            total += ctx.run_simulated().makespan;
            prev = Some(c);
        }
        total
    };
    assert!(
        composed < synced,
        "composition must beat sync barriers: {composed} vs {synced}"
    );
}

#[test]
fn distributed_matrices_start_on_devices() {
    let n = 8192;
    let mut ctx = sim_ctx(2048);
    let a = Matrix::<f64>::phantom(n, n);
    let b = Matrix::<f64>::phantom(n, n);
    let c = Matrix::<f64>::phantom(n, n);
    ctx.distribute_2d_block_cyclic_async(&a);
    ctx.distribute_2d_block_cyclic_async(&b);
    ctx.distribute_2d_block_cyclic_async(&c);
    gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &a, &b, 0.5, &c);
    let out = ctx.run_simulated();
    assert_eq!(out.bytes_h2d, 0);
    assert_eq!(out.bytes_d2h, 0);
}

#[test]
fn grid_override_changes_owners() {
    let mut ctx = sim_ctx(1024);
    ctx.set_grid(8, 1);
    assert_eq!(ctx.grid(), (8, 1));
    let n = 8192;
    let a = Matrix::<f64>::phantom(n, n);
    let b = Matrix::<f64>::phantom(n, n);
    let c = Matrix::<f64>::phantom(n, n);
    gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &a, &b, 0.5, &c);
    let out = ctx.run_simulated();
    // Row-cyclic over 8 rows: all 8 GPUs get kernel work.
    let loads = out.trace.kernel_load_per_gpu(8);
    assert!(loads.iter().all(|&l| l > 0.0), "{loads:?}");
}

#[test]
#[should_panic(expected = "phantom matrices have no values")]
fn phantom_values_unreachable() {
    let a = Matrix::<f64>::phantom(4, 4);
    let _ = a.at(0, 0);
}

#[test]
fn phantom_allowed_only_in_sim_mode_graphs() {
    // Building a graph with phantoms is fine; it's reading values that
    // panics. Simulation-only contexts never read.
    let mut ctx = sim_ctx(2);
    let a = Matrix::<f64>::phantom(4, 4);
    let c = Matrix::<f64>::phantom(4, 4);
    syrk_async(&mut ctx, Uplo::Lower, Trans::No, 1.0, &a, 0.0, &c);
    let out = ctx.run_simulated();
    assert!(out.tasks_run > 0);
}

#[test]
fn f32_halves_transfer_volume() {
    let n = 8192;
    let run = |double: bool| -> u64 {
        if double {
            let mut ctx = sim_ctx(2048);
            let a = Matrix::<f64>::phantom(n, n);
            let b = Matrix::<f64>::phantom(n, n);
            let c = Matrix::<f64>::phantom(n, n);
            gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &a, &b, 0.5, &c);
            ctx.memory_coherent_async(&c);
            ctx.run_simulated().bytes_h2d
        } else {
            let mut ctx = Context::<f32>::new(dgx1(), RuntimeConfig::xkblas(), 2048);
            ctx.set_simulation_only(true);
            let a = Matrix::<f32>::phantom(n, n);
            let b = Matrix::<f32>::phantom(n, n);
            let c = Matrix::<f32>::phantom(n, n);
            gemm_async(&mut ctx, Trans::No, Trans::No, 1.0f32, &a, &b, 0.5, &c);
            ctx.memory_coherent_async(&c);
            ctx.run_simulated().bytes_h2d
        }
    };
    let h64 = run(true);
    let h32 = run(false);
    assert_eq!(h64, 2 * h32, "f32 tiles are half the bytes");
}

#[test]
fn pending_flops_match_routine_formula() {
    let n = 8192usize;
    let mut ctx = sim_ctx(1024);
    let a = Matrix::<f64>::phantom(n, n);
    let b = Matrix::<f64>::phantom(n, n);
    let c = Matrix::<f64>::phantom(n, n);
    gemm_async(&mut ctx, Trans::No, Trans::No, 1.0, &a, &b, 0.5, &c);
    let expected = 2.0 * (n as f64).powi(3);
    let got = ctx.pending_flops();
    assert!(
        (got - expected).abs() / expected < 1e-12,
        "{got} vs {expected}"
    );
}
