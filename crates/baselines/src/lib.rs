//! # xk-baselines — policy models of the competing multi-GPU BLAS libraries
//!
//! The paper compares XKBlas against seven other stacks on the same DGX-1
//! (Fig. 5). None of them is open for a faithful line-by-line port here, so
//! each is modelled by its *documented policy* on the shared simulator (see
//! DESIGN.md §6): how it lays out matrices, where transfers go, what its
//! scheduler optimizes, and what it synchronizes. The numerical algorithms
//! are identical across libraries (the paper makes the same point in
//! §IV-D), so the simulated differences isolate exactly the policies.

#![warn(missing_docs)]

mod conversion;
mod cublasxt;
mod fabric;
mod slate;
mod xkblas_like;

pub use conversion::layout_conversion_seconds;
pub use cublasxt::run_cublasxt;
pub use slate::run_slate;
pub use xkblas_like::{build_routine_graph, build_run_graph, run_on_runtime, run_prepped};

use xk_kernels::Routine;
use xk_runtime::{Heuristics, ObsReport, RuntimeConfig, SchedulerKind};
use xk_topo::FabricSpec;
use xk_trace::Trace;

/// The workspace-wide run error (see [`xk_runtime::Error`]); the former
/// crate-local `RunError` enum is now an alias so existing call sites keep
/// compiling while the whole harness folds errors the same way.
pub use xk_runtime::Error as RunError;

/// The libraries of the paper's Fig. 5, plus the XKBlas ablations of Fig. 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Library {
    /// XKBlas with a given heuristic configuration (Fig. 3 ablations).
    XkBlas(XkVariant),
    /// cuBLAS-XT: synchronous, round-robin blocks, no P2P, no caching.
    CublasXt,
    /// cuBLAS-MG: GEMM only, 2D block-cyclic, static owners.
    CublasMg,
    /// BLASX: GEMM only, LAPACK layout, 2-level cache without NVLink ranks.
    Blasx,
    /// Chameleon with its native tile layout, StarPU `dmdas`.
    ChameleonTile,
    /// Chameleon on LAPACK layout: adds host-side layout conversions.
    ChameleonLapack,
    /// SLATE: block outer product over PCIe, no P2P.
    Slate,
    /// DPLASMA: GEMM only, tile layout, static-owner DAG engine.
    Dplasma,
}

/// XKBlas heuristic variants of Fig. 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum XkVariant {
    /// Both heuristics on (the paper's "XKBlas").
    Full,
    /// Optimistic D2D disabled ("XKBlas, no heuristic").
    NoHeuristic,
    /// Both disabled ("XKBlas, no heuristic, no topo").
    NoHeuristicNoTopo,
}

impl XkVariant {
    /// The heuristic set this Fig. 3 ablation simulates under.
    pub fn heuristics(self) -> Heuristics {
        match self {
            XkVariant::Full => Heuristics::full(),
            XkVariant::NoHeuristic => Heuristics::no_optimistic(),
            XkVariant::NoHeuristicNoTopo => Heuristics::none(),
        }
    }

    /// The complete runtime configuration of this variant — the exact
    /// config [`run`] uses, exposed so batched drivers (xk-serve) can
    /// simulate a shared graph under each variant without duplicating the
    /// mapping.
    pub fn runtime_config(self) -> RuntimeConfig {
        RuntimeConfig::xkblas().with_heuristics(self.heuristics())
    }
}

impl Library {
    /// Display name as in the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Library::XkBlas(XkVariant::Full) => "XKBlas",
            Library::XkBlas(XkVariant::NoHeuristic) => "XKBlas, no heuristic",
            Library::XkBlas(XkVariant::NoHeuristicNoTopo) => "XKBlas, no heuristic, no topo",
            Library::CublasXt => "cuBLAS-XT",
            Library::CublasMg => "cuBLAS-MG",
            Library::Blasx => "BLASX",
            Library::ChameleonTile => "Chameleon Tile",
            Library::ChameleonLapack => "Chameleon LAPACK",
            Library::Slate => "Slate",
            Library::Dplasma => "DPLASMA",
        }
    }

    /// The eight libraries of Fig. 5 in legend order.
    pub const FIG5: [Library; 8] = [
        Library::Blasx,
        Library::ChameleonLapack,
        Library::ChameleonTile,
        Library::CublasMg,
        Library::CublasXt,
        Library::Dplasma,
        Library::Slate,
        Library::XkBlas(XkVariant::Full),
    ];

    /// Routines this library accelerates on GPUs (paper §IV-D: cuBLAS-MG,
    /// BLASX and DPLASMA are GEMM-only).
    pub fn supports(self, routine: Routine) -> bool {
        match self {
            Library::CublasMg | Library::Blasx | Library::Dplasma => routine == Routine::Gemm,
            _ => true,
        }
    }

    /// Candidate block sizes swept per library (§IV-A: {1024, 2048, 4096},
    /// extended to 8192/16384 for cuBLAS-XT and SLATE).
    pub fn tile_candidates(self) -> &'static [usize] {
        match self {
            Library::CublasXt | Library::Slate => &[1024, 2048, 4096, 8192, 16384],
            _ => &[1024, 2048, 4096],
        }
    }
}

/// Parameters of one simulated run.
#[derive(Clone, Copy, Debug)]
pub struct RunParams {
    /// The BLAS-3 routine.
    pub routine: Routine,
    /// Square matrix dimension.
    pub n: usize,
    /// Tile / block size.
    pub tile: usize,
    /// Data-on-device methodology (2D block-cyclic initial distribution,
    /// results left on devices) instead of data-on-host.
    pub data_on_device: bool,
}

/// Outcome of one simulated run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// End-to-end simulated seconds (includes transfers per §IV-A).
    pub seconds: f64,
    /// Achieved TFlop/s using the routine's standard flop count.
    pub tflops: f64,
    /// Execution trace.
    pub trace: Trace,
    /// Host→device bytes.
    pub bytes_h2d: u64,
    /// Device→host bytes.
    pub bytes_d2h: u64,
    /// Device→device bytes.
    pub bytes_p2p: u64,
    /// Observability report of the simulated run (link occupancy,
    /// contention, critical path). `None` for the models that bypass the
    /// shared runtime (cuBLAS-XT, SLATE) or runs at [`xk_runtime::ObsLevel::Off`].
    pub obs: Option<ObsReport>,
}

/// Runs `lib` on `topo` with `params`.
pub fn run(lib: Library, topo: &FabricSpec, params: &RunParams) -> Result<RunResult, RunError> {
    if !lib.supports(params.routine) {
        return Err(RunError::Unsupported);
    }
    match lib {
        Library::XkBlas(variant) => {
            Ok(run_on_runtime(topo, params, variant.runtime_config(), false))
        }
        Library::ChameleonTile => Ok(run_chameleon(topo, params, true)),
        Library::ChameleonLapack => {
            let mut r = run_chameleon(topo, params, false);
            // Host-side LAPACK↔tile conversion before and after the call
            // (§IV-D: "the penalty, on the host, to convert operands and
            // result to/from tile matrix representation").
            let conv = layout_conversion_seconds(params.routine, params.n);
            r.seconds += conv;
            r.tflops = params.routine.flops_square(params.n as u64) / r.seconds / 1e12;
            Ok(r)
        }
        Library::CublasMg => {
            // cuBLAS-MG computes on 2D block-cyclic *device* matrices; with
            // data on the host it stages synchronously: distribute operands,
            // run the distributed GEMM (P2P rings), gather the result.
            let mut cfg = RuntimeConfig::xkblas()
                .with_scheduler(SchedulerKind::StaticOwner)
                .with_heuristics(Heuristics {
                    topology_aware: false,
                    optimistic_d2d: true,
                    allow_d2d: true,
                });
            cfg.kernel_streams = 2;
            cfg.window = 8;
            let dev_params = RunParams {
                data_on_device: true,
                ..*params
            };
            let mut r = run_on_runtime(topo, &dev_params, cfg, true);
            if !params.data_on_device {
                // Synchronous distribute (3 operands in) + gather (result
                // out) over the 4 PCIe uplinks in parallel.
                let matrix_bytes = (params.n * params.n * 8) as f64;
                let uplink = topo.route(xk_topo::Device::Host, xk_topo::Device::Gpu(0));
                let aggregate = uplink.bandwidth * topo.n_switches() as f64;
                let t_in = 3.0 * matrix_bytes / aggregate;
                let t_out = matrix_bytes / aggregate;
                // Make the staging phases visible in the trace (Fig. 6).
                let compute_end = r.seconds;
                r.trace.shift(t_in);
                let l_distribute = r.trace.intern("distribute");
                let l_gather = r.trace.intern("gather");
                for g in 0..topo.n_gpus() as u32 {
                    r.trace.push(xk_trace::Span {
                        place: xk_trace::Place::Gpu(g),
                        lane: 0,
                        kind: xk_trace::SpanKind::H2D,
                        start: 0.0,
                        end: t_in,
                        bytes: 3 * (params.n * params.n) as u64 / topo.n_gpus() as u64,
                        label: l_distribute,
                        flow: xk_trace::FlowId::NONE,
                    });
                    r.trace.push(xk_trace::Span {
                        place: xk_trace::Place::Gpu(g),
                        lane: 2,
                        kind: xk_trace::SpanKind::D2H,
                        start: t_in + compute_end,
                        end: t_in + compute_end + t_out,
                        bytes: (params.n * params.n) as u64 / topo.n_gpus() as u64,
                        label: l_gather,
                        flow: xk_trace::FlowId::NONE,
                    });
                }
                r.seconds += t_in + t_out;
                r.bytes_h2d += 3 * (params.n * params.n * 8) as u64;
                r.bytes_d2h += (params.n * params.n * 8) as u64;
                r.tflops = params.routine.flops_square(params.n as u64) / r.seconds / 1e12;
            }
            Ok(r)
        }
        Library::Dplasma => {
            // PaRSEC's accelerator support stages all data through the host
            // (its GEMM trace in Fig. 6 shows no PtoP) and flushes results
            // eagerly.
            let mut cfg = RuntimeConfig::xkblas()
                .with_scheduler(SchedulerKind::StaticOwner)
                .with_heuristics(Heuristics::host_only());
            cfg.kernel_streams = 2;
            // PaRSEC's GPU path ca. 2021: one manager thread per device,
            // shallow pipelining, operands re-read per task (largest HtoD
            // volume in Fig. 6).
            cfg.window = 3;
            cfg.eager_flush = !params.data_on_device;
            cfg.task_overhead = 40.0e-6;
            cfg.prefetch_at_assign = false;
            cfg.cache_inputs = false;
            Ok(run_on_runtime(topo, params, cfg, true))
        }
        Library::Blasx => {
            // BLASX fails to allocate above N = 45000 (Fig. 5 caption).
            if params.n > 45_000 {
                return Err(RunError::OutOfMemory);
            }
            // Two-level cache: D2D from any valid peer (no NVLink ranks,
            // no in-flight forwarding).
            let mut cfg = RuntimeConfig::xkblas().with_heuristics(Heuristics {
                topology_aware: false,
                optimistic_d2d: false,
                allow_d2d: true,
            });
            cfg.kernel_streams = 2;
            cfg.window = 4;
            Ok(run_on_runtime(topo, params, cfg, false))
        }
        Library::CublasXt => Ok(run_cublasxt(topo, params)),
        Library::Slate => Ok(run_slate(topo, params)),
    }
}

fn run_chameleon(topo: &FabricSpec, params: &RunParams, tile_layout: bool) -> RunResult {
    // Chameleon/StarPU: dmdas scheduler, 2 workers per GPU (§IV-A), eager
    // flush-back of computed tiles, no topology-aware source selection.
    // StarPU 1.3.5 on this machine stages transfers through the host (the
    // Chameleon trace of Fig. 6 shows DtoH/HtoD only).
    let mut cfg = RuntimeConfig::xkblas()
        .with_scheduler(SchedulerKind::Dmdas)
        .with_heuristics(Heuristics::host_only());
    cfg.kernel_streams = 2;
    cfg.window = 8;
    cfg.eager_flush = !params.data_on_device;
    // StarPU task insertion + dmdas model lookups are far heavier than
    // XKaapi's task spawn, and data prefetch happens near execution, not
    // at submission.
    cfg.task_overhead = 60.0e-6;
    cfg.prefetch_at_assign = false;
    run_on_runtime(topo, params, cfg, tile_layout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_support() {
        assert_eq!(Library::XkBlas(XkVariant::Full).name(), "XKBlas");
        assert!(Library::CublasMg.supports(Routine::Gemm));
        assert!(!Library::CublasMg.supports(Routine::Syrk));
        assert!(!Library::Blasx.supports(Routine::Trsm));
        assert!(Library::Slate.supports(Routine::Trmm));
        assert_eq!(Library::FIG5.len(), 8);
    }

    #[test]
    fn tile_candidates_extended_for_xt_and_slate() {
        assert!(Library::CublasXt.tile_candidates().contains(&16384));
        assert!(!Library::ChameleonTile.tile_candidates().contains(&8192));
    }

    #[test]
    fn unsupported_routine_is_reported() {
        let topo = xk_topo::dgx1();
        let p = RunParams {
            routine: Routine::Syrk,
            n: 4096,
            tile: 1024,
            data_on_device: false,
        };
        assert!(matches!(run(Library::Dplasma, &topo, &p), Err(RunError::Unsupported)));
    }

    #[test]
    fn blasx_oom_above_45000() {
        let topo = xk_topo::dgx1();
        let p = RunParams {
            routine: Routine::Gemm,
            n: 49152,
            tile: 2048,
            data_on_device: false,
        };
        assert!(matches!(run(Library::Blasx, &topo, &p), Err(RunError::OutOfMemory)));
    }
}
