//! cuBLAS-XT policy model.
//!
//! Documented behaviour (paper §II, §IV-D): synchronous per-call semantics,
//! output blocks distributed round-robin over the GPUs, operands and
//! kernels enqueued into the *same* stream (two streams per GPU give the
//! only overlap), every block operand re-read from host memory — no
//! software cache, no device-to-device transfers — and results written
//! back after each call.

use xk_kernels::perfmodel::TileOp;
use xk_kernels::{GpuModel, Routine};
use xk_sim::SimTime;
use xk_topo::{Device, FabricSpec};

use crate::fabric::Fabric;
use crate::xkblas_like::outcome_to_result;
use crate::{RunParams, RunResult};

const STREAMS: usize = 2;

struct Driver<'t> {
    topo: &'t FabricSpec,
    fabric: Fabric,
    model: GpuModel,
    /// Per-(gpu, stream) cursor: end of the last in-stream operation.
    cursors: Vec<Vec<SimTime>>,
    n: usize,
    b: usize,
    bt: usize,
    word: u64,
}

impl<'t> Driver<'t> {
    fn new(topo: &'t FabricSpec, n: usize, b: usize) -> Self {
        Driver {
            fabric: Fabric::new(topo, STREAMS),
            model: GpuModel::v100(),
            cursors: vec![vec![SimTime::ZERO; STREAMS]; topo.n_gpus()],
            topo,
            n,
            b,
            bt: n.div_ceil(b).max(1),
            word: 8,
        }
    }

    fn dim(&self, i: usize) -> usize {
        if i + 1 == self.bt {
            self.n - i * self.b
        } else {
            self.b
        }
    }

    fn block_bytes(&self, i: usize, j: usize) -> u64 {
        (self.dim(i) * self.dim(j)) as u64 * self.word
    }

    /// In-stream H2D of one block.
    fn fetch(&mut self, g: usize, s: usize, bytes: u64, label: &str) {
        let t = self.cursors[g][s];
        let res = self
            .fabric
            .transfer(self.topo, Device::Host, Device::Gpu(g), bytes, t, true, label);
        self.cursors[g][s] = res.end;
    }

    /// In-stream kernel.
    fn kernel(&mut self, g: usize, s: usize, op: TileOp, label: &str) {
        let t = self.cursors[g][s];
        let res = self.fabric.kernel(g, s, t, self.model.kernel_time(op), label);
        self.cursors[g][s] = res.end;
    }

    /// In-stream D2H of one block.
    fn writeback(&mut self, g: usize, s: usize, bytes: u64, label: &str) {
        let t = self.cursors[g][s];
        let res = self
            .fabric
            .transfer(self.topo, Device::Gpu(g), Device::Host, bytes, t, true, label);
        self.cursors[g][s] = res.end;
    }

    /// Barrier across every stream (cuBLAS-XT's internal synchronization
    /// between dependent phases, e.g. TRSM pivot steps).
    fn barrier(&mut self) {
        let latest = self
            .cursors
            .iter()
            .flatten()
            .copied()
            .fold(SimTime::ZERO, SimTime::max);
        for per_gpu in &mut self.cursors {
            for c in per_gpu {
                *c = latest;
            }
        }
    }
}

/// Simulates one cuBLAS-XT routine call.
pub fn run_cublasxt(topo: &FabricSpec, params: &RunParams) -> RunResult {
    let mut d = Driver::new(topo, params.n, params.tile);
    let n_gpus = topo.n_gpus();
    let mut rr = 0usize; // round-robin slot counter
    let place = |rr: &mut usize| {
        let g = *rr % n_gpus;
        let s = (*rr / n_gpus) % STREAMS;
        *rr += 1;
        (g, s)
    };

    let bt = d.bt;
    match params.routine {
        Routine::Gemm | Routine::Symm => {
            for i in 0..bt {
                for j in 0..bt {
                    let (g, s) = place(&mut rr);
                    let (m, n2) = (d.dim(i), d.dim(j));
                    let cb = d.block_bytes(i, j);
                    d.fetch(g, s, cb, "C");
                    for k in 0..bt {
                        d.fetch(g, s, d.block_bytes(i, k), "A");
                        d.fetch(g, s, d.block_bytes(k, j), "B");
                        let op = if params.routine == Routine::Symm && k == i {
                            TileOp::Symm { m, n: n2 }
                        } else {
                            TileOp::Gemm { m, n: n2, k: d.dim(k) }
                        };
                        d.kernel(g, s, op, "gemm");
                    }
                    d.writeback(g, s, cb, "C");
                }
            }
        }
        Routine::Syrk | Routine::Syr2k => {
            let two = params.routine == Routine::Syr2k;
            for i in 0..bt {
                for j in 0..=i {
                    let (g, s) = place(&mut rr);
                    let (m, n2) = (d.dim(i), d.dim(j));
                    let cb = d.block_bytes(i, j);
                    d.fetch(g, s, cb, "C");
                    for k in 0..bt {
                        d.fetch(g, s, d.block_bytes(i, k), "A");
                        d.fetch(g, s, d.block_bytes(j, k), "A'");
                        if i == j {
                            let op = if two {
                                TileOp::Syr2k { n: n2, k: d.dim(k) }
                            } else {
                                TileOp::Syrk { n: n2, k: d.dim(k) }
                            };
                            d.kernel(g, s, op, "syrk");
                        } else {
                            d.kernel(g, s, TileOp::Gemm { m, n: n2, k: d.dim(k) }, "gemm");
                            if two {
                                d.fetch(g, s, d.block_bytes(i, k), "B");
                                d.fetch(g, s, d.block_bytes(j, k), "B'");
                                d.kernel(g, s, TileOp::Gemm { m, n: n2, k: d.dim(k) }, "gemm");
                            }
                        }
                    }
                    d.writeback(g, s, cb, "C");
                }
            }
        }
        Routine::Trmm => {
            // Out-of-place triangular multiply: every block of the result
            // reads the triangular row of A and the old B from host.
            for i in 0..bt {
                for j in 0..bt {
                    let (g, s) = place(&mut rr);
                    let (m, n2) = (d.dim(i), d.dim(j));
                    let cb = d.block_bytes(i, j);
                    for k in 0..=i {
                        d.fetch(g, s, d.block_bytes(i, k), "A");
                        d.fetch(g, s, d.block_bytes(k, j), "B");
                        let op = if k == i {
                            TileOp::Trmm { m, n: n2 }
                        } else {
                            TileOp::Gemm { m, n: n2, k: d.dim(k) }
                        };
                        d.kernel(g, s, op, "trmm");
                    }
                    d.writeback(g, s, cb, "B'");
                }
            }
        }
        Routine::Trsm => {
            // Pivot steps with internal synchronization: solve block row k,
            // write it back, update the remaining rows from host data.
            for k in 0..bt {
                for j in 0..bt {
                    let (g, s) = place(&mut rr);
                    let (m, n2) = (d.dim(k), d.dim(j));
                    d.fetch(g, s, d.block_bytes(k, k), "Akk");
                    d.fetch(g, s, d.block_bytes(k, j), "B");
                    d.kernel(g, s, TileOp::Trsm { m, n: n2 }, "trsm");
                    d.writeback(g, s, d.block_bytes(k, j), "X");
                }
                d.barrier();
                for i in k + 1..bt {
                    for j in 0..bt {
                        let (g, s) = place(&mut rr);
                        let (m, n2) = (d.dim(i), d.dim(j));
                        d.fetch(g, s, d.block_bytes(i, k), "A");
                        d.fetch(g, s, d.block_bytes(k, j), "X");
                        d.fetch(g, s, d.block_bytes(i, j), "B");
                        d.kernel(g, s, TileOp::Gemm { m, n: n2, k: d.dim(k) }, "update");
                        d.writeback(g, s, d.block_bytes(i, j), "B");
                    }
                }
                d.barrier();
            }
        }
    }

    let fabric = d.fabric;
    let sim = xk_runtime::SimOutcome {
        makespan: fabric.makespan(),
        bytes_h2d: fabric.bytes.0,
        bytes_d2h: fabric.bytes.1,
        bytes_p2p: fabric.bytes.2,
        trace: fabric.trace,
        tasks_run: 0,
        steals: 0,
        obs: None,
        failures: Vec::new(),
    };
    outcome_to_result(sim, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xk_topo::dgx1;

    fn p(routine: Routine, n: usize, tile: usize) -> RunParams {
        RunParams {
            routine,
            n,
            tile,
            data_on_device: false,
        }
    }

    #[test]
    fn gemm_runs_and_is_transfer_heavy() {
        let topo = dgx1();
        let r = run_cublasxt(&topo, &p(Routine::Gemm, 8192, 2048));
        assert!(r.seconds > 0.0);
        assert_eq!(r.bytes_p2p, 0, "cuBLAS-XT never talks GPU-to-GPU");
        // Re-reads inflate H2D way beyond the 3 N^2 minimum.
        let min = 3 * 8192u64 * 8192 * 8;
        assert!(r.bytes_h2d > min, "h2d {} <= {min}", r.bytes_h2d);
        // Transfer-dominated profile like Fig. 6.
        assert!(r.trace.breakdown().transfer_ratio() > 0.4);
    }

    #[test]
    fn all_routines_complete() {
        let topo = dgx1();
        for routine in Routine::ALL {
            let r = run_cublasxt(&topo, &p(routine, 4096, 1024));
            assert!(r.seconds > 0.0, "{routine:?}");
            assert!(r.tflops > 0.0, "{routine:?}");
        }
    }

    #[test]
    fn bigger_blocks_help_gemm() {
        // The paper extends the block sweep to 8192/16384 for cuBLAS-XT
        // because large blocks amortize its re-reads.
        let topo = dgx1();
        let small = run_cublasxt(&topo, &p(Routine::Gemm, 16384, 1024));
        let large = run_cublasxt(&topo, &p(Routine::Gemm, 16384, 8192));
        assert!(large.tflops > small.tflops);
    }
}
