//! Drivers for the libraries that share the task-runtime substrate
//! (XKBlas and the runtime-based baseline models): build the routine's
//! task graph through `xkblas-core` and simulate it under a per-library
//! [`RuntimeConfig`].

use xk_runtime::{ObsLevel, RuntimeConfig, SimOutcome};
use xk_topo::FabricSpec;
use xkblas_core::{
    gemm_async, symm_async, syr2k_async, syrk_async, trmm_async, trsm_async, Context, Diag,
    Matrix, Routine, Side, Trans, Uplo,
};

use crate::{RunParams, RunResult};

/// Builds the standard square instance of `routine` (the paper's benchmark
/// shapes: all operands `n × n`, lower/left/no-trans/non-unit) into `ctx`,
/// returning the output matrix whose coherence closes the run.
pub fn build_routine_graph(ctx: &mut Context<f64>, routine: Routine, n: usize, dod: bool) -> Matrix<f64> {
    let a = Matrix::<f64>::phantom(n, n);
    let b = Matrix::<f64>::phantom(n, n);
    let c = Matrix::<f64>::phantom(n, n);
    if dod {
        ctx.distribute_2d_block_cyclic_async(&a);
        ctx.distribute_2d_block_cyclic_async(&b);
        ctx.distribute_2d_block_cyclic_async(&c);
    }
    match routine {
        Routine::Gemm => {
            gemm_async(ctx, Trans::No, Trans::No, 1.0, &a, &b, 0.5, &c);
            c
        }
        Routine::Symm => {
            symm_async(ctx, Side::Left, Uplo::Lower, 1.0, &a, &b, 0.5, &c);
            c
        }
        Routine::Syrk => {
            syrk_async(ctx, Uplo::Lower, Trans::No, 1.0, &a, 0.5, &c);
            c
        }
        Routine::Syr2k => {
            syr2k_async(ctx, Uplo::Lower, Trans::No, 1.0, &a, &b, 0.5, &c);
            c
        }
        Routine::Trmm => {
            trmm_async(ctx, Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, 1.0, &a, &b);
            b
        }
        Routine::Trsm => {
            trsm_async(ctx, Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, 1.0, &a, &b);
            b
        }
    }
}

/// Simulates one routine call under `cfg`. Data-on-host runs end with a
/// `memory_coherent` of the output (§IV-A end-to-end methodology);
/// data-on-device runs leave results on the GPUs (§IV-C).
pub fn run_on_runtime(
    topo: &FabricSpec,
    params: &RunParams,
    cfg: RuntimeConfig,
    tile_layout: bool,
) -> RunResult {
    let mut ctx = Context::<f64>::new(topo.clone(), cfg, params.tile);
    ctx.set_simulation_only(true);
    ctx.set_tile_layout(tile_layout);
    ctx.set_observability(ObsLevel::Full);
    let out = build_routine_graph(&mut ctx, params.routine, params.n, params.data_on_device);
    if !params.data_on_device && !ctx.config().eager_flush {
        ctx.memory_coherent_async(&out);
    }
    let sim = ctx.run_simulated();
    outcome_to_result(sim, params)
}

/// Builds the task graph of one routine call exactly as [`run_on_runtime`]
/// would, returning it unexecuted.
///
/// The graph depends on `cfg` only through `eager_flush` (whether a final
/// per-tile coherency flush is appended), never on the scheduler or
/// heuristic fields — so one graph built here can be simulated under every
/// [`crate::XkVariant`] configuration via [`run_prepped`], sharing the
/// hoisted [`xk_runtime::SimPrep`] across those runs.
pub fn build_run_graph(
    topo: &FabricSpec,
    params: &RunParams,
    cfg: &RuntimeConfig,
    tile_layout: bool,
) -> xk_runtime::TaskGraph {
    let mut ctx = Context::<f64>::new(topo.clone(), cfg.clone(), params.tile);
    ctx.set_simulation_only(true);
    ctx.set_tile_layout(tile_layout);
    let out = build_routine_graph(&mut ctx, params.routine, params.n, params.data_on_device);
    if !params.data_on_device && !ctx.config().eager_flush {
        ctx.memory_coherent_async(&out);
    }
    ctx.finish_graph()
}

/// Simulates a pre-built routine graph under `cfg` with shared per-graph
/// prep: the timing, byte counters and observability are byte-identical to
/// [`run_on_runtime`] with the same parameters (only the process-global
/// matrix ids inside trace labels differ, as they do between any two
/// context builds).
pub fn run_prepped(
    topo: &FabricSpec,
    params: &RunParams,
    cfg: RuntimeConfig,
    graph: &xk_runtime::TaskGraph,
    prep: &xk_runtime::SimPrep,
) -> RunResult {
    let sim = xk_runtime::SimSession::on(topo)
        .config(cfg)
        .observe(ObsLevel::Full)
        .run_prepped(graph, prep)
        .into_outcome();
    outcome_to_result(sim, params)
}

/// Converts a simulation outcome into the harness result type.
pub fn outcome_to_result(sim: SimOutcome, params: &RunParams) -> RunResult {
    let flops = params.routine.flops_square(params.n as u64);
    RunResult {
        seconds: sim.makespan,
        tflops: sim.tflops(flops),
        trace: sim.trace,
        bytes_h2d: sim.bytes_h2d,
        bytes_d2h: sim.bytes_d2h,
        bytes_p2p: sim.bytes_p2p,
        obs: sim.obs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xk_runtime::RuntimeConfig;
    use xk_topo::dgx1;

    #[test]
    fn all_routines_build_and_run() {
        let topo = dgx1();
        for routine in Routine::ALL {
            let params = RunParams {
                routine,
                n: 4096,
                tile: 1024,
                data_on_device: false,
            };
            let r = run_on_runtime(&topo, &params, RuntimeConfig::xkblas(), false);
            assert!(r.seconds > 0.0, "{routine:?} zero time");
            assert!(r.tflops > 0.1, "{routine:?} unreasonably slow");
            assert!(r.bytes_h2d > 0, "{routine:?} must read inputs");
            assert!(r.bytes_d2h > 0, "{routine:?} must return the result");
        }
    }

    #[test]
    fn prepped_run_matches_run_on_runtime() {
        let topo = dgx1();
        let params = RunParams {
            routine: Routine::Syr2k,
            n: 4096,
            tile: 1024,
            data_on_device: false,
        };
        // One graph, three heuristic variants: each prepped run must be
        // byte-identical in timing and counters to the standalone path.
        let base = crate::XkVariant::Full.runtime_config();
        let graph = build_run_graph(&topo, &params, &base, false);
        let prep = xk_runtime::SimPrep::new(&graph);
        for variant in [
            crate::XkVariant::Full,
            crate::XkVariant::NoHeuristic,
            crate::XkVariant::NoHeuristicNoTopo,
        ] {
            let cfg = variant.runtime_config();
            let direct = run_on_runtime(&topo, &params, cfg.clone(), false);
            let prepped = run_prepped(&topo, &params, cfg, &graph, &prep);
            assert_eq!(direct.seconds.to_bits(), prepped.seconds.to_bits(), "{variant:?}");
            assert_eq!(direct.tflops.to_bits(), prepped.tflops.to_bits(), "{variant:?}");
            assert_eq!(direct.bytes_h2d, prepped.bytes_h2d, "{variant:?}");
            assert_eq!(direct.bytes_d2h, prepped.bytes_d2h, "{variant:?}");
            assert_eq!(direct.bytes_p2p, prepped.bytes_p2p, "{variant:?}");
            assert_eq!(direct.trace.len(), prepped.trace.len(), "{variant:?}");
        }
    }

    #[test]
    fn dod_run_has_no_host_traffic() {
        let topo = dgx1();
        let params = RunParams {
            routine: Routine::Gemm,
            n: 4096,
            tile: 512,
            data_on_device: true,
        };
        let r = run_on_runtime(&topo, &params, RuntimeConfig::xkblas(), false);
        assert_eq!(r.bytes_h2d, 0);
        assert_eq!(r.bytes_d2h, 0);
        assert!(r.bytes_p2p > 0, "cross-GPU reads still occur");
    }
}
