//! Host-side LAPACK ↔ tile layout conversion model (Chameleon LAPACK).
//!
//! Chameleon's LAPACK interface converts operands into its internal tile
//! layout before computing and converts the result back after (paper
//! §IV-D: this is why "Chameleon LAPACK" is the slowest stack in Fig. 5).
//! The conversion is a strided host memcpy over every matrix; it runs at
//! memory bandwidth shared with little parallel speedup.

use xk_kernels::Routine;

/// Effective host conversion bandwidth, bytes/second. Strided packing of a
/// large matrix on a two-socket Broadwell lands far below stream bandwidth.
pub const CONVERSION_BW: f64 = 6.0e9;

/// Number of matrix-sized conversions per routine: inputs converted in,
/// outputs converted out.
fn conversions(routine: Routine) -> (f64, f64) {
    match routine {
        Routine::Gemm => (3.0, 1.0),  // A, B, C in; C out
        Routine::Symm => (3.0, 1.0),
        Routine::Syrk => (2.0, 1.0),  // A, C in; C out
        Routine::Syr2k => (3.0, 1.0),
        Routine::Trmm => (2.0, 1.0),  // A, B in; B out
        Routine::Trsm => (2.0, 1.0),
    }
}

/// Seconds spent converting layouts for one call on square dimension `n`.
pub fn layout_conversion_seconds(routine: Routine, n: usize) -> f64 {
    let (inputs, outputs) = conversions(routine);
    let matrix_bytes = (n * n * 8) as f64;
    (inputs + outputs) * matrix_bytes / CONVERSION_BW
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_conversion_scales_quadratically() {
        let t1 = layout_conversion_seconds(Routine::Gemm, 10_000);
        let t2 = layout_conversion_seconds(Routine::Gemm, 20_000);
        assert!((t2 / t1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn syrk_converts_fewer_matrices_than_gemm() {
        let g = layout_conversion_seconds(Routine::Gemm, 8192);
        let s = layout_conversion_seconds(Routine::Syrk, 8192);
        assert!(s < g);
    }

    #[test]
    fn magnitude_sanity() {
        // 32768^2 doubles ≈ 8.6 GB per matrix; 4 conversions ≈ 5.7 s at
        // 6 GB/s — the same order as the GEMM compute itself, which is what
        // makes Chameleon LAPACK ~5x slower in the paper.
        let t = layout_conversion_seconds(Routine::Gemm, 32768);
        assert!(t > 3.0 && t < 10.0, "{t}");
    }
}
